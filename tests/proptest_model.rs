//! Property-based tests: the full controller against a simple model.
//!
//! The model is a `BTreeMap<lpn, version>`: every write bumps a version,
//! trims remove the entry. After any op sequence the controller's
//! authoritative mapping must agree with the model on *which* pages are
//! mapped, all invariants must hold, and no IO may be lost.

use proptest::prelude::*;
use std::collections::BTreeMap;

use eagletree::prelude::*;
use eagletree::controller::{Controller, RequestId, SsdRequest};
use eagletree::core::SimTime;

#[derive(Debug, Clone)]
enum Op {
    Write(u64),
    Read(u64),
    Trim(u64),
    Drain,
}

fn op_strategy(logical: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..logical).prop_map(Op::Write),
        2 => (0..logical).prop_map(Op::Read),
        1 => (0..logical).prop_map(Op::Trim),
        1 => Just(Op::Drain),
    ]
}

struct Harness {
    ctrl: Controller,
    now: SimTime,
    next_id: RequestId,
    completed: u64,
    submitted: u64,
}

impl Harness {
    fn new(cfg: ControllerConfig) -> Self {
        let ctrl = Controller::new(Geometry::tiny(), TimingSpec::slc(), cfg).unwrap();
        Harness {
            ctrl,
            now: SimTime::ZERO,
            next_id: 0,
            completed: 0,
            submitted: 0,
        }
    }

    fn submit(&mut self, kind: RequestKind, lpn: u64) {
        let id = self.next_id;
        self.next_id += 1;
        self.submitted += 1;
        self.ctrl.submit(
            SsdRequest {
                id,
                kind,
                lpn,
                tags: IoTags::none(),
            },
            self.now,
        );
    }

    fn drain(&mut self) {
        while let Some(t) = self.ctrl.next_event_time() {
            self.now = t;
            self.completed += self.ctrl.advance(t).len() as u64;
        }
        self.completed += self.ctrl.advance(self.now).len() as u64;
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // each case runs a full simulation
        .. ProptestConfig::default()
    })]

    #[test]
    fn controller_agrees_with_model(
        ops in prop::collection::vec(op_strategy(512), 1..400),
        dftl in any::<bool>(),
    ) {
        let cfg = ControllerConfig {
            mapping: if dftl {
                MappingKind::Dftl { cmt_entries: 16 }
            } else {
                MappingKind::PageMap
            },
            wl: WlConfig { static_enabled: false, ..WlConfig::default() },
            ..ControllerConfig::default()
        };
        let mut h = Harness::new(cfg);
        let logical = h.ctrl.logical_pages();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut in_window = 0u32;
        for op in &ops {
            match op {
                Op::Write(lpn) => {
                    let lpn = lpn % logical;
                    h.submit(RequestKind::Write, lpn);
                    *model.entry(lpn).or_insert(0) += 1;
                    in_window += 1;
                }
                Op::Read(lpn) => {
                    h.submit(RequestKind::Read, lpn % logical);
                    in_window += 1;
                }
                Op::Trim(lpn) => {
                    let lpn = lpn % logical;
                    h.submit(RequestKind::Trim, lpn);
                    model.remove(&lpn);
                    in_window += 1;
                }
                Op::Drain => {
                    h.drain();
                    in_window = 0;
                }
            }
            // Keep a bounded device queue like a real OS would.
            if in_window >= 16 {
                h.drain();
                in_window = 0;
            }
        }
        h.drain();

        // No IO lost.
        prop_assert_eq!(h.completed, h.submitted);
        // Mapped set identical to the model. A concurrent write+trim of
        // the same lpn inside one window resolves by completion order —
        // both orders leave the lpn either mapped or trimmed; since we
        // drain between windows and within a window model applies ops in
        // submission order while the controller may complete the trim
        // (instant) before the write (flash latency), compare only lpns
        // without such conflicts. Conflicts are rare; detect and skip.
        for lpn in 0..logical {
            let modeled = model.contains_key(&lpn);
            // Peek through the public invariant checker path instead:
            // check_invariants already asserts forward/reverse agreement,
            // so here we only check mapped-set membership.
            let mapped = h.ctrl.peek_mapping(lpn).is_some();
            if modeled != mapped {
                // Allow the one legal divergence: trim raced a write in
                // the same window.
                prop_assert!(
                    had_conflict(&ops, lpn, logical),
                    "lpn {} mapped={} modeled={} without a racing window",
                    lpn, mapped, modeled
                );
            }
        }
        h.ctrl.check_invariants();
    }

    #[test]
    fn random_overwrites_preserve_capacity_invariants(
        seed in any::<u64>(),
        greediness in 1u32..5,
    ) {
        let cfg = ControllerConfig {
            gc: GcConfig { greediness, ..GcConfig::default() },
            wl: WlConfig { static_enabled: false, ..WlConfig::default() },
            ..ControllerConfig::default()
        };
        let mut h = Harness::new(cfg);
        let logical = h.ctrl.logical_pages();
        let mut rng = SimRng::new(seed);
        for i in 0..(logical * 2) {
            h.submit(RequestKind::Write, rng.gen_range(logical));
            if i % 16 == 15 {
                h.drain();
            }
        }
        h.drain();
        prop_assert_eq!(h.completed, h.submitted);
        h.ctrl.check_invariants();
    }
}

/// Did `ops` submit both a write and a trim of `lpn` without an
/// intervening drain (so their completion order is undefined)?
fn had_conflict(ops: &[Op], lpn: u64, logical: u64) -> bool {
    let mut wrote = false;
    let mut trimmed = false;
    let mut count = 0u32;
    for op in ops {
        match op {
            Op::Write(l) if l % logical == lpn => {
                wrote = true;
                count += 1;
            }
            Op::Trim(l) if l % logical == lpn => {
                trimmed = true;
                count += 1;
            }
            Op::Drain => {
                if wrote && trimmed {
                    return true;
                }
                wrote = false;
                trimmed = false;
            }
            _ => {
                count += 1;
            }
        }
        // The harness also drains every 16 submissions; conservatively
        // treat any window as potentially racing if both kinds occur at
        // all — the 16-op windows make exact tracking here fragile.
        let _ = count;
        if wrote && trimmed {
            return true;
        }
    }
    false
}
