//! Cross-crate integration tests: workloads → OS → controller → flash.

use eagletree::prelude::*;

fn small_setup() -> Setup {
    let mut s = Setup::tiny();
    s.ctrl.wl.static_enabled = false;
    s
}

#[test]
fn precondition_then_measure_uses_dependencies() {
    let mut os = small_setup().build();
    let fill = os.add_thread(precondition::sequential_fill(16));
    let reader = os.add_thread_after(
        Box::new(Pumped::new(RandReadGen::new(Region::whole(), 500), 8, 3).named("r")),
        vec![fill],
    );
    os.run();
    let logical = os.controller().logical_pages();
    assert_eq!(os.thread_stats(fill).writes_completed, logical);
    assert_eq!(os.thread_stats(reader).reads_completed, 500);
    // Reads hit real flash (everything was preconditioned).
    assert!(os.controller().array().counters().reads >= 500);
    os.controller().check_invariants();
}

#[test]
fn full_stack_determinism() {
    let run = || {
        let mut setup = small_setup();
        setup.ctrl.sched = SchedPolicy::edf_default();
        let mut os = setup.build();
        let fill = os.add_thread(precondition::sequential_fill(16));
        let a = os.add_thread_after(
            Box::new(
                Pumped::new(
                    ZipfGen::new(Region::whole(), 2_000, 0.99, ZipfKind::Mixed(40)),
                    8,
                    11,
                )
                .named("a"),
            ),
            vec![fill],
        );
        let b = os.add_thread_after(
            Box::new(Pumped::new(RandWriteGen::new(Region::whole(), 1_000), 4, 13).named("b")),
            vec![fill],
        );
        os.run();
        (
            os.now().as_nanos(),
            os.thread_stats(a).read_latency.p99().as_nanos(),
            os.thread_stats(a).write_latency.p99().as_nanos(),
            os.thread_stats(b).write_latency.mean().as_nanos(),
            os.controller().array().counters(),
            os.controller().stats().gc_erases,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn sustained_overwrite_never_stalls_and_stays_consistent() {
    let mut setup = small_setup();
    setup.ctrl.gc.greediness = 1; // laziest legal GC
    let mut os = setup.build();
    let fill = os.add_thread(precondition::sequential_fill(16));
    let logical = Setup::tiny().logical_pages();
    let w = os.add_thread_after(
        Box::new(
            Pumped::new(RandWriteGen::new(Region::whole(), logical * 4), 16, 5).named("w"),
        ),
        vec![fill],
    );
    os.run();
    assert_eq!(os.thread_stats(w).writes_completed, logical * 4);
    assert!(os.controller().stats().gc_erases > 0);
    assert!(os.controller().write_amplification() > 1.0);
    os.controller().check_invariants();
}

#[test]
fn dftl_full_stack_matches_page_map_semantics() {
    let run = |mapping: MappingKind| {
        let mut setup = small_setup();
        setup.ctrl.mapping = mapping;
        let mut os = setup.build();
        let fill = os.add_thread(precondition::sequential_fill(16));
        let t = os.add_thread_after(
            Box::new(
                Pumped::new(
                    ZipfGen::new(Region::whole(), 1_500, 0.9, ZipfKind::Mixed(50)),
                    8,
                    21,
                )
                .named("t"),
            ),
            vec![fill],
        );
        os.run();
        os.controller().check_invariants();
        (
            os.thread_stats(t).reads_completed,
            os.thread_stats(t).writes_completed,
        )
    };
    let pm = run(MappingKind::PageMap);
    let dftl = run(MappingKind::Dftl { cmt_entries: 64 });
    assert_eq!(pm, dftl, "same completion counts under both mappings");
}

#[test]
fn file_system_thread_runs_clean() {
    let mut os = small_setup().build();
    let logical = os.controller().logical_pages();
    let t = os.add_thread(Box::new(FileSystemThread::new(
        Region::new(0, logical / 2),
        300,
        8,
        9,
    )));
    os.run();
    assert!(os.thread_finished(t));
    let s = os.thread_stats(t);
    assert!(s.writes_completed > 0);
    assert!(s.trims_completed > 0, "deletes must trim");
    os.controller().check_invariants();
}

#[test]
fn lsm_thread_compacts_and_stays_consistent() {
    let mut os = small_setup().build();
    let logical = os.controller().logical_pages();
    let t = os.add_thread(Box::new(LsmTreeThread::new(
        Region::new(0, logical / 2),
        2,
        2,
        16,
        16 * 12,
        8,
    )));
    os.run();
    assert!(os.thread_finished(t));
    let s = os.thread_stats(t);
    assert!(s.reads_completed > 0, "compactions must read");
    assert!(s.trims_completed > 0, "compactions must trim old runs");
    os.controller().check_invariants();
}

#[test]
fn grace_join_completes_both_phases() {
    let mut os = small_setup().build();
    let sink = std::rc::Rc::new(std::cell::RefCell::new((None, None)));
    let r = Region::new(0, 200);
    let s = Region::new(200, 200);
    let out = Region::new(400, 800);
    os.add_thread(precondition::region_fill(r, 16));
    os.add_thread(precondition::region_fill(s, 16));
    os.run();
    let t = os.add_thread(Box::new(
        GraceHashJoin::new(r, s, out, 4, 16).with_phase_sink(sink.clone()),
    ));
    os.run();
    assert!(os.thread_finished(t));
    let (part, probe) = *sink.borrow();
    let part = part.expect("partition phase finished");
    let probe = probe.expect("probe phase finished");
    assert!(probe > part);
    // Partition phase does |R|+|S| reads and writes; probe reads them back.
    let st = os.thread_stats(t);
    assert_eq!(st.writes_completed, 400);
    assert_eq!(st.reads_completed, 400 + 400);
    os.controller().check_invariants();
}

#[test]
fn trace_replay_is_exact_and_serial() {
    let mut os = small_setup().build();
    let trace = vec![
        TraceEntry::immediate(OsIo::write(1)),
        TraceEntry::after(SimDuration::from_micros(500), OsIo::write(2)),
        TraceEntry::immediate(OsIo::read(1)),
        TraceEntry::immediate(OsIo::trim(1)),
    ];
    let t = os.add_thread(Box::new(TraceThread::new(trace)));
    os.run();
    let s = os.thread_stats(t);
    assert_eq!(s.writes_completed, 2);
    assert_eq!(s.reads_completed, 1);
    assert_eq!(s.trims_completed, 1);
    // Think time must appear in the makespan.
    assert!(os.now() > SimTime::from_nanos(500_000));
}

#[test]
fn open_interface_lock_gates_tag_effects() {
    // A tagged urgent reader behind a flood of writes: with TagPriority
    // scheduling its mean latency should be clearly better when the
    // interface is open than when it is locked. (The extreme tail can
    // even degrade slightly — priority cannot break a cached-program
    // pipeline already occupying a LUN — which is exactly the kind of
    // counter-intuitive interplay the demo highlights.)
    let mean_us = |open: bool| {
        let mut setup = small_setup();
        setup.ctrl.sched = SchedPolicy::TagPriority;
        setup.os.open_interface = open;
        setup.os.queue_depth = 64;
        let mut os = setup.build();
        let fill = os.add_thread(precondition::sequential_fill(16));
        let _w = os.add_thread_after(
            Box::new(
                Pumped::new(RandWriteGen::new(Region::whole(), 3_000), 64, 3).named("flood"),
            ),
            vec![fill],
        );
        let r = os.add_thread_after(
            Box::new(
                Pumped::new(RandReadGen::new(Region::whole(), 300), 2, 5)
                    .named("urgent")
                    .tagged(IoTags::none().with_priority(0)),
            ),
            vec![fill],
        );
        os.run();
        os.thread_stats(r).read_lat_us.mean()
    };
    let locked = mean_us(false);
    let open = mean_us(true);
    assert!(
        open < locked * 0.75,
        "open interface should cut urgent reader mean latency: open={open:.0}us locked={locked:.0}us"
    );
}

#[test]
fn wear_leveling_narrows_erase_distribution() {
    let wear_sd = |static_wl: bool| {
        let mut setup = Setup::tiny();
        setup.ctrl.wl.static_enabled = static_wl;
        setup.ctrl.wl.check_every_erases = 8;
        setup.ctrl.wl.young_delta = 3;
        setup.ctrl.wl.idle_factor = 0.1;
        let mut os = setup.build();
        let fill = os.add_thread(precondition::sequential_fill(16));
        let logical = setup.logical_pages();
        // Hammer a small hot range so wear skews without WL.
        let _w = os.add_thread_after(
            Box::new(
                Pumped::new(
                    RandWriteGen::new(Region::new(0, logical / 10), logical * 6),
                    16,
                    7,
                )
                .named("hot"),
            ),
            vec![fill],
        );
        os.run();
        os.controller().check_invariants();
        eagletree::controller::wear_summary(os.controller().array()).stddev_erases
    };
    let without = wear_sd(false);
    let with = wear_sd(true);
    assert!(
        with < without,
        "static WL should narrow wear: with={with:.2} without={without:.2}"
    );
}
