//! The demo "game" (§3, Figure 3): guess the optimal combination of
//! scheduling policies, then let the simulator grade every combination.
//!
//! The objective mirrors the paper: "maximize throughput for a given
//! workload while balancing mean latency and latency variability between
//! different types of IOs." Run it and see whether your intuition would
//! have won the EagleTree T-shirt.
//!
//! ```sh
//! cargo run --release --example design_space_game
//! ```

use eagletree::experiments::suite;
use eagletree::prelude::*;

fn main() {
    println!("EagleTree scheduling game — grading all combinations …\n");
    let table = suite::by_id("G1").expect("G1 registered").run(Scale::Demo);
    println!("{}", table.render());
    let winner = table.rows.first().expect("non-empty leaderboard");
    println!("🏆 winning combination: {}", winner.label);
    println!(
        "   score {:.2} at {:.0} IOPS (read {:.0} us / write {:.0} us)",
        winner.get("score").unwrap_or(0.0),
        winner.get("iops").unwrap_or(0.0),
        winner.get("read_us").unwrap_or(0.0),
        winner.get("write_us").unwrap_or(0.0),
    );
    println!(
        "\nCounter-intuitive results are the point of the demo: the greedy\n\
         read-priority setting rarely wins once write starvation feeds back\n\
         through garbage collection."
    );
}
