//! Visual traces (§2.3): "massive visual traces showing exactly how every
//! IO was handled throughout the simulator components."
//!
//! Runs a fill → overwrite → read burst on a 2×2-LUN SSD with the span
//! collector enabled, prints per-op lifecycle spans (with their stage
//! breakdowns, causes and interference annotations), then the ASCII Gantt
//! chart of per-LUN span occupancy — the text-mode equivalent of the demo
//! GUI's trace pane. Watch application reads (r) and writes (w) interleave
//! with GC (G) and erases (E), and the "stalled-behind" annotations pin
//! host tail latency on the internal op that caused it. The same spans
//! export as Chrome-trace/Perfetto JSON via `Obs::to_perfetto` (see the
//! bench harness `--trace` flag for file output).
//!
//! ```sh
//! cargo run --release --example visual_trace
//! ```

use eagletree::prelude::*;

fn main() {
    let mut setup = Setup::tiny();
    setup.ctrl.obs.span_capacity = 100_000;
    setup.ctrl.gc.greediness = 2;
    setup.os.queue_depth = 16;
    let mut os = setup.build();

    // Fill a stripe, then overwrite it to provoke GC, then read it back.
    let fill = os.add_thread(Box::new(
        Pumped::new(SeqWriteGen::new(Region::new(0, 512), 512), 16, 1).named("fill"),
    ));
    let over = os.add_thread_after(
        Box::new(
            Pumped::new(RandWriteGen::new(Region::new(0, 512), 1_500), 16, 2).named("overwrite"),
        ),
        vec![fill],
    );
    let _read = os.add_thread_after(
        Box::new(Pumped::new(RandReadGen::new(Region::new(0, 512), 200), 8, 3).named("read")),
        vec![over],
    );
    os.run();

    let obs = os.obs().expect("observability enabled");
    println!(
        "captured {} spans ({} open, {} dropped)\n",
        obs.closed_count(),
        obs.open_count(),
        obs.dropped()
    );

    println!("--- first 25 spans (stage-attributed lifecycles) ---");
    for line in obs.render_spans(25).lines() {
        println!("{line}");
    }

    println!("\n--- interference: host ops stalled behind GC / internal work ---");
    let mut shown = 0;
    for s in obs.spans() {
        if let Some((sid, kind)) = s.stalled_behind {
            println!(
                "{:>12}  #{:<6} {:<9} waited on {kind}#{sid} ({} total, {} pending)",
                s.start,
                s.id,
                s.kind,
                SimDuration::from_nanos(s.stages.total()),
                SimDuration::from_nanos(s.stages.get(Stage::SchedPending)),
            );
            shown += 1;
            if shown == 10 {
                break;
            }
        }
    }
    if shown == 0 {
        println!("(none this run)");
    }

    // Gantt of the first 2 ms and of a 2 ms window deep in the overwrite
    // phase (where GC activity shows up).
    let lanes = os.controller().obs_lane_names();
    let ms = |n: u64| SimTime::from_nanos(n * 1_000_000);
    println!("\n--- occupancy: first 2 ms (fill phase) ---");
    print!("{}", obs.render_gantt(ms(0), ms(2), 96, &lanes));
    let mid = os.now().as_nanos() / 2 / 1_000_000;
    println!("\n--- occupancy: 2 ms mid-run (overwrite + GC) ---");
    print!("{}", obs.render_gantt(ms(mid), ms(mid + 2), 96, &lanes));
    println!(
        "\nlegend: r=app-read w=app-write G=GC L=wear-level M=merge m=mapping E=erase S=scrub .=idle"
    );
}
