//! Visual traces (§2.3): "massive visual traces showing exactly how every
//! IO was handled throughout the simulator components."
//!
//! Runs a short burst on a 2×2-LUN SSD with tracing enabled, prints the
//! per-event listing, then the ASCII Gantt chart of channel/LUN occupancy —
//! the text-mode equivalent of the demo GUI's trace pane. Watch the reads
//! (R), programs (P), transfers (X), and — after enough overwrites —
//! GC copy-backs (C) and erases (E) interleave across LUNs.
//!
//! ```sh
//! cargo run --release --example visual_trace
//! ```

use eagletree::prelude::*;

fn main() {
    let mut setup = Setup::tiny();
    setup.ctrl.trace_events = 100_000;
    setup.ctrl.gc.greediness = 2;
    setup.os.queue_depth = 16;
    let mut os = setup.build();

    // Fill a stripe, then overwrite it to provoke GC, then read it back.
    let fill = os.add_thread(Box::new(
        Pumped::new(SeqWriteGen::new(Region::new(0, 512), 512), 16, 1).named("fill"),
    ));
    let over = os.add_thread_after(
        Box::new(
            Pumped::new(RandWriteGen::new(Region::new(0, 512), 1_500), 16, 2).named("overwrite"),
        ),
        vec![fill],
    );
    let _read = os.add_thread_after(
        Box::new(Pumped::new(RandReadGen::new(Region::new(0, 512), 200), 8, 3).named("read")),
        vec![over],
    );
    os.run();

    let trace = os.controller().trace().expect("tracing enabled");
    println!("captured {} trace events\n", trace.events().len());

    println!("--- first 30 events ---");
    for line in trace.render_listing().lines().take(30) {
        println!("{line}");
    }

    // Gantt of the first 2 ms and of a 2 ms window deep in the overwrite
    // phase (where GC activity shows up).
    let ms = |n: u64| SimTime::from_nanos(n * 1_000_000);
    println!("\n--- occupancy: first 2 ms (fill phase) ---");
    print!("{}", trace.render_gantt(ms(0), ms(2), 96));
    let mid = os.now().as_nanos() / 2 / 1_000_000;
    println!("\n--- occupancy: 2 ms mid-run (overwrite + GC) ---");
    print!("{}", trace.render_gantt(ms(mid), ms(mid + 2), 96));
    println!(
        "\nlegend: P=program R=read-start X=transfer-out E=erase C=copy-back .=idle"
    );
}
