//! Grace hash join on the simulated SSD: how write allocation shapes the
//! two phases (scattered partition writes vs bucket-sequential probes).
//!
//! ```sh
//! cargo run --release --example grace_hash_join
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use eagletree::prelude::*;

fn run(alloc: WriteAllocPolicy) -> (f64, f64) {
    let mut setup = Setup::demo();
    setup.ctrl.write_alloc = alloc;
    setup.os.queue_depth = 64;
    let mut os = setup.build();

    let r_pages = 2_000;
    let s_pages = 2_000;
    let partitions = 16;
    let region_r = Region::new(0, r_pages);
    let region_s = Region::new(r_pages, s_pages);
    let out_len = ((r_pages + s_pages) * 2).div_ceil(partitions) * partitions;
    let region_out = Region::new(r_pages + s_pages, out_len);

    // Write the input relations.
    os.add_thread(precondition::region_fill(region_r, 32));
    os.add_thread(precondition::region_fill(region_s, 32));
    os.run();
    let t0 = os.now();

    let sink = Rc::new(RefCell::new((None, None)));
    os.add_thread(Box::new(
        GraceHashJoin::new(region_r, region_s, region_out, partitions, 32)
            .with_phase_sink(sink.clone()),
    ));
    os.run();

    let (partition_done, probe_done) = *sink.borrow();
    let part_ms = partition_done.unwrap().since(t0).as_millis_f64();
    let probe_ms = probe_done
        .unwrap()
        .since(partition_done.unwrap())
        .as_millis_f64();
    (part_ms, probe_ms)
}

fn main() {
    println!("Grace hash join: |R| = |S| = 2000 pages, 16 partitions\n");
    println!(
        "{:<16} {:>14} {:>12} {:>12}",
        "write alloc", "partition(ms)", "probe(ms)", "total(ms)"
    );
    for (name, alloc) in [
        ("round_robin", WriteAllocPolicy::RoundRobin),
        ("least_utilized", WriteAllocPolicy::LeastUtilized),
        ("striping", WriteAllocPolicy::Striping),
    ] {
        let (part, probe) = run(alloc);
        println!(
            "{name:<16} {part:>14.2} {probe:>12.2} {:>12.2}",
            part + probe
        );
    }
    println!(
        "\nThe partition phase interleaves reads with hash-scattered writes;\n\
         the probe phase is pure reads whose parallelism depends on where the\n\
         partition writes landed — the allocation policy decides that."
    );
}
