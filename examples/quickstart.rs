//! Quickstart: build a demo SSD, run a mixed workload, inspect every layer.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use eagletree::prelude::*;

fn main() {
    // 1. Configure the stack. Setup bundles all four layers; every field
    //    is a plain struct you can tweak.
    let mut setup = Setup::demo();
    setup.ctrl.gc.greediness = 2;
    setup.ctrl.sched = SchedPolicy::reads_first();
    setup.os.queue_depth = 32;
    setup.os.timeline_interval = Some(SimDuration::from_millis(20));

    println!(
        "SSD: {} channels x {} LUNs, {} pages of {} B ({} MiB), {:?} flash",
        setup.geometry.channels,
        setup.geometry.luns_per_channel,
        setup.geometry.total_pages(),
        setup.geometry.page_size,
        setup.geometry.capacity_bytes() >> 20,
        setup.timing.cell,
    );

    // 2. Build and attach threads. Precondition the device first so
    //    measurements start from a well-defined state (§2.3).
    let mut os = setup.build();
    let fill = os.add_thread(precondition::sequential_fill(32));

    let writer = os.add_thread_after(
        Box::new(
            Pumped::new(
                ZipfGen::new(Region::whole(), 20_000, 0.99, ZipfKind::Writes),
                16,
                7,
            )
            .named("zipf-writer"),
        ),
        vec![fill],
    );
    let reader = os.add_thread_after(
        Box::new(
            Pumped::new(RandReadGen::new(Region::whole(), 10_000), 8, 11).named("reader"),
        ),
        vec![fill],
    );

    // 3. Run the virtual-time simulation to completion.
    os.run();

    // 4. Inspect: per-thread stats …
    for (name, tid) in [("writer", writer), ("reader", reader)] {
        let s = os.thread_stats(tid);
        println!(
            "{name:>6}: {:>6} IOs, {:>9.0} IOPS, mean {:>8.1} us, p99 {:>8.1} us",
            s.completed(),
            s.throughput_iops(),
            if name == "writer" {
                s.write_lat_us.mean()
            } else {
                s.read_lat_us.mean()
            },
            if name == "writer" {
                s.write_latency.p99().as_micros_f64()
            } else {
                s.read_latency.p99().as_micros_f64()
            },
        );
    }

    // … and the controller's internals.
    let ctrl = os.controller();
    let counters = ctrl.array().counters();
    println!(
        "flash ops: {} reads, {} programs, {} erases, {} copybacks",
        counters.reads, counters.programs, counters.erases, counters.copybacks
    );
    println!(
        "write amplification {:.3}, GC erases {}, WL erases {}",
        ctrl.write_amplification(),
        ctrl.stats().gc_erases,
        ctrl.stats().wl_erases,
    );
    let wear = eagletree::controller::wear_summary(ctrl.array());
    println!(
        "wear: min {} / mean {:.1} / max {} erases (stddev {:.2})",
        wear.min_erases, wear.mean_erases, wear.max_erases, wear.stddev_erases
    );
    println!("virtual time elapsed: {}", os.now());

    // … and how throughput evolved across virtual time (§2.3's
    // metric-vs-time graphs, one sparkline per thread).
    for (name, tid) in [("writer", writer), ("reader", reader)] {
        if let Some(tl) = &os.thread_stats(tid).timeline {
            println!(
                "{name:>6} completions/20ms: {}",
                sparkline(&downsample(tl.points(), 60))
            );
        }
    }
}
