//! The open interface (§2.2): what the OS and SSD gain from talking.
//!
//! Compares a locked block device against three unlocked hint protocols —
//! per-IO priorities, data temperatures, and update-locality groups — on a
//! multi-tenant workload: a skewed updater that creates GC pressure and a
//! latency-sensitive reader.
//!
//! ```sh
//! cargo run --release --example open_interface
//! ```

use eagletree::prelude::*;

struct Outcome {
    reader_p99_us: f64,
    wa: f64,
    iops: f64,
}

fn run(mode: &str) -> Outcome {
    let mut setup = Setup::small();
    setup.ctrl.wl.static_enabled = false;
    setup.os.queue_depth = 32;
    setup.os.open_interface = mode != "closed";
    match mode {
        "priority" => setup.ctrl.sched = SchedPolicy::TagPriority,
        "temperature" => setup.ctrl.temperature = TemperatureMode::Hints,
        "locality" => setup.ctrl.honor_locality = true,
        _ => {}
    }
    let mut os = setup.build();
    let logical = os.controller().logical_pages();
    let fill = os.add_thread(precondition::sequential_fill(32));

    // Tenant A: skewed updates, hinted hot/cold, one locality group.
    let writer = Pumped::new(
        ZipfGen::new(Region::whole(), logical * 3, 0.99, ZipfKind::Writes)
            .with_temperature_hints(0.2),
        16,
        1,
    )
    .named("updater")
    .tagged(IoTags::none().with_locality(1));
    // Tenant B: sparse reads tagged urgent.
    let reader = Pumped::new(RandReadGen::new(Region::whole(), logical / 2), 4, 2)
        .named("urgent-reader")
        .tagged(IoTags::none().with_priority(0));

    let _w = os.add_thread_after(Box::new(writer), vec![fill]);
    let r = os.add_thread_after(Box::new(reader), vec![fill]);
    let base = snapshot(&os);
    os.run();
    let reader_m = measure_since(&os, &[r], &base);
    let all = measure_since(&os, &[_w, r], &base);
    Outcome {
        reader_p99_us: reader_m.read_p99_us,
        wa: all.write_amplification,
        iops: all.iops,
    }
}

fn main() {
    println!("Open interface appetizers (E8 scenario)\n");
    println!(
        "{:<12} {:>16} {:>8} {:>12}",
        "interface", "reader p99 (us)", "WA", "total IOPS"
    );
    for mode in ["closed", "priority", "temperature", "locality"] {
        let o = run(mode);
        println!(
            "{mode:<12} {:>16.1} {:>8.3} {:>12.0}",
            o.reader_p99_us, o.wa, o.iops
        );
    }
    println!(
        "\npriority    → the reader's tagged IOs overtake queued writes;\n\
         temperature → hot/cold separation lowers GC write amplification;\n\
         locality    → co-updated pages invalidate together, same effect.\n\
         Unlocking the interface widens the design space — exactly the\n\
         paper's point."
    );
}
