//! LSM-tree insertions — the paper's §1 motivating algorithm — on two FTL
//! configurations, showing how compaction bursts interact with GC.
//!
//! ```sh
//! cargo run --release --example lsm_insertions
//! ```

use eagletree::prelude::*;

fn run(greediness: u32, copyback: bool) -> (f64, f64, f64, u64) {
    let mut setup = Setup::small();
    setup.ctrl.gc.greediness = greediness;
    setup.ctrl.gc.use_copyback = copyback;
    setup.os.queue_depth = 32;
    let mut os = setup.build();
    let logical = os.controller().logical_pages();

    // Tree sized to ~half the device; 3 levels, fanout 4, 32-page
    // memtables. 3200 inserts produce several cascaded compactions, and
    // the rewrite traffic exceeds physical capacity, so GC must run.
    let region = Region::new(0, logical / 2);
    let inserts = 32 * 100;
    let t = os.add_thread(Box::new(LsmTreeThread::new(
        region, 3, 4, 32, inserts, 32,
    )));
    let base = snapshot(&os);
    os.run();
    let m = measure_since(&os, &[t], &base);
    (
        m.iops,
        m.write_amplification,
        m.makespan_s * 1000.0,
        m.gc_erases,
    )
}

fn main() {
    println!("LSM-tree insertions: 3200 page-inserts, 3 levels, fanout 4\n");
    println!(
        "{:<24} {:>10} {:>8} {:>12} {:>10}",
        "configuration", "IOPS", "WA", "makespan ms", "gc erases"
    );
    for (name, greed, cb) in [
        ("lazy GC, no copyback", 1u32, false),
        ("lazy GC, copyback", 1, true),
        ("greedy GC, copyback", 4, true),
    ] {
        let (iops, wa, ms, gc) = run(greed, cb);
        println!("{name:<24} {iops:>10.0} {wa:>8.3} {ms:>12.2} {gc:>10}");
    }
    println!(
        "\nLSM compactions rewrite whole runs and trim the old ones, handing\n\
         the FTL large invalidation batches: GC victims are fully invalid, so\n\
         flash-level WA stays near 1 even while the LSM's own logical rewrite\n\
         traffic is several times the insert volume. Greedy GC still costs\n\
         makespan: its erases contend with compaction IOs for the LUNs."
    );
}
