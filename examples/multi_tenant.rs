//! Multi-tenant QoS demo: one SSD, two tenants, four QoS policies.
//!
//! A latency-sensitive Zipf reader shares the device with a flooding
//! sequential writer. Run it to watch the reader's tail collapse as tenant
//! isolation is turned on:
//!
//! ```text
//! cargo run --release --example multi_tenant
//! ```

use eagletree::controller::OpClass;
use eagletree::experiments::Setup;
use eagletree::os::QosPolicy;
use eagletree::workloads::{
    sequential_fill, Pumped, Region, SeqWriteGen, TenantProfile, ZipfGen, ZipfKind,
};

fn main() {
    println!("tenant isolation under a noisy neighbor (p99/p99.9 in µs)\n");
    println!(
        "{:<14} {:>10} {:>10} {:>12} {:>12}",
        "qos", "rd_p99", "rd_p999", "reader_iops", "flood_iops"
    );
    for qos in [
        QosPolicy::None,
        QosPolicy::Wfq,
        QosPolicy::TokenBucket,
        QosPolicy::StrictTiers { starvation_us: 50_000 },
    ] {
        let name = qos.name();
        let mut setup = Setup::small();
        setup.os.qos = qos;
        setup.os.queue_depth = 32;
        setup.ctrl.wl.static_enabled = false;
        let mut os = setup.build();
        os.add_thread(sequential_fill(32));
        os.run();
        let (reader, _) = TenantProfile::new("reader", 2048)
            .weight(8)
            .tier(0)
            .thread(
                Pumped::new(
                    ZipfGen::new(Region::whole(), 2_000, 0.99, ZipfKind::Reads),
                    4,
                    7,
                )
                .named("zipf-reader"),
            )
            .install(&mut os);
        let (flooder, _) = TenantProfile::new("flooder", 4096)
            .weight(1)
            .tier(1)
            .iops_limit(4_000.0)
            .burst(4.0)
            .thread(
                Pumped::new(SeqWriteGen::new(Region::whole(), 12_000), 256, 9)
                    .named("seq-flooder"),
            )
            .install(&mut os);
        let t0 = os.now();
        os.run();
        let span_s = os.now().since(t0).as_secs_f64();
        let tail = os.tenant_stats(reader).tail(OpClass::AppRead);
        let r = os.tenant_stats(reader).reads_completed as f64;
        let w = os.tenant_stats(flooder).writes_completed as f64;
        println!(
            "{:<14} {:>10.0} {:>10.0} {:>12.0} {:>12.0}",
            name,
            tail.p99.as_micros_f64(),
            tail.p999.as_micros_f64(),
            r / span_s,
            w / span_s,
        );
    }
    println!("\nWFQ trades a little flooder throughput for the reader's tail;");
    println!("the token bucket caps the flooder outright and frees the device.");
}
