//! # EagleTree
//!
//! A discrete-event SSD simulation framework for exploring the design
//! space of SSD-based algorithms — a from-scratch Rust reproduction of
//! *"EagleTree: Exploring the Design Space of SSD-Based Algorithms"*
//! (Dayan, Svendsen, Bjørling, Bonnet, Bouganim — PVLDB 6(12), 2013).
//!
//! EagleTree simulates the **whole IO stack in virtual time**, four layers
//! bottom-up:
//!
//! 1. **Hardware** ([`flash`]) — a flash array of channels × LUNs with
//!    ONFI-style command timing (read / program / erase / copy-back),
//!    SLC/MLC presets, page-state tracking and a controller memory manager.
//! 2. **SSD controller** ([`controller`]) — page-mapped FTLs (full RAM map
//!    and DFTL), garbage collection with a greediness trigger and pluggable
//!    victim selection, static + dynamic wear leveling with multi-bloom-
//!    filter hot-data detection, and a pluggable IO scheduler that
//!    arbitrates application, GC, WL and mapping traffic.
//! 3. **Operating system** ([`os`]) — per-thread IO queues, dispatch
//!    policies (FIFO / round-robin / priorities / deadline), a bounded
//!    device queue, and the *open interface*: optional priority /
//!    temperature / update-locality messages that cross the block-device
//!    boundary when unlocked. Threads belong to *tenants* with NVMe-style
//!    namespaces and a QoS layer (weighted fair queuing, token-bucket
//!    rate caps, strict tiers) for multi-tenant isolation studies.
//! 4. **Applications** ([`workloads`]) — the thread framework
//!    (`init`/`call_back`) with generators, preconditioning threads,
//!    a file-system thread, a Grace hash join, LSM-tree insertions, and
//!    trace replay.
//!
//! The [`experiments`] module is the experimental suite: templates that
//! sweep one parameter over a workload and report throughput, latency,
//! latency variability, write amplification and wear — including the
//! predefined series E1–E12 and the G1 scheduling game from the paper's
//! demonstration scenario (see `DESIGN.md` / `EXPERIMENTS.md`).
//!
//! ## Quickstart
//!
//! ```
//! use eagletree::prelude::*;
//!
//! // A 4-channel × 4-LUN SLC SSD with default policies.
//! let setup = Setup::demo();
//! let mut os = setup.build();
//!
//! // One thread: 2000 random writes, 32 in flight.
//! let t = os.add_thread(Box::new(
//!     Pumped::new(RandWriteGen::new(Region::whole(), 2000), 32, 42).named("writer"),
//! ));
//! os.run();
//!
//! let stats = os.thread_stats(t);
//! assert_eq!(stats.writes_completed, 2000);
//! println!("{:.0} IOPS", stats.throughput_iops());
//! ```

#![forbid(unsafe_code)]

pub use eagletree_controller as controller;
pub use eagletree_core as core;
pub use eagletree_experiments as experiments;
pub use eagletree_flash as flash;
pub use eagletree_os as os;
pub use eagletree_workloads as workloads;

/// The most common imports, one `use` away.
pub mod prelude {
    pub use eagletree_controller::{
        ControllerConfig, GcConfig, IoTags, MappingKind, RequestKind, SchedPolicy,
        TemperatureMode, Temperature, VictimPolicy, WlConfig, WriteAllocPolicy,
    };
    pub use eagletree_core::{Cause, ObsConfig, SimDuration, SimRng, SimTime, Stage, Zipf};
    pub use eagletree_experiments::{
        downsample, measure, measure_since, snapshot, sparkline, Scale, Setup, Table,
    };
    pub use eagletree_flash::{CellType, Geometry, TimingSpec};
    pub use eagletree_os::{
        CompletedIo, Message, Os, OsConfig, OsIo, OsSchedPolicy, QosParams, QosPolicy,
        TenantConfig, TenantId, ThreadCtx, Workload,
    };
    pub use eagletree_workloads::{
        precondition, FileSystemThread, GraceHashJoin, LsmTreeThread, MixedGen, Pumped,
        RandReadGen, RandWriteGen, Region, SeqReadGen, SeqWriteGen, TenantProfile, TraceEntry,
        TraceThread, ZipfGen, ZipfKind,
    };
}
