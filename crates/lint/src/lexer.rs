//! A small Rust lexer sufficient for the determinism lint passes.
//!
//! This is *not* a full Rust front-end (the offline container has no
//! `syn`; see the crate docs). It produces a flat token stream with
//! line numbers, correctly skipping string/char literals and comments
//! so the rule passes never match inside them, and it captures line
//! comments verbatim so `lint:allow` escapes can be parsed.
//!
//! Design notes that matter for rule correctness:
//! - Float literals (`1.0`, `1e9`, `2f64`) lex as [`TokKind::Float`];
//!   integer literals (including `0x1e9`, which contains an `e` but is
//!   hex) lex as [`TokKind::Int`]. Rule R3 keys on this distinction.
//! - `'a` lexes as a lifetime, `'a'` as a char literal.
//! - The multi-char operators `=>`, `::`, `->`, `..=`, `..` are single
//!   tokens (the match-arm parser in R4 relies on `=>`); every other
//!   operator is one `Punct` per char.
//! - Nested block comments are handled; raw strings up to any `#` depth.

/// Token category. `text` is always populated for idents, puncts and
/// numeric literals; string/char literal bodies are not retained (no
/// rule needs them, and skipping them is the point).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    Lifetime,
    Int,
    Float,
    Str,
    Char,
    Punct,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// A captured `//` line comment (used for `lint:allow` escapes).
#[derive(Debug, Clone)]
pub struct LineComment {
    pub line: u32,
    pub text: String,
}

/// Lexer output: token stream plus every line comment in the file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<LineComment>,
}

pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut out = Lexed::default();

    // Advance over `len` chars, keeping the line counter in sync.
    macro_rules! bump {
        ($len:expr) => {{
            for k in 0..$len {
                if b[i + k] == '\n' {
                    line += 1;
                }
            }
            i += $len;
        }};
    }

    while i < n {
        let c = b[i];
        // Whitespace.
        if c.is_whitespace() {
            bump!(1);
            continue;
        }
        // Line comment (also covers `///` and `//!`).
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i;
            while i < n && b[i] != '\n' {
                i += 1;
            }
            out.comments.push(LineComment {
                line,
                text: b[start..i].iter().collect(),
            });
            continue; // the `\n` is consumed by the whitespace branch
        }
        // Block comment, possibly nested.
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let mut depth = 1u32;
            bump!(2);
            while i < n && depth > 0 {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    bump!(2);
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    bump!(2);
                } else {
                    bump!(1);
                }
            }
            continue;
        }
        // Raw / byte / plain string literals: b"", r"", br#""#, r#""#.
        if c == 'r' || c == 'b' {
            let mut j = i;
            let mut saw_r = false;
            if b[j] == 'b' {
                j += 1;
            }
            if j < n && b[j] == 'r' {
                saw_r = true;
                j += 1;
            }
            if saw_r && j < n && (b[j] == '"' || b[j] == '#') {
                // Raw string: count hashes, then scan to `"` + hashes.
                let tok_line = line;
                let mut hashes = 0usize;
                while j < n && b[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < n && b[j] == '"' {
                    bump!(j + 1 - i);
                    'raw: while i < n {
                        if b[i] == '"' {
                            let mut k = 0;
                            while k < hashes && i + 1 + k < n && b[i + 1 + k] == '#' {
                                k += 1;
                            }
                            if k == hashes {
                                bump!(1 + hashes);
                                break 'raw;
                            }
                        }
                        bump!(1);
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Str,
                        text: String::new(),
                        line: tok_line,
                    });
                    continue;
                }
                // `r#ident` raw identifier — fall through to ident path.
            } else if !saw_r && j < n && b[j] == '"' {
                // b"..." byte string: scan like a plain string below.
                let tok_line = line;
                bump!(j + 1 - i);
                while i < n && b[i] != '"' {
                    if b[i] == '\\' && i + 1 < n {
                        bump!(2);
                    } else {
                        bump!(1);
                    }
                }
                if i < n {
                    bump!(1);
                }
                out.toks.push(Tok {
                    kind: TokKind::Str,
                    text: String::new(),
                    line: tok_line,
                });
                continue;
            }
            // else: plain identifier starting with r/b.
        }
        if c == '"' {
            let tok_line = line;
            bump!(1);
            while i < n && b[i] != '"' {
                if b[i] == '\\' && i + 1 < n {
                    bump!(2);
                } else {
                    bump!(1);
                }
            }
            if i < n {
                bump!(1);
            }
            out.toks.push(Tok {
                kind: TokKind::Str,
                text: String::new(),
                line: tok_line,
            });
            continue;
        }
        // Lifetime vs char literal.
        if c == '\'' {
            let tok_line = line;
            // Lifetime: 'ident NOT followed by a closing quote.
            if i + 1 < n && (b[i + 1].is_alphabetic() || b[i + 1] == '_') {
                let mut j = i + 1;
                while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                if j >= n || b[j] != '\'' {
                    let text: String = b[i..j].iter().collect();
                    bump!(j - i);
                    out.toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text,
                        line: tok_line,
                    });
                    continue;
                }
            }
            // Char literal: '<char or escape>'.
            bump!(1);
            if i < n && b[i] == '\\' {
                bump!(2);
                while i < n && b[i] != '\'' {
                    bump!(1); // \u{...}
                }
            } else if i < n {
                bump!(1);
            }
            if i < n && b[i] == '\'' {
                bump!(1);
            }
            out.toks.push(Tok {
                kind: TokKind::Char,
                text: String::new(),
                line: tok_line,
            });
            continue;
        }
        // Numeric literal.
        if c.is_ascii_digit() {
            let tok_line = line;
            let start = i;
            let mut is_float = false;
            if c == '0' && i + 1 < n && matches!(b[i + 1], 'x' | 'o' | 'b') {
                i += 2;
                while i < n && (b[i].is_ascii_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
            } else {
                while i < n && (b[i].is_ascii_digit() || b[i] == '_') {
                    i += 1;
                }
                // Fraction: `.` followed by a digit (so `1.max(2)` and
                // `1..5` stay integers).
                if i + 1 < n && b[i] == '.' && b[i + 1].is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while i < n && (b[i].is_ascii_digit() || b[i] == '_') {
                        i += 1;
                    }
                } else if i < n
                    && b[i] == '.'
                    && (i + 1 >= n || (!ident_start(b[i + 1]) && b[i + 1] != '.'))
                {
                    // Trailing-dot float like `1.` (not `1.x` or `1..`).
                    is_float = true;
                    i += 1;
                }
                // Exponent: 1e9, 1.5e-3.
                if i < n && (b[i] == 'e' || b[i] == 'E') {
                    let mut j = i + 1;
                    if j < n && (b[j] == '+' || b[j] == '-') {
                        j += 1;
                    }
                    if j < n && b[j].is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < n && (b[i].is_ascii_digit() || b[i] == '_') {
                            i += 1;
                        }
                    }
                }
                // Type suffix: u64, f64, ...
                let suf = i;
                while i < n && (b[i].is_ascii_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                let suffix: String = b[suf..i].iter().collect();
                if suffix == "f32" || suffix == "f64" {
                    is_float = true;
                }
            }
            let text: String = b[start..i].iter().collect();
            out.toks.push(Tok {
                kind: if is_float { TokKind::Float } else { TokKind::Int },
                text,
                line: tok_line,
            });
            continue;
        }
        // Identifier / keyword (incl. raw idents `r#type`).
        if ident_start(c) || (c == 'r' && i + 1 < n && b[i + 1] == '#') {
            let tok_line = line;
            let start = i;
            if c == 'r' && i + 1 < n && b[i + 1] == '#' {
                i += 2;
            }
            while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            let text: String = b[start..i].iter().collect();
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text,
                line: tok_line,
            });
            continue;
        }
        // Multi-char operators the rule passes care about.
        let two: String = b[i..(i + 2).min(n)].iter().collect();
        let three: String = b[i..(i + 3).min(n)].iter().collect();
        let (text, len) = if three == "..=" {
            ("..=".to_string(), 3)
        } else if two == "=>" || two == "::" || two == "->" || two == ".." {
            (two, 2)
        } else {
            (c.to_string(), 1)
        };
        out.toks.push(Tok {
            kind: TokKind::Punct,
            text,
            line,
        });
        bump!(len);
    }
    out
}

fn ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).toks.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn floats_vs_ints() {
        let ks = kinds("1e9 0x1e9 1.0 1_000 2f64 1.max(2) 0..3 1..=4");
        assert_eq!(ks[0].0, TokKind::Float); // 1e9
        assert_eq!(ks[1].0, TokKind::Int); // 0x1e9
        assert_eq!(ks[2].0, TokKind::Float); // 1.0
        assert_eq!(ks[3].0, TokKind::Int); // 1_000
        assert_eq!(ks[4].0, TokKind::Float); // 2f64
        assert_eq!(ks[5].0, TokKind::Int); // 1 (then .max)
        assert!(ks.iter().any(|k| k.1 == "..=" || k.1 == ".."));
    }

    #[test]
    fn lifetimes_chars_strings() {
        let ks = kinds("'a 'x' \"has // no comment\" r#\"raw \" str\"# b\"bytes\"");
        assert_eq!(ks[0].0, TokKind::Lifetime);
        assert_eq!(ks[1].0, TokKind::Char);
        assert_eq!(ks[2].0, TokKind::Str);
        assert_eq!(ks[3].0, TokKind::Str);
        assert_eq!(ks[4].0, TokKind::Str);
    }

    #[test]
    fn comments_captured_not_tokenized() {
        let l = lex("let x = 1; // lint:allow(R1) because\n/* block /* nested */ */ y");
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.contains("lint:allow"));
        assert!(l.toks.iter().any(|t| t.is_ident("y")));
        assert!(!l.toks.iter().any(|t| t.is_ident("nested")));
    }

    #[test]
    fn fat_arrow_and_paths_are_single_tokens() {
        let ks = kinds("OpClass::HostRead => x, a >= b");
        assert!(ks.iter().any(|k| k.1 == "::"));
        assert!(ks.iter().any(|k| k.1 == "=>"));
        // `>=` stays two puncts; only `=>` is fused.
        assert!(ks.iter().filter(|k| k.1 == ">").count() >= 1);
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let l = lex("a\n\"str\nwith nl\"\nb");
        let a = l.toks.iter().find(|t| t.is_ident("a")).unwrap();
        let b = l.toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(a.line, 1);
        assert_eq!(b.line, 4);
    }
}
