//! `lint:allow` escape hatch parsing.
//!
//! Syntax, inside a `//` line comment:
//!
//! ```text
//! // lint:allow(R1) iteration feeds a commutative sum — order can't re-time
//! // lint:allow(R2, R3) host wall-clock measurement is the experiment
//! ```
//!
//! An escape suppresses findings of the named rule(s) on the **same
//! line** and on the **line directly below** it (the comment-above
//! idiom). The justification text after the closing paren is
//! mandatory: an allow with no reason, or naming an unknown rule, is
//! itself a deny-tier finding (`allow-syntax`). Unused allows are
//! reported at the report tier so stale escapes get cleaned up.

use crate::lexer::LineComment;
use crate::report::{Finding, Rule, Tier};

/// One parsed escape.
#[derive(Debug, Clone)]
pub struct Allow {
    pub line: u32,
    pub rules: Vec<Rule>,
    pub reason: String,
    /// Set by rule passes when the escape suppresses a finding.
    pub used: bool,
}

/// All escapes in one file, plus any malformed-escape findings.
#[derive(Debug, Default)]
pub struct AllowSet {
    pub allows: Vec<Allow>,
}

const MARKER: &str = "lint:allow";

pub fn parse(path: &str, comments: &[LineComment], findings: &mut Vec<Finding>) -> AllowSet {
    let mut set = AllowSet::default();
    for c in comments {
        let Some(pos) = c.text.find(MARKER) else {
            continue;
        };
        let rest = &c.text[pos + MARKER.len()..];
        let mut bad = |msg: String| {
            findings.push(Finding {
                rule: Rule::AllowSyntax,
                tier: Tier::Deny,
                path: path.to_string(),
                line: c.line,
                message: msg,
                allowed: None,
            });
        };
        let Some(open) = rest.find('(') else {
            bad(format!("malformed escape `{}`: expected `lint:allow(RULE[, RULE]) reason`", c.text.trim()));
            continue;
        };
        if rest[..open].trim() != "" {
            bad("malformed escape: text between `lint:allow` and `(`".to_string());
            continue;
        }
        let Some(close) = rest.find(')') else {
            bad("malformed escape: missing `)`".to_string());
            continue;
        };
        let mut rules = Vec::new();
        let mut ok = true;
        for name in rest[open + 1..close].split(',') {
            let name = name.trim();
            match Rule::parse(name) {
                Some(r) if r != Rule::AllowSyntax => rules.push(r),
                _ => {
                    bad(format!("unknown rule `{name}` in lint:allow (known: R1, R2, R3, R4, R5)"));
                    ok = false;
                }
            }
        }
        if !ok {
            continue;
        }
        let reason = rest[close + 1..].trim().trim_start_matches([':', '-']).trim();
        if reason.is_empty() {
            bad(format!(
                "lint:allow({}) has no justification — a reason is mandatory",
                rules.iter().map(|r| r.name()).collect::<Vec<_>>().join(", ")
            ));
            continue;
        }
        if rules.is_empty() {
            bad("lint:allow() names no rules".to_string());
            continue;
        }
        set.allows.push(Allow {
            line: c.line,
            rules,
            reason: reason.to_string(),
            used: false,
        });
    }
    set
}

impl AllowSet {
    /// If `rule` at `line` is covered by an escape, mark it used and
    /// return the justification.
    pub fn cover(&mut self, rule: Rule, line: u32) -> Option<String> {
        for a in &mut self.allows {
            if (a.line == line || a.line + 1 == line) && a.rules.contains(&rule) {
                a.used = true;
                return Some(a.reason.clone());
            }
        }
        None
    }

    /// Report-tier findings for escapes that suppressed nothing.
    pub fn unused(&self, path: &str, findings: &mut Vec<Finding>) {
        for a in &self.allows {
            if !a.used {
                findings.push(Finding {
                    rule: Rule::AllowUnused,
                    tier: Tier::Report,
                    path: path.to_string(),
                    line: a.line,
                    message: format!(
                        "unused lint:allow({}) — remove the stale escape",
                        a.rules.iter().map(|r| r.name()).collect::<Vec<_>>().join(", ")
                    ),
                    allowed: None,
                });
            }
        }
    }
}
