//! R2 — no ambient wall-clock or randomness in simulation paths.
//!
//! Simulated time comes from the event clock (`SimTime`) and all
//! randomness from the seeded `core::rng` SplitMix64; anything that
//! reads the host environment makes fixed-seed runs
//! machine-dependent. Flagged:
//!
//! - `Instant::now` (path form — the `Instant` *type* alone may appear
//!   in harness-facing signatures)
//! - `SystemTime`, `UNIX_EPOCH` (any use)
//! - `thread_rng`, `OsRng`, `getrandom` (any use)
//! - `RandomState`, `DefaultHasher` (env-seeded hashers; any use)
//!
//! The bench/harness crates are outside the walker's scope, so timing
//! a *host-side* measurement there is fine; the one simulation-crate
//! site that legitimately measures host wall time (E18's events/sec
//! meta-experiment) carries a `lint:allow(R2)`.

use crate::allow::AllowSet;
use crate::lexer::{Tok, TokKind};
use crate::report::{Finding, Rule, Tier};
use crate::rules::is_path2;

const BANNED_IDENTS: [(&str, &str); 6] = [
    ("SystemTime", "wall-clock read"),
    ("UNIX_EPOCH", "wall-clock anchor"),
    ("thread_rng", "ambient RNG"),
    ("OsRng", "ambient RNG"),
    ("RandomState", "env-seeded hasher"),
    ("DefaultHasher", "env-seeded hasher"),
];

pub fn run(path: &str, toks: &[Tok], allows: &mut AllowSet, findings: &mut Vec<Finding>) {
    let mut flag = |line: u32, what: &str, why: &str, allows: &mut AllowSet| {
        let allowed = allows.cover(Rule::R2, line);
        findings.push(Finding {
            rule: Rule::R2,
            tier: Tier::Deny,
            path: path.to_string(),
            line,
            message: format!(
                "`{what}` ({why}) in a simulation path — use the event clock / seeded rng"
            ),
            allowed,
        });
    };
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        if is_path2(toks, i, "Instant", "now") {
            flag(toks[i].line, "Instant::now", "wall-clock read", allows);
            continue;
        }
        for (name, why) in BANNED_IDENTS {
            if toks[i].text == name {
                flag(toks[i].line, name, why, allows);
                break;
            }
        }
    }
}
