//! R3 — no floating-point arithmetic flowing into integer time values.
//!
//! The PR-5 bug class: `(wait_s * 1e9).ceil() as u64` rounded a
//! token-bucket wakeup *early* and span the main loop on zero
//! progress. Nanosecond timelines are integers; the instant a float
//! enters the computation, rounding direction and platform rounding
//! mode become correctness inputs.
//!
//! Two detectors, findings anchored at the cast:
//!
//! **Statement-level** — within one statement (see
//! [`crate::rules::statements`]), all three of:
//! 1. a float: float literal, `f32`/`f64` (incl. `as f64`), or a
//!    float-producing method (`ceil`, `floor`, `round`, `powf`,
//!    `powi`, `sqrt`, `exp`, `ln`, `log2`, `log10`, `as_secs_f64`);
//! 2. a cast into a wide integer (`as u64/u128/i64/i128` — narrow
//!    `u32`/`usize` casts are index/label math, not timestamps);
//! 3. a *time-typed name*: an identifier with a snake-case part in
//!    {ns, nanos, nano, time, timestamp, deadline, wake, wakeup,
//!    latency, tick(s), horizon, interval, gap, warp, period, when,
//!    sec(s), millis, micros}, or `SimTime`/`SimDuration`/
//!    `from_nanos`/`as_nanos`/`from_micros`/`from_millis`.
//!
//! **Function-level** — inside a fn whose *name* carries a time
//! *unit* (a part in {ns, nanos, nano, wake, wakeup, deadline, tick,
//! ticks} — names that merely mention "time" don't qualify; E21's
//! `mount_time` experiment would), a float marker anywhere in the
//! body plus a wide-int cast anywhere in the body flags, even when
//! they sit in different statements (`let ns = (d * 1e9 / r).ceil();
//! … ns as u64`).
//!
//! ns → float conversions (reporting, `as_secs_f64` itself) never
//! flag: the rule requires the cast *into* an integer.

use crate::allow::AllowSet;
use crate::lexer::{Tok, TokKind};
use crate::report::{Finding, Rule, Tier};
use crate::rules::{matching_close, statements};

const FLOAT_METHODS: [&str; 11] = [
    "ceil", "floor", "round", "powf", "powi", "sqrt", "exp", "ln", "log2", "log10", "as_secs_f64",
];
const INT_TARGETS: [&str; 4] = ["u64", "u128", "i64", "i128"];
const TIME_PARTS: [&str; 21] = [
    "ns", "nanos", "nano", "time", "timestamp", "deadline", "wake", "wakeup", "latency", "tick",
    "ticks", "horizon", "interval", "gap", "warp", "period", "when", "sec", "secs", "millis",
    "micros",
];
const TIME_UNIT_PARTS: [&str; 8] = [
    "ns", "nanos", "nano", "wake", "wakeup", "deadline", "tick", "ticks",
];
const TIME_IDENTS: [&str; 6] = [
    "SimTime",
    "SimDuration",
    "from_nanos",
    "as_nanos",
    "from_micros",
    "from_millis",
];

pub fn run(path: &str, toks: &[Tok], allows: &mut AllowSet, findings: &mut Vec<Finding>) {
    let mut flagged_lines: Vec<u32> = Vec::new();
    let flag = |cast: &Tok,
                    target: &str,
                    flagged_lines: &mut Vec<u32>,
                    allows: &mut AllowSet,
                    findings: &mut Vec<Finding>| {
        if flagged_lines.contains(&cast.line) {
            return;
        }
        flagged_lines.push(cast.line);
        let allowed = allows.cover(Rule::R3, cast.line);
        findings.push(Finding {
            rule: Rule::R3,
            tier: Tier::Deny,
            path: path.to_string(),
            line: cast.line,
            message: format!(
                "float arithmetic cast into integer `as {target}` in a time context — \
                 compute in integer nanoseconds (u64/u128) with explicit overflow/rounding guards"
            ),
            allowed,
        });
    };

    // Statement-level.
    for (s, e) in statements(toks) {
        let st = &toks[s..e];
        let Some(cast_at) = int_cast(st) else { continue };
        if has_float(st) && has_time_name(st) {
            flag(
                &st[cast_at],
                &st[cast_at + 1].text.clone(),
                &mut flagged_lines,
                allows,
                findings,
            );
        }
    }

    // Function-level: whole-body scan of time-unit-named fns.
    let mut i = 0usize;
    while i + 1 < toks.len() {
        if toks[i].is_ident("fn")
            && toks[i + 1].kind == TokKind::Ident
            && is_time_unit_name(&toks[i + 1].text)
        {
            if let Some(open) = fn_open_brace(toks, i + 1) {
                let close = matching_close(toks, open);
                let body = &toks[open..close];
                if has_float(body) {
                    if let Some(cast_at) = int_cast(body) {
                        flag(
                            &body[cast_at],
                            &body[cast_at + 1].text.clone(),
                            &mut flagged_lines,
                            allows,
                            findings,
                        );
                    }
                }
                i = close;
                continue;
            }
        }
        i += 1;
    }
}

/// Index of the `as` in the first wide-int cast.
fn int_cast(st: &[Tok]) -> Option<usize> {
    (0..st.len().saturating_sub(1)).find(|&i| {
        st[i].is_ident("as")
            && st[i + 1].kind == TokKind::Ident
            && INT_TARGETS.contains(&st[i + 1].text.as_str())
    })
}

fn has_float(st: &[Tok]) -> bool {
    st.iter().enumerate().any(|(i, t)| match t.kind {
        TokKind::Float => true,
        TokKind::Ident => {
            t.text == "f64"
                || t.text == "f32"
                || (FLOAT_METHODS.contains(&t.text.as_str())
                    // method position: preceded by `.`, followed by `(`
                    && i > 0
                    && st[i - 1].is_punct(".")
                    && st.get(i + 1).is_some_and(|n| n.is_punct("(")))
        }
        _ => false,
    })
}

fn is_time_name(name: &str) -> bool {
    if TIME_IDENTS.contains(&name) {
        return true;
    }
    name.split('_').any(|p| TIME_PARTS.contains(&p))
}

fn is_time_unit_name(name: &str) -> bool {
    name.split('_').any(|p| TIME_UNIT_PARTS.contains(&p))
}

fn has_time_name(st: &[Tok]) -> bool {
    st.iter()
        .any(|t| t.kind == TokKind::Ident && is_time_name(&t.text))
}

/// The `{` opening the body of the fn whose name is at `name_at`.
fn fn_open_brace(toks: &[Tok], name_at: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(name_at) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => return Some(j),
                ";" if depth == 0 => return None,
                _ => {}
            }
        }
    }
    None
}
