//! The determinism rule set. Each pass walks the flat token stream
//! produced by [`crate::lexer`]; shared structural helpers (statement
//! segmentation, brace matching) live here.
//!
//! These are deliberately *lexical* heuristics, tuned on this
//! workspace and pinned by the fixture suite in `tests/`: with no
//! `syn` (offline container) there is no type information, so each
//! rule documents exactly what shape it matches and the fixtures keep
//! both the positive and negative space honest.

pub mod r1_hash_iter;
pub mod r2_ambient;
pub mod r3_float_time;
pub mod r4_wildcard;
pub mod r5_debug_assert;

use crate::lexer::{Tok, TokKind};

/// Index of the token matching the `{`/`(`/`[` at `open`, or the
/// stream end if unbalanced.
pub fn matching_close(toks: &[Tok], open: usize) -> usize {
    let (o, c) = match toks[open].text.as_str() {
        "{" => ("{", "}"),
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        _ => return open,
    };
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            if t.text == o {
                depth += 1;
            } else if t.text == c {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
        }
    }
    toks.len()
}

/// Split a token stream into "statements" for statement-scoped rules.
///
/// Boundaries: `;` anywhere, `{` / `}` anywhere, and `,` at a level
/// where the innermost open bracket is a brace (so struct-literal
/// field initializers and match arms split, while call/tuple arguments
/// inside `(...)` stay together).
pub fn statements(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut start = 0usize;
    let mut stack: Vec<char> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "(" => stack.push('('),
            "[" => stack.push('['),
            "{" => {
                if start < i {
                    out.push((start, i));
                }
                start = i + 1;
                stack.push('{');
            }
            ")" | "]" => {
                stack.pop();
            }
            "}" => {
                if start < i {
                    out.push((start, i));
                }
                start = i + 1;
                stack.pop();
            }
            ";" => {
                if start < i {
                    out.push((start, i));
                }
                start = i + 1;
            }
            "," if stack.last().copied().unwrap_or('{') == '{' => {
                if start < i {
                    out.push((start, i));
                }
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < toks.len() {
        out.push((start, toks.len()));
    }
    out
}

/// True when `toks[i]` begins the path segment `a::b` (e.g.
/// `Instant::now`).
pub fn is_path2(toks: &[Tok], i: usize, a: &str, b: &str) -> bool {
    toks[i].is_ident(a)
        && toks.get(i + 1).is_some_and(|t| t.is_punct("::"))
        && toks.get(i + 2).is_some_and(|t| t.is_ident(b))
}
