//! R4 — exhaustive matches over the policy enums.
//!
//! `OpClass`, `SchedPolicy`, `OsSchedPolicy`, `QosPolicy` and
//! `MappingKind` are the design-space axes this simulator exists to
//! sweep. A `_` wildcard arm over one of them means adding a variant
//! (a new op class, a fourth FTL) silently falls into whatever the
//! wildcard did — the compiler stays quiet exactly when we most need
//! it to shout. PR 2 hit this: `ClassTable` had to grow compile-time
//! length assertions because a bare `[u64; 9]` absorbed new op
//! classes.
//!
//! Detection: for every `match`, parse the arm list; if any arm
//! *pattern* references one of the policy enums by path
//! (`OpClass::…`), the match is policy-relevant, and any arm whose
//! pattern is a bare `_` — or a bare lowercase catch-all binding —
//! is flagged (guards don't rescue it: `_ if …` still swallows
//! future variants). A `_` nested inside a larger pattern
//! (`(OpClass::HostRead, _)` / `Some(_)`) does not flag on its own;
//! a bare `_` arm in a match over tuples *containing* a policy enum
//! does.

use crate::allow::AllowSet;
use crate::lexer::{Tok, TokKind};
use crate::report::{Finding, Rule, Tier};
use crate::rules::matching_close;

const POLICY_ENUMS: [&str; 5] = [
    "OpClass",
    "SchedPolicy",
    "OsSchedPolicy",
    "QosPolicy",
    "MappingKind",
];

pub fn run(path: &str, toks: &[Tok], allows: &mut AllowSet, findings: &mut Vec<Finding>) {
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("match") {
            i += 1;
            continue;
        }
        // Scrutinee runs to the first `{` at depth 0.
        let Some(open) = scrutinee_end(toks, i + 1) else {
            i += 1;
            continue;
        };
        let close = matching_close(toks, open);
        let arms = parse_arms(&toks[open + 1..close]);
        let relevant: Vec<&str> = POLICY_ENUMS
            .iter()
            .copied()
            .filter(|e| {
                arms.iter().any(|a| {
                    pattern_mentions_enum(&toks[open + 1..close], a, e)
                })
            })
            .collect();
        if !relevant.is_empty() {
            for a in &arms {
                let arm = &toks[open + 1..close][a.pat_start..a.pat_end];
                if let Some(w) = wildcard_kind(arm) {
                    let line = arm[0].line;
                    let allowed = allows.cover(Rule::R4, line);
                    findings.push(Finding {
                        rule: Rule::R4,
                        tier: Tier::Deny,
                        path: path.to_string(),
                        line,
                        message: format!(
                            "{w} arm in a match over {} — enumerate every variant so new \
                             variants fail to compile instead of silently falling through",
                            relevant.join("/")
                        ),
                        allowed,
                    });
                }
            }
        }
        i = open + 1;
    }
}

struct Arm {
    pat_start: usize,
    pat_end: usize, // exclusive, guard excluded
}

/// End of the scrutinee: index of the `{` opening the arm list.
/// Depth-tracked so closures/array indexing inside the scrutinee
/// don't end it early; `None` if the line is actually `match` used as
/// an identifier (not valid Rust, but be defensive).
fn scrutinee_end(toks: &[Tok], from: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().skip(from) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" if depth == 0 => return Some(i),
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                _ => {}
            }
            if depth < 0 {
                return None;
            }
        }
    }
    None
}

/// Split the token range of a match body into arms. Indices are
/// relative to the body slice. Pattern = tokens before the depth-0
/// `=>`, with a trailing depth-0 `if <guard>` stripped.
fn parse_arms(body: &[Tok]) -> Vec<Arm> {
    let mut arms = Vec::new();
    let mut i = 0usize;
    while i < body.len() {
        let pat_start = i;
        // Find `=>` at depth 0.
        let mut depth = 0i32;
        let mut arrow = None;
        let mut guard_at = None;
        let mut j = i;
        while j < body.len() {
            let t = &body[j];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "=>" if depth == 0 => {
                        arrow = Some(j);
                        break;
                    }
                    _ => {}
                }
            } else if depth == 0 && t.is_ident("if") && guard_at.is_none() {
                guard_at = Some(j);
            }
            j += 1;
        }
        let Some(arrow) = arrow else { break };
        let pat_end = guard_at.unwrap_or(arrow);
        arms.push(Arm { pat_start, pat_end });
        // Skip the arm body: block form `{ .. }` else scan to `,` at depth 0.
        let mut k = arrow + 1;
        if k < body.len() && body[k].is_punct("{") {
            // matching_close works on absolute indices of the slice given.
            let end = matching_close(body, k);
            k = end + 1;
            if k < body.len() && body[k].is_punct(",") {
                k += 1;
            }
        } else {
            let mut d = 0i32;
            while k < body.len() {
                let t = &body[k];
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "(" | "[" | "{" => d += 1,
                        ")" | "]" | "}" => d -= 1,
                        "," if d == 0 => {
                            k += 1;
                            break;
                        }
                        _ => {}
                    }
                }
                k += 1;
            }
        }
        i = k;
    }
    arms
}

fn pattern_mentions_enum(body: &[Tok], arm: &Arm, e: &str) -> bool {
    let pat = &body[arm.pat_start..arm.pat_end];
    pat.windows(2)
        .any(|w| w[0].is_ident(e) && w[1].is_punct("::"))
}

/// `Some(desc)` when the pattern is a catch-all.
fn wildcard_kind(pat: &[Tok]) -> Option<&'static str> {
    // `_` lexes as an identifier token.
    if pat.len() == 1 && pat[0].is_ident("_") {
        return Some("`_` wildcard");
    }
    if pat.len() == 1
        && pat[0].kind == TokKind::Ident
        && pat[0].text.chars().next().is_some_and(|c| c.is_lowercase())
        && !["true", "false"].contains(&pat[0].text.as_str())
    {
        return Some("catch-all binding");
    }
    None
}
