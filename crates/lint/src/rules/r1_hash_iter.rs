//! R1 — no iteration over `HashMap`/`HashSet` in simulation paths.
//!
//! `std`'s hash containers iterate in insertion-order-unstable (and,
//! with the default `RandomState`, per-process-random) order. Any
//! simulation-path loop over one is a latent nondeterminism bug: the
//! moment the loop body issues ops, touches an RNG, or breaks early,
//! fixed-seed runs stop being byte-identical.
//!
//! Detection (lexical, per file):
//! 1. Collect *hash-typed names*: identifiers annotated
//!    `name: HashMap<..>` / `name: HashSet<..>` (struct fields, fn
//!    params, let bindings) and `let name = HashMap::new()/
//!    with_capacity(..)/from(..)/default()` bindings.
//! 2. Flag iteration over those names: `for .. in name` /
//!    `for .. in &name` / `for .. in &mut name` (incl. `a.b.name`),
//!    and receiver calls `name.iter() / iter_mut() / keys() / values()
//!    / values_mut() / into_keys() / into_values() / drain(..) /
//!    retain(..) / into_iter()`.
//!
//! Name resolution is file-scoped, so a same-named non-hash variable
//! elsewhere in the file can false-positive; rename it or carry a
//! `lint:allow(R1)` with the justification. The fix for true
//! positives is `BTreeMap`/`BTreeSet` or collect-then-sort.

use crate::allow::AllowSet;
use crate::lexer::{Tok, TokKind};
use crate::report::{Finding, Rule, Tier};
use std::collections::BTreeSet;

const HASH_TYPES: [&str; 2] = ["HashMap", "HashSet"];
const ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "drain",
    "retain",
    "into_iter",
];

pub fn run(path: &str, toks: &[Tok], allows: &mut AllowSet, findings: &mut Vec<Finding>) {
    let names = hash_typed_names(toks);
    if names.is_empty() {
        return;
    }

    let mut flag = |line: u32, name: &str, how: &str, allows: &mut AllowSet| {
        let allowed = allows.cover(Rule::R1, line);
        findings.push(Finding {
            rule: Rule::R1,
            tier: Tier::Deny,
            path: path.to_string(),
            line,
            message: format!(
                "iteration over hash container `{name}` ({how}) is insertion-order-unstable; \
                 use BTreeMap/BTreeSet or collect-and-sort"
            ),
            allowed,
        });
    };

    for i in 0..toks.len() {
        // name . method ( — receiver form.
        if toks[i].kind == TokKind::Ident
            && names.contains(toks[i].text.as_str())
            && toks.get(i + 1).is_some_and(|t| t.is_punct("."))
            && toks
                .get(i + 2)
                .is_some_and(|t| t.kind == TokKind::Ident && ITER_METHODS.contains(&t.text.as_str()))
            && toks.get(i + 3).is_some_and(|t| t.is_punct("("))
        {
            let m = toks[i + 2].text.clone();
            flag(toks[i].line, &toks[i].text, &format!(".{m}()"), allows);
        }
        // for .. in [&[mut]] path-ending-in-name {
        if toks[i].is_ident("for") {
            if let Some(in_pos) = find_at_depth0(toks, i + 1, "in") {
                // The loop body starts at the first depth-0 `{` after `in`.
                if let Some(body) = find_open_brace(toks, in_pos + 1) {
                    let expr = &toks[in_pos + 1..body];
                    if let Some(last) = expr.last() {
                        if last.kind == TokKind::Ident && names.contains(last.text.as_str()) {
                            flag(last.line, &last.text, "for-loop", allows);
                        }
                    }
                }
            }
        }
    }
}

/// Pass 1: names with a hash-container type.
fn hash_typed_names(toks: &[Tok]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for i in 0..toks.len() {
        if !(toks[i].kind == TokKind::Ident && HASH_TYPES.contains(&toks[i].text.as_str())) {
            continue;
        }
        // `name : [std :: collections ::] HashMap` — walk back over the
        // optional path prefix and reference sigils to the `:`.
        let mut j = i;
        while j >= 2 && toks[j - 1].is_punct("::") && toks[j - 2].kind == TokKind::Ident {
            j -= 2;
        }
        while j >= 1 && (toks[j - 1].is_punct("&") || toks[j - 1].is_ident("mut")) {
            j -= 1;
        }
        if j >= 2 && toks[j - 1].is_punct(":") && toks[j - 2].kind == TokKind::Ident {
            names.insert(toks[j - 2].text.clone());
            continue;
        }
        // `let [mut] name [ : _ ] = [path ::] HashMap :: new/with_capacity/
        // from/default` — look forward for the constructor, back for `let`.
        let ctor = toks.get(i + 1).is_some_and(|t| t.is_punct("::"))
            && toks.get(i + 2).is_some_and(|t| {
                ["new", "with_capacity", "from", "default"].contains(&t.text.as_str())
            });
        if ctor {
            // Scan back to the statement head for `let (mut)? name`.
            let mut k = i;
            while k > 0 {
                let t = &toks[k - 1];
                if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
                    break;
                }
                if t.is_ident("let") {
                    let mut m = k; // token after `let`
                    if toks.get(m).is_some_and(|t| t.is_ident("mut")) {
                        m += 1;
                    }
                    if let Some(n) = toks.get(m) {
                        if n.kind == TokKind::Ident {
                            names.insert(n.text.clone());
                        }
                    }
                    break;
                }
                k -= 1;
            }
        }
    }
    names
}

/// First index at paren/bracket/brace depth 0 (relative to `from`)
/// whose token is the ident `what`.
fn find_at_depth0(toks: &[Tok], from: usize, what: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().skip(from) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                _ => {}
            }
        }
        if depth == 0 && t.is_ident(what) {
            return Some(i);
        }
        if depth < 0 {
            return None;
        }
    }
    None
}

fn find_open_brace(toks: &[Tok], from: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().skip(from) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" if depth == 0 => return Some(i),
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                _ => {}
            }
        }
        if depth < 0 {
            return None;
        }
    }
    None
}
