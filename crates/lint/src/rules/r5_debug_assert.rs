//! R5 — `debug_assert!` density audit (report-only).
//!
//! The invariant suites (`check_invariants`, the GC-index oracle, the
//! crash property tests) catch corruption *after* the fact; a
//! `debug_assert!` at the mutation site catches it at the moment of
//! introduction with the failing state still on the stack. This pass
//! audits every public `&mut self` method in the inherent impl blocks
//! of the three big mutable façades — `FlashArray`, `Controller`,
//! `Os` — and reports the ones containing no assertion of any kind
//! (`debug_assert*` or hard `assert*`).
//!
//! Report-only: a zero-assert mutator is a smell, not a violation —
//! some mutators are trivially total (counter bumps, setters). It
//! never gates `--deny-all`.

use crate::allow::AllowSet;
use crate::lexer::{Tok, TokKind};
use crate::report::{Finding, Rule, Tier};
use crate::rules::matching_close;

const AUDITED_TYPES: [&str; 3] = ["FlashArray", "Controller", "Os"];
const ASSERT_MACROS: [&str; 6] = [
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
    "assert",
    "assert_eq",
    "assert_ne",
];

pub fn run(path: &str, toks: &[Tok], allows: &mut AllowSet, findings: &mut Vec<Finding>) {
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("impl") {
            i += 1;
            continue;
        }
        // Inherent impl only: `impl [<..>] Type {` with no `for`.
        let Some(open) = impl_body(toks, i) else {
            i += 1;
            continue;
        };
        let header = &toks[i..open];
        if header.iter().any(|t| t.is_ident("for"))
            || !header
                .iter()
                .any(|t| t.kind == TokKind::Ident && AUDITED_TYPES.contains(&t.text.as_str()))
        {
            i = open + 1;
            continue;
        }
        let ty = header
            .iter()
            .find(|t| AUDITED_TYPES.contains(&t.text.as_str()))
            .unwrap()
            .text
            .clone();
        let close = matching_close(toks, open);
        audit_impl(path, toks, open, close, &ty, allows, findings);
        i = open + 1;
    }
}

/// Index of the `{` opening the impl body.
fn impl_body(toks: &[Tok], impl_at: usize) -> Option<usize> {
    let mut depth = 0i32; // tracks `<..>` generics via (/[/{ won't appear before body
    for (j, t) in toks.iter().enumerate().skip(impl_at + 1) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "<" => depth += 1,
                ">" => depth -= 1,
                "{" if depth <= 0 => return Some(j),
                ";" => return None,
                _ => {}
            }
        }
    }
    None
}

fn audit_impl(
    path: &str,
    toks: &[Tok],
    open: usize,
    close: usize,
    ty: &str,
    allows: &mut AllowSet,
    findings: &mut Vec<Finding>,
) {
    let mut j = open + 1;
    while j < close {
        // `pub fn name` at impl-body depth.
        if toks[j].is_ident("pub") {
            // Skip `pub(crate)` etc.
            let mut f = j + 1;
            if toks.get(f).is_some_and(|t| t.is_punct("(")) {
                f = matching_close(toks, f) + 1;
            }
            if toks.get(f).is_some_and(|t| t.is_ident("fn")) {
                let name = toks
                    .get(f + 1)
                    .map(|t| t.text.clone())
                    .unwrap_or_default();
                // Signature runs to the fn body `{`.
                if let Some(body_open) = fn_body(toks, f + 1, close) {
                    let body_close = matching_close(toks, body_open);
                    let sig = &toks[f + 1..body_open];
                    let mutating = sig
                        .windows(3)
                        .any(|w| w[0].is_punct("&") && w[1].is_ident("mut") && w[2].is_ident("self"));
                    if mutating {
                        let asserts = toks[body_open..body_close]
                            .windows(2)
                            .filter(|w| {
                                w[0].kind == TokKind::Ident
                                    && ASSERT_MACROS.contains(&w[0].text.as_str())
                                    && w[1].is_punct("!")
                            })
                            .count();
                        if asserts == 0 {
                            let line = toks[f + 1].line;
                            let allowed = allows.cover(Rule::R5, line);
                            findings.push(Finding {
                                rule: Rule::R5,
                                tier: Tier::Report,
                                path: path.to_string(),
                                line,
                                message: format!(
                                    "public mutating API `{ty}::{name}` contains no \
                                     debug_assert!/assert! — consider asserting its invariants \
                                     at the mutation site"
                                ),
                                allowed,
                            });
                        }
                    }
                    j = body_close + 1;
                    continue;
                }
            }
        }
        j += 1;
    }
}

/// The `{` that opens the body of the fn whose name is at `name_at`.
fn fn_body(toks: &[Tok], name_at: usize, limit: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().take(limit).skip(name_at) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => return Some(j),
                ";" if depth == 0 => return None,
                _ => {}
            }
        }
    }
    None
}
