//! `cargo run -p lint` — the determinism lint CLI.
//!
//! Flags:
//! - `--deny-all`      exit 1 if any deny-tier finding lacks a `lint:allow`
//! - `--json PATH`     write the machine-readable findings report
//! - `--root PATH`     workspace root (default: this crate's `../..`)
//! - positional paths  lint specific `.rs` files instead of the workspace walk

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny_all = false;
    let mut json: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    let mut files: Vec<PathBuf> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--deny-all" => deny_all = true,
            "--json" => match args.next() {
                Some(p) => json = Some(PathBuf::from(p)),
                None => return usage("--json needs a path"),
            },
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root needs a path"),
            },
            "--help" | "-h" => return usage(""),
            f if !f.starts_with('-') => files.push(PathBuf::from(f)),
            other => return usage(&format!("unknown flag `{other}`")),
        }
    }

    // Default root: the workspace this binary was built from, so the
    // tool works from any cwd inside (or outside) the tree.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap_or_else(|_| PathBuf::from("."))
    });

    let rep = if files.is_empty() {
        lint::lint_workspace(&root)
    } else {
        lint::lint_files(&files, &root)
    };
    let rep = match rep {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint: io error: {e}");
            return ExitCode::from(2);
        }
    };

    print!("{}", rep.render());
    if let Some(p) = json {
        if let Err(e) = std::fs::write(&p, rep.to_json()) {
            eprintln!("lint: cannot write {}: {e}", p.display());
            return ExitCode::from(2);
        }
        println!("wrote {}", p.display());
    }
    if deny_all && rep.violations() > 0 {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("lint: {err}");
    }
    eprintln!(
        "usage: cargo run -p lint -- [--deny-all] [--json PATH] [--root PATH] [FILES...]"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
