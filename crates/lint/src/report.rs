//! Finding model, human-readable rendering, and the machine-readable
//! JSON report (hand-rolled serialization — the workspace has no serde;
//! same approach as the bench harness's `--json`).

use std::fmt::Write as _;

/// Rule identifiers. `R1..R5` are the determinism rule set from the
/// lint charter; the two `Allow*` pseudo-rules police the escape hatch
/// itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Iteration over `HashMap`/`HashSet` in a simulation path.
    R1,
    /// Ambient wall-clock or randomness (`Instant::now`, `SystemTime`,
    /// `thread_rng`, `RandomState`, `DefaultHasher`).
    R2,
    /// Floating-point arithmetic flowing into nanosecond/timestamp
    /// integers (the PR-5 token-bucket bug class).
    R3,
    /// `_` wildcard (or lowercase catch-all binding) arm in a `match`
    /// over a policy enum (`OpClass`/`SchedPolicy`/`QosPolicy`/
    /// `MappingKind`/`OsSchedPolicy`).
    R4,
    /// `debug_assert!` density audit on public mutating APIs of
    /// `FlashArray`/`Controller`/`Os` (report-only).
    R5,
    /// Malformed `lint:allow` escape.
    AllowSyntax,
    /// `lint:allow` escape that suppressed nothing.
    AllowUnused,
}

impl Rule {
    pub fn name(self) -> &'static str {
        match self {
            Rule::R1 => "R1",
            Rule::R2 => "R2",
            Rule::R3 => "R3",
            Rule::R4 => "R4",
            Rule::R5 => "R5",
            Rule::AllowSyntax => "allow-syntax",
            Rule::AllowUnused => "allow-unused",
        }
    }

    pub fn parse(s: &str) -> Option<Rule> {
        match s {
            "R1" => Some(Rule::R1),
            "R2" => Some(Rule::R2),
            "R3" => Some(Rule::R3),
            "R4" => Some(Rule::R4),
            "R5" => Some(Rule::R5),
            _ => None,
        }
    }

    pub const ALL: [Rule; 7] = [
        Rule::R1,
        Rule::R2,
        Rule::R3,
        Rule::R4,
        Rule::R5,
        Rule::AllowSyntax,
        Rule::AllowUnused,
    ];
}

/// Whether a finding gates `--deny-all` or is informational.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    Deny,
    Report,
}

#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: Rule,
    pub tier: Tier,
    pub path: String,
    pub line: u32,
    pub message: String,
    /// `Some(reason)` when a `lint:allow` escape covers this site; the
    /// finding is then informational regardless of tier.
    pub allowed: Option<String>,
}

impl Finding {
    /// A violation is what `--deny-all` exits non-zero on.
    pub fn is_violation(&self) -> bool {
        self.tier == Tier::Deny && self.allowed.is_none()
    }
}

/// Whole-run output.
#[derive(Debug, Default)]
pub struct Report {
    pub files_scanned: usize,
    pub findings: Vec<Finding>,
}

impl Report {
    pub fn violations(&self) -> usize {
        self.findings.iter().filter(|f| f.is_violation()).count()
    }

    pub fn sort(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    }

    /// Human-readable listing, grouped like compiler diagnostics.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for f in &self.findings {
            let status = match (&f.allowed, f.tier) {
                (Some(reason), _) => format!("allowed: {reason}"),
                (None, Tier::Report) => "report-only".to_string(),
                (None, Tier::Deny) => "deny".to_string(),
            };
            let _ = writeln!(
                s,
                "{}:{}: [{}] {} ({})",
                f.path,
                f.line,
                f.rule.name(),
                f.message,
                status
            );
        }
        let mut per_rule = String::new();
        for r in Rule::ALL {
            let n = self.findings.iter().filter(|f| f.rule == r).count();
            if n > 0 {
                let _ = write!(per_rule, " {}={}", r.name(), n);
            }
        }
        let _ = writeln!(
            s,
            "lint: {} file(s) scanned, {} finding(s){}, {} violation(s)",
            self.files_scanned,
            self.findings.len(),
            per_rule,
            self.violations()
        );
        s
    }

    /// Machine-readable report for the CI artifact.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(s, "  \"violations\": {},", self.violations());
        s.push_str("  \"per_rule\": {");
        let mut first = true;
        for r in Rule::ALL {
            let n = self.findings.iter().filter(|f| f.rule == r).count();
            if !first {
                s.push_str(", ");
            }
            first = false;
            let _ = write!(s, "\"{}\": {}", r.name(), n);
        }
        s.push_str("},\n");
        s.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"rule\": \"{}\", \"tier\": \"{}\", \"path\": {}, \"line\": {}, \"message\": {}, \"allowed\": {}}}",
                f.rule.name(),
                match f.tier {
                    Tier::Deny => "deny",
                    Tier::Report => "report",
                },
                json_str(&f.path),
                f.line,
                json_str(&f.message),
                match &f.allowed {
                    Some(r) => json_str(r),
                    None => "null".to_string(),
                }
            );
            s.push_str(if i + 1 < self.findings.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

fn json_str(v: &str) -> String {
    let mut s = String::with_capacity(v.len() + 2);
    s.push('"');
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\t' => s.push_str("\\t"),
            '\r' => s.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(s, "\\u{:04x}", c as u32);
            }
            c => s.push(c),
        }
    }
    s.push('"');
    s
}
