//! # Determinism lint engine
//!
//! Workspace static analysis that enforces the simulator's determinism
//! invariants at CI time. Every result this reproduction produces
//! rests on one property: **fixed-seed runs are byte-identical** —
//! across repeats, queue backends, and observability on/off (this is
//! how the PR-3 dispatcher, PR-6 calendar-queue, and PR-9 obs
//! refactors were proven safe). Runtime fingerprint tests defend that
//! property after the fact; this crate rejects the bug classes at
//! analysis time.
//!
//! ## Rule catalog
//!
//! | Rule | Tier   | What it rejects |
//! |------|--------|-----------------|
//! | R1   | deny   | iteration over `HashMap`/`HashSet` in sim crates (insertion-order-unstable) |
//! | R2   | deny   | ambient wall-clock / randomness (`Instant::now`, `SystemTime`, `thread_rng`, env-seeded hashers) |
//! | R3   | deny   | float arithmetic flowing into integer time values (the PR-5 token-bucket bug class) |
//! | R4   | deny   | `_` wildcard arms in matches over the policy enums (`OpClass`/`SchedPolicy`/`OsSchedPolicy`/`QosPolicy`/`MappingKind`) |
//! | R5   | report | public `&mut self` APIs of `FlashArray`/`Controller`/`Os` with zero asserts |
//!
//! Per-site escape: `// lint:allow(R1) <mandatory justification>` on
//! the finding's line or the line above. Malformed or unused escapes
//! are themselves findings (`allow-syntax` denies, `allow-unused`
//! reports).
//!
//! ## Scope
//!
//! The walker lints `src/` of the six simulation-path crates (`core`,
//! `flash`, `controller`, `os`, `workloads`, `experiments`). The
//! bench harness, the offline shims, and integration `tests/` are
//! host-side: wall-clock timing there is the product, not a bug.
//! (`clippy.toml`'s `disallowed-types`/`disallowed-methods` cover the
//! whole workspace as a second, compiler-driven net.)
//!
//! ## Implementation note
//!
//! The engine lexes Rust itself ([`lexer`]) instead of using `syn` —
//! the build container has no crates.io access (see
//! `crates/shims/`), and the rules need token streams with line
//! numbers, not full ASTs. The passes are documented lexical
//! heuristics pinned by the fixture suite in `tests/`; swap in `syn`
//! via `Cargo.toml` if registry access appears.
//!
//! ## Usage
//!
//! ```text
//! cargo run -p lint                         # report everything
//! cargo run -p lint -- --deny-all          # CI gate: exit 1 on any deny-tier violation
//! cargo run -p lint -- --json lint.json    # machine-readable findings report
//! cargo run -p lint -- path/to/file.rs     # lint specific files
//! ```

#![forbid(unsafe_code)]

pub mod allow;
pub mod lexer;
pub mod report;
pub mod rules;

use report::{Finding, Report};
use std::path::{Path, PathBuf};

/// Simulation-path crates whose `src/` trees the workspace walk lints.
pub const SIM_CRATES: [&str; 6] = [
    "crates/core",
    "crates/flash",
    "crates/controller",
    "crates/os",
    "crates/workloads",
    "crates/experiments",
];

/// Lint a single source text. `path` is used only for reporting.
pub fn lint_source(path: &str, src: &str) -> Vec<Finding> {
    let lexed = lexer::lex(src);
    let mut findings = Vec::new();
    let mut allows = allow::parse(path, &lexed.comments, &mut findings);
    rules::r1_hash_iter::run(path, &lexed.toks, &mut allows, &mut findings);
    rules::r2_ambient::run(path, &lexed.toks, &mut allows, &mut findings);
    rules::r3_float_time::run(path, &lexed.toks, &mut allows, &mut findings);
    rules::r4_wildcard::run(path, &lexed.toks, &mut allows, &mut findings);
    rules::r5_debug_assert::run(path, &lexed.toks, &mut allows, &mut findings);
    allows.unused(path, &mut findings);
    findings
}

/// Lint an explicit list of files.
pub fn lint_files(files: &[PathBuf], root: &Path) -> std::io::Result<Report> {
    let mut rep = Report::default();
    let mut files = files.to_vec();
    files.sort();
    for f in &files {
        let src = std::fs::read_to_string(f)?;
        let shown = f
            .strip_prefix(root)
            .unwrap_or(f)
            .to_string_lossy()
            .replace('\\', "/");
        rep.findings.extend(lint_source(&shown, &src));
        rep.files_scanned += 1;
    }
    rep.sort();
    Ok(rep)
}

/// Lint the whole workspace rooted at `root` (the directory holding
/// the workspace `Cargo.toml`): every `.rs` under `src/` of each
/// [`SIM_CRATES`] entry.
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    let mut files = Vec::new();
    for krate in SIM_CRATES {
        collect_rs(&root.join(krate).join("src"), &mut files)?;
    }
    lint_files(&files, root)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let p = entry?.path();
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}
