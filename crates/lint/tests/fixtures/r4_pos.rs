//! R4 positive fixture: catch-all arms in matches over policy enums,
//! in both shapes the rule detects.

/// Bare `_` wildcard.
pub fn weight(class: OpClass) -> u64 {
    match class {
        OpClass::AppRead => 3,
        OpClass::AppWrite => 2,
        _ => 1,
    }
}

/// Lowercase catch-all binding — same hazard, different spelling.
pub fn label(kind: MappingKind) -> &'static str {
    match kind {
        MappingKind::PageMap => "page",
        other => "translated",
    }
}

/// A guard does not rescue the wildcard: `_ if ...` still swallows
/// future variants when the guard is false.
pub fn urgent(class: OpClass) -> bool {
    match class {
        OpClass::AppRead => true,
        _ if cfg!(debug_assertions) => true,
        _ => false,
    }
}
