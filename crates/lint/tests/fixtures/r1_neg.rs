//! R1 negative fixture: the fixed forms — BTree iteration is ordered,
//! and point lookups into a hash container never observe its order.
use std::collections::{BTreeMap, HashMap};

pub fn total(counts: &BTreeMap<u64, u64>) -> u64 {
    counts.values().sum()
}

pub fn lookup(cache: &HashMap<u64, u64>, lpn: u64) -> Option<u64> {
    cache.get(&lpn).copied()
}

pub fn store(cache: &mut HashMap<u64, u64>, lpn: u64, ppn: u64) {
    cache.insert(lpn, ppn);
    cache.remove(&(lpn + 1));
}

pub fn over_vec(items: &[u64]) -> u64 {
    let mut sum = 0;
    for v in items.iter() {
        sum += v;
    }
    sum
}
