//! R5 negative fixture: asserting mutators, read-only methods,
//! non-audited types, and trait impls are all out of scope.

impl Controller {
    pub fn advance(&mut self, now: u64) {
        debug_assert!(now >= self.now, "time must not run backwards");
        self.now = now;
    }

    pub fn now(&self) -> u64 {
        self.now
    }

    fn bump(&mut self) {
        self.ticks += 1;
    }
}

impl Widget {
    pub fn poke(&mut self) {
        self.n += 1;
    }
}

impl Advance for Controller {
    fn step(&mut self) {
        self.now += 1;
    }
}
