//! R2 positive fixture: every ambient-environment read the rule bans.
use std::time::{Instant, SystemTime};

pub fn stamp() -> u64 {
    let started = Instant::now();
    started.elapsed().as_nanos() as u64
}

pub fn epoch() -> u64 {
    SystemTime::now().elapsed().unwrap().as_secs()
}

pub fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

pub fn hashed(x: u64) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    let mut h = DefaultHasher::new();
    x.hash(&mut h);
    h.finish()
}
