//! R1 positive fixture: every iteration form over a hash container
//! the rule must catch. Lines are asserted by the test — keep stable.
use std::collections::{HashMap, HashSet};

pub struct Alloc {
    active: HashMap<u64, u32>,
}

impl Alloc {
    pub fn any_open(&self) -> bool {
        self.active.values().any(|v| *v > 0)
    }
}

pub fn total(counts: &HashMap<u64, u64>) -> u64 {
    let mut sum = 0;
    for (_lpn, n) in counts.iter() {
        sum += n;
    }
    sum
}

pub fn drain_all(seen: &mut HashSet<u64>) -> usize {
    seen.drain().count()
}

pub fn constructed() -> u64 {
    let map = HashMap::new();
    let mut n = 0;
    for _ in &map {
        n += 1;
    }
    n
}
