//! R3 negative fixture: the fixed forms. Integer fixed-point time
//! math never flags; ns -> float conversions for *reporting* never
//! flag (the rule requires a cast into an integer).

const SCALE: u64 = 1 << 20;

pub fn warp_ns(ns: u64, warp_fp: u64) -> u64 {
    let num = ns as u128 * SCALE as u128 + warp_fp as u128 / 2;
    (num / warp_fp as u128).min(u64::MAX as u128) as u64
}

pub fn report_secs(total_ns: u64) -> f64 {
    total_ns as f64 / 1e9
}

pub fn page_count(fill: f64, pages: u64) -> u64 {
    (fill * pages as f64) as u32 as u64
}
