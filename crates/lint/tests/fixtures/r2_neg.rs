//! R2 negative fixture: simulated time and seeded randomness. The
//! `Instant` *type* in a signature is fine — only the `::now` read is
//! ambient.
use std::time::Instant;

pub fn now_sim(clock: &SimClock) -> SimTime {
    clock.now()
}

pub fn jitter(rng: &mut SplitMix64) -> u64 {
    rng.next_u64()
}

pub fn hold(_deadline: Instant) {}
