//! R3 positive fixture: float arithmetic flowing into integer
//! nanoseconds — the PR-5 token-bucket bug, in both shapes the rule
//! detects.

/// Statement-level: float literal + `.ceil()` + `as u64` + an
/// `ns`-suffixed name, all in one statement.
pub fn bucket_wait(tokens: f64, rate: f64) -> u64 {
    let wait_ns = (tokens / rate * 1e9).ceil() as u64;
    wait_ns
}

/// Function-level: the fn name carries a time unit (`wake`, `ns`), the
/// float work and the integer cast sit in *different* statements.
pub fn wake_ns(d: f64, r: f64) -> u64 {
    let scaled = (d * 1e9 / r).ceil();
    scaled as u64
}
