//! R4 negative fixture: exhaustive matches over policy enums, and
//! wildcards in places the rule must *not* flag.

/// Exhaustive: a new variant fails to compile. Never flags.
pub fn weight(class: OpClass) -> u64 {
    match class {
        OpClass::AppRead => 3,
        OpClass::AppWrite => 2,
        OpClass::GcRead | OpClass::GcWrite => 1,
    }
}

/// `_` over a non-policy scrutinee: fine, not our enum.
pub fn is_zero(n: u64) -> bool {
    match n {
        0 => true,
        _ => false,
    }
}

/// `_` nested inside a larger pattern does not swallow whole
/// variants; only a bare top-level catch-all arm does.
pub fn hot_weight(class: OpClass, hot: bool) -> u64 {
    match (class, hot) {
        (OpClass::AppRead, true) => 6,
        (OpClass::AppRead, _) => 3,
        (OpClass::AppWrite, _) => 2,
        (OpClass::GcRead, _) | (OpClass::GcWrite, _) => 1,
    }
}
