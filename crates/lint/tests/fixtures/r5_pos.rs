//! R5 positive fixture: a public mutating API on an audited facade
//! with no assertion anywhere in its body.

impl Controller {
    pub fn advance(&mut self, now: u64) {
        self.now = now;
    }
}
