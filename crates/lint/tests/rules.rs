//! Fixture suite pinning the lint engine's behavior.
//!
//! Each rule has a positive fixture (the bug class, in every shape the
//! rule detects — the engine must flag it) and a negative fixture (the
//! fixed form plus near-misses — the engine must stay silent). The
//! fixtures are the rules' executable specification: the lexical
//! heuristics in `src/rules/` may only change in ways that keep this
//! suite green.

use lint::lint_source;
use lint::report::{Finding, Rule, Tier};

fn findings(src: &str) -> Vec<Finding> {
    lint_source("fixture.rs", src)
}

fn violations(src: &str, rule: Rule) -> Vec<u32> {
    findings(src)
        .iter()
        .filter(|f| f.rule == rule && f.is_violation())
        .map(|f| f.line)
        .collect()
}

// ---------------------------------------------------------------- R1

#[test]
fn r1_flags_every_hash_iteration_form() {
    let lines = violations(include_str!("fixtures/r1_pos.rs"), Rule::R1);
    // field receiver `.values()`, param receiver `.iter()`,
    // `.drain()`, and `for _ in &map` over a constructed binding.
    assert_eq!(lines, vec![11, 17, 24, 30]);
}

#[test]
fn r1_silent_on_btree_iteration_and_hash_point_lookups() {
    assert_eq!(violations(include_str!("fixtures/r1_neg.rs"), Rule::R1), vec![]);
}

// ---------------------------------------------------------------- R2

#[test]
fn r2_flags_wall_clock_and_ambient_randomness() {
    let lines = violations(include_str!("fixtures/r2_pos.rs"), Rule::R2);
    for expected in [5u32, 10, 14, 20] {
        assert!(
            lines.contains(&expected),
            "expected an R2 violation on line {expected}, got {lines:?}"
        );
    }
}

#[test]
fn r2_silent_on_sim_clock_and_seeded_rng() {
    // The `Instant` *type* in a signature must not flag — only `::now`.
    assert_eq!(violations(include_str!("fixtures/r2_neg.rs"), Rule::R2), vec![]);
}

// ---------------------------------------------------------------- R3

#[test]
fn r3_flags_float_into_ns_in_both_shapes() {
    let lines = violations(include_str!("fixtures/r3_pos.rs"), Rule::R3);
    // Statement-level (bucket_wait) and cross-statement fn-level
    // (wake_ns) — the PR-5 bug in both shapes.
    assert_eq!(lines.len(), 2, "got {lines:?}");
}

#[test]
fn r3_silent_on_integer_fixed_point_and_reporting_casts() {
    assert_eq!(violations(include_str!("fixtures/r3_neg.rs"), Rule::R3), vec![]);
}

// ---------------------------------------------------------------- R4

#[test]
fn r4_flags_wildcard_and_catch_all_arms() {
    let lines = violations(include_str!("fixtures/r4_pos.rs"), Rule::R4);
    // `_`, a lowercase binding, and both guarded+bare `_` in `urgent`.
    assert_eq!(lines, vec![9, 17, 26, 27]);
}

#[test]
fn r4_silent_on_exhaustive_and_non_policy_matches() {
    assert_eq!(violations(include_str!("fixtures/r4_neg.rs"), Rule::R4), vec![]);
}

// ---------------------------------------------------------------- R5

#[test]
fn r5_reports_assertless_public_mutators() {
    let f = findings(include_str!("fixtures/r5_pos.rs"));
    let r5: Vec<&Finding> = f.iter().filter(|f| f.rule == Rule::R5).collect();
    assert_eq!(r5.len(), 1);
    assert_eq!(r5[0].tier, Tier::Report);
    assert!(
        !r5[0].is_violation(),
        "R5 is report-only; it must never gate --deny-all"
    );
    assert!(r5[0].message.contains("Controller::advance"));
}

#[test]
fn r5_silent_on_asserting_private_foreign_and_trait_impls() {
    let f = findings(include_str!("fixtures/r5_neg.rs"));
    assert!(f.iter().all(|f| f.rule != Rule::R5), "got {f:?}");
}

// ------------------------------------------------------- allow escapes

#[test]
fn allow_above_suppresses_and_carries_reason() {
    let src = "\
// lint:allow(R2) host throughput is the experiment's result column
let started = Instant::now();
";
    let f = findings(src);
    let r2: Vec<&Finding> = f.iter().filter(|f| f.rule == Rule::R2).collect();
    assert_eq!(r2.len(), 1, "finding still reported, just not a violation");
    assert!(!r2[0].is_violation());
    assert_eq!(
        r2[0].allowed.as_deref(),
        Some("host throughput is the experiment's result column")
    );
}

#[test]
fn allow_same_line_suppresses() {
    let src = "let t = Instant::now(); // lint:allow(R2) harness-side timing\n";
    let f = findings(src);
    assert!(f.iter().any(|f| f.rule == Rule::R2 && !f.is_violation()));
    assert!(f.iter().all(|f| !f.is_violation()));
}

#[test]
fn allow_two_lines_above_does_not_reach() {
    let src = "\
// lint:allow(R2) too far away to cover the site

let started = Instant::now();
";
    let f = findings(src);
    assert!(
        f.iter().any(|f| f.rule == Rule::R2 && f.is_violation()),
        "an allow two lines up must not suppress"
    );
    assert!(
        f.iter().any(|f| f.rule == Rule::AllowUnused),
        "and the stale escape is reported unused"
    );
}

#[test]
fn allow_multi_rule_lists_cover_each_named_rule() {
    let src = "\
// lint:allow(R1, R2) replay harness mirrors host state outside the sim
for k in cache.keys() { let t = Instant::now(); }
let cache: HashMap<u64, u64> = HashMap::new();
";
    let f = findings(src);
    assert!(f.iter().any(|f| f.rule == Rule::R1));
    assert!(f.iter().any(|f| f.rule == Rule::R2));
    assert!(
        f.iter()
            .filter(|f| f.line == 2)
            .all(|f| !f.is_violation()),
        "both rules on the covered line are suppressed: {f:?}"
    );
}

#[test]
fn allow_without_reason_is_a_deny_finding() {
    let src = "// lint:allow(R1)\nfor k in cache.keys() {}\nlet cache: HashMap<u64, u64> = HashMap::new();\n";
    let f = findings(src);
    assert!(
        f.iter()
            .any(|f| f.rule == Rule::AllowSyntax && f.is_violation()),
        "a reasonless escape must itself be a violation: {f:?}"
    );
    // And it must NOT suppress the R1 underneath.
    assert!(f.iter().any(|f| f.rule == Rule::R1 && f.is_violation()));
}

#[test]
fn allow_unknown_rule_is_a_deny_finding() {
    let src = "// lint:allow(R9) not a rule\n";
    let f = findings(src);
    assert!(f
        .iter()
        .any(|f| f.rule == Rule::AllowSyntax && f.is_violation()));
}

#[test]
fn unused_allow_is_reported() {
    let src = "// lint:allow(R3) nothing here needs this\nlet x = 1 + 2;\n";
    let f = findings(src);
    let unused: Vec<&Finding> = f.iter().filter(|f| f.rule == Rule::AllowUnused).collect();
    assert_eq!(unused.len(), 1);
    assert_eq!(unused[0].tier, Tier::Report);
}

// ------------------------------------------------------------- report

#[test]
fn json_report_is_well_formed_and_counts_violations() {
    let mut rep = lint::report::Report {
        files_scanned: 1,
        findings: findings(include_str!("fixtures/r4_pos.rs")),
    };
    rep.sort();
    let json = rep.to_json();
    assert!(json.contains("\"violations\": 4"));
    assert!(json.contains("\"rule\": \"R4\""));
    assert!(json.contains("\"tier\": \"deny\""));
    // Messages contain backquotes and slashes; the escaper must keep
    // the output loadable by any JSON parser (no raw control chars).
    assert!(!json.chars().any(|c| (c as u32) < 0x20 && c != '\n'));
}

// --------------------------------------------- workspace regression gate

/// The self-check the CI job runs: the six simulation crates must lint
/// clean. Any new hash iteration, wall-clock read, float→ns flow, or
/// policy-enum wildcard anywhere in `src/` turns this test red —
/// before the nondeterminism it would cause can reach a fingerprint
/// test.
#[test]
fn workspace_is_violation_free() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let rep = lint::lint_workspace(&root).expect("workspace sources readable");
    assert!(rep.files_scanned > 30, "walker found the sim crates");
    let bad: Vec<String> = rep
        .findings
        .iter()
        .filter(|f| f.is_violation())
        .map(|f| format!("{}:{} [{}] {}", f.path, f.line, f.rule.name(), f.message))
        .collect();
    assert!(bad.is_empty(), "determinism violations:\n{}", bad.join("\n"));
}
