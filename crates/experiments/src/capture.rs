//! Observability artifact capture: one instrumented contention run whose
//! span and timeline output feeds the bench harness `--trace` /
//! `--timeline` flags and the CI artifact check.
//!
//! The workload is deliberately the suite's "interesting" shape — a
//! latency-sensitive Zipf reader sharing an aged, preconditioned device
//! with a flooding sequential writer — so the exported Perfetto trace
//! shows application IO interleaved with GC, erases and ECC retries
//! rather than an idle device.

use eagletree_workloads::{precondition::sequential_fill, Pumped, Region, SeqWriteGen, TenantProfile, ZipfGen, ZipfKind};

use crate::experiment::Scale;
use crate::setup::Setup;

/// Everything one instrumented run exports.
#[derive(Debug, Clone)]
pub struct ObsArtifacts {
    /// Chrome-trace / Perfetto JSON (one track per channel/LUN lane plus
    /// one per tenant) — load in `ui.perfetto.dev` or `chrome://tracing`.
    pub perfetto: String,
    /// Time-sliced telemetry as CSV (`t_us,iops,wa,...`).
    pub timeline_csv: String,
    /// The same telemetry as JSON.
    pub timeline_json: String,
    /// Closed spans retained in the ring.
    pub spans: usize,
    /// Spans evicted from the ring (oldest-first) during the run.
    pub dropped: u64,
}

/// Run the capture workload at `scale` with spans + timeline enabled and
/// export the artifacts.
pub fn obs_capture(scale: Scale) -> ObsArtifacts {
    let mut setup = Setup::small();
    setup.ctrl.obs.span_capacity = 1 << 18;
    setup.ctrl.obs.timeline_interval_us = 500;
    setup.ctrl.wl.static_enabled = false;
    setup.os.queue_depth = 32;
    let logical = setup.logical_pages();
    let mut os = setup.build();
    os.add_thread(sequential_fill(32));
    os.run();
    let (_, _) = TenantProfile::new("reader", 2048)
        .weight(8)
        .tier(0)
        .thread(
            Pumped::new(
                ZipfGen::new(Region::whole(), scale.ios(logical / 2), 0.99, ZipfKind::Reads),
                4,
                0xCA97,
            )
            .named("zipf-reader"),
        )
        .install(&mut os);
    let (_, _) = TenantProfile::new("flooder", 4096)
        .weight(1)
        .tier(1)
        .thread(
            Pumped::new(SeqWriteGen::new(Region::whole(), scale.ios(logical * 2)), 128, 0x97CA)
                .named("seq-flooder"),
        )
        .install(&mut os);
    os.run();
    let lanes = os.controller().obs_lane_names();
    let tenants = os.tenant_names();
    let obs = os.obs().expect("capture runs with spans enabled");
    let tl = os.timeline().expect("capture runs with the timeline enabled");
    ObsArtifacts {
        perfetto: obs.to_perfetto(&lanes, &tenants),
        timeline_csv: tl.to_csv(),
        timeline_json: tl.to_json(),
        spans: obs.closed_count(),
        dropped: obs.dropped(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_exports_nonempty_artifacts() {
        let a = obs_capture(Scale::Smoke);
        assert!(a.spans > 0);
        // Perfetto JSON: an object with a traceEvents array holding
        // complete ("ph":"X") events.
        assert!(a.perfetto.starts_with('{'));
        assert!(a.perfetto.contains("\"traceEvents\""));
        assert!(a.perfetto.contains("\"ph\":\"X\""));
        // Timeline: a CSV header plus at least one sampled interval, and
        // the JSON mirror carries the same column names.
        assert!(a.timeline_csv.starts_with("t_us,iops,wa,"));
        assert!(a.timeline_csv.lines().count() > 1);
        assert!(a.timeline_json.contains("\"columns\""));
        assert!(a.timeline_json.contains("\"iops\""));
    }
}
