//! # eagletree-experiments
//!
//! The experimental suite (§2.3): "an experiment template takes (1) an SSD
//! parameter or policy, (2) a strategy for how to vary it in an experiment,
//! and (3) a workload definition. It runs an experiment and produces a
//! comprehensive amount of … statistical output."
//!
//! * [`setup`] — the [`setup::Setup`] bundle (geometry + timing +
//!   controller + OS config) and simulation construction.
//! * [`metrics`] — per-run measurement extraction ([`metrics::Measured`])
//!   and tabular output ([`metrics::Table`], aligned text and CSV).
//! * [`experiment`] — the generic sweep template.
//! * [`suite`] — the predefined experiments E1–E27 and the G1 "game"
//!   (see DESIGN.md for the per-experiment index).
//! * [`capture`] — the instrumented observability run behind the bench
//!   harness `--trace` / `--timeline` flags (Perfetto + timeline export).

#![forbid(unsafe_code)]

pub mod capture;
pub mod experiment;
pub mod metrics;
pub mod setup;
pub mod suite;

pub use capture::{obs_capture, ObsArtifacts};
pub use experiment::{Experiment, Scale};
pub use metrics::{
    downsample, measure, measure_since, merged_stage_breakdown, push_stage_columns, snapshot,
    sparkline, CounterSnapshot, Measured, Row, Table,
};
pub use setup::Setup;
