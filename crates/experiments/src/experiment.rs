//! The generic experiment template.
//!
//! Mirrors §2.3: an experiment = (parameter/policy, variation strategy,
//! workload). [`Experiment`] couples a named sweep with a closure that
//! builds, preconditions, runs and measures one point; [`Scale`] shrinks IO
//! counts so the same experiment runs as a quick smoke test, a demo, or the
//! full series.

use crate::metrics::Table;

/// How big to run an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minutes-of-CPU → milliseconds: tiny IO counts for CI and Criterion.
    Smoke,
    /// The interactive-demo size.
    Demo,
    /// The full series.
    Full,
}

impl Scale {
    /// Scale a baseline IO count.
    pub fn ios(self, full: u64) -> u64 {
        match self {
            Scale::Smoke => (full / 16).max(64),
            Scale::Demo => (full / 4).max(256),
            Scale::Full => full,
        }
    }

    /// Thin a sweep: Smoke keeps first/last, Demo every other, Full all.
    pub fn thin<T: Clone>(self, points: &[T]) -> Vec<T> {
        match self {
            Scale::Smoke => {
                if points.len() <= 2 {
                    points.to_vec()
                } else {
                    vec![points[0].clone(), points[points.len() - 1].clone()]
                }
            }
            Scale::Demo => points.iter().step_by(2).cloned().collect(),
            Scale::Full => points.to_vec(),
        }
    }
}

/// A runnable experiment.
pub struct Experiment {
    /// Identifier (DESIGN.md index: "E1" … "G1").
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// The paper hook this reproduces.
    pub hook: &'static str,
    run: fn(Scale) -> Table,
}

impl Experiment {
    pub fn new(
        id: &'static str,
        title: &'static str,
        hook: &'static str,
        run: fn(Scale) -> Table,
    ) -> Self {
        Experiment {
            id,
            title,
            hook,
            run,
        }
    }

    /// Execute at the given scale.
    pub fn run(&self, scale: Scale) -> Table {
        (self.run)(scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_ios_orders() {
        assert!(Scale::Smoke.ios(4096) < Scale::Demo.ios(4096));
        assert!(Scale::Demo.ios(4096) < Scale::Full.ios(4096));
        assert_eq!(Scale::Full.ios(4096), 4096);
        // Floors prevent degenerate runs.
        assert_eq!(Scale::Smoke.ios(10), 64);
    }

    #[test]
    fn scale_thin_keeps_ends() {
        let pts = vec![1, 2, 3, 4, 5];
        assert_eq!(Scale::Smoke.thin(&pts), vec![1, 5]);
        assert_eq!(Scale::Demo.thin(&pts), vec![1, 3, 5]);
        assert_eq!(Scale::Full.thin(&pts), pts);
        assert_eq!(Scale::Smoke.thin(&[7]), vec![7]);
    }

    #[test]
    fn experiment_runs_its_closure() {
        fn dummy(_s: Scale) -> Table {
            Table::new("EX", "dummy", "p")
        }
        let e = Experiment::new("EX", "dummy", "none", dummy);
        assert_eq!(e.run(Scale::Smoke).id, "EX");
    }
}
