//! Measurement extraction and tabular reporting.
//!
//! [`measure`] condenses one simulation run into a [`Measured`] record;
//! [`Table`] renders swept series as the aligned text / CSV "rows the paper
//! would plot".

use eagletree_controller::{
    wear_summary, ClassTable, MergeCounters, OpClass, ReliabilityStats, RequestKind,
};
use eagletree_core::{Histogram, Stage, StageBreakdown};
use eagletree_os::{Os, ThreadStats};

/// Condensed metrics of one simulation run, over a set of measured threads.
#[derive(Debug, Clone, Default)]
pub struct Measured {
    /// Completions per second across the measured threads' windows.
    pub iops: f64,
    pub reads: u64,
    pub writes: u64,
    pub read_mean_us: f64,
    pub read_p99_us: f64,
    /// Latency variability (stddev of read latency, µs).
    pub read_stddev_us: f64,
    pub write_mean_us: f64,
    pub write_p99_us: f64,
    pub write_stddev_us: f64,
    /// Tail percentiles over the *merged* latency histogram of all
    /// measured threads (unlike `read_p99_us`/`write_p99_us`, which keep
    /// their historical per-thread-max semantics).
    pub read_p50_us: f64,
    pub read_p95_us: f64,
    pub read_p999_us: f64,
    pub write_p50_us: f64,
    pub write_p95_us: f64,
    pub write_p999_us: f64,
    /// Internal (non-application) flash ops issued: GC + WL + mapping +
    /// merge traffic, the interference QoS experiments trace.
    pub internal_ops: u64,
    /// Mean OS queue wait (µs).
    pub queue_wait_us: f64,
    /// Flash programs (incl. copy-back & translation) per app write.
    pub write_amplification: f64,
    pub gc_erases: u64,
    pub wl_erases: u64,
    pub mapping_fetches: u64,
    pub mapping_writebacks: u64,
    /// Hybrid-FTL merge counters (all zero outside the hybrid mapping).
    pub merges: MergeCounters,
    /// Erase-count imbalance across blocks.
    pub wear_stddev: f64,
    pub wear_max: u32,
    /// Virtual makespan of the whole run (seconds).
    pub makespan_s: f64,
    /// Media-reliability counters — `Some` only when the run had a fault
    /// model installed, so fault-free outputs carry no reliability columns.
    pub reliability: Option<ReliabilityStats>,
    /// Stage-attributed latency: the merged read+write [`StageBreakdown`]
    /// over every tenant of the run — `Some` only when observability was
    /// enabled ([`eagletree_core::ObsConfig::span_capacity`] > 0), so
    /// obs-off outputs carry no stage columns.
    pub stages: Option<StageBreakdown>,
}

/// Merge the per-tenant, per-kind stage breakdowns of every tenant into
/// one [`StageBreakdown`]; `None` when observability was off (no tenant
/// recorded one).
pub fn merged_stage_breakdown(os: &Os) -> Option<StageBreakdown> {
    let mut merged: Option<StageBreakdown> = None;
    for t in 0..os.tenant_names().len() {
        let ts = os.tenant_stats(t);
        for kind in [RequestKind::Read, RequestKind::Write] {
            if let Some(b) = ts.stage_breakdown(kind) {
                merged.get_or_insert_with(StageBreakdown::new).merge(b);
            }
        }
    }
    merged
}

/// Append the stage-mean columns (`st_<stage>_us`) of a breakdown to a
/// row — what experiments with observability enabled surface through
/// the harness `--json` output.
pub fn push_stage_columns(mut row: Row, b: &StageBreakdown) -> Row {
    const COLS: [(&str, Stage); Stage::COUNT] = [
        ("st_queue_us", Stage::QueueWait),
        ("st_qos_us", Stage::QosHold),
        ("st_pend_us", Stage::SchedPending),
        ("st_media_us", Stage::Media),
        ("st_retry_us", Stage::Retry),
    ];
    for (name, stage) in COLS {
        row = row.push(name, b.mean_us(stage));
    }
    row
}

/// Controller counter snapshot, for measuring steady-state deltas after a
/// preconditioning phase (so fill traffic does not dilute WA and GC
/// metrics).
#[derive(Debug, Clone, Copy, Default)]
pub struct CounterSnapshot {
    pub programs: u64,
    pub copybacks: u64,
    pub app_writes: u64,
    pub gc_erases: u64,
    pub wl_erases: u64,
    pub mapping_fetches: u64,
    pub mapping_writebacks: u64,
    pub merges: MergeCounters,
    /// Flash ops issued per [`OpClass`] (scheduler's `issued` table), so
    /// steady-phase deltas can attribute device traffic to app vs. GC vs.
    /// WL vs. mapping vs. merge classes.
    pub issued_per_class: ClassTable,
}

/// Snapshot the controller counters now.
pub fn snapshot(os: &Os) -> CounterSnapshot {
    let c = os.controller();
    let a = c.array().counters();
    let s = c.stats();
    CounterSnapshot {
        programs: a.programs,
        copybacks: a.copybacks,
        app_writes: s.app_writes_completed,
        gc_erases: s.gc_erases,
        wl_erases: s.wl_erases,
        mapping_fetches: s.mapping_fetches,
        mapping_writebacks: s.mapping_writebacks,
        merges: c.merge_counters(),
        issued_per_class: s.issued,
    }
}

/// Internal-class (non-application) ops in an issued table.
fn internal_ops(issued: &ClassTable) -> u64 {
    OpClass::ALL
        .iter()
        .filter(|c| c.is_internal())
        .map(|&c| issued[c as usize])
        .sum()
}

/// Extract metrics for the measured threads, with controller counters
/// reported as deltas since `base`.
pub fn measure_since(os: &Os, threads: &[usize], base: &CounterSnapshot) -> Measured {
    let mut m = measure(os, threads);
    let now = snapshot(os);
    let dw = now.app_writes.saturating_sub(base.app_writes);
    let dp = (now.programs + now.copybacks).saturating_sub(base.programs + base.copybacks);
    m.write_amplification = if dw == 0 { 0.0 } else { dp as f64 / dw as f64 };
    m.gc_erases = now.gc_erases - base.gc_erases;
    m.wl_erases = now.wl_erases - base.wl_erases;
    m.mapping_fetches = now.mapping_fetches - base.mapping_fetches;
    m.mapping_writebacks = now.mapping_writebacks - base.mapping_writebacks;
    m.internal_ops =
        internal_ops(&now.issued_per_class) - internal_ops(&base.issued_per_class);
    m.merges = MergeCounters {
        switch_merges: now.merges.switch_merges - base.merges.switch_merges,
        partial_merges: now.merges.partial_merges - base.merges.partial_merges,
        full_merges: now.merges.full_merges - base.merges.full_merges,
        refresh_merges: now.merges.refresh_merges - base.merges.refresh_merges,
        moves: now.merges.moves - base.merges.moves,
        stale: now.merges.stale - base.merges.stale,
        fillers: now.merges.fillers - base.merges.fillers,
        erases: now.merges.erases - base.merges.erases,
    };
    m
}

/// Extract metrics from `os` for the given measured threads.
pub fn measure(os: &Os, threads: &[usize]) -> Measured {
    let mut reads = 0u64;
    let mut writes = 0u64;
    let mut completed = 0u64;
    let mut first = None;
    let mut last = None;
    let mut read_mean = 0.0;
    let mut read_sd = 0.0;
    let mut write_mean = 0.0;
    let mut write_sd = 0.0;
    let mut read_p99 = 0.0f64;
    let mut write_p99 = 0.0f64;
    let mut wait = 0.0;
    let mut n_stats = 0.0;
    let mut read_hist = Histogram::new();
    let mut write_hist = Histogram::new();
    for &t in threads {
        let s: &ThreadStats = os.thread_stats(t);
        read_hist.merge(&s.read_latency);
        write_hist.merge(&s.write_latency);
        reads += s.reads_completed;
        writes += s.writes_completed;
        completed += s.completed();
        if let Some(f) = s.first_completion {
            first = Some(first.map_or(f, |x: eagletree_core::SimTime| x.min(f)));
        }
        if let Some(l) = s.last_completion {
            last = Some(last.map_or(l, |x: eagletree_core::SimTime| x.max(l)));
        }
        // Weighted combination by observation counts.
        let rn = s.read_lat_us.count() as f64;
        let wn = s.write_lat_us.count() as f64;
        read_mean += s.read_lat_us.mean() * rn;
        read_sd += s.read_lat_us.stddev() * rn;
        write_mean += s.write_lat_us.mean() * wn;
        write_sd += s.write_lat_us.stddev() * wn;
        read_p99 = read_p99.max(s.read_latency.p99().as_micros_f64());
        write_p99 = write_p99.max(s.write_latency.p99().as_micros_f64());
        wait += s.queue_wait_us.mean();
        n_stats += 1.0;
    }
    let rn: f64 = threads
        .iter()
        .map(|&t| os.thread_stats(t).read_lat_us.count() as f64)
        .sum();
    let wn: f64 = threads
        .iter()
        .map(|&t| os.thread_stats(t).write_lat_us.count() as f64)
        .sum();
    let iops = match (first, last) {
        (Some(a), Some(b)) if b > a => completed as f64 / b.since(a).as_secs_f64(),
        _ => 0.0,
    };
    let ctrl = os.controller();
    let cs = ctrl.stats();
    let wear = wear_summary(ctrl.array());
    let (rt, wt) = (read_hist.tail(), write_hist.tail());
    Measured {
        iops,
        reads,
        writes,
        read_mean_us: if rn > 0.0 { read_mean / rn } else { 0.0 },
        read_p99_us: read_p99,
        read_stddev_us: if rn > 0.0 { read_sd / rn } else { 0.0 },
        write_mean_us: if wn > 0.0 { write_mean / wn } else { 0.0 },
        write_p99_us: write_p99,
        write_stddev_us: if wn > 0.0 { write_sd / wn } else { 0.0 },
        read_p50_us: rt.p50.as_micros_f64(),
        read_p95_us: rt.p95.as_micros_f64(),
        read_p999_us: rt.p999.as_micros_f64(),
        write_p50_us: wt.p50.as_micros_f64(),
        write_p95_us: wt.p95.as_micros_f64(),
        write_p999_us: wt.p999.as_micros_f64(),
        internal_ops: internal_ops(&cs.issued),
        queue_wait_us: if n_stats > 0.0 { wait / n_stats } else { 0.0 },
        write_amplification: ctrl.write_amplification(),
        gc_erases: cs.gc_erases,
        wl_erases: cs.wl_erases,
        mapping_fetches: cs.mapping_fetches,
        mapping_writebacks: cs.mapping_writebacks,
        merges: ctrl.merge_counters(),
        wear_stddev: wear.stddev_erases,
        wear_max: wear.max_erases,
        makespan_s: os.now().as_nanos() as f64 / 1e9,
        reliability: ctrl.reliability(),
        stages: merged_stage_breakdown(os),
    }
}

/// One row of a result table: a parameter label plus named values.
#[derive(Debug, Clone)]
pub struct Row {
    pub label: String,
    pub values: Vec<(&'static str, f64)>,
}

impl Row {
    pub fn new(label: impl Into<String>) -> Self {
        Row {
            label: label.into(),
            values: Vec::new(),
        }
    }

    pub fn push(mut self, name: &'static str, value: f64) -> Self {
        self.values.push((name, value));
        self
    }

    /// Fetch a value by column name.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.values.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
    }
}

/// A swept series: what one paper figure/table plots.
#[derive(Debug, Clone)]
pub struct Table {
    pub id: String,
    pub title: String,
    pub param: String,
    pub rows: Vec<Row>,
}

impl Table {
    pub fn new(id: &str, title: &str, param: &str) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            param: param.to_string(),
            rows: Vec::new(),
        }
    }

    /// Ordered union of column names across rows.
    fn columns(&self) -> Vec<&'static str> {
        let mut cols = Vec::new();
        for r in &self.rows {
            for (n, _) in &r.values {
                if !cols.contains(n) {
                    cols.push(*n);
                }
            }
        }
        cols
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let cols = self.columns();
        let mut out = String::new();
        out.push_str(&format!("## {} — {}\n", self.id, self.title));
        let mut widths = vec![self.param.len().max(
            self.rows.iter().map(|r| r.label.len()).max().unwrap_or(0),
        )];
        for c in &cols {
            let w = self
                .rows
                .iter()
                .map(|r| r.get(c).map_or(1, |v| format_num(v).len()))
                .max()
                .unwrap_or(1)
                .max(c.len());
            widths.push(w);
        }
        out.push_str(&format!("{:<w$}", self.param, w = widths[0]));
        for (i, c) in cols.iter().enumerate() {
            out.push_str(&format!("  {:>w$}", c, w = widths[i + 1]));
        }
        out.push('\n');
        for r in &self.rows {
            out.push_str(&format!("{:<w$}", r.label, w = widths[0]));
            for (i, c) in cols.iter().enumerate() {
                let cell = r.get(c).map_or("-".to_string(), format_num);
                out.push_str(&format!("  {:>w$}", cell, w = widths[i + 1]));
            }
            out.push('\n');
        }
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let cols = self.columns();
        let mut out = String::new();
        out.push_str(&self.param.to_string());
        for c in &cols {
            out.push(',');
            out.push_str(c);
        }
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.label);
            for c in &cols {
                out.push(',');
                if let Some(v) = r.get(c) {
                    out.push_str(&format!("{v}"));
                }
            }
            out.push('\n');
        }
        out
    }
}

/// Render a metric series as a Unicode sparkline, normalized to its own
/// maximum — the one-line "how did this evolve across time" plot (§2.3).
pub fn sparkline(points: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = points.iter().cloned().fold(0.0f64, f64::max);
    if max <= 0.0 {
        return "▁".repeat(points.len());
    }
    points
        .iter()
        .map(|&p| {
            let idx = ((p / max) * (BARS.len() - 1) as f64).round() as usize;
            BARS[idx.min(BARS.len() - 1)]
        })
        .collect()
}

/// Downsample a series to at most `width` buckets by summing.
pub fn downsample(points: &[f64], width: usize) -> Vec<f64> {
    if points.len() <= width || width == 0 {
        return points.to_vec();
    }
    let mut out = vec![0.0; width];
    for (i, &p) in points.iter().enumerate() {
        out[i * width / points.len()] += p;
    }
    out
}

fn format_num(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 || v.fract() == 0.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_accessors() {
        let r = Row::new("x=1").push("iops", 100.0).push("wa", 1.5);
        assert_eq!(r.get("iops"), Some(100.0));
        assert_eq!(r.get("wa"), Some(1.5));
        assert_eq!(r.get("nope"), None);
    }

    #[test]
    fn table_renders_all_columns_aligned() {
        let mut t = Table::new("E0", "demo", "qd");
        t.rows.push(Row::new("1").push("iops", 1000.0).push("lat", 12.5));
        t.rows.push(Row::new("16").push("iops", 12_000.0).push("lat", 99.0));
        let s = t.render();
        assert!(s.contains("E0"));
        assert!(s.contains("iops"));
        assert!(s.contains("12000"));
        // Column alignment: every line has the same width prefix.
        let lines: Vec<&str> = s.lines().skip(1).collect();
        assert_eq!(lines.len(), 3);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut t = Table::new("E0", "demo", "qd");
        t.rows.push(Row::new("1").push("iops", 10.0));
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.starts_with("qd,iops"));
        assert!(csv.contains("1,10"));
    }

    #[test]
    fn sparkline_scales_to_max() {
        let s = sparkline(&[0.0, 1.0, 2.0, 4.0]);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars.len(), 4);
        assert_eq!(chars[0], '▁');
        assert_eq!(chars[3], '█');
        assert!(chars[1] < chars[2]);
    }

    #[test]
    fn sparkline_of_zeros_is_flat() {
        assert_eq!(sparkline(&[0.0, 0.0]), "▁▁");
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn downsample_preserves_total() {
        let pts: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let d = downsample(&pts, 10);
        assert_eq!(d.len(), 10);
        assert_eq!(d.iter().sum::<f64>(), pts.iter().sum::<f64>());
        // Short series pass through.
        assert_eq!(downsample(&[1.0, 2.0], 10), vec![1.0, 2.0]);
    }

    #[test]
    fn format_num_picks_precision() {
        assert_eq!(format_num(0.0), "0");
        assert_eq!(format_num(12345.6), "12346");
        assert_eq!(format_num(3.45678), "3.46");
        assert_eq!(format_num(0.001234), "0.0012");
    }
}
