//! Simulation setup bundles.
//!
//! A [`Setup`] carries every configurable of the four layers; experiments
//! clone a baseline and vary one knob per point, which is exactly the
//! paper's experiment-template contract.

use eagletree_controller::{Controller, ControllerConfig};
use eagletree_flash::{Geometry, TimingSpec};
use eagletree_os::{Os, OsConfig};

/// A complete simulation configuration.
#[derive(Clone)]
pub struct Setup {
    pub geometry: Geometry,
    pub timing: TimingSpec,
    pub ctrl: ControllerConfig,
    pub os: OsConfig,
}

impl Setup {
    /// The demo SSD: 4 channels × 4 LUNs of SLC, default policies.
    pub fn demo() -> Self {
        Setup {
            geometry: Geometry::demo(),
            timing: TimingSpec::slc(),
            ctrl: ControllerConfig::default(),
            os: OsConfig::default(),
        }
    }

    /// A small SSD for GC/wear studies (fast to precondition): 2 × 2 LUNs,
    /// 64 blocks of 32 pages per LUN.
    pub fn small() -> Self {
        Setup {
            geometry: Geometry {
                channels: 2,
                luns_per_channel: 2,
                planes_per_lun: 1,
                blocks_per_plane: 64,
                pages_per_block: 32,
                page_size: 4096,
            },
            timing: TimingSpec::slc(),
            ctrl: ControllerConfig::default(),
            os: OsConfig::default(),
        }
    }

    /// The tiny test SSD.
    pub fn tiny() -> Self {
        Setup {
            geometry: Geometry::tiny(),
            timing: TimingSpec::slc(),
            ctrl: ControllerConfig::default(),
            os: OsConfig::default(),
        }
    }

    /// Build the simulated system.
    pub fn build(&self) -> Os {
        let ctrl = Controller::new(self.geometry, self.timing, self.ctrl.clone())
            .expect("invalid setup");
        Os::new(ctrl, self.os.clone())
    }

    /// Logical pages the built device will export.
    pub fn logical_pages(&self) -> u64 {
        ((self.geometry.total_pages() as f64) * self.ctrl.logical_capacity).floor() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_build() {
        for s in [Setup::demo(), Setup::small(), Setup::tiny()] {
            let os = s.build();
            assert_eq!(os.controller().logical_pages(), s.logical_pages());
        }
    }

    #[test]
    fn logical_pages_matches_capacity_fraction() {
        let s = Setup::tiny();
        let expect = (s.geometry.total_pages() as f64 * s.ctrl.logical_capacity) as u64;
        assert_eq!(s.logical_pages(), expect);
    }
}
