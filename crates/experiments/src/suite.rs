//! The predefined experiment suite: E1–E27 and the G1 game.
//!
//! Each experiment reproduces one question the paper poses (see the
//! per-experiment index in DESIGN.md, and EXPERIMENTS.md for measured
//! results). All experiments are deterministic for a fixed [`Scale`].

use eagletree_controller::{
    Controller, ControllerConfig, IoTags, MappingKind, MergePolicy, RecoveryMode, RequestKind,
    SchedPolicy, ScrubConfig, SsdRequest, TemperatureMode, WriteAllocPolicy,
};
use eagletree_core::{QueueKind, SimDuration, SimRng, SimTime};
use eagletree_flash::{FaultConfig, Geometry, TimingSpec};
use eagletree_os::{Os, OsSchedPolicy, QosPolicy, Workload};
use eagletree_workloads::{
    characterize, precondition::sequential_fill, ChunkedSource, GraceHashJoin, MixedGen,
    MsrCsvSource, Pumped, RandReadGen, RandWriteGen, Region, Remap, ReplayThread, SeqWriteGen,
    SynthCsv, SynthShape, SyntheticTrace, TenantProfile, ZipfGen, ZipfKind,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::experiment::{Experiment, Scale};
use crate::metrics::{measure, measure_since, snapshot, Row, Table};
use crate::setup::Setup;

/// All predefined experiments, in index order.
pub fn all() -> Vec<Experiment> {
    vec![
        Experiment::new("E1", "SSD parallelism: channels × LUNs", "§1-Q1 / Fig 1 hardware design space", e1_parallelism),
        Experiment::new("E2", "OS queue depth", "§2.1 'applications' IO queue size'", e2_queue_depth),
        Experiment::new("E3", "GC greediness", "§2.2 GC trigger policy", e3_gc_greediness),
        Experiment::new("E4", "Controller scheduling policies", "§3 'prioritizing reads vs writes is not always easy'", e4_ctrl_sched),
        Experiment::new("E5", "Internal-op priority", "§1-Q2 GC/WL interference", e5_internal_priority),
        Experiment::new("E6", "Mapping schemes: page map vs DFTL vs hybrid log-block", "§2.2 mapping design space", e6_mapping),
        Experiment::new("E7", "Wear leveling", "§2.2 WL strategies", e7_wear_leveling),
        Experiment::new("E8", "Open interface hints", "§2.2 open interface / §3 appetizers", e8_open_interface),
        Experiment::new("E9", "Advanced commands: copyback & interleaving", "§2.2 hardware advanced commands", e9_advanced_commands),
        Experiment::new("E10", "Grace hash join layouts", "§2.2 application threads", e10_grace_join),
        Experiment::new("E11", "OS scheduler fairness", "§2.2 OS scheduler", e11_os_fairness),
        Experiment::new("E12", "SLC vs MLC chips", "§2.2 flash chip type", e12_chip_type),
        Experiment::new("E13", "Battery-backed write buffer", "§2.2 'best usage for battery-backed RAM' / write-buffering module", e13_write_buffer),
        Experiment::new("E14", "Over-provisioning", "§2.2 GC headroom vs exported capacity", e14_overprovisioning),
        Experiment::new("E15", "GC victim selection", "§2.2 GC strategies", e15_victim_policy),
        Experiment::new("E16", "Cached-program pipelining", "§2.2 advanced commands (pipelining)", e16_pipelining),
        Experiment::new("E17", "Hybrid log-block budget sweep", "§2.2 mapping design space (merge costs)", e17_log_budget),
        Experiment::new("E18", "Simulator throughput: events/sec vs geometry × queue depth", "§1 'as fast as the hardware allows' (sweep affordability)", e18_sim_throughput),
        Experiment::new("E19", "Noisy neighbor: reader-tenant tails vs a flooding writer, per QoS policy", "§2.2 OS scheduler × consolidation (tenant isolation)", e19_noisy_neighbor),
        Experiment::new("E20", "QoS design sweep: policy × weights × tenant count", "§1-Q1 design space, extended to the serving side", e20_qos_sweep),
        Experiment::new("E21", "Crash recovery: mount time vs checkpoint interval × device fill", "§2.2 controller modules, extended to crash consistency (durability vs mount-time trade-off)", e21_mount_time),
        Experiment::new("E22", "Crash-point sweep during GC/merge: no acknowledged write lost", "§1-Q2 internal ops × crash atomicity", e22_crash_sweep),
        Experiment::new("E23", "Trace replay vs characterizer-matched synthetic, per mapping scheme", "§2.1 'real-world applications' — production trace ingestion", e23_trace_vs_synth),
        Experiment::new("E24", "QoS isolation under a replayed bursty trace neighbor", "§2.2 OS scheduler × consolidation, driven by recorded traffic", e24_replayed_noisy_neighbor),
        Experiment::new("E25", "Media reliability: UBER, ECC retries and read tails vs device age, per scheme, ± scrubbing", "§2.2 controller modules, extended to media reliability (fault injection)", e25_reliability_aging),
        Experiment::new("E26", "Scrub interference: foreground tenant tails vs scrub aggressiveness", "§1-Q2 internal ops × QoS, extended to background scrubbing", e26_scrub_interference),
        Experiment::new("E27", "Tail forensics: p999 outliers bucketed by dominant latency stage", "§1-Q2 interference, attributed per stage via lifecycle spans", e27_tail_forensics),
        Experiment::new("G1", "The scheduling game", "§3 demonstration game", g1_game),
    ]
}

/// Look up an experiment by id (case-insensitive).
pub fn by_id(id: &str) -> Option<Experiment> {
    all().into_iter().find(|e| e.id.eq_ignore_ascii_case(id))
}

// ---------------------------------------------------------------------
// helpers

/// Run `measured` workloads after sequentially filling the logical space;
/// returns `(os, tids, rows-ready Measured)` with controller counters
/// measured as deltas over the steady phase only.
fn run_preconditioned(
    setup: &Setup,
    measured: Vec<Box<dyn Workload>>,
) -> (Os, Vec<usize>) {
    let mut os = setup.build();
    os.add_thread(sequential_fill(32));
    os.run();
    let tids: Vec<usize> = measured.into_iter().map(|w| os.add_thread(w)).collect();
    (os, tids)
}

fn finish_point(mut os: Os, tids: &[usize], label: String) -> Row {
    let base = snapshot(&os);
    os.run();
    let m = measure_since(&os, tids, &base);
    Row::new(label)
        .push("iops", m.iops)
        .push("read_us", m.read_mean_us)
        .push("read_p99_us", m.read_p99_us)
        .push("read_sd_us", m.read_stddev_us)
        .push("write_us", m.write_mean_us)
        .push("write_p99_us", m.write_p99_us)
        .push("write_sd_us", m.write_stddev_us)
        .push("WA", m.write_amplification)
        .push("gc_erases", m.gc_erases as f64)
}

// ---------------------------------------------------------------------
// E1 — parallelism

fn e1_parallelism(scale: Scale) -> Table {
    let mut t = Table::new(
        "E1",
        "Random-write IOPS vs channels × LUNs/channel",
        "geometry",
    );
    let dims = scale.thin(&[1u32, 2, 4, 8]);
    let ios = scale.ios(8192);
    for &ch in &dims {
        for &luns in &dims {
            let mut setup = Setup::demo();
            setup.geometry = Geometry {
                channels: ch,
                luns_per_channel: luns,
                planes_per_lun: 1,
                blocks_per_plane: 64,
                pages_per_block: 32,
                page_size: 4096,
            };
            setup.os.queue_depth = 128;
            let mut os = setup.build();
            let w = Pumped::new(RandWriteGen::new(Region::whole(), ios), 128, 0xE1)
                .named("rand-writer");
            let tid = os.add_thread(Box::new(w));
            let base = snapshot(&os);
            os.run();
            let m = measure_since(&os, &[tid], &base);
            t.rows.push(
                Row::new(format!("{ch}x{luns}"))
                    .push("luns_total", (ch * luns) as f64)
                    .push("iops", m.iops)
                    .push("write_us", m.write_mean_us),
            );
        }
    }
    t
}

// ---------------------------------------------------------------------
// E2 — queue depth

fn e2_queue_depth(scale: Scale) -> Table {
    let mut t = Table::new("E2", "Random-read IOPS and latency vs OS queue depth", "qd");
    let ios = scale.ios(8192);
    for qd in scale.thin(&[1usize, 2, 4, 8, 16, 32, 64]) {
        let mut setup = Setup::small();
        setup.os.queue_depth = qd;
        let (os, tids) = run_preconditioned(
            &setup,
            vec![Box::new(
                Pumped::new(RandReadGen::new(Region::whole(), ios), 256, 0xE2).named("reader"),
            )],
        );
        t.rows.push(finish_point(os, &tids, format!("{qd}")));
    }
    t
}

// ---------------------------------------------------------------------
// E3 — GC greediness

fn e3_gc_greediness(scale: Scale) -> Table {
    let mut t = Table::new(
        "E3",
        "Steady-state overwrite: throughput / WA / tails vs GC greediness",
        "greediness",
    );
    for g in scale.thin(&[1u32, 2, 3, 4, 6, 8]) {
        let mut setup = Setup::small();
        setup.ctrl.gc.greediness = g;
        setup.ctrl.wl.static_enabled = false;
        let ios = scale.ios(setup.logical_pages() * 3);
        let (os, tids) = run_preconditioned(
            &setup,
            vec![Box::new(
                Pumped::new(RandWriteGen::new(Region::whole(), ios), 32, 0xE3)
                    .named("overwriter"),
            )],
        );
        t.rows.push(finish_point(os, &tids, format!("{g}")));
    }
    t
}

// ---------------------------------------------------------------------
// E4 — controller scheduling policies

fn policies() -> Vec<(&'static str, SchedPolicy)> {
    vec![
        ("fifo", SchedPolicy::Fifo),
        ("reads_first", SchedPolicy::reads_first()),
        ("writes_first", SchedPolicy::writes_first()),
        ("edf", SchedPolicy::edf_default()),
        ("fair", SchedPolicy::fair_equal()),
    ]
}

fn e4_ctrl_sched(scale: Scale) -> Table {
    let mut t = Table::new(
        "E4",
        "Mixed 50/50 read-write under controller scheduling policies",
        "policy",
    );
    let pols = scale.thin(&policies());
    for (name, pol) in pols {
        let mut setup = Setup::small();
        setup.ctrl.sched = pol;
        setup.ctrl.wl.static_enabled = false;
        setup.os.queue_depth = 64;
        let ios = scale.ios(setup.logical_pages() * 2);
        let (os, tids) = run_preconditioned(
            &setup,
            vec![Box::new(
                Pumped::new(MixedGen::new(Region::whole(), ios, 0.5), 64, 0xE4).named("mixed"),
            )],
        );
        t.rows.push(finish_point(os, &tids, name.to_string()));
    }
    t
}

// ---------------------------------------------------------------------
// E5 — internal-op (GC) priority

fn e5_internal_priority(scale: Scale) -> Table {
    let mut t = Table::new(
        "E5",
        "Reader tail latency vs internal-op priority under overwrite load",
        "gc_priority",
    );
    let variants: Vec<(&str, SchedPolicy)> = vec![
        ("internal_low", SchedPolicy::app_first()),
        ("equal_fifo", SchedPolicy::Fifo),
        ("internal_high", SchedPolicy::internal_first()),
    ];
    for (name, pol) in scale.thin(&variants) {
        let mut setup = Setup::small();
        setup.ctrl.sched = pol;
        setup.ctrl.wl.static_enabled = false;
        setup.os.queue_depth = 32;
        let logical = setup.logical_pages();
        let w_ios = scale.ios(logical * 2);
        let r_ios = scale.ios(logical);
        let (os, tids) = run_preconditioned(
            &setup,
            vec![
                Box::new(
                    Pumped::new(RandWriteGen::new(Region::whole(), w_ios), 16, 0xE5)
                        .named("overwriter"),
                ),
                Box::new(
                    Pumped::new(RandReadGen::new(Region::whole(), r_ios), 4, 0x5E)
                        .named("reader"),
                ),
            ],
        );
        // Report the reader's view (tids[1]) plus global WA.
        let base = snapshot(&os);
        let mut os = os;
        os.run();
        let m = measure_since(&os, &[tids[1]], &base);
        let all = measure_since(&os, &tids, &base);
        t.rows.push(
            Row::new(name.to_string())
                .push("read_us", m.read_mean_us)
                .push("read_p99_us", m.read_p99_us)
                .push("read_sd_us", m.read_stddev_us)
                .push("total_iops", all.iops)
                .push("WA", all.write_amplification),
        );
    }
    t
}

// ---------------------------------------------------------------------
// E6 — mapping schemes

fn e6_mapping(scale: Scale) -> Table {
    let mut t = Table::new(
        "E6",
        "Zipf mixed workload: page map vs DFTL (CMT coverage) vs hybrid (log budget)",
        "mapping",
    );
    let coverages = scale.thin(&[1u64, 5, 10, 25, 50, 100]);
    let mut variants: Vec<(String, MappingKind)> =
        vec![("page_map".into(), MappingKind::PageMap)];
    let logical = Setup::small().logical_pages();
    for c in coverages {
        variants.push((
            format!("dftl_{c}%"),
            MappingKind::Dftl {
                cmt_entries: ((logical * c) / 100).max(8) as usize,
            },
        ));
    }
    for b in scale.thin(&[4usize, 16]) {
        variants.push((
            format!("hybrid_{b}"),
            MappingKind::Hybrid {
                log_blocks: b,
                merge: MergePolicy::Fifo,
            },
        ));
    }
    for (name, mapping) in variants {
        let mut setup = Setup::small();
        setup.ctrl.mapping = mapping;
        setup.ctrl.wl.static_enabled = false;
        let ios = scale.ios(logical * 2);
        let (os, tids) = run_preconditioned(
            &setup,
            vec![Box::new(
                Pumped::new(
                    ZipfGen::new(Region::whole(), ios, 0.99, ZipfKind::Mixed(50)),
                    32,
                    0xE6,
                )
                .named("zipf-mixed"),
            )],
        );
        let base = snapshot(&os);
        let mut os = os;
        os.run();
        let m = measure_since(&os, &tids, &base);
        let map_ram_kb = os
            .controller()
            .memory()
            .reserved_for(eagletree_flash::MemoryKind::Ram, "mapping")
            .unwrap_or(0) as f64
            / 1024.0;
        t.rows.push(
            Row::new(name)
                .push("iops", m.iops)
                .push("read_us", m.read_mean_us)
                .push("write_us", m.write_mean_us)
                .push("map_ram_kb", map_ram_kb)
                .push("map_fetches", m.mapping_fetches as f64)
                .push("map_writebacks", m.mapping_writebacks as f64)
                .push("merges", (m.merges.switch_merges + m.merges.partial_merges
                    + m.merges.full_merges) as f64)
                .push("WA", m.write_amplification),
        );
    }
    t
}

// ---------------------------------------------------------------------
// E7 — wear leveling

fn e7_wear_leveling(scale: Scale) -> Table {
    let mut t = Table::new(
        "E7",
        "Skewed overwrite: wear distribution vs WL strategy",
        "wl_mode",
    );
    let variants: Vec<(&str, bool, bool, TemperatureMode)> = vec![
        ("off", false, false, TemperatureMode::Off),
        ("static", true, false, TemperatureMode::Off),
        ("static+dynamic", true, true, TemperatureMode::Detector),
    ];
    for (name, stat, dyn_, temp) in scale.thin(&variants) {
        let mut setup = Setup::small();
        setup.ctrl.wl.static_enabled = stat;
        setup.ctrl.wl.dynamic_enabled = dyn_;
        setup.ctrl.wl.check_every_erases = 16;
        setup.ctrl.wl.young_delta = 4;
        // The conservative default idle factor only fires on much longer
        // runs; sweep with an eager setting so the experiment shows the
        // static-WL trade-off at this scale.
        setup.ctrl.wl.idle_factor = 0.5;
        setup.ctrl.temperature = temp;
        let logical = setup.logical_pages();
        let ios = scale.ios(logical * 6);
        let (os, tids) = run_preconditioned(
            &setup,
            vec![Box::new(
                Pumped::new(
                    ZipfGen::new(Region::whole(), ios, 1.1, ZipfKind::Writes),
                    32,
                    0xE7,
                )
                .named("zipf-writer"),
            )],
        );
        let base = snapshot(&os);
        let mut os = os;
        os.run();
        let m = measure_since(&os, &tids, &base);
        t.rows.push(
            Row::new(name.to_string())
                .push("iops", m.iops)
                .push("WA", m.write_amplification)
                .push("wear_sd", m.wear_stddev)
                .push("wear_max", m.wear_max as f64)
                .push("wl_erases", m.wl_erases as f64),
        );
    }
    t
}

// ---------------------------------------------------------------------
// E8 — open interface

fn e8_open_interface(scale: Scale) -> Table {
    let mut t = Table::new(
        "E8",
        "Open-interface hints vs the locked block device",
        "hints",
    );
    #[derive(Clone, Copy, PartialEq)]
    enum Mode {
        Closed,
        Priority,
        Temperature,
        Locality,
    }
    let variants = [
        ("closed", Mode::Closed),
        ("priority", Mode::Priority),
        ("temperature", Mode::Temperature),
        ("locality", Mode::Locality),
    ];
    for (name, mode) in scale.thin(&variants) {
        let mut setup = Setup::small();
        setup.ctrl.wl.static_enabled = false;
        setup.os.queue_depth = 32;
        setup.os.open_interface = mode != Mode::Closed;
        match mode {
            Mode::Priority => setup.ctrl.sched = SchedPolicy::TagPriority,
            Mode::Temperature => setup.ctrl.temperature = TemperatureMode::Hints,
            Mode::Locality => setup.ctrl.honor_locality = true,
            Mode::Closed => {}
        }
        let logical = setup.logical_pages();
        let w_ios = scale.ios(logical * 3);
        let r_ios = scale.ios(logical / 2);
        // Writer: skewed updates, hinted hot/cold + per-group locality.
        let writer_gen = ZipfGen::new(Region::whole(), w_ios, 0.99, ZipfKind::Writes)
            .with_temperature_hints(0.2);
        let mut writer =
            Pumped::new(writer_gen, 16, 0xE8).named("tenant-writer");
        if mode == Mode::Locality {
            writer = writer.tagged(IoTags::none().with_locality(1));
        }
        // Reader: latency sensitive, tagged urgent.
        let reader = Pumped::new(RandReadGen::new(Region::whole(), r_ios), 4, 0x8E)
            .named("urgent-reader")
            .tagged(IoTags::none().with_priority(0));
        let (os, tids) =
            run_preconditioned(&setup, vec![Box::new(writer), Box::new(reader)]);
        let base = snapshot(&os);
        let mut os = os;
        os.run();
        let reader_m = measure_since(&os, &[tids[1]], &base);
        let all = measure_since(&os, &tids, &base);
        t.rows.push(
            Row::new(name.to_string())
                .push("total_iops", all.iops)
                .push("WA", all.write_amplification)
                .push("reader_p99_us", reader_m.read_p99_us)
                .push("reader_us", reader_m.read_mean_us),
        );
    }
    t
}

// ---------------------------------------------------------------------
// E9 — advanced commands

fn e9_advanced_commands(scale: Scale) -> Table {
    let mut t = Table::new(
        "E9",
        "GC-heavy overwrite: copy-back × channel interleaving",
        "commands",
    );
    let variants = [
        ("neither", false, false),
        ("copyback", true, false),
        ("interleave", false, true),
        ("both", true, true),
    ];
    for (name, cb, il) in scale.thin(&variants) {
        let mut setup = Setup::small();
        setup.ctrl.gc.use_copyback = cb;
        setup.ctrl.interleaving = il;
        setup.ctrl.wl.static_enabled = false;
        let ios = scale.ios(setup.logical_pages() * 3);
        let (os, tids) = run_preconditioned(
            &setup,
            vec![Box::new(
                Pumped::new(RandWriteGen::new(Region::whole(), ios), 32, 0xE9)
                    .named("overwriter"),
            )],
        );
        t.rows.push(finish_point(os, &tids, name.to_string()));
    }
    t
}

// ---------------------------------------------------------------------
// E10 — Grace hash join

fn e10_grace_join(scale: Scale) -> Table {
    let mut t = Table::new(
        "E10",
        "Grace hash join phases vs write-allocation policy",
        "alloc",
    );
    let variants = [
        ("round_robin", WriteAllocPolicy::RoundRobin),
        ("least_utilized", WriteAllocPolicy::LeastUtilized),
        ("striping", WriteAllocPolicy::Striping),
    ];
    for (name, alloc) in scale.thin(&variants) {
        let mut setup = Setup::small();
        setup.ctrl.write_alloc = alloc;
        setup.ctrl.wl.static_enabled = false;
        setup.os.queue_depth = 64;
        let logical = setup.logical_pages();
        // Relations sized so inputs + 2x-slack partitions fit.
        let r = (logical / 8).min(scale.ios(1024));
        let s = r;
        let mut os = setup.build();
        let sink = std::rc::Rc::new(std::cell::RefCell::new((None, None)));
        let region_r = Region::new(0, r);
        let region_s = Region::new(r, s);
        let out_len = ((r + s) * 2).div_ceil(8) * 8;
        let region_out = Region::new(r + s, out_len);
        // Pre-write the inputs.
        os.add_thread(eagletree_workloads::precondition::region_fill(region_r, 32));
        os.add_thread(eagletree_workloads::precondition::region_fill(region_s, 32));
        os.run();
        let join = GraceHashJoin::new(region_r, region_s, region_out, 8, 32)
            .with_phase_sink(sink.clone());
        let t0 = os.now();
        let tid = os.add_thread(Box::new(join));
        let base = snapshot(&os);
        os.run();
        let m = measure_since(&os, &[tid], &base);
        let (part, probe) = *sink.borrow();
        let part_ms = part.map_or(0.0, |p: SimTime| p.since(t0).as_millis_f64());
        let probe_ms = probe.map_or(0.0, |p: SimTime| {
            p.since(part.unwrap_or(t0)).as_millis_f64()
        });
        t.rows.push(
            Row::new(name.to_string())
                .push("partition_ms", part_ms)
                .push("probe_ms", probe_ms)
                .push("total_ms", m.makespan_s * 1000.0)
                .push("iops", m.iops),
        );
    }
    t
}

// ---------------------------------------------------------------------
// E11 — OS scheduler fairness

fn e11_os_fairness(scale: Scale) -> Table {
    let mut t = Table::new(
        "E11",
        "Three competing threads under OS dispatch policies",
        "os_policy",
    );
    let variants: Vec<(&str, OsSchedPolicy)> = vec![
        ("fifo", OsSchedPolicy::Fifo),
        ("round_robin", OsSchedPolicy::RoundRobin),
        ("priority_t2", OsSchedPolicy::ThreadPriority(vec![2, 2, 0, 1])),
    ];
    for (name, pol) in scale.thin(&variants) {
        let mut setup = Setup::small();
        setup.os.policy = pol;
        setup.os.queue_depth = 8;
        setup.ctrl.wl.static_enabled = false;
        let logical = setup.logical_pages();
        let ios = scale.ios(logical);
        // Thread 1 (after fill): aggressive writer with a huge window;
        // threads 2 and 3: modest readers.
        let (os, tids) = run_preconditioned(
            &setup,
            vec![
                Box::new(
                    Pumped::new(RandWriteGen::new(Region::whole(), ios), 128, 0xB1)
                        .named("aggressive"),
                ),
                Box::new(
                    Pumped::new(RandReadGen::new(Region::whole(), ios / 2), 4, 0xB2)
                        .named("modest-a"),
                ),
                Box::new(
                    Pumped::new(RandReadGen::new(Region::whole(), ios / 2), 4, 0xB3)
                        .named("modest-b"),
                ),
            ],
        );
        let mut os = os;
        os.run();
        let th: Vec<f64> = tids
            .iter()
            .map(|&t| os.thread_stats(t).throughput_iops())
            .collect();
        // Jain fairness index over per-thread throughput.
        let sum: f64 = th.iter().sum();
        let sumsq: f64 = th.iter().map(|x| x * x).sum();
        let jain = if sumsq == 0.0 {
            0.0
        } else {
            sum * sum / (th.len() as f64 * sumsq)
        };
        t.rows.push(
            Row::new(name.to_string())
                .push("aggressive_iops", th[0])
                .push("modest_a_iops", th[1])
                .push("modest_b_iops", th[2])
                .push("jain", jain),
        );
    }
    t
}

// ---------------------------------------------------------------------
// E12 — chip type

fn e12_chip_type(scale: Scale) -> Table {
    let mut t = Table::new("E12", "Mixed workload on SLC vs MLC flash", "chip");
    for (name, timing) in [("slc", TimingSpec::slc()), ("mlc", TimingSpec::mlc())] {
        let mut setup = Setup::small();
        setup.timing = timing;
        setup.ctrl.wl.static_enabled = false;
        let ios = scale.ios(setup.logical_pages() * 2);
        let (os, tids) = run_preconditioned(
            &setup,
            vec![Box::new(
                Pumped::new(MixedGen::new(Region::whole(), ios, 0.5), 32, 0xE12).named("mixed"),
            )],
        );
        t.rows.push(finish_point(os, &tids, name.to_string()));
    }
    t
}

// ---------------------------------------------------------------------
// E13 — write buffer

fn e13_write_buffer(scale: Scale) -> Table {
    let mut t = Table::new(
        "E13",
        "Skewed overwrite vs battery-backed write-buffer size",
        "buffer_pages",
    );
    for pages in scale.thin(&[0u64, 16, 64, 256]) {
        let mut setup = Setup::small();
        setup.ctrl.write_buffer_pages = pages;
        setup.ctrl.wl.static_enabled = false;
        let ios = scale.ios(setup.logical_pages() * 3);
        let (os, tids) = run_preconditioned(
            &setup,
            vec![Box::new(
                Pumped::new(
                    ZipfGen::new(Region::whole(), ios, 0.99, ZipfKind::Writes),
                    32,
                    0xE13,
                )
                .named("zipf-writer"),
            )],
        );
        // Buffered writes complete at RAM speed (zero virtual latency), so
        // IOPS over the completion window is not meaningful; the makespan
        // until the device drains and the flash-side WA are.
        let base = snapshot(&os);
        let mut os = os;
        let t0 = os.now();
        os.run();
        let m = measure_since(&os, &tids, &base);
        t.rows.push(
            Row::new(format!("{pages}"))
                .push("makespan_ms", os.now().since(t0).as_millis_f64())
                .push("WA", m.write_amplification)
                .push("gc_erases", m.gc_erases as f64)
                .push("write_p99_us", m.write_p99_us),
        );
    }
    t
}

// ---------------------------------------------------------------------
// E14 — over-provisioning

fn e14_overprovisioning(scale: Scale) -> Table {
    let mut t = Table::new(
        "E14",
        "Steady-state overwrite vs exported-capacity fraction",
        "logical_frac",
    );
    for frac in scale.thin(&[0.70f64, 0.80, 0.85, 0.90, 0.95]) {
        let mut setup = Setup::small();
        setup.ctrl.logical_capacity = frac;
        setup.ctrl.wl.static_enabled = false;
        let ios = scale.ios(setup.logical_pages() * 3);
        let (os, tids) = run_preconditioned(
            &setup,
            vec![Box::new(
                Pumped::new(RandWriteGen::new(Region::whole(), ios), 32, 0xE14)
                    .named("overwriter"),
            )],
        );
        t.rows.push(finish_point(os, &tids, format!("{frac:.2}")));
    }
    t
}

// ---------------------------------------------------------------------
// E15 — GC victim selection

fn e15_victim_policy(scale: Scale) -> Table {
    let mut t = Table::new(
        "E15",
        "Hot/cold overwrite under GC victim-selection policies",
        "victim",
    );
    use eagletree_controller::VictimPolicy;
    let variants = [
        ("greedy", VictimPolicy::Greedy),
        ("random", VictimPolicy::Random),
        ("cost_benefit", VictimPolicy::CostBenefit),
    ];
    for (name, victim) in scale.thin(&variants) {
        let mut setup = Setup::small();
        setup.ctrl.gc.victim = victim;
        setup.ctrl.wl.static_enabled = false;
        let ios = scale.ios(setup.logical_pages() * 4);
        let (os, tids) = run_preconditioned(
            &setup,
            vec![Box::new(
                Pumped::new(
                    ZipfGen::new(Region::whole(), ios, 1.0, ZipfKind::Writes),
                    32,
                    0xE15,
                )
                .named("hotcold-writer"),
            )],
        );
        t.rows.push(finish_point(os, &tids, name.to_string()));
    }
    t
}

// ---------------------------------------------------------------------
// E16 — cached-program pipelining

fn e16_pipelining(scale: Scale) -> Table {
    let mut t = Table::new(
        "E16",
        "Sequential write throughput with and without cached programming",
        "pipelining",
    );
    for (name, on) in [("off", false), ("on", true)] {
        let mut setup = Setup::small();
        setup.ctrl.use_cached_program = on;
        setup.ctrl.wl.static_enabled = false;
        setup.os.queue_depth = 64;
        let ios = scale.ios(setup.logical_pages());
        let mut os = setup.build();
        let w = Pumped::new(
            eagletree_workloads::SeqWriteGen::new(Region::whole(), ios),
            64,
            0xE16,
        )
        .named("seq-writer");
        let tid = os.add_thread(Box::new(w));
        let base = snapshot(&os);
        os.run();
        let m = measure_since(&os, &[tid], &base);
        t.rows.push(
            Row::new(name.to_string())
                .push("iops", m.iops)
                .push("write_us", m.write_mean_us)
                .push("makespan_ms", m.makespan_s * 1000.0),
        );
    }
    t
}

// ---------------------------------------------------------------------
// E17 — hybrid log-block budget sweep

/// How many log blocks does a hybrid FTL need? Random overwrites force
/// full merges whose cost shrinks as the log pool grows — the §2.2 mapping
/// axis measured at its extreme (merge storms vs RAM budget).
fn e17_log_budget(scale: Scale) -> Table {
    let mut t = Table::new(
        "E17",
        "Random overwrite under the hybrid FTL vs log-block budget",
        "log_blocks",
    );
    for b in scale.thin(&[2usize, 4, 8, 16, 32]) {
        let mut setup = Setup::small();
        setup.ctrl.mapping = MappingKind::Hybrid {
            log_blocks: b,
            merge: MergePolicy::Fifo,
        };
        setup.ctrl.wl.static_enabled = false;
        let logical = setup.logical_pages();
        let ios = scale.ios(logical);
        let (os, tids) = run_preconditioned(
            &setup,
            vec![Box::new(
                Pumped::new(RandWriteGen::new(Region::whole(), ios), 32, 0xE17)
                    .named("overwriter"),
            )],
        );
        let base = snapshot(&os);
        let mut os = os;
        os.run();
        let m = measure_since(&os, &tids, &base);
        t.rows.push(
            Row::new(format!("{b}"))
                .push("iops", m.iops)
                .push("write_us", m.write_mean_us)
                .push("write_p99_us", m.write_p99_us)
                .push("WA", m.write_amplification)
                .push("full_merges", m.merges.full_merges as f64)
                .push("switch_merges", m.merges.switch_merges as f64)
                .push("merge_moves", m.merges.moves as f64)
                .push("merge_erases", m.merges.erases as f64),
        );
    }
    t
}

// ---------------------------------------------------------------------
// E18 — simulator throughput

/// How fast does the *simulator* run? Host wall-seconds and simulation
/// events per host second for a GC-heavy random overwrite, swept over
/// device geometry × OS queue depth × event-queue backend. This is the
/// meta-experiment behind every other one: the design-space sweeps the
/// paper calls for are affordable exactly in proportion to these numbers.
/// Queue depth stresses the controller's dispatch path (pending-op
/// selection), the overwrite phase stresses GC victim selection, and the
/// backend axis pits the calendar agenda against the binary-heap oracle
/// (identical results, different host speed — `queue_ops` counts the
/// schedules + pops the engine performed).
fn e18_sim_throughput(scale: Scale) -> Table {
    let mut t = Table::new(
        "E18",
        "Host events/sec for GC-heavy overwrite vs geometry × queue depth × queue backend",
        "geometry/qd/queue",
    );
    let geoms: Vec<(&str, Geometry)> = vec![
        (
            "2x2x64x32",
            Geometry {
                channels: 2,
                luns_per_channel: 2,
                planes_per_lun: 1,
                blocks_per_plane: 64,
                pages_per_block: 32,
                page_size: 4096,
            },
        ),
        (
            "4x4x128x64",
            Geometry {
                channels: 4,
                luns_per_channel: 4,
                planes_per_lun: 1,
                blocks_per_plane: 128,
                pages_per_block: 64,
                page_size: 4096,
            },
        ),
    ];
    let qds: Vec<usize> = vec![1, 64, 512];
    for (gname, g) in scale.thin(&geoms) {
        for qd in scale.thin(&qds) {
            for kind in [QueueKind::Calendar, QueueKind::Heap] {
                let mut setup = Setup::small();
                setup.geometry = g;
                setup.os.queue_depth = qd;
                setup.os.queue = kind;
                setup.ctrl.queue = kind;
                setup.ctrl.wl.static_enabled = false;
                let logical = setup.logical_pages();
                // Enough overwrite to reach GC steady state even at smoke
                // scale (the fill leaves only the over-provisioning
                // headroom free).
                let ios = scale.ios(logical * 4);
                let mut os = setup.build();
                os.add_thread(sequential_fill(32));
                os.run();
                let tid = os.add_thread(Box::new(
                    Pumped::new(RandWriteGen::new(Region::whole(), ios), qd.max(1) as u64, 0xE18)
                        .named("overwriter"),
                ));
                let base = snapshot(&os);
                let events_before = os.events_simulated();
                let queue_ops_before = os.queue_ops();
                #[allow(clippy::disallowed_methods)]
                // lint:allow(R2) E18 measures host events/sec — wall-clock throughput of the simulator itself is the experiment's result column, never simulation state
                let started = std::time::Instant::now();
                os.run();
                let wall_s = started.elapsed().as_secs_f64();
                let events = os.events_simulated() - events_before;
                let queue_ops = os.queue_ops() - queue_ops_before;
                let m = measure_since(&os, &[tid], &base);
                t.rows.push(
                    Row::new(format!("{gname}/qd{qd}/{kind}"))
                        .push("wall_ms", wall_s * 1000.0)
                        .push("events", events as f64)
                        .push(
                            "events_per_sec",
                            if wall_s > 0.0 { events as f64 / wall_s } else { 0.0 },
                        )
                        .push("queue_ops", queue_ops as f64)
                        .push("iops", m.iops)
                        .push("WA", m.write_amplification),
                );
            }
        }
    }
    t
}

// ---------------------------------------------------------------------
// E19 — noisy neighbor

/// The QoS policies E19/E20 sweep (every scale runs all of them — the
/// whole point is the cross-policy comparison).
fn qos_policies() -> Vec<(&'static str, QosPolicy)> {
    vec![
        ("none", QosPolicy::None),
        ("wfq", QosPolicy::Wfq),
        ("token_bucket", QosPolicy::TokenBucket),
        ("strict_tiers", QosPolicy::StrictTiers { starvation_us: 50_000 }),
    ]
}

/// "What does tenant A's p99 look like when tenant B misbehaves?" — a
/// latency-sensitive Zipf reader tenant shares the device with a
/// sequential-flood writer tenant. Swept over the tenant QoS policy: flat
/// dispatch (no isolation) vs WFQ vs token-bucket rate capping vs strict
/// tiers. The reader's tail percentiles are the paper-style y-axis.
fn e19_noisy_neighbor(scale: Scale) -> Table {
    let mut t = Table::new(
        "E19",
        "Reader-tenant tail latency under a flooding writer neighbor",
        "qos",
    );
    for (name, qos) in qos_policies() {
        let mut setup = Setup::small();
        setup.os.qos = qos;
        setup.os.queue_depth = 32;
        setup.ctrl.wl.static_enabled = false;
        let logical = setup.logical_pages();
        let mut os = setup.build();
        os.add_thread(sequential_fill(32));
        os.run();
        // Latency-sensitive tenant: skewed reads, small in-flight window,
        // high WFQ weight / top tier / no rate cap.
        let r_ios = scale.ios(logical / 2);
        let (reader, reader_tids) = TenantProfile::new("reader", 2048)
            .weight(8)
            .tier(0)
            .thread(
                Pumped::new(
                    ZipfGen::new(Region::whole(), r_ios, 0.99, ZipfKind::Reads),
                    4,
                    0xE19,
                )
                .named("zipf-reader"),
            )
            .install(&mut os);
        // Misbehaving neighbor: a sequential flood with a huge window,
        // low weight / lower tier / a 4k-IOPS cap under the token bucket.
        let w_ios = scale.ios(logical * 3);
        let (writer, writer_tids) = TenantProfile::new("flooder", 4096)
            .weight(1)
            .tier(1)
            .iops_limit(4_000.0)
            .burst(4.0)
            .thread(
                Pumped::new(SeqWriteGen::new(Region::whole(), w_ios), 256, 0x91E)
                    .named("seq-flooder"),
            )
            .install(&mut os);
        let base = snapshot(&os);
        os.run();
        let rm = measure_since(&os, &reader_tids, &base);
        let wm = measure_since(&os, &writer_tids, &base);
        let tail = os
            .tenant_stats(reader)
            .tail(eagletree_controller::OpClass::AppRead);
        t.rows.push(
            Row::new(name.to_string())
                .push("reader_p50_us", tail.p50.as_micros_f64())
                .push("reader_p95_us", tail.p95.as_micros_f64())
                .push("reader_p99_us", tail.p99.as_micros_f64())
                .push("reader_p999_us", tail.p999.as_micros_f64())
                .push("reader_iops", rm.iops)
                .push("flooder_iops", wm.iops)
                .push("internal_ops", wm.internal_ops as f64)
                .push("reader_util", os.namespace_utilization(reader))
                .push("flooder_util", os.namespace_utilization(writer)),
        );
    }
    t
}

// ---------------------------------------------------------------------
// E20 — QoS design sweep

/// The serving-side design space: QoS policy × victim weight × tenant
/// count, with one flooding writer and `n-1` latency-sensitive readers.
/// Reports the worst reader p99, Jain fairness over per-tenant
/// throughput, and aggregate IOPS — the isolation-vs-utilization
/// trade-off grid.
fn e20_qos_sweep(scale: Scale) -> Table {
    let mut t = Table::new(
        "E20",
        "Worst reader p99 / fairness / aggregate IOPS over the QoS grid",
        "policy/weight/tenants",
    );
    let weights = scale.thin(&[1u32, 2, 4]);
    let counts = scale.thin(&[2usize, 3, 4]);
    for (pname, qos) in qos_policies() {
        for &w in &weights {
            for &n in &counts {
                let mut setup = Setup::small();
                setup.os.qos = qos.clone();
                setup.os.queue_depth = 32;
                setup.ctrl.wl.static_enabled = false;
                let logical = setup.logical_pages();
                let mut os = setup.build();
                os.add_thread(sequential_fill(32));
                os.run();
                let (_, writer_tids) = TenantProfile::new("flooder", 2048)
                    .weight(1)
                    .tier(1)
                    .iops_limit(4_000.0)
                    .burst(4.0)
                    .thread(
                        Pumped::new(
                            SeqWriteGen::new(Region::whole(), scale.ios(logical * 2)),
                            256,
                            0x20,
                        )
                        .named("seq-flooder"),
                    )
                    .install(&mut os);
                let readers: Vec<_> = (0..n - 1)
                    .map(|i| {
                        TenantProfile::new(format!("reader{i}"), 1024)
                            .weight(w)
                            .tier(0)
                            .thread(
                                Pumped::new(
                                    ZipfGen::new(
                                        Region::whole(),
                                        scale.ios(logical / 4),
                                        0.99,
                                        ZipfKind::Reads,
                                    ),
                                    4,
                                    0xE20 + i as u64,
                                )
                                .named("zipf-reader"),
                            )
                            .install(&mut os)
                    })
                    .collect();
                let base = snapshot(&os);
                os.run();
                let worst_p99 = readers
                    .iter()
                    .map(|(tid, _)| {
                        os.tenant_stats(*tid)
                            .tail(eagletree_controller::OpClass::AppRead)
                            .p99
                            .as_micros_f64()
                    })
                    .fold(0.0f64, f64::max);
                // Jain fairness over per-tenant throughput.
                let th: Vec<f64> = std::iter::once(&writer_tids)
                    .chain(readers.iter().map(|(_, tids)| tids))
                    .map(|tids| measure(&os, tids).iops)
                    .collect();
                let sum: f64 = th.iter().sum();
                let sumsq: f64 = th.iter().map(|x| x * x).sum();
                let jain = if sumsq == 0.0 {
                    0.0
                } else {
                    sum * sum / (th.len() as f64 * sumsq)
                };
                let all_tids: Vec<usize> = writer_tids
                    .iter()
                    .chain(readers.iter().flat_map(|(_, tids)| tids))
                    .copied()
                    .collect();
                let all = measure_since(&os, &all_tids, &base);
                t.rows.push(
                    Row::new(format!("{pname}/w{w}/n{n}"))
                        .push("worst_reader_p99_us", worst_p99)
                        .push("jain", jain)
                        .push("total_iops", all.iops)
                        .push("WA", all.write_amplification),
                );
            }
        }
    }
    t
}

// ---------------------------------------------------------------------
// E21 — crash recovery: mount time vs checkpoint interval × fill

/// The durability-vs-mount-time trade-off: fill a device to varying
/// levels (with overwrite churn on top), pull the plug through the OS
/// layer, and remount the captured medium under both recovery modes. A
/// full OOB scan reads every written page's spare area, so mount time
/// grows with fill; checkpointed recovery replays the last committed
/// snapshot and re-scans only blocks holding post-watermark entries, at
/// the cost of periodic checkpoint writes during normal operation.
fn e21_mount_time(scale: Scale) -> Table {
    let mut t = Table::new(
        "E21",
        "Mount time and OOB reads: full scan vs checkpoint replay, per fill × interval",
        "fill/interval",
    );
    let fills: Vec<f64> = vec![0.25, 0.5, 1.0];
    let intervals: Vec<u64> = vec![256, 512, 1024];
    for &fill in &scale.thin(&fills) {
        for &interval in &scale.thin(&intervals) {
            let mut setup = Setup::small();
            setup.ctrl.checkpoint_interval_programs = interval;
            setup.ctrl.wl.static_enabled = false;
            let logical = setup.logical_pages();
            let pages = ((logical as f64) * fill) as u64;
            let region = Region::new(0, pages);
            let mut os = setup.build();
            os.add_thread(Box::new(
                Pumped::new(SeqWriteGen::new(region, pages), 32, 0xE21).named("filler"),
            ));
            os.run();
            // Overwrite churn: garbage + post-checkpoint entries to replay.
            os.add_thread(Box::new(
                Pumped::new(RandWriteGen::new(region, pages / 2), 32, 0x21E)
                    .named("churner"),
            ));
            os.run();
            let ckpt_writes = os.controller().stats().checkpoint_pages;
            let image = os.power_cut();
            let (_, full) = Controller::remount(
                image.clone(),
                setup.ctrl.clone(),
                RecoveryMode::FullScan,
            )
            .expect("full-scan remount");
            let (c2, ck) =
                Controller::remount(image, setup.ctrl.clone(), RecoveryMode::Checkpoint)
                    .expect("checkpoint remount");
            c2.check_invariants();
            t.rows.push(
                Row::new(format!("f{}/i{interval}", (fill * 100.0) as u32))
                    .push("entries", full.data_entries as f64)
                    .push("full_oob", full.oob_scanned as f64)
                    .push("full_mount_us", full.mount_time.as_micros_f64())
                    .push("ckpt_oob", ck.oob_scanned as f64)
                    .push("ckpt_mount_us", ck.mount_time.as_micros_f64())
                    .push("ckpt_probes", ck.blocks_probed as f64)
                    .push("used_ckpt", if ck.used_checkpoint { 1.0 } else { 0.0 })
                    .push("ckpt_pages_written", ckpt_writes as f64),
            );
        }
    }
    t
}

// ---------------------------------------------------------------------
// E22 — crash-point sweep during GC/merge

/// Controller-level crash driver: submits a scripted workload in windows
/// and advances one event boundary at a time, so a power cut can land at
/// any chosen point of the event stream — including mid-GC and mid-merge.
struct CrashDriver {
    c: Controller,
    now: SimTime,
    next_id: u64,
    writes: std::collections::BTreeMap<u64, u64>,
    /// Logical pages with at least one acknowledged write.
    acked: std::collections::BTreeSet<u64>,
}

impl CrashDriver {
    fn new(cfg: ControllerConfig) -> Self {
        CrashDriver {
            c: Controller::new(Geometry::tiny(), TimingSpec::slc(), cfg)
                .expect("E22 setup"),
            now: SimTime::ZERO,
            next_id: 0,
            writes: std::collections::BTreeMap::new(),
            acked: std::collections::BTreeSet::new(),
        }
    }

    fn write(&mut self, lpn: u64) {
        let id = self.next_id;
        self.next_id += 1;
        self.writes.insert(id, lpn);
        self.c.submit(
            SsdRequest {
                id,
                kind: RequestKind::Write,
                lpn,
                tags: IoTags::none(),
            },
            self.now,
        );
    }

    /// Advance up to `budget` event boundaries; returns the unused budget.
    fn step(&mut self, mut budget: u64) -> u64 {
        while budget > 0 {
            let Some(t) = self.c.next_event_time() else { break };
            budget -= 1;
            self.now = t;
            for comp in self.c.advance(t) {
                if let Some(&lpn) = self.writes.get(&comp.id) {
                    self.acked.insert(lpn);
                }
            }
        }
        budget
    }

    /// Sequentially fill the whole logical space (GC preconditioning).
    fn fill(&mut self) {
        let logical = self.c.logical_pages();
        for chunk_start in (0..logical).step_by(32) {
            for lpn in chunk_start..(chunk_start + 32).min(logical) {
                self.write(lpn);
            }
            self.step(u64::MAX);
        }
        self.acked.clear(); // measure only the churn phase
        self.writes.clear();
    }

    /// Run the churn workload, cutting after `crash_step` event
    /// boundaries (`u64::MAX` = run to quiescence). Returns remaining
    /// budget.
    fn churn(&mut self, ops: &[u64], qd: usize, crash_step: u64) -> u64 {
        let mut budget = crash_step;
        for chunk in ops.chunks(qd) {
            for &lpn in chunk {
                self.write(lpn);
            }
            budget = self.step(budget);
            if budget == 0 {
                return 0;
            }
        }
        budget
    }
}

/// The churn script: clustered overwrites on a full device — every write
/// forces reclamation (generic GC or log-block merges), so crash points
/// land inside GC reads/writes/erases and merge folds.
fn e22_ops(scale: Scale) -> Vec<u64> {
    let mut rng = SimRng::new(0xE22);
    (0..scale.ios(2048))
        .map(|_| rng.gen_range(96))
        .collect()
}

/// Pull the plug at evenly spaced points of a GC/merge-heavy event
/// stream, remount under both recovery modes, and verify that *every*
/// acknowledged write survives — the crash-atomicity proof for GC and
/// merge relocation (copies are sequence-stamped; victims are erased only
/// after all live copies landed). `lost` must be zero everywhere.
fn e22_crash_sweep(scale: Scale) -> Table {
    let mut t = Table::new(
        "E22",
        "Acknowledged writes surviving a power cut during GC/merge, per scheme × recovery mode",
        "scheme/mode",
    );
    let schemes: Vec<(&str, MappingKind)> = vec![
        ("page_map", MappingKind::PageMap),
        ("dftl", MappingKind::Dftl { cmt_entries: 24 }),
        (
            "hybrid",
            MappingKind::Hybrid {
                log_blocks: 3,
                merge: MergePolicy::Fifo,
            },
        ),
    ];
    let points = match scale {
        Scale::Smoke => 6u64,
        Scale::Demo => 12,
        Scale::Full => 24,
    };
    let ops = e22_ops(scale);
    let qd = 16;
    for (sname, mapping) in schemes {
        let cfg = ControllerConfig {
            mapping,
            checkpoint_interval_programs: 128,
            ..ControllerConfig::default()
        };
        // Rehearsal: total event boundaries of the churn phase.
        let mut d = CrashDriver::new(cfg.clone());
        d.fill();
        let left = d.churn(&ops, qd, u64::MAX);
        let total_steps = u64::MAX - left;
        let internal_erases =
            d.c.stats().gc_erases + d.c.stats().merge_erases + d.c.stats().wl_erases;
        for mode in [RecoveryMode::FullScan, RecoveryMode::Checkpoint] {
            let mut verified = 0u64;
            let mut lost = 0u64;
            let mut torn = 0u64;
            let mut interrupted = 0u64;
            let mut mount_us = 0.0f64;
            let mut oob = 0u64;
            for k in 1..=points {
                let crash_step = (k * total_steps / (points + 1)).max(1);
                let mut d = CrashDriver::new(cfg.clone());
                d.fill();
                d.churn(&ops, qd, crash_step);
                let acked = std::mem::take(&mut d.acked);
                let image = d.c.power_cut(d.now);
                let (c2, rep) = Controller::remount(image, cfg.clone(), mode)
                    .expect("E22 remount");
                let g = *c2.array().geometry();
                for &lpn in &acked {
                    let survives = c2.peek_mapping(lpn).is_some_and(|ppn| {
                        let addr = g.page_at(ppn);
                        c2.array().page_state(addr) == eagletree_flash::PageState::Valid
                            && !c2.array().is_torn(addr)
                    });
                    if survives {
                        verified += 1;
                    } else {
                        lost += 1;
                    }
                }
                c2.check_invariants();
                torn += rep.torn_pages;
                interrupted += rep.interrupted_erases;
                mount_us += rep.mount_time.as_micros_f64();
                oob += rep.oob_scanned;
            }
            t.rows.push(
                Row::new(format!("{sname}/{}", mode.name()))
                    .push("crash_points", points as f64)
                    .push("acked_verified", verified as f64)
                    .push("lost", lost as f64)
                    .push("torn_pages", torn as f64)
                    .push("interrupted_erases", interrupted as f64)
                    .push("mean_mount_us", mount_us / points as f64)
                    .push("mean_oob", oob as f64 / points as f64)
                    .push("pre_cut_internal_erases", internal_erases as f64),
            );
        }
    }
    t
}

// ---------------------------------------------------------------------
// E23 — trace replay vs characterizer-matched synthetic

/// Record counts for the replayed trace: the Full run streams a
/// million-IO trace end-to-end (the production-scale target), smoke keeps
/// CI in milliseconds.
fn e23_records(scale: Scale) -> u64 {
    match scale {
        Scale::Smoke => 6_000,
        Scale::Demo => 120_000,
        Scale::Full => 1_100_000,
    }
}

/// The canonical E23 trace shape: a skewed, bursty, read-mostly mix over
/// a footprint comfortably inside the device's logical space.
fn e23_shape() -> SynthShape {
    SynthShape {
        footprint_pages: 3_000,
        read_fraction: 0.7,
        trim_fraction: 0.0,
        zipf_theta: 1.1,
        pages_per_record: 1,
        mean_interarrival: SimDuration::from_micros(20),
        interarrival_cv: 2.0,
    }
}

/// The full production ingestion chain for E23: a deterministic MSR-style
/// CSV byte stream, parsed back through [`MsrCsvSource`], folded into the
/// device's logical space, and prefetched in bounded chunks (peak
/// residency reported through `probe`).
fn e23_stream(
    records: u64,
    seed: u64,
    logical: u64,
    probe: Arc<AtomicUsize>,
) -> ChunkedSource<Remap<MsrCsvSource<std::io::BufReader<SynthCsv<SyntheticTrace>>>>> {
    let csv = SynthCsv::new(SyntheticTrace::new(e23_shape(), records, seed), 4096);
    let parsed = MsrCsvSource::new(std::io::BufReader::new(csv), 4096);
    ChunkedSource::new(Remap::new(parsed, logical), E23_CHUNK).with_probe(probe)
}

/// Records buffered per prefetch chunk — the bound the smoke test holds
/// peak residency to.
const E23_CHUNK: usize = 4096;

/// "Can a characterizer-matched synthetic stand in for the real trace?" —
/// replay a production-style CSV trace open-loop against all three
/// mapping schemes, then characterize the same byte stream and replay a
/// synthesized look-alike. The paper's methodology question: rows pair
/// `scheme/replay` with `scheme/synth` so throughput, tails and WA can be
/// compared side by side; the lead `trace/profile` row records what the
/// characterizer measured.
fn e23_trace_vs_synth(scale: Scale) -> Table {
    let mut t = Table::new(
        "E23",
        "Replayed CSV trace vs characterizer-matched synthetic, per mapping scheme",
        "scheme/source",
    );
    let records = e23_records(scale);
    let logical = Setup::small().logical_pages();
    // Characterize one identical byte stream (same seed ⇒ same records).
    let mut probe_src = e23_stream(records, 0xE23, logical, Arc::new(AtomicUsize::new(0)));
    let profile = characterize(&mut probe_src);
    t.rows.push(
        Row::new("trace/profile".to_string())
            .push("records", profile.records as f64)
            .push("footprint_pages", profile.footprint_pages as f64)
            .push("read_frac", profile.read_fraction)
            .push("zipf_theta", profile.zipf_theta)
            .push("mean_gap_us", profile.mean_interarrival.as_micros_f64())
            .push("gap_cv", profile.interarrival_cv),
    );
    let schemes: Vec<(&str, MappingKind)> = vec![
        ("page_map", MappingKind::PageMap),
        (
            "dftl",
            MappingKind::Dftl {
                cmt_entries: ((logical * 25) / 100).max(8) as usize,
            },
        ),
        (
            "hybrid",
            MappingKind::Hybrid {
                log_blocks: 16,
                merge: MergePolicy::Fifo,
            },
        ),
    ];
    for (sname, mapping) in schemes {
        // Both arms: same device, same preconditioning, open-loop pacing
        // with the same warp — only the record source differs.
        let mut run = |label: String, w: Box<dyn Workload>, probe: Option<Arc<AtomicUsize>>| {
            let mut setup = Setup::small();
            setup.ctrl.mapping = mapping;
            setup.ctrl.wl.static_enabled = false;
            setup.os.queue_depth = 64;
            let (os, tids) = run_preconditioned(&setup, vec![w]);
            let base = snapshot(&os);
            let mut os = os;
            os.run();
            let m = measure_since(&os, &tids, &base);
            let mut row = Row::new(label)
                .push("iops", m.iops)
                .push("read_p99_us", m.read_p99_us)
                .push("write_p99_us", m.write_p99_us)
                .push("WA", m.write_amplification)
                .push("gc_erases", m.gc_erases as f64);
            if let Some(p) = probe {
                row = row.push("peak_resident_recs", p.load(Ordering::Relaxed) as f64);
            }
            t.rows.push(row);
        };
        let probe = Arc::new(AtomicUsize::new(0));
        let replay = ReplayThread::open_loop(
            e23_stream(records, 0xE23, logical, Arc::clone(&probe)),
            50.0,
        )
        .named("trace-replay");
        run(format!("{sname}/replay"), Box::new(replay), Some(probe));
        let synth =
            ReplayThread::open_loop(profile.synthesize(records, 0x53E23), 50.0).named("synth");
        run(format!("{sname}/synth"), Box::new(synth), None);
    }
    t
}

// ---------------------------------------------------------------------
// E24 — QoS isolation under a replayed noisy neighbor

/// E19 re-run with production-style traffic: the flooding writer tenant
/// is replaced by an open-loop replay of a bursty write-heavy CSV trace
/// (ingested through the full parse chain), so the QoS policies face
/// recorded burst structure instead of a synthetic steady flood. Same
/// acceptance bar as E19: WFQ / token bucket must still cut the reader's
/// p99.
fn e24_replayed_noisy_neighbor(scale: Scale) -> Table {
    let mut t = Table::new(
        "E24",
        "Reader-tenant tails vs a replayed bursty trace neighbor, per QoS policy",
        "qos",
    );
    for (name, qos) in qos_policies() {
        let mut setup = Setup::small();
        setup.os.qos = qos;
        setup.os.queue_depth = 32;
        setup.ctrl.wl.static_enabled = false;
        let logical = setup.logical_pages();
        let mut os = setup.build();
        os.add_thread(sequential_fill(32));
        os.run();
        // Latency-sensitive tenant — identical to E19's reader.
        let r_ios = scale.ios(logical / 2);
        let (reader, reader_tids) = TenantProfile::new("reader", 2048)
            .weight(8)
            .tier(0)
            .thread(
                Pumped::new(
                    ZipfGen::new(Region::whole(), r_ios, 0.99, ZipfKind::Reads),
                    4,
                    0xE19,
                )
                .named("zipf-reader"),
            )
            .install(&mut os);
        // Misbehaving neighbor: an open-loop replay of a write-heavy
        // bursty trace, parsed from CSV; the replay thread folds trace
        // pages into the tenant's namespace.
        let shape = SynthShape {
            footprint_pages: 4_096,
            read_fraction: 0.05,
            trim_fraction: 0.0,
            zipf_theta: 0.4,
            pages_per_record: 1,
            mean_interarrival: SimDuration::from_micros(10),
            interarrival_cv: 2.5,
        };
        let w_ios = scale.ios(logical * 2);
        let csv = SynthCsv::new(SyntheticTrace::new(shape, w_ios, 0xE24), 4096);
        let parsed = MsrCsvSource::new(std::io::BufReader::new(csv), 4096);
        let flood = ReplayThread::open_loop(ChunkedSource::new(parsed, E23_CHUNK), 20.0)
            .named("trace-flooder");
        let (writer, writer_tids) = TenantProfile::new("flooder", 4096)
            .weight(1)
            .tier(1)
            .iops_limit(4_000.0)
            .burst(4.0)
            .thread(flood)
            .install(&mut os);
        let base = snapshot(&os);
        os.run();
        let rm = measure_since(&os, &reader_tids, &base);
        let wm = measure_since(&os, &writer_tids, &base);
        let tail = os
            .tenant_stats(reader)
            .tail(eagletree_controller::OpClass::AppRead);
        t.rows.push(
            Row::new(name.to_string())
                .push("reader_p50_us", tail.p50.as_micros_f64())
                .push("reader_p95_us", tail.p95.as_micros_f64())
                .push("reader_p99_us", tail.p99.as_micros_f64())
                .push("reader_p999_us", tail.p999.as_micros_f64())
                .push("reader_iops", rm.iops)
                .push("flooder_iops", wm.iops)
                .push("reader_util", os.namespace_utilization(reader))
                .push("flooder_util", os.namespace_utilization(writer)),
        );
    }
    t
}

// ---------------------------------------------------------------------
// E25 — media reliability vs device age

/// The E25/E26 fault profile at `age` baseline P/E cycles: default
/// MLC-class failure curves, but disturb-sensitive cells so a short
/// virtual run accumulates enough raw errors for scrubbing to matter.
fn e25_fault(age: u32) -> FaultConfig {
    FaultConfig {
        raw_bits_per_disturb: 0.08,
        baseline_pe: age,
        ..FaultConfig::default()
    }
}

/// The E25/E26 scrub knob: disturb/retention thresholds low enough to
/// trip within a smoke-scale run, checked every `check_every_ops` ops.
fn e25_scrub(check_every_ops: u64) -> ScrubConfig {
    ScrubConfig {
        check_every_ops,
        read_disturb_threshold: 48,
        retention_threshold_s: 1.0,
        max_inflight: 1,
    }
}

/// Age the device (baseline P/E in the error curves) and read it hard:
/// raw bit errors grow with wear and read disturb, ECC retries charge
/// extra read time, and past the ECC's strength reads go uncorrectable.
/// Each scheme runs with and without background scrubbing — the scrubber
/// refreshes disturbed blocks before their errors outgrow the ECC, at
/// the cost of its own internal traffic.
fn e25_reliability_aging(scale: Scale) -> Table {
    let mut t = Table::new(
        "E25",
        "UBER / corrected bits / ECC retries / read tails vs device age, per scheme, ± scrubbing",
        "scheme/age/scrub",
    );
    let ages = scale.thin(&[0u32, 2_500, 5_000]);
    let schemes: Vec<(&str, MappingKind)> = vec![
        ("page_map", MappingKind::PageMap),
        ("dftl", MappingKind::Dftl { cmt_entries: 24 }),
        (
            "hybrid",
            MappingKind::Hybrid {
                log_blocks: 8,
                merge: MergePolicy::Fifo,
            },
        ),
    ];
    for (sname, mapping) in schemes {
        for &age in &ages {
            for scrub_on in [false, true] {
                let mut setup = Setup::small();
                setup.ctrl.mapping = mapping;
                setup.ctrl.wl.static_enabled = false;
                setup.ctrl.fault = Some(e25_fault(age));
                setup.ctrl.scrub = scrub_on.then(|| e25_scrub(64));
                let ios = scale.ios(setup.logical_pages() * 2);
                let (os, tids) = run_preconditioned(
                    &setup,
                    vec![Box::new(
                        Pumped::new(
                            ZipfGen::new(Region::whole(), ios, 0.99, ZipfKind::Reads),
                            32,
                            0xE25,
                        )
                        .named("zipf-reader"),
                    )],
                );
                let base = snapshot(&os);
                let mut os = os;
                os.run();
                let m = measure_since(&os, &tids, &base);
                let rel = m.reliability.expect("fault model installed");
                t.rows.push(
                    Row::new(format!(
                        "{sname}/pe{age}/{}",
                        if scrub_on { "scrub" } else { "noscrub" }
                    ))
                    .push("read_us", m.read_mean_us)
                    .push("read_p99_us", m.read_p99_us)
                    .push("uber", rel.uber)
                    .push("corrected_bits", rel.corrected_bits as f64)
                    .push("retries", rel.read_retries as f64)
                    .push("uncorrectable", rel.uncorrectable_reads as f64)
                    .push("grown_bad", rel.grown_bad_blocks as f64)
                    .push("remaps", rel.program_remaps as f64)
                    .push("scrub_refreshes", rel.scrub_refreshes as f64)
                    .push("lost_lpns", rel.lost_lpns as f64),
                );
            }
        }
    }
    t
}

// ---------------------------------------------------------------------
// E26 — scrub interference

/// What does reliability maintenance cost the foreground? One
/// latency-sensitive zipf reader (the E19 tenant-histogram machinery)
/// runs on an aged, disturb-sensitive device while the scrub cadence
/// sweeps from off to eager. Scrub refreshes ride the scheduler as
/// `ScrubRead`/`ScrubWrite`, so their interference lands in the reader's
/// tail percentiles; the reliability columns show what the interference
/// buys.
fn e26_scrub_interference(scale: Scale) -> Table {
    let mut t = Table::new(
        "E26",
        "Foreground reader tails and reliability vs scrub cadence (aged device)",
        "scrub_cadence",
    );
    let cadences: Vec<(&str, Option<u64>)> = vec![
        ("off", None),
        ("lazy", Some(1024)),
        ("steady", Some(256)),
        ("eager", Some(64)),
    ];
    for (name, every) in scale.thin(&cadences) {
        let mut setup = Setup::small();
        setup.os.queue_depth = 32;
        setup.ctrl.wl.static_enabled = false;
        setup.ctrl.fault = Some(e25_fault(2_500));
        setup.ctrl.scrub = every.map(e25_scrub);
        let logical = setup.logical_pages();
        let mut os = setup.build();
        os.add_thread(sequential_fill(32));
        os.run();
        let (reader, reader_tids) = TenantProfile::new("reader", 2048)
            .weight(8)
            .tier(0)
            .thread(
                Pumped::new(
                    ZipfGen::new(Region::whole(), scale.ios(logical), 0.99, ZipfKind::Reads),
                    8,
                    0xE26,
                )
                .named("zipf-reader"),
            )
            .install(&mut os);
        let base = snapshot(&os);
        os.run();
        let rm = measure_since(&os, &reader_tids, &base);
        let tail = os
            .tenant_stats(reader)
            .tail(eagletree_controller::OpClass::AppRead);
        let rel = rm.reliability.expect("fault model installed");
        t.rows.push(
            Row::new(name.to_string())
                .push("reader_p50_us", tail.p50.as_micros_f64())
                .push("reader_p95_us", tail.p95.as_micros_f64())
                .push("reader_p99_us", tail.p99.as_micros_f64())
                .push("reader_p999_us", tail.p999.as_micros_f64())
                .push("reader_iops", rm.iops)
                .push("scrub_refreshes", rel.scrub_refreshes as f64)
                .push("scrub_reads", rel.scrub_reads as f64)
                .push("scrub_writes", rel.scrub_writes as f64)
                .push("corrected_bits", rel.corrected_bits as f64)
                .push("retries", rel.read_retries as f64)
                .push("uncorrectable", rel.uncorrectable_reads as f64),
        );
    }
    t
}

// ---------------------------------------------------------------------
// E27 — tail forensics

/// *Where* does the tail come from? An E19/E26-style contention run — a
/// latency-sensitive Zipf reader against a flooding sequential writer on
/// an aged device — with the span collector enabled, per QoS arm. The
/// reader's stage-attributed breakdown must explain ≥95% of its measured
/// end-to-end latency at both p50 and p999 (the spans are exhaustive by
/// construction — any gap is a lost stage), and every read slower than
/// the p999 threshold is bucketed by its *dominant* stage, turning "the
/// tail got worse" into "the tail is scheduler-pending time behind GC".
fn e27_tail_forensics(scale: Scale) -> Table {
    let mut t = Table::new(
        "E27",
        "Reader tail explained per stage; p999 outliers bucketed by dominant stage",
        "qos",
    );
    for (name, qos) in [
        ("none", QosPolicy::None),
        ("token_bucket", QosPolicy::TokenBucket),
    ] {
        let mut setup = Setup::small();
        setup.os.qos = qos;
        setup.os.queue_depth = 32;
        setup.ctrl.wl.static_enabled = false;
        setup.ctrl.fault = Some(e25_fault(2_500));
        setup.ctrl.obs.span_capacity = 1 << 18;
        setup.ctrl.obs.timeline_interval_us = 500;
        let logical = setup.logical_pages();
        let mut os = setup.build();
        os.add_thread(sequential_fill(32));
        os.run();
        let (reader, _) = TenantProfile::new("reader", 2048)
            .weight(8)
            .tier(0)
            .thread(
                Pumped::new(
                    ZipfGen::new(Region::whole(), scale.ios(logical / 2), 0.99, ZipfKind::Reads),
                    4,
                    0xE27,
                )
                .named("zipf-reader"),
            )
            .install(&mut os);
        let (flooder, _) = TenantProfile::new("flooder", 4096)
            .weight(1)
            .tier(1)
            .iops_limit(4_000.0)
            .burst(4.0)
            .thread(
                Pumped::new(SeqWriteGen::new(Region::whole(), scale.ios(logical * 2)), 256, 0x72E)
                    .named("seq-flooder"),
            )
            .install(&mut os);
        os.run();
        let tail = os.tenant_stats(reader).tail(eagletree_controller::OpClass::AppRead);
        let bd = os
            .tenant_stats(reader)
            .stage_breakdown(RequestKind::Read)
            .expect("observability enabled")
            .clone();
        let fl_qos_us = os
            .tenant_stats(flooder)
            .stage_breakdown(RequestKind::Write)
            .map_or(0.0, |b| b.mean_us(eagletree_core::Stage::QosHold));
        // How much of the measured end-to-end tail the stage sums explain:
        // both sides come from the same log-bucketed histogram family, so
        // a lost stage shows up as a ratio well below 1.
        let span_tail = bd.total_tail();
        let explained = |span: SimDuration, measured: SimDuration| {
            if measured == SimDuration::ZERO {
                0.0
            } else {
                span.as_nanos() as f64 / measured.as_nanos() as f64
            }
        };
        // Bucket the p999 outliers by their dominant stage.
        let reader_tag = Some(reader as u32);
        let threshold = tail.p999.as_nanos();
        let mut outliers = [0u64; eagletree_core::Stage::COUNT];
        let obs = os.obs().expect("observability enabled");
        for s in obs.spans() {
            if s.kind == "AppRead" && s.tenant == reader_tag && s.stages.total() >= threshold {
                outliers[s.stages.dominant() as usize] += 1;
            }
        }
        let mut row = Row::new(name.to_string())
            .push("reader_p50_us", tail.p50.as_micros_f64())
            .push("reader_p99_us", tail.p99.as_micros_f64())
            .push("reader_p999_us", tail.p999.as_micros_f64())
            .push("explained_p50", explained(span_tail.p50, tail.p50))
            .push("explained_p999", explained(span_tail.p999, tail.p999));
        row = crate::metrics::push_stage_columns(row, &bd);
        row = row.push("fl_qos_us", fl_qos_us);
        row = row.push("p999_outliers", outliers.iter().sum::<u64>() as f64);
        for (i, stage) in eagletree_core::Stage::ALL.iter().enumerate() {
            row = row.push(
                match stage {
                    eagletree_core::Stage::QueueWait => "out_queue",
                    eagletree_core::Stage::QosHold => "out_qos",
                    eagletree_core::Stage::SchedPending => "out_pend",
                    eagletree_core::Stage::Media => "out_media",
                    eagletree_core::Stage::Retry => "out_retry",
                },
                outliers[i] as f64,
            );
        }
        row = row
            .push("spans", obs.closed_count() as f64)
            .push("spans_dropped", obs.dropped() as f64)
            .push("tl_rows", os.timeline().map_or(0, |tl| tl.len()) as f64);
        t.rows.push(row);
    }
    t
}

// ---------------------------------------------------------------------
// G1 — the game

/// The demo game: grid-search scheduling-related knobs and score each
/// combination by throughput balanced against latency imbalance and
/// variability between reads and writes (§3). Rows are sorted best-first.
fn g1_game(scale: Scale) -> Table {
    let mut t = Table::new(
        "G1",
        "Scheduling game: score = iops/1k − imbalance − variability",
        "combo",
    );
    let pols: Vec<(&str, SchedPolicy)> = vec![
        ("fifo", SchedPolicy::Fifo),
        ("reads_first", SchedPolicy::reads_first()),
        ("edf", SchedPolicy::edf_default()),
        ("fair", SchedPolicy::fair_equal()),
    ];
    let pols = scale.thin(&pols);
    let greeds = scale.thin(&[1u32, 4]);
    let qds = scale.thin(&[8usize, 32]);
    let mut rows = Vec::new();
    for (pname, pol) in &pols {
        for &g in &greeds {
            for &qd in &qds {
                let mut setup = Setup::small();
                setup.ctrl.sched = pol.clone();
                setup.ctrl.gc.greediness = g;
                setup.ctrl.wl.static_enabled = false;
                setup.os.queue_depth = qd;
                let ios = scale.ios(setup.logical_pages() * 2);
                let (os, tids) = run_preconditioned(
                    &setup,
                    vec![Box::new(
                        Pumped::new(MixedGen::new(Region::whole(), ios, 0.5), 64, 0x61)
                            .named("game"),
                    )],
                );
                let base = snapshot(&os);
                let mut os = os;
                os.run();
                let m = measure_since(&os, &tids, &base);
                let imbalance = (m.read_mean_us - m.write_mean_us).abs() / 100.0;
                let variability = (m.read_stddev_us + m.write_stddev_us) / 200.0;
                let score = m.iops / 1000.0 - imbalance - variability;
                rows.push(
                    Row::new(format!("{pname}/g{g}/qd{qd}"))
                        .push("score", score)
                        .push("iops", m.iops)
                        .push("read_us", m.read_mean_us)
                        .push("write_us", m.write_mean_us)
                        .push("read_sd_us", m.read_stddev_us)
                        .push("write_sd_us", m.write_stddev_us),
                );
            }
        }
    }
    rows.sort_by(|a, b| {
        b.get("score")
            .partial_cmp(&a.get("score"))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    t.rows = rows;
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_complete_and_indexed() {
        let s = all();
        assert_eq!(s.len(), 28);
        let ids: Vec<&str> = s.iter().map(|e| e.id).collect();
        assert_eq!(
            ids,
            vec![
                "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12",
                "E13", "E14", "E15", "E16", "E17", "E18", "E19", "E20", "E21", "E22", "E23",
                "E24", "E25", "E26", "E27", "G1"
            ]
        );
        assert!(by_id("e3").is_some());
        assert!(by_id("G1").is_some());
        assert!(by_id("E99").is_none());
    }

    #[test]
    fn smoke_e25_reliability_scales_with_age() {
        let t = e25_reliability_aging(Scale::Smoke);
        // 3 schemes x 2 ages (smoke keeps the sweep's ends) x ± scrub.
        assert_eq!(t.rows.len(), 12);
        let get = |label: String, col: &str| {
            t.rows
                .iter()
                .find(|r| r.label == label)
                .unwrap_or_else(|| panic!("missing row {label}"))
                .get(col)
                .unwrap()
        };
        for scheme in ["page_map", "dftl", "hybrid"] {
            // An aged device needs more ECC retries (and read-retry time)
            // than a fresh one — the aging curve actually bites.
            assert!(
                get(format!("{scheme}/pe5000/noscrub"), "retries")
                    > get(format!("{scheme}/pe0/noscrub"), "retries"),
                "retries must grow with device age: {}",
                t.render()
            );
            // The scrubber refreshed at-risk blocks when enabled and
            // never ran when disabled.
            assert_eq!(get(format!("{scheme}/pe5000/noscrub"), "scrub_refreshes"), 0.0);
            assert!(
                get(format!("{scheme}/pe5000/scrub"), "scrub_refreshes") > 0.0,
                "an aged disturb-heavy run must trigger scrubbing: {}",
                t.render()
            );
            // At these ECC settings nothing goes uncorrectable, so the
            // lost-data ledger stays empty.
            assert_eq!(get(format!("{scheme}/pe5000/scrub"), "lost_lpns"), 0.0);
        }
    }

    #[test]
    fn smoke_e26_scrub_cadence_trades_interference() {
        let t = e26_scrub_interference(Scale::Smoke);
        // Smoke thins the cadence sweep to off + eager.
        assert_eq!(t.rows.len(), 2);
        let off = &t.rows[0];
        let eager = &t.rows[1];
        assert_eq!(off.label, "off");
        assert_eq!(off.get("scrub_refreshes").unwrap(), 0.0);
        assert_eq!(off.get("scrub_reads").unwrap(), 0.0);
        assert!(
            eager.get("scrub_refreshes").unwrap() > 0.0,
            "eager cadence must scrub: {}",
            t.render()
        );
        assert!(eager.get("scrub_reads").unwrap() > 0.0);
        // Both arms measured a live foreground.
        assert!(off.get("reader_p99_us").unwrap() > 0.0);
        assert!(eager.get("reader_p99_us").unwrap() > 0.0);
    }

    #[test]
    fn smoke_e21_checkpoint_cuts_mount_scan() {
        let t = e21_mount_time(Scale::Smoke);
        assert!(!t.rows.is_empty());
        for r in &t.rows {
            assert_eq!(
                r.get("used_ckpt").unwrap(),
                1.0,
                "a checkpoint must commit before the cut: {}",
                t.render()
            );
            // The acceptance bar: checkpointed recovery scans strictly
            // fewer OOB entries than the full scan, and mounts no slower.
            assert!(
                r.get("ckpt_oob").unwrap() < r.get("full_oob").unwrap(),
                "checkpoint replay must scan less than a full scan: {}",
                t.render()
            );
            assert!(
                r.get("ckpt_mount_us").unwrap() <= r.get("full_mount_us").unwrap(),
                "checkpoint replay must not mount slower: {}",
                t.render()
            );
            assert!(r.get("ckpt_pages_written").unwrap() > 0.0);
        }
        // Fuller devices pay more for the full scan.
        let first = t.rows.first().unwrap().get("full_oob").unwrap();
        let last = t.rows.last().unwrap().get("full_oob").unwrap();
        assert!(last > first, "full-scan cost should grow with fill");
    }

    #[test]
    fn smoke_e22_no_acknowledged_write_lost() {
        let t = e22_crash_sweep(Scale::Smoke);
        assert_eq!(t.rows.len(), 6, "3 schemes x 2 recovery modes");
        let mut torn_total = 0.0;
        for r in &t.rows {
            assert_eq!(
                r.get("lost").unwrap(),
                0.0,
                "acknowledged writes lost across a power cut: {}",
                t.render()
            );
            assert!(r.get("acked_verified").unwrap() > 0.0);
            assert!(
                r.get("pre_cut_internal_erases").unwrap() > 0.0,
                "the sweep must actually crash into GC/merge activity"
            );
            torn_total += r.get("torn_pages").unwrap();
        }
        assert!(
            torn_total > 0.0,
            "some crash point should land mid-program: {}",
            t.render()
        );
    }

    #[test]
    fn smoke_e19_qos_isolates_the_reader_tenant() {
        let t = e19_noisy_neighbor(Scale::Smoke);
        let p99 = |label: &str| {
            t.rows
                .iter()
                .find(|r| r.label == label)
                .unwrap()
                .get("reader_p99_us")
                .unwrap()
        };
        let (none, wfq, tb) = (p99("none"), p99("wfq"), p99("token_bucket"));
        // The acceptance bar: WFQ or the token bucket must cut the
        // reader's p99 under a flooding neighbor at least 2x.
        assert!(
            none >= 2.0 * wfq.min(tb),
            "no >=2x isolation win: none={none:.0}us wfq={wfq:.0}us tb={tb:.0}us\n{}",
            t.render()
        );
        // Namespace accounting: the flooder writes, the reader does not.
        let row = t.rows.iter().find(|r| r.label == "none").unwrap();
        assert!(row.get("flooder_util").unwrap() > 0.0);
        assert_eq!(row.get("reader_util").unwrap(), 0.0);
    }

    #[test]
    fn smoke_e23_replays_and_matches_the_trace() {
        let t = e23_trace_vs_synth(Scale::Smoke);
        // 1 profile row + 3 schemes × {replay, synth}.
        assert_eq!(t.rows.len(), 7, "{}", t.render());
        let profile = t.rows.first().unwrap();
        assert_eq!(profile.get("records").unwrap(), e23_records(Scale::Smoke) as f64);
        // The characterizer should land near the generating shape.
        assert!((profile.get("read_frac").unwrap() - 0.7).abs() < 0.05, "{}", t.render());
        assert!((profile.get("zipf_theta").unwrap() - 1.1).abs() < 0.4, "{}", t.render());
        for r in t.rows.iter().skip(1) {
            assert!(r.get("iops").unwrap() > 0.0, "{}", t.render());
            // The streaming chain must never buffer more than one chunk.
            if let Some(peak) = r.get("peak_resident_recs") {
                assert!(
                    peak <= E23_CHUNK as f64,
                    "trace residency exceeded the chunk bound: {}",
                    t.render()
                );
                assert!(peak > 0.0);
            }
        }
        // Every scheme ran both arms.
        for s in ["page_map", "dftl", "hybrid"] {
            assert!(t.rows.iter().any(|r| r.label == format!("{s}/replay")));
            assert!(t.rows.iter().any(|r| r.label == format!("{s}/synth")));
        }
    }

    #[test]
    fn smoke_e24_qos_still_isolates_under_replayed_traffic() {
        let t = e24_replayed_noisy_neighbor(Scale::Smoke);
        let p99 = |label: &str| {
            t.rows
                .iter()
                .find(|r| r.label == label)
                .unwrap()
                .get("reader_p99_us")
                .unwrap()
        };
        let (none, wfq, tb) = (p99("none"), p99("wfq"), p99("token_bucket"));
        // E19's acceptance bar holds under recorded burst structure too.
        assert!(
            none >= 2.0 * wfq.min(tb),
            "no >=2x isolation win under replay: none={none:.0}us wfq={wfq:.0}us tb={tb:.0}us\n{}",
            t.render()
        );
        let row = t.rows.iter().find(|r| r.label == "none").unwrap();
        assert!(row.get("flooder_iops").unwrap() > 0.0, "{}", t.render());
        assert!(row.get("flooder_util").unwrap() > 0.0);
    }

    #[test]
    fn smoke_e20_covers_the_policy_grid() {
        let t = e20_qos_sweep(Scale::Smoke);
        // 4 policies × thinned weights {1,4} × thinned counts {2,4}.
        assert_eq!(t.rows.len(), 16);
        for r in &t.rows {
            assert!(r.get("worst_reader_p99_us").unwrap() > 0.0, "{}", t.render());
            let jain = r.get("jain").unwrap();
            assert!((0.0..=1.0 + 1e-9).contains(&jain));
        }
        // Isolation must show up in the grid too: some QoS row beats the
        // flat dispatcher on the worst reader p99.
        let flat = t.rows.iter().find(|r| r.label.starts_with("none/")).unwrap();
        let best_qos = t
            .rows
            .iter()
            .filter(|r| !r.label.starts_with("none/"))
            .map(|r| r.get("worst_reader_p99_us").unwrap())
            .fold(f64::INFINITY, f64::min);
        assert!(best_qos < flat.get("worst_reader_p99_us").unwrap());
    }

    #[test]
    fn smoke_e6_covers_all_three_mapping_families() {
        let t = e6_mapping(Scale::Smoke);
        let labels: Vec<&str> = t.rows.iter().map(|r| r.label.as_str()).collect();
        assert!(labels.contains(&"page_map"));
        assert!(labels.iter().any(|l| l.starts_with("dftl_")));
        assert!(labels.iter().any(|l| l.starts_with("hybrid_")));
        // The hybrid's selling point: far less mapping RAM than page map.
        let pm = t.rows.iter().find(|r| r.label == "page_map").unwrap();
        let hy = t.rows.iter().find(|r| r.label.starts_with("hybrid_")).unwrap();
        assert!(
            hy.get("map_ram_kb").unwrap() * 4.0 < pm.get("map_ram_kb").unwrap(),
            "hybrid mapping RAM should be far below the page map's"
        );
        assert!(hy.get("merges").unwrap() > 0.0, "hybrid rows must merge");
    }

    #[test]
    fn smoke_e17_bigger_log_pool_cuts_wa() {
        let t = e17_log_budget(Scale::Smoke);
        let small = t.rows.first().unwrap();
        let big = t.rows.last().unwrap();
        assert!(
            big.get("WA").unwrap() < small.get("WA").unwrap(),
            "more log blocks must reduce merge write amplification: {}",
            t.render()
        );
        assert!(small.get("full_merges").unwrap() > 0.0);
    }

    #[test]
    fn smoke_e16_pipelining_speeds_sequential_writes() {
        let t = e16_pipelining(Scale::Smoke);
        let off = t.rows[0].get("iops").unwrap();
        let on = t.rows[1].get("iops").unwrap();
        assert!(
            on > off * 1.1,
            "cached programming should lift sequential writes: on={on:.0} off={off:.0}"
        );
    }

    #[test]
    fn smoke_e13_buffer_absorbs_writes() {
        let t = e13_write_buffer(Scale::Smoke);
        let none = t.rows.first().unwrap().get("WA").unwrap();
        let big = t.rows.last().unwrap().get("WA").unwrap();
        assert!(
            big < none,
            "a 256-page buffer must cut WA under zipf: {big} !< {none}"
        );
    }

    #[test]
    fn smoke_e1_scales_with_parallelism() {
        let t = e1_parallelism(Scale::Smoke);
        assert!(t.rows.len() >= 2);
        let first = t.rows.first().unwrap();
        let last = t.rows.last().unwrap();
        assert!(
            last.get("iops").unwrap() > first.get("iops").unwrap() * 2.0,
            "64 LUNs should far outrun 1 LUN: {t:?}",
            t = t.render()
        );
    }

    #[test]
    fn smoke_e2_throughput_rises_with_qd() {
        let t = e2_queue_depth(Scale::Smoke);
        let qd1 = t.rows.first().unwrap().get("iops").unwrap();
        let qd64 = t.rows.last().unwrap().get("iops").unwrap();
        assert!(qd64 > qd1 * 2.0, "qd=64 ({qd64}) !> 2×qd=1 ({qd1})");
    }

    #[test]
    fn smoke_e12_slc_beats_mlc() {
        let t = e12_chip_type(Scale::Smoke);
        let slc = t.rows[0].get("iops").unwrap();
        let mlc = t.rows[1].get("iops").unwrap();
        assert!(slc > mlc, "SLC {slc} should beat MLC {mlc}");
    }

    #[test]
    fn smoke_e18_reports_simulator_throughput() {
        let t = e18_sim_throughput(Scale::Smoke);
        // Smoke thins to first/last of each axis: 2 geometries × 2 qds,
        // each under both queue backends.
        assert_eq!(t.rows.len(), 8);
        for r in &t.rows {
            assert!(r.get("events").unwrap() > 0.0, "no events simulated: {t}", t = t.render());
            assert!(r.get("events_per_sec").unwrap() > 0.0);
            assert!(r.get("queue_ops").unwrap() > 0.0);
            assert!(r.get("WA").unwrap() >= 1.0, "overwrite phase must hit flash");
        }
        // Backend pairs must simulate the identical workload: same event
        // count, same queue ops, same WA — only wall time may differ.
        for pair in t.rows.chunks(2) {
            for col in ["events", "queue_ops", "iops", "WA"] {
                assert_eq!(
                    pair[0].get(col),
                    pair[1].get(col),
                    "calendar/heap rows diverged on {col}: {t}",
                    t = t.render()
                );
            }
        }
        // The GC-heavy phase must actually trigger GC at the small geometry.
        assert!(
            t.rows[0].get("WA").unwrap() > 1.0,
            "steady-state overwrite should amplify writes: {t}",
            t = t.render()
        );
    }

    #[test]
    fn smoke_e27_stage_breakdown_explains_the_tail() {
        let t = e27_tail_forensics(Scale::Smoke);
        assert_eq!(t.rows.len(), 2);
        for r in &t.rows {
            // The acceptance bar: the stage sums must explain ≥95% of the
            // measured end-to-end latency at the median and deep tail.
            for col in ["explained_p50", "explained_p999"] {
                let e = r.get(col).unwrap();
                assert!(
                    (0.95..=1.05).contains(&e),
                    "{col}={e:.3} for {}: breakdown lost a stage\n{}",
                    r.label,
                    t.render()
                );
            }
            // Every p999 outlier got a dominant-stage bucket, and the
            // buckets sum to the outlier count.
            let n = r.get("p999_outliers").unwrap();
            assert!(n > 0.0, "no p999 outliers found: {}", t.render());
            let sum: f64 = ["out_queue", "out_qos", "out_pend", "out_media", "out_retry"]
                .iter()
                .map(|c| r.get(c).unwrap())
                .sum();
            assert_eq!(sum, n);
            assert!(r.get("spans").unwrap() > 0.0);
            assert!(r.get("tl_rows").unwrap() > 0.0, "timeline sampled no intervals");
            // Media time is charged on every read that touched flash.
            assert!(r.get("st_media_us").unwrap() > 0.0);
        }
        // The QosHold stage only exists under the token bucket: the
        // rate-capped flooder accrues hold time, the flat dispatcher none.
        let none = t.rows.iter().find(|r| r.label == "none").unwrap();
        let tb = t.rows.iter().find(|r| r.label == "token_bucket").unwrap();
        assert_eq!(none.get("fl_qos_us").unwrap(), 0.0);
        assert!(
            tb.get("fl_qos_us").unwrap() > 0.0,
            "token bucket must charge the flooder hold time: {}",
            t.render()
        );
    }

    #[test]
    fn smoke_g1_produces_sorted_leaderboard() {
        let t = g1_game(Scale::Smoke);
        assert!(t.rows.len() >= 4);
        let scores: Vec<f64> = t.rows.iter().map(|r| r.get("score").unwrap()).collect();
        let mut sorted = scores.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        assert_eq!(scores, sorted, "leaderboard must be best-first");
    }
}
