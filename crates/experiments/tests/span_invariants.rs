//! Property tests for the lifecycle-span collector: across randomized
//! workloads (mix, intensity, queue depth, event-queue backend, write
//! buffering), the span accounting must hold *exactly* — these are the
//! invariants the stage-attributed latency columns rest on.
//!
//! * every span closes with monotone timestamps (`start <= end`, every
//!   busy slice inside `[start, end]`);
//! * the stage sums equal the end-to-end duration to the nanosecond (the
//!   cursor construction makes attribution exhaustive — nothing is lost
//!   and nothing double-charged);
//! * every acknowledged application IO has a closed span, and the
//!   per-tenant stage breakdowns saw exactly the completed IOs;
//! * nothing stays open once the simulation quiesces.

use eagletree_core::{ObsConfig, QueueKind};
use eagletree_experiments::Setup;
use eagletree_workloads::{sequential_fill, MixedGen, Pumped, Region};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn spans_account_exactly_for_every_acked_io(
        ios in 200u64..1200,
        qd in 1usize..32,
        read_pct in 0u32..101,
        buffer in prop_oneof![Just(0u64), Just(16u64)],
        heap in any::<bool>(),
        seed in 0u64..1_000_000,
    ) {
        let mut setup = Setup::tiny();
        setup.ctrl.obs = ObsConfig {
            span_capacity: 1 << 16,
            timeline_interval_us: 250,
        };
        setup.ctrl.write_buffer_pages = buffer;
        let kind = if heap { QueueKind::Heap } else { QueueKind::Calendar };
        setup.ctrl.queue = kind;
        setup.os.queue = kind;
        setup.os.queue_depth = qd;
        let mut os = setup.build();
        os.add_thread(sequential_fill(32));
        os.add_thread(Box::new(
            Pumped::new(
                MixedGen::new(Region::whole(), ios, read_pct as f64 / 100.0),
                qd as u64,
                seed,
            )
            .named("mixed"),
        ));
        os.run();

        let stats = os.tenant_stats(0);
        let (reads, writes) = (stats.reads_completed, stats.writes_completed);
        let obs = os.obs().expect("observability enabled");
        prop_assert_eq!(obs.open_count(), 0, "spans left open at quiescence");
        prop_assert_eq!(obs.dropped(), 0, "ring sized to keep every span");

        let (mut app_reads, mut app_writes) = (0u64, 0u64);
        for s in obs.spans() {
            // Monotone timestamps and contained busy slices.
            prop_assert!(s.end >= s.start, "span #{} ends before it starts", s.id);
            for &(_, from, to) in &s.busy {
                prop_assert!(from <= to, "span #{} has a negative busy slice", s.id);
                prop_assert!(
                    s.start <= from && to <= s.end,
                    "span #{} busy slice outside its lifetime", s.id
                );
            }
            // Exhaustive attribution: stage sums equal end-to-end exactly.
            prop_assert_eq!(
                s.stages.total(),
                s.end.since(s.start).as_nanos(),
                "span #{} ({}) lost time between stages", s.id, s.kind
            );
            // Application lifecycle spans carry their tenant; internal ops
            // scheduled in the app classes (e.g. write-buffer flushes ride
            // `AppWrite`) do not.
            if s.tenant.is_some() {
                match s.kind {
                    "AppRead" => app_reads += 1,
                    "AppWrite" => app_writes += 1,
                    _ => {}
                }
            }
        }
        // Every acknowledged application IO closed a span (the fill thread
        // and the measured thread both run in the default tenant).
        prop_assert_eq!(app_reads, reads, "acked reads without a closed span");
        prop_assert_eq!(app_writes, writes, "acked writes without a closed span");
        // …and the tenant stage breakdowns saw exactly those IOs.
        use eagletree_controller::RequestKind;
        let bd_reads = stats.stage_breakdown(RequestKind::Read).map_or(0, |b| b.count());
        let bd_writes = stats.stage_breakdown(RequestKind::Write).map_or(0, |b| b.count());
        prop_assert_eq!(bd_reads, reads);
        prop_assert_eq!(bd_writes, writes);
    }
}
