//! Determinism regression for the multi-tenant subsystem: a fixed-seed
//! 3-tenant namespaced run must produce byte-identical fingerprints across
//! repeated runs under every `QosPolicy`. Ordering bugs in the two-stage
//! dispatcher (tenant selection × thread selection), the token-refill
//! wake-ups or the WFQ virtual clock would show up here as flaky
//! experiment numbers; instead they fail loudly.

use eagletree_controller::OpClass;
use eagletree_experiments::Setup;
use eagletree_os::{Os, QosPolicy};
use eagletree_workloads::{
    sequential_fill, MixedGen, Pumped, RandReadGen, Region, TenantProfile, ZipfGen, ZipfKind,
};

/// Build and run one fixed 3-tenant scenario under `qos`; fingerprint
/// everything observable (virtual clock, per-tenant counts and tails,
/// namespace utilization, controller counters).
fn run_fingerprint(qos: QosPolicy) -> String {
    run_fingerprint_obs(qos, eagletree_core::ObsConfig::default())
}

fn run_fingerprint_obs(qos: QosPolicy, obs: eagletree_core::ObsConfig) -> String {
    let mut setup = Setup::small();
    setup.os.qos = qos;
    setup.os.queue_depth = 16;
    setup.ctrl.wl.static_enabled = false;
    setup.ctrl.obs = obs;
    let mut os = setup.build();
    os.add_thread(sequential_fill(32));
    os.run();
    // Three tenants with distinct shapes: a weighted Zipf reader, a mixed
    // read/write tenant, and a rate-capped random reader.
    let (t0, _) = TenantProfile::new("zipf-reader", 1024)
        .weight(4)
        .tier(0)
        .thread(Pumped::new(
            ZipfGen::new(Region::whole(), 600, 0.99, ZipfKind::Reads),
            4,
            0xA0,
        ))
        .install(&mut os);
    let (t1, _) = TenantProfile::new("mixed", 2048)
        .weight(2)
        .tier(1)
        .thread(Pumped::new(MixedGen::new(Region::whole(), 900, 0.5), 16, 0xA1))
        .install(&mut os);
    let (t2, _) = TenantProfile::new("capped", 512)
        .weight(1)
        .tier(2)
        .iops_limit(8_000.0)
        .page_bw_limit(8_000.0)
        .burst(4.0)
        .thread(Pumped::new(RandReadGen::new(Region::whole(), 400), 8, 0xA2))
        .install(&mut os);
    os.run();
    fingerprint(&os, &[t0, t1, t2])
}

fn fingerprint(os: &Os, tenants: &[usize]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(out, "now={} events={}", os.now().as_nanos(), os.events_simulated()).unwrap();
    for &t in tenants {
        let s = os.tenant_stats(t);
        let (r, w) = (s.tail(OpClass::AppRead), s.tail(OpClass::AppWrite));
        writeln!(
            out,
            "tenant={} ns={:?} r={} w={} trim={} valid={} util={} \
             rp=[{},{},{},{}] wp=[{},{},{},{}] wait={}",
            os.tenant_name(t),
            os.namespace(t),
            s.reads_completed,
            s.writes_completed,
            s.trims_completed,
            s.valid_pages(),
            os.namespace_utilization(t).to_bits(),
            r.p50.as_nanos(),
            r.p95.as_nanos(),
            r.p99.as_nanos(),
            r.p999.as_nanos(),
            w.p50.as_nanos(),
            w.p95.as_nanos(),
            w.p99.as_nanos(),
            w.p999.as_nanos(),
            s.queue_wait_us.mean().to_bits(),
        )
        .unwrap();
    }
    let c = os.controller();
    let a = c.array().counters();
    writeln!(
        out,
        "ctrl reads={} programs={} erases={} wa={}",
        a.reads,
        a.programs,
        a.erases,
        c.write_amplification().to_bits()
    )
    .unwrap();
    out
}

fn policies() -> Vec<QosPolicy> {
    vec![
        QosPolicy::None,
        QosPolicy::Wfq,
        QosPolicy::TokenBucket,
        QosPolicy::StrictTiers { starvation_us: 20_000 },
    ]
}

#[test]
fn three_tenant_run_is_byte_identical_under_every_qos_policy() {
    for qos in policies() {
        let a = run_fingerprint(qos.clone());
        let b = run_fingerprint(qos.clone());
        assert_eq!(a, b, "fingerprint drift under {qos:?}");
        assert!(a.contains("tenant=zipf-reader"));
    }
}

#[test]
fn observability_does_not_perturb_tenant_runs() {
    // The whole OS-side instrumentation path — span opening per submitted
    // IO, QoS-hold marking, stage accounting on completion, timeline
    // sampling — must be invisible to the simulation itself: the
    // fingerprint of an instrumented run matches the plain run byte for
    // byte under every QoS policy.
    let on = eagletree_core::ObsConfig {
        span_capacity: 1 << 16,
        timeline_interval_us: 200,
    };
    for qos in policies() {
        let off = run_fingerprint(qos.clone());
        let with = run_fingerprint_obs(qos.clone(), on);
        assert_eq!(off, with, "observability changed the simulation under {qos:?}");
    }
}

#[test]
fn qos_policies_are_behaviorally_distinct() {
    // Sanity that the policies actually schedule differently on the same
    // scenario: the flat dispatcher, WFQ and the token bucket must not
    // all collapse to one fingerprint.
    let prints: Vec<String> = policies().into_iter().map(run_fingerprint).collect();
    assert_ne!(prints[0], prints[1], "wfq behaves like flat dispatch");
    assert_ne!(prints[0], prints[2], "token bucket behaves like flat dispatch");
}
