//! Offline, API-compatible subset of the `criterion` crate.
//!
//! The build container has no network access to crates.io, so this shim
//! provides the slice of criterion's surface the workspace benches use:
//! `criterion_group!` / `criterion_main!`, [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] (with `sample_size`, `warm_up_time`,
//! `measurement_time`), [`Bencher::iter`] and [`black_box`].
//!
//! Measurement model: each bench runs a short calibration pass, then a
//! fixed number of timed samples; median per-iteration time is printed.
//! There is no statistical analysis, HTML report, or saved baseline —
//! swap this crate for the real `criterion` in the workspace
//! `Cargo.toml` once the build environment has registry access.
//!
//! Like the real harness (with `harness = false`), binaries built
//! against this shim accept `--bench` (ignored), `--test` (each bench
//! runs exactly one iteration, for `cargo test`), and an optional
//! filter substring.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level handle passed to each benchmark-group function.
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut test_mode = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" => {}
                "--test" => test_mode = true,
                a if a.starts_with("--") => {} // ignore harness flags
                a => filter = Some(a.to_string()),
            }
        }
        Criterion { filter, test_mode }
    }
}

impl Criterion {
    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if self.matches(id) {
            run_bench(id, self.test_mode, &mut f);
        }
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named group of related benches (prefixes each id with the group
/// name, like criterion's `group/bench` convention).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the shim's sampling is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the shim's warm-up is fixed.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the shim's measurement time is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        if self.criterion.matches(&full) {
            run_bench(&full, self.criterion.test_mode, &mut f);
        }
        self
    }

    pub fn finish(self) {}
}

/// Passed to the closure given to `bench_function`; `iter` times the
/// routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Wall-clock is the whole point of a benchmark harness.
        #[allow(clippy::disallowed_methods)]
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, test_mode: bool, f: &mut F) {
    if test_mode {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("test {id} ... ok");
        return;
    }
    // Calibrate: find an iteration count that takes ≥ ~20ms per sample.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(20) || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }
    // Measure a handful of samples and report the median.
    const SAMPLES: usize = 7;
    let mut per_iter: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[SAMPLES / 2];
    println!("{id:<40} {:>12}/iter ({iters} iters/sample)", fmt_time(median));
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_filters() {
        let mut c = Criterion {
            filter: Some("yes".into()),
            test_mode: true,
        };
        let mut ran = Vec::new();
        c.bench_function("yes_one", |b| b.iter(|| 1 + 1));
        c.bench_function("no_two", |b| b.iter(|| unreachable!("filtered out")));
        let mut g = c.benchmark_group("grp_yes");
        g.sample_size(10)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(1));
        g.bench_function("inner", |b| b.iter(|| 2 + 2));
        g.finish();
        ran.push("done");
        assert_eq!(ran, ["done"]);
    }
}
