//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build container has no network access to crates.io, so this shim
//! provides the slice of proptest's surface the workspace tests use:
//! the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`,
//! `prop_oneof!`, the [`strategy::Strategy`] trait with `prop_map`,
//! `Just`, `any::<T>()`, integer/float range strategies and
//! `prop::collection::vec`.
//!
//! Semantics deliberately kept from the real crate:
//! * each `#[test]` inside `proptest!` runs `ProptestConfig::cases`
//!   random cases drawn from the argument strategies;
//! * case generation is deterministic (fixed base seed perturbed per
//!   case), so failures are reproducible;
//! * `prop_assert*` failures report the failing case's seed and inputs.
//!
//! Not implemented: shrinking, persistence files, `prop_compose!`,
//! recursive strategies. Swap this crate for the real `proptest` in the
//! workspace `Cargo.toml` once the build environment has registry
//! access.

#![forbid(unsafe_code)]

pub mod test_runner {
    /// Configuration for a `proptest!` block (subset of the real
    /// `proptest::test_runner::Config`).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases to run per test.
        pub cases: u32,
        /// Accepted for source compatibility; shrinking is not
        /// implemented so this is unused.
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 64,
                max_shrink_iters: 0,
            }
        }
    }

    /// Error returned from inside a generated test body by
    /// `prop_assert!` and friends.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic splitmix64 generator driving all strategies.
    pub struct TestRng(u64);

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng(seed)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            // Multiply-shift bounded sampling; bias is negligible for
            // test-case generation.
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Run `cases` deterministic cases of `body`, panicking with the
    /// case seed on the first failure.
    pub fn run<F>(config: &Config, name: &str, mut body: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        // Fixed base seed: reproducible across runs and machines.
        const BASE_SEED: u64 = 0xEA61_E7EE_0000_0000;
        for case in 0..config.cases as u64 {
            let seed = BASE_SEED ^ (case.wrapping_mul(0x2545_F491_4F6C_DD1D));
            let mut rng = TestRng::new(seed);
            if let Err(e) = body(&mut rng) {
                panic!(
                    "proptest case failed: {name} (case {case}, seed {seed:#x})\n{e}",
                );
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;
    use std::rc::Rc;

    /// Subset of proptest's `Strategy`: a way to draw a random value.
    /// No shrinking: `sample` replaces the value-tree machinery.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng| self.sample(rng)))
        }
    }

    /// Type-erased strategy (proptest's `BoxedStrategy` analogue).
    #[derive(Clone)]
    pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            (self.0)(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    assert!(span > 0, "empty range strategy");
                    (self.start as u64).wrapping_add(rng.below(span)) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    assert!(span > 0, "empty range strategy");
                    ((self.start as i64).wrapping_add(rng.below(span) as i64)) as $t
                }
            }
        )*};
    }
    signed_range_strategy!(i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            self.start + rng.unit_f64() as f32 * (self.end - self.start)
        }
    }

    /// Weighted union over same-valued strategies (backs `prop_oneof!`).
    pub struct Union<V> {
        options: Vec<(u32, BoxedStrategy<V>)>,
        total: u64,
    }

    impl<V> Union<V> {
        pub fn new(options: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            let total = options.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs a positive total weight");
            Union { options, total }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.options {
                if pick < *w as u64 {
                    return s.sample(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights exhausted")
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, roughly symmetric around zero — good enough for
            // test-case generation without NaN/inf surprises.
            (rng.unit_f64() - 0.5) * 2e12
        }
    }

    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()` — the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirrors proptest's `prelude::prop` module path
    /// (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!({$cfg} $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!({$crate::test_runner::Config::default()} $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ({$cfg:expr} $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            $crate::test_runner::run(&__config, stringify!($name), |__rng| {
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), __rng);)+
                $body
                ::std::result::Result::Ok(())
            });
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(*__l == *__r, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            __l
        );
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, f in -1.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_len_in_range(v in prop::collection::vec(0u32..5, 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 5));
        }
    }

    #[test]
    fn oneof_respects_zero_weight_absence() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = prop_oneof![1 => Just(1u8), 3 => Just(2u8)];
        let mut rng = TestRng::new(7);
        let mut seen = [0u32; 3];
        for _ in 0..200 {
            seen[s.sample(&mut rng) as usize] += 1;
        }
        assert_eq!(seen[0], 0);
        assert!(seen[1] > 0 && seen[2] > seen[1]);
    }
}
