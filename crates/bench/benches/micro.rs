//! Microbenchmarks of the simulator's hot paths.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use eagletree_controller::{Controller, ControllerConfig, IoTags, RequestKind, SsdRequest};
use eagletree_core::{EventQueue, QueueKind, SimDuration, SimRng, SimTime, Zipf};
use eagletree_flash::{FlashArray, FlashCommand, Geometry, PhysicalAddr, TimingSpec};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.schedule(SimTime::from_nanos((i * 7919) % 4096), i);
            }
            let mut acc = 0u64;
            while let Some(e) = q.pop() {
                acc = acc.wrapping_add(e.payload);
            }
            black_box(acc)
        })
    });
}

/// The calendar backend against the binary-heap oracle at simulation
/// scale: 100k+ pending events in the classic hold model (every pop
/// schedules a replacement inside the horizon), where the heap pays
/// O(log n) per operation and the calendar stays amortized O(1).
fn bench_queue_backends_100k(c: &mut Criterion) {
    const PENDING: u64 = 100_000;
    const HORIZON: u64 = 1 << 24;
    for kind in [QueueKind::Heap, QueueKind::Calendar] {
        c.bench_function(&format!("queue_hold_100k_{kind}"), |b| {
            b.iter(|| {
                let mut q = EventQueue::with_kind(kind);
                q.hint_horizon(SimDuration::from_nanos(HORIZON));
                let mut rng = SimRng::new(0xCA1E);
                for i in 0..PENDING {
                    q.schedule(SimTime::from_nanos(rng.gen_range(HORIZON)), i);
                }
                let mut acc = 0u64;
                for i in 0..2 * PENDING {
                    let e = q.pop().expect("hold model keeps the queue full");
                    acc = acc.wrapping_add(e.payload);
                    q.schedule(e.time + SimDuration::from_nanos(1 + rng.gen_range(HORIZON)), i);
                }
                black_box(acc)
            })
        });
    }
}

fn bench_zipf(c: &mut Criterion) {
    let zipf = Zipf::new(100_000, 0.99);
    let mut rng = SimRng::new(42);
    c.bench_function("zipf_sample", |b| b.iter(|| black_box(zipf.sample(&mut rng))));
}

fn bench_flash_issue(c: &mut Criterion) {
    c.bench_function("flash_program_page_cycle", |b| {
        b.iter(|| {
            let mut a = FlashArray::new(Geometry::tiny(), TimingSpec::slc());
            let mut now = SimTime::ZERO;
            for p in 0..16 {
                let addr = PhysicalAddr {
                    channel: 0,
                    lun: 0,
                    plane: 0,
                    block: 0,
                    page: p,
                };
                let out = a.issue(FlashCommand::Program(addr), now).unwrap();
                now = out.lun_free_at;
            }
            black_box(now)
        })
    });
}

fn bench_full_sim(c: &mut Criterion) {
    c.bench_function("controller_1k_random_writes", |b| {
        b.iter(|| {
            let mut ctrl = Controller::new(
                Geometry::tiny(),
                TimingSpec::slc(),
                ControllerConfig::default(),
            )
            .unwrap();
            let logical = ctrl.logical_pages();
            let mut rng = SimRng::new(7);
            let mut now = SimTime::ZERO;
            for id in 0..1000u64 {
                ctrl.submit(
                    SsdRequest {
                        id,
                        kind: RequestKind::Write,
                        lpn: rng.gen_range(logical),
                        tags: IoTags::none(),
                    },
                    now,
                );
                if id % 16 == 15 {
                    while let Some(t) = ctrl.next_event_time() {
                        now = t;
                        ctrl.advance(t);
                    }
                }
            }
            while let Some(t) = ctrl.next_event_time() {
                now = t;
                ctrl.advance(t);
            }
            black_box(now)
        })
    });
}

/// Dispatch cost vs queue depth: submit random writes in windows of `qd`
/// and drain. Pre-ready-queues this scaled quadratically in `qd`; now the
/// per-op cost must be flat.
fn bench_dispatch_qd(c: &mut Criterion) {
    for qd in [1u64, 64, 512] {
        c.bench_function(&format!("dispatch_random_writes_qd{qd}"), |b| {
            b.iter(|| {
                let mut ctrl = Controller::new(
                    Geometry::demo(),
                    TimingSpec::slc(),
                    ControllerConfig::default(),
                )
                .unwrap();
                let logical = ctrl.logical_pages();
                let mut rng = SimRng::new(0xD15B);
                let mut now = SimTime::ZERO;
                for id in 0..2048u64 {
                    ctrl.submit(
                        SsdRequest {
                            id,
                            kind: RequestKind::Write,
                            lpn: rng.gen_range(logical),
                            tags: IoTags::none(),
                        },
                        now,
                    );
                    if id % qd == qd - 1 {
                        while let Some(t) = ctrl.next_event_time() {
                            now = t;
                            ctrl.advance(t);
                        }
                    }
                }
                while let Some(t) = ctrl.next_event_time() {
                    now = t;
                    ctrl.advance(t);
                }
                black_box(now)
            })
        });
    }
}

/// GC-trigger-heavy steady state: fill the device, then overwrite so every
/// few writes force victim selection. Exercises the incremental victim
/// index rather than the dispatch loop (qd stays modest).
fn bench_gc_steady_state(c: &mut Criterion) {
    c.bench_function("gc_steady_state_overwrite", |b| {
        b.iter(|| {
            let mut ctrl = Controller::new(
                Geometry::tiny(),
                TimingSpec::slc(),
                ControllerConfig::default(),
            )
            .unwrap();
            let logical = ctrl.logical_pages();
            let mut now = SimTime::ZERO;
            let mut id = 0u64;
            let drain = |ctrl: &mut Controller, now: &mut SimTime| {
                while let Some(t) = ctrl.next_event_time() {
                    *now = t;
                    ctrl.advance(t);
                }
            };
            // Fill sequentially, then overwrite 2x the logical space.
            for lpn in 0..logical {
                ctrl.submit(
                    SsdRequest {
                        id,
                        kind: RequestKind::Write,
                        lpn,
                        tags: IoTags::none(),
                    },
                    now,
                );
                id += 1;
                if id.is_multiple_of(32) {
                    drain(&mut ctrl, &mut now);
                }
            }
            drain(&mut ctrl, &mut now);
            let mut rng = SimRng::new(0x6C57);
            for _ in 0..logical * 2 {
                ctrl.submit(
                    SsdRequest {
                        id,
                        kind: RequestKind::Write,
                        lpn: rng.gen_range(logical),
                        tags: IoTags::none(),
                    },
                    now,
                );
                id += 1;
                if id.is_multiple_of(32) {
                    drain(&mut ctrl, &mut now);
                }
            }
            drain(&mut ctrl, &mut now);
            black_box(ctrl.stats().gc_erases)
        })
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_queue_backends_100k,
    bench_zipf,
    bench_flash_issue,
    bench_full_sim,
    bench_dispatch_qd,
    bench_gc_steady_state
);
criterion_main!(benches);
