//! Criterion benches regenerating each experiment at smoke scale.
//!
//! One bench per table/figure in DESIGN.md's experiment index; `cargo
//! bench` therefore re-derives the whole evaluation (at reduced size —
//! use the `harness` binary for full-scale series).

use criterion::{criterion_group, criterion_main, Criterion};
use eagletree_experiments::{suite, Scale};

fn bench_experiments(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiments");
    // Experiments are whole simulations: sample sparsely and briefly.
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for e in suite::all() {
        g.bench_function(e.id, |b| {
            b.iter(|| {
                let t = suite::by_id(e.id).unwrap().run(Scale::Smoke);
                assert!(!t.rows.is_empty());
                t
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
