//! # eagletree-bench
//!
//! Benchmark harness for EagleTree.
//!
//! * `harness` binary — regenerates every experiment series (E1–E17, G1)
//!   from DESIGN.md's index: `cargo run --release -p eagletree-bench --bin
//!   harness -- all --scale full`.
//! * `benches/experiments.rs` — Criterion benches running each experiment
//!   at smoke scale, so `cargo bench` exercises the whole suite.
//! * `benches/micro.rs` — microbenchmarks of the simulator's hot paths
//!   (event queue, flash command issue, Zipf sampling, end-to-end small
//!   simulations).

#![forbid(unsafe_code)]

/// Re-exported so benches and the harness share one entry point.
pub use eagletree_experiments::{suite, Scale, Table};

/// Run one experiment by id at `scale`, returning its table.
pub fn run_experiment(id: &str, scale: Scale) -> Option<Table> {
    suite::by_id(id).map(|e| e.run(scale))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_experiment_resolves_ids() {
        assert!(run_experiment("E12", Scale::Smoke).is_some());
        assert!(run_experiment("nope", Scale::Smoke).is_none());
    }
}
