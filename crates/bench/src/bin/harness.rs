//! Experiment harness: regenerate the paper's figures/tables.
//!
//! ```text
//! harness [IDS|all] [--scale smoke|demo|full] [--jobs [N]] [--csv] [--json PATH]
//!         [--trace PATH] [--timeline PATH]
//! ```
//!
//! Examples:
//! * `harness all --scale demo` — every experiment at demo size.
//! * `harness e3 e9 --scale full` — GC greediness and advanced commands.
//! * `harness game --csv` — the scheduling game as CSV.
//! * `harness all --scale smoke --json BENCH_seed.json` — machine-readable
//!   baseline (wall time + result rows per experiment) for perf tracking.
//! * `harness all --scale smoke --jobs 0` — run independent experiments on
//!   parallel threads (`0` = all available cores). Every simulation is
//!   self-contained and deterministic, so results are identical to a
//!   sequential run; only wall time changes. Event counts are measured
//!   with a per-thread counter, so `events_simulated` (and hence the JSON
//!   shape) matches the sequential run; `events_per_sec` reflects the
//!   parallel run's (contended) wall clock.
//! * `harness --trace trace.json --timeline timeline.csv` — run the
//!   instrumented observability capture (a reader/flooder contention run
//!   with lifecycle spans and the time-sliced timeline enabled) and write
//!   the Chrome-trace/Perfetto JSON and the telemetry (CSV, or JSON when
//!   the path ends in `.json`). These flags run *in addition to* any
//!   requested experiments; alone, they skip the suite entirely.
//!
//! Row columns are emitted exactly as the experiments produce them: the
//! media-reliability columns (`uber`, `corrected_bits`, `retries`, …)
//! appear only in rows of fault-model-enabled runs (E25/E26), and the
//! stage-attribution columns (`st_queue_us`, `explained_p999`, …) only in
//! rows of observability-enabled runs (E27) — other experiments emit no
//! such keys at all, keeping their JSON byte-identical to builds without
//! those subsystems. `compare` treats absent-vs-present columns as
//! informational drift, never a gate failure.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use eagletree_experiments::{suite, Scale, Table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<String> = Vec::new();
    let mut scale = Scale::Demo;
    let mut csv = false;
    let mut json_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut timeline_path: Option<String> = None;
    let mut jobs = 1usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("smoke") => Scale::Smoke,
                    Some("demo") => Scale::Demo,
                    Some("full") => Scale::Full,
                    other => {
                        eprintln!("unknown scale {other:?} (smoke|demo|full)");
                        std::process::exit(2);
                    }
                };
            }
            "--csv" => csv = true,
            "--json" => {
                i += 1;
                match args.get(i) {
                    Some(p) => json_path = Some(p.clone()),
                    None => {
                        eprintln!("--json needs a path");
                        std::process::exit(2);
                    }
                }
            }
            "--trace" => {
                i += 1;
                match args.get(i) {
                    Some(p) => trace_path = Some(p.clone()),
                    None => {
                        eprintln!("--trace needs a path");
                        std::process::exit(2);
                    }
                }
            }
            "--timeline" => {
                i += 1;
                match args.get(i) {
                    Some(p) => timeline_path = Some(p.clone()),
                    None => {
                        eprintln!("--timeline needs a path");
                        std::process::exit(2);
                    }
                }
            }
            "--jobs" => {
                // Optional numeric value; bare `--jobs` or `--jobs 0`
                // mean "all available cores".
                let n = args
                    .get(i + 1)
                    .and_then(|s| s.parse::<usize>().ok())
                    .inspect(|_| i += 1)
                    .unwrap_or(0);
                jobs = if n == 0 {
                    std::thread::available_parallelism().map_or(1, |p| p.get())
                } else {
                    n
                };
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: harness [IDS|all] [--scale smoke|demo|full] [--jobs [N]] [--csv] [--json PATH] [--trace PATH] [--timeline PATH]"
                );
                eprintln!("experiments:");
                for e in suite::all() {
                    eprintln!("  {:>4}  {} ({})", e.id, e.title, e.hook);
                }
                return;
            }
            id => ids.push(id.to_string()),
        }
        i += 1;
    }
    // `--trace`/`--timeline` with no experiment ids means "just capture".
    let capture_only =
        ids.is_empty() && (trace_path.is_some() || timeline_path.is_some());
    if !capture_only && (ids.is_empty() || ids.iter().any(|s| s == "all")) {
        ids = suite::all().iter().map(|e| e.id.to_string()).collect();
    }
    let experiments: Vec<_> = ids
        .iter()
        .map(|id| {
            let id = if id.eq_ignore_ascii_case("game") { "G1" } else { id };
            suite::by_id(id).unwrap_or_else(|| {
                eprintln!("unknown experiment `{id}` — try --help");
                std::process::exit(2);
            })
        })
        .collect();
    let print = |r: &ExperimentResult| {
        if csv {
            println!("# {} — {}", r.table.id, r.table.title);
            print!("{}", r.table.to_csv());
        } else if json_path.is_none() {
            println!("{}", r.table.render());
        }
    };
    // Host wall-clock: the harness reports events/sec of the simulator
    // process itself; simulation results never depend on it.
    #[allow(clippy::disallowed_methods)]
    let total_started = std::time::Instant::now();
    let results = if jobs > 1 {
        // Buffered: tables print afterwards in suite order.
        let results = run_parallel(&experiments, scale, jobs);
        results.iter().for_each(&print);
        results
    } else {
        // Streamed: each table prints as its experiment finishes.
        run_sequential(&experiments, scale, &print)
    };
    let total_wall_seconds = total_started.elapsed().as_secs_f64();
    if !results.is_empty() {
        eprintln!(
            "{} experiments in {total_wall_seconds:.1}s ({jobs} job{})",
            results.len(),
            if jobs == 1 { "" } else { "s" }
        );
    }
    if trace_path.is_some() || timeline_path.is_some() {
        eprintln!("capturing observability artifacts ({scale:?}) …");
        let a = eagletree_experiments::obs_capture(scale);
        eprintln!(
            "  {} spans ({} dropped), {} timeline rows",
            a.spans,
            a.dropped,
            a.timeline_csv.lines().count().saturating_sub(1)
        );
        let write = |path: &str, body: &str, what: &str| {
            if let Err(e) = std::fs::write(path, body) {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("wrote {path} ({what})");
        };
        if let Some(p) = &trace_path {
            write(p, &a.perfetto, "Perfetto trace — load in ui.perfetto.dev");
        }
        if let Some(p) = &timeline_path {
            if p.ends_with(".json") {
                write(p, &a.timeline_json, "timeline JSON");
            } else {
                write(p, &a.timeline_csv, "timeline CSV");
            }
        }
    }
    if let Some(path) = json_path {
        let doc = to_json(&scale, jobs, total_wall_seconds, &results);
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path} ({} experiments)", results.len());
    }
}

fn run_sequential(
    experiments: &[eagletree_experiments::Experiment],
    scale: Scale,
    print: &dyn Fn(&ExperimentResult),
) -> Vec<ExperimentResult> {
    let mut results = Vec::new();
    for e in experiments {
        eprintln!("running {} ({:?}) …", e.id, scale);
        let result = run_one(e, scale);
        let (secs, events) = (result.wall_seconds, result.events_simulated.unwrap_or(0));
        let eps = if secs > 0.0 { events as f64 / secs } else { 0.0 };
        eprintln!("  done in {secs:.1}s ({events} events, {eps:.0} events/s)");
        print(&result);
        results.push(result);
    }
    results
}

/// Run one experiment, attributing exactly its own simulation events via
/// the per-thread event counter — correct in both sequential and parallel
/// modes (each experiment runs wholly on one worker thread).
fn run_one(e: &eagletree_experiments::Experiment, scale: Scale) -> ExperimentResult {
    let events_before = eagletree_core::thread_events_popped();
    #[allow(clippy::disallowed_methods)]
    let started = std::time::Instant::now();
    let table = e.run(scale);
    let secs = started.elapsed().as_secs_f64();
    let events = eagletree_core::thread_events_popped() - events_before;
    ExperimentResult {
        table,
        wall_seconds: secs,
        events_simulated: Some(events),
    }
}

/// Run the experiments on `jobs` scoped worker threads pulling from a
/// shared work list. Each simulation is self-contained, so results —
/// including per-experiment event counts, measured per worker thread —
/// are identical to the sequential run; only wall clock differs.
fn run_parallel(
    experiments: &[eagletree_experiments::Experiment],
    scale: Scale,
    jobs: usize,
) -> Vec<ExperimentResult> {
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<ExperimentResult>>> =
        experiments.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..jobs.min(experiments.len()) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(e) = experiments.get(i) else { break };
                eprintln!("running {} ({:?}) …", e.id, scale);
                let result = run_one(e, scale);
                eprintln!("  {} done in {:.1}s", e.id, result.wall_seconds);
                *slots[i].lock().unwrap() = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("worker filled every slot"))
        .collect()
}

/// One experiment's outcome: its result table plus simulator-throughput
/// metadata (host wall time and events processed, measured per thread so
/// parallel runs report the same counts as sequential ones).
struct ExperimentResult {
    table: Table,
    wall_seconds: f64,
    events_simulated: Option<u64>,
}

/// Hand-rolled JSON (no serde in the offline build container): one
/// object per experiment with wall time, simulator throughput and the
/// full result rows.
fn to_json(
    scale: &Scale,
    jobs: usize,
    total_wall_seconds: f64,
    results: &[ExperimentResult],
) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"scale\": \"{scale:?}\",\n"));
    out.push_str(&format!("  \"jobs\": {jobs},\n"));
    out.push_str(&format!(
        "  \"total_wall_seconds\": {total_wall_seconds:.3},\n"
    ));
    out.push_str("  \"experiments\": [\n");
    for (i, r) in results.iter().enumerate() {
        let (t, secs) = (&r.table, r.wall_seconds);
        out.push_str("    {\n");
        out.push_str(&format!("      \"id\": {},\n", json_str(&t.id)));
        out.push_str(&format!("      \"title\": {},\n", json_str(&t.title)));
        out.push_str(&format!("      \"param\": {},\n", json_str(&t.param)));
        out.push_str(&format!("      \"wall_seconds\": {secs:.3},\n"));
        if let Some(events) = r.events_simulated {
            let eps = if secs > 0.0 { events as f64 / secs } else { 0.0 };
            out.push_str(&format!("      \"events_simulated\": {events},\n"));
            out.push_str(&format!("      \"events_per_sec\": {},\n", json_num(eps)));
        }
        out.push_str("      \"rows\": [\n");
        for (j, r) in t.rows.iter().enumerate() {
            let fields: Vec<String> = std::iter::once(format!("\"label\": {}", json_str(&r.label)))
                .chain(
                    r.values
                        .iter()
                        .map(|(n, v)| format!("{}: {}", json_str(n), json_num(*v))),
                )
                .collect();
            out.push_str(&format!("        {{{}}}", fields.join(", ")));
            if j + 1 < t.rows.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("      ]\n    }");
        if i + 1 < results.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}
