//! Experiment harness: regenerate the paper's figures/tables.
//!
//! ```text
//! harness [IDS|all] [--scale smoke|demo|full] [--csv]
//! ```
//!
//! Examples:
//! * `harness all --scale demo` — every experiment at demo size.
//! * `harness e3 e9 --scale full` — GC greediness and advanced commands.
//! * `harness game --csv` — the scheduling game as CSV.

use eagletree_experiments::{suite, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<String> = Vec::new();
    let mut scale = Scale::Demo;
    let mut csv = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("smoke") => Scale::Smoke,
                    Some("demo") => Scale::Demo,
                    Some("full") => Scale::Full,
                    other => {
                        eprintln!("unknown scale {other:?} (smoke|demo|full)");
                        std::process::exit(2);
                    }
                };
            }
            "--csv" => csv = true,
            "--help" | "-h" => {
                eprintln!("usage: harness [IDS|all] [--scale smoke|demo|full] [--csv]");
                eprintln!("experiments:");
                for e in suite::all() {
                    eprintln!("  {:>4}  {} ({})", e.id, e.title, e.hook);
                }
                return;
            }
            id => ids.push(id.to_string()),
        }
        i += 1;
    }
    if ids.is_empty() || ids.iter().any(|s| s == "all") {
        ids = suite::all().iter().map(|e| e.id.to_string()).collect();
    }
    for id in &ids {
        let id = if id.eq_ignore_ascii_case("game") {
            "G1"
        } else {
            id
        };
        match suite::by_id(id) {
            None => {
                eprintln!("unknown experiment `{id}` — try --help");
                std::process::exit(2);
            }
            Some(e) => {
                eprintln!("running {} ({:?}) …", e.id, scale);
                let started = std::time::Instant::now();
                let table = e.run(scale);
                eprintln!("  done in {:.1?}", started.elapsed());
                if csv {
                    println!("# {} — {}", table.id, table.title);
                    print!("{}", table.to_csv());
                } else {
                    println!("{}", table.render());
                }
            }
        }
    }
}
