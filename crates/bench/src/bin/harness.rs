//! Experiment harness: regenerate the paper's figures/tables.
//!
//! ```text
//! harness [IDS|all] [--scale smoke|demo|full] [--csv] [--json PATH]
//! ```
//!
//! Examples:
//! * `harness all --scale demo` — every experiment at demo size.
//! * `harness e3 e9 --scale full` — GC greediness and advanced commands.
//! * `harness game --csv` — the scheduling game as CSV.
//! * `harness all --scale smoke --json BENCH_seed.json` — machine-readable
//!   baseline (wall time + result rows per experiment) for perf tracking.

use eagletree_experiments::{suite, Scale, Table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<String> = Vec::new();
    let mut scale = Scale::Demo;
    let mut csv = false;
    let mut json_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("smoke") => Scale::Smoke,
                    Some("demo") => Scale::Demo,
                    Some("full") => Scale::Full,
                    other => {
                        eprintln!("unknown scale {other:?} (smoke|demo|full)");
                        std::process::exit(2);
                    }
                };
            }
            "--csv" => csv = true,
            "--json" => {
                i += 1;
                match args.get(i) {
                    Some(p) => json_path = Some(p.clone()),
                    None => {
                        eprintln!("--json needs a path");
                        std::process::exit(2);
                    }
                }
            }
            "--help" | "-h" => {
                eprintln!("usage: harness [IDS|all] [--scale smoke|demo|full] [--csv] [--json PATH]");
                eprintln!("experiments:");
                for e in suite::all() {
                    eprintln!("  {:>4}  {} ({})", e.id, e.title, e.hook);
                }
                return;
            }
            id => ids.push(id.to_string()),
        }
        i += 1;
    }
    if ids.is_empty() || ids.iter().any(|s| s == "all") {
        ids = suite::all().iter().map(|e| e.id.to_string()).collect();
    }
    let mut results: Vec<ExperimentResult> = Vec::new();
    for id in &ids {
        let id = if id.eq_ignore_ascii_case("game") {
            "G1"
        } else {
            id
        };
        match suite::by_id(id) {
            None => {
                eprintln!("unknown experiment `{id}` — try --help");
                std::process::exit(2);
            }
            Some(e) => {
                eprintln!("running {} ({:?}) …", e.id, scale);
                let events_before = eagletree_core::global_events_popped();
                let started = std::time::Instant::now();
                let table = e.run(scale);
                let secs = started.elapsed().as_secs_f64();
                let events = eagletree_core::global_events_popped() - events_before;
                let eps = if secs > 0.0 { events as f64 / secs } else { 0.0 };
                eprintln!("  done in {secs:.1}s ({events} events, {eps:.0} events/s)");
                if csv {
                    println!("# {} — {}", table.id, table.title);
                    print!("{}", table.to_csv());
                } else if json_path.is_none() {
                    println!("{}", table.render());
                }
                results.push(ExperimentResult {
                    table,
                    wall_seconds: secs,
                    events_simulated: events,
                });
            }
        }
    }
    if let Some(path) = json_path {
        let doc = to_json(&scale, &results);
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path} ({} experiments)", results.len());
    }
}

/// One experiment's outcome: its result table plus simulator-throughput
/// metadata (host wall time and events processed while it ran).
struct ExperimentResult {
    table: Table,
    wall_seconds: f64,
    events_simulated: u64,
}

/// Hand-rolled JSON (no serde in the offline build container): one
/// object per experiment with wall time, simulator throughput and the
/// full result rows.
fn to_json(scale: &Scale, results: &[ExperimentResult]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"scale\": \"{scale:?}\",\n"));
    out.push_str("  \"experiments\": [\n");
    for (i, r) in results.iter().enumerate() {
        let (t, secs) = (&r.table, r.wall_seconds);
        let eps = if secs > 0.0 {
            r.events_simulated as f64 / secs
        } else {
            0.0
        };
        out.push_str("    {\n");
        out.push_str(&format!("      \"id\": {},\n", json_str(&t.id)));
        out.push_str(&format!("      \"title\": {},\n", json_str(&t.title)));
        out.push_str(&format!("      \"param\": {},\n", json_str(&t.param)));
        out.push_str(&format!("      \"wall_seconds\": {secs:.3},\n"));
        out.push_str(&format!(
            "      \"events_simulated\": {},\n",
            r.events_simulated
        ));
        out.push_str(&format!("      \"events_per_sec\": {},\n", json_num(eps)));
        out.push_str("      \"rows\": [\n");
        for (j, r) in t.rows.iter().enumerate() {
            let fields: Vec<String> = std::iter::once(format!("\"label\": {}", json_str(&r.label)))
                .chain(
                    r.values
                        .iter()
                        .map(|(n, v)| format!("{}: {}", json_str(n), json_num(*v))),
                )
                .collect();
            out.push_str(&format!("        {{{}}}", fields.join(", ")));
            if j + 1 < t.rows.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("      ]\n    }");
        if i + 1 < results.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}
