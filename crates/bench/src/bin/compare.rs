//! Bench-trajectory comparison: diff two harness `--json` files.
//!
//! ```text
//! compare BASELINE.json CURRENT.json [--max-slowdown FACTOR] [--min-events-rate FACTOR]
//! ```
//!
//! Prints a per-experiment delta report (wall seconds, speedup, events/sec
//! where present) for CI to archive next to the raw JSON, an informational
//! "event-count drift" section for experiments whose deterministic
//! `events_simulated` changed (the simulation itself, not just its speed —
//! counts are per-thread, so sequential and `--jobs N` runs agree), and an
//! explicit "not comparable" section listing experiments present in only
//! one of the two files (new experiments vs. an older baseline, or
//! removed/renamed ones) — so additions like E19/E20 show up loudly
//! instead of silently diffing as noise. With `--max-slowdown`, exits
//! non-zero if any experiment common to both files ran slower than
//! `base * FACTOR + 0.5s` — the absolute grace keeps millisecond-scale
//! smoke experiments from flagging on runner noise. With
//! `--min-events-rate`, exits non-zero if any experiment's simulator
//! throughput (`events_per_sec`) fell below `base * FACTOR`; experiments
//! faster than half a second in the baseline are exempt (their rate is
//! dominated by startup, not the event engine). This is the event-engine
//! regression gate: E18 is its main subject, but any experiment that got
//! slower per event trips it. Experiments in only one file never trip
//! either gate.
//!
//! Result-row *columns* are never compared as values: only the
//! timing/throughput fields above gate. Column *names* are scraped per
//! experiment, and columns present in only one of the two files — the
//! reliability columns (`uber`, `corrected_bits`, …) of fault-model runs,
//! or the stage-attribution / timeline columns (`st_queue_us`,
//! `explained_p999`, `tl_rows`, …) of observability-enabled runs — are
//! listed in an informational "result-column drift" section: a baseline
//! recorded before those subsystems existed stays a valid gate for a
//! current file that has them, and a new stage column shows up loudly
//! instead of silently diffing as noise.

use std::collections::{BTreeMap, BTreeSet};

/// Per-experiment numbers scraped from harness JSON.
#[derive(Debug, Default, Clone)]
struct Exp {
    wall_seconds: Option<f64>,
    events_simulated: Option<u64>,
    events_per_sec: Option<f64>,
    /// Union of the result-row column names this experiment emitted —
    /// reported as informational drift when the two files disagree,
    /// never compared by value and never a gate.
    columns: BTreeSet<String>,
}

impl Exp {
    fn merge(&mut self, other: Exp) {
        self.wall_seconds = other.wall_seconds.or(self.wall_seconds);
        self.events_simulated = other.events_simulated.or(self.events_simulated);
        self.events_per_sec = other.events_per_sec.or(self.events_per_sec);
        self.columns.extend(other.columns);
    }

    fn is_empty(&self) -> bool {
        self.wall_seconds.is_none()
            && self.events_simulated.is_none()
            && self.events_per_sec.is_none()
            && self.columns.is_empty()
    }
}

/// Column names of one single-line row object (`{"label": "x", "iops":
/// 1, ...}`): every quoted string immediately followed by a colon, except
/// the row label itself.
fn row_columns(line: &str) -> impl Iterator<Item = String> + '_ {
    line.split('"').skip(1).step_by(2).zip(
        line.split('"').skip(2).step_by(2),
    )
    .filter(|(_, after)| after.trim_start().starts_with(':'))
    .map(|(name, _)| name.to_string())
    .filter(|n| n != "label")
}

/// Minimal scraper for the harness's own hand-rolled JSON: the fields of
/// interest each sit on their own line. Not a general JSON parser — the
/// offline build container has no serde, and the input is machine-written
/// by `harness --json`. Fields are buffered per object (delimited by
/// lone `{` / `}` lines) and attached to whichever `"id"` appears inside
/// the same object, so reordered keys (`jq -S`-style) scrape identically.
/// Fields with no `"id"` in their object — a truncated or hand-edited
/// file — are a named diagnostic and a non-zero exit, never a panic.
fn scrape(path: &str) -> BTreeMap<String, Exp> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    let mut out: BTreeMap<String, Exp> = BTreeMap::new();
    let mut cur_id: Option<String> = None;
    let mut cur = Exp::default();
    let mut last_flushed: Option<String> = None;
    let mut flush = |id: &mut Option<String>, exp: &mut Exp, last: &mut Option<String>| {
        let exp = std::mem::take(exp);
        match id.take() {
            Some(id) => {
                out.entry(id.clone()).or_default().merge(exp);
                *last = Some(id);
            }
            None if !exp.is_empty() => {
                let after = last
                    .as_deref()
                    .map(|l| format!(" after experiment \"{l}\""))
                    .unwrap_or_default();
                eprintln!(
                    "{path}: fields {exp:?} belong to no experiment (object{after} has no \"id\" — truncated or hand-edited file?)"
                );
                std::process::exit(2);
            }
            None => {}
        }
    };
    for line in text.lines() {
        let line = line.trim();
        // Object boundaries: the harness opens each experiment object
        // with a lone `{` and closes it with `}` / `},`. Single-line row
        // objects (`{ ... }`) never carry the fields of interest, so the
        // extra flushes they trigger are no-ops.
        if line == "{" || line == "}" || line == "}," {
            flush(&mut cur_id, &mut cur, &mut last_flushed);
            continue;
        }
        let line = line.trim_end_matches(',');
        if let Some(rest) = line.strip_prefix("\"id\": \"") {
            if let Some(id) = rest.strip_suffix('"') {
                cur_id = Some(id.to_string());
            }
        } else if let Some(rest) = line.strip_prefix("\"wall_seconds\": ") {
            if let Ok(v) = rest.parse::<f64>() {
                cur.wall_seconds = Some(v);
            }
        } else if let Some(rest) = line.strip_prefix("\"events_per_sec\": ") {
            if let Ok(v) = rest.parse::<f64>() {
                cur.events_per_sec = Some(v);
            }
        } else if let Some(rest) = line.strip_prefix("\"events_simulated\": ") {
            if let Ok(v) = rest.parse::<u64>() {
                cur.events_simulated = Some(v);
            }
        } else if line.starts_with("{\"label\":") {
            cur.columns.extend(row_columns(line));
        }
    }
    flush(&mut cur_id, &mut cur, &mut last_flushed);
    for (id, exp) in &out {
        if exp.wall_seconds.is_none() {
            eprintln!("{path}: experiment \"{id}\" has no wall_seconds field");
            std::process::exit(2);
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<&str> = Vec::new();
    let mut max_slowdown: Option<f64> = None;
    let mut min_events_rate: Option<f64> = None;
    let usage = "usage: compare BASELINE.json CURRENT.json [--max-slowdown FACTOR] [--min-events-rate FACTOR]";
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--max-slowdown" => {
                i += 1;
                max_slowdown = args.get(i).and_then(|s| s.parse().ok());
                if max_slowdown.is_none() {
                    eprintln!("--max-slowdown needs a numeric factor");
                    std::process::exit(2);
                }
            }
            "--min-events-rate" => {
                i += 1;
                min_events_rate = args.get(i).and_then(|s| s.parse().ok());
                if min_events_rate.is_none() {
                    eprintln!("--min-events-rate needs a numeric factor");
                    std::process::exit(2);
                }
            }
            "--help" | "-h" => {
                eprintln!("{usage}");
                return;
            }
            p => paths.push(p),
        }
        i += 1;
    }
    if paths.len() != 2 {
        eprintln!("{usage}");
        std::process::exit(2);
    }
    let base = scrape(paths[0]);
    let cur = scrape(paths[1]);

    println!(
        "{:<6} {:>10} {:>10} {:>9}  {:>14} {:>14}",
        "exp", "base_s", "cur_s", "speedup", "base_ev/s", "cur_ev/s"
    );
    let mut regressions = Vec::new();
    let mut rate_regressions = Vec::new();
    let mut only_current: Vec<String> = Vec::new();
    for (id, c) in &cur {
        // `scrape` exits unless every experiment carried wall_seconds.
        let cw = c.wall_seconds.expect("validated by scrape");
        let Some(b) = base.get(id) else {
            only_current.push(format!("{id} ({cw:.3}s)"));
            continue;
        };
        let bw = b.wall_seconds.expect("validated by scrape");
        let speedup = if cw > 0.0 { bw / cw } else { f64::INFINITY };
        println!(
            "{:<6} {:>10.3} {:>10.3} {:>8.2}x  {:>14} {:>14}",
            id,
            bw,
            cw,
            speedup,
            fmt_opt(b.events_per_sec),
            fmt_opt(c.events_per_sec)
        );
        if let Some(factor) = max_slowdown {
            if cw > bw * factor + 0.5 {
                regressions.push((id.clone(), bw, cw));
            }
        }
        if let Some(factor) = min_events_rate {
            if let (Some(br), Some(cr)) = (b.events_per_sec, c.events_per_sec) {
                if bw >= 0.5 && cr < br * factor {
                    rate_regressions.push((id.clone(), br, cr));
                }
            }
        }
    }
    // Event counts are deterministic per experiment (and, since the
    // per-thread counter, identical between sequential and parallel
    // runs): a differing count means the simulation itself changed, which
    // is worth calling out next to pure wall-clock noise. Informational
    // only — never gates.
    let drifted: Vec<String> = cur
        .iter()
        .filter_map(|(id, c)| {
            let b = base.get(id)?;
            match (b.events_simulated, c.events_simulated) {
                (Some(be), Some(ce)) if be != ce => {
                    Some(format!("{id} ({be} -> {ce} events)"))
                }
                _ => None,
            }
        })
        .collect();
    if !drifted.is_empty() {
        println!("\nevent-count drift (simulation behavior changed, not just speed):");
        for d in &drifted {
            println!("  {d}");
        }
    }
    // Column names one side emits and the other doesn't — observability
    // (`st_*`, `explained_*`, `tl_rows`) or reliability columns recorded
    // by only one build. Informational only — row values never gate.
    let col_drift: Vec<String> = cur
        .iter()
        .filter_map(|(id, c)| {
            let b = base.get(id)?;
            let added: Vec<String> =
                c.columns.difference(&b.columns).map(|s| format!("+{s}")).collect();
            let removed: Vec<String> =
                b.columns.difference(&c.columns).map(|s| format!("-{s}")).collect();
            if added.is_empty() && removed.is_empty() {
                None
            } else {
                Some(format!("{id}: {}", added.into_iter().chain(removed).collect::<Vec<_>>().join(" ")))
            }
        })
        .collect();
    if !col_drift.is_empty() {
        println!("\nresult-column drift (informational only — row values never gate):");
        for d in &col_drift {
            println!("  {d}");
        }
    }
    let only_base: Vec<String> = base
        .iter()
        .filter(|(id, _)| !cur.contains_key(*id))
        .map(|(id, b)| format!("{id} ({:.3}s)", b.wall_seconds.unwrap_or(0.0)))
        .collect();
    if !only_current.is_empty() || !only_base.is_empty() {
        println!("\nnot comparable (present in one file only — excluded from the gate):");
        if !only_current.is_empty() {
            println!(
                "  only in current ({}): {}",
                paths[1],
                only_current.join(", ")
            );
        }
        if !only_base.is_empty() {
            println!(
                "  only in baseline ({}): {}",
                paths[0],
                only_base.join(", ")
            );
        }
    }
    if !rate_regressions.is_empty() {
        eprintln!("\nsimulator-throughput regressions beyond tolerance:");
        for (id, b, c) in &rate_regressions {
            eprintln!("  {id}: {b:.0} ev/s -> {c:.0} ev/s");
        }
    }
    if !regressions.is_empty() {
        eprintln!("\nperformance regressions beyond tolerance:");
        for (id, b, c) in &regressions {
            eprintln!("  {id}: {b:.3}s -> {c:.3}s");
        }
    }
    if !regressions.is_empty() || !rate_regressions.is_empty() {
        std::process::exit(1);
    }
}

fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.0}"),
        None => "-".to_string(),
    }
}
