//! The thread programming framework.
//!
//! "The Thread layer is a programming framework that gives users absolute
//! control over the workload. Users are able to extend an abstract thread
//! class by providing a definition for two methods: init() and call_back()"
//! (§2.2). Here the abstract class is the [`Workload`] trait; the OS calls
//! [`Workload::init`] when the thread starts (once its dependencies have
//! finished) and [`Workload::call_back`] each time one of its IOs
//! completes. Both receive a [`ThreadCtx`] through which any number of IOs
//! (or timers) may be issued.

use eagletree_controller::{IoTags, RequestKind};
use eagletree_core::{SimDuration, SimTime};

/// Identifier of a simulated thread.
pub type ThreadId = usize;

/// An IO a thread hands to the OS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OsIo {
    /// Read, write or trim.
    pub kind: RequestKind,
    /// Target logical page.
    pub lpn: u64,
    /// Open-interface hints (stripped by the OS when the interface is
    /// locked).
    pub tags: IoTags,
}

impl OsIo {
    /// An untagged read.
    pub fn read(lpn: u64) -> Self {
        OsIo {
            kind: RequestKind::Read,
            lpn,
            tags: IoTags::none(),
        }
    }

    /// An untagged write.
    pub fn write(lpn: u64) -> Self {
        OsIo {
            kind: RequestKind::Write,
            lpn,
            tags: IoTags::none(),
        }
    }

    /// An untagged trim.
    pub fn trim(lpn: u64) -> Self {
        OsIo {
            kind: RequestKind::Trim,
            lpn,
            tags: IoTags::none(),
        }
    }

    /// Attach open-interface tags.
    pub fn tagged(mut self, tags: IoTags) -> Self {
        self.tags = tags;
        self
    }
}

/// Completion details delivered to [`Workload::call_back`].
#[derive(Debug, Clone, Copy)]
pub struct CompletedIo {
    /// The IO as submitted.
    pub io: OsIo,
    /// When the thread enqueued it at the OS.
    pub enqueued_at: SimTime,
    /// When the OS dispatched it to the SSD.
    pub dispatched_at: SimTime,
    /// When the SSD completed it.
    pub completed_at: SimTime,
}

impl CompletedIo {
    /// End-to-end latency (enqueue → completion).
    pub fn latency(&self) -> SimDuration {
        self.completed_at.since(self.enqueued_at)
    }

    /// Device-level latency (dispatch → completion).
    pub fn device_latency(&self) -> SimDuration {
        self.completed_at.since(self.dispatched_at)
    }
}

/// Actions a thread can take from its callbacks. Handed to the workload by
/// the OS; submissions are buffered into the thread's OS queue.
pub struct ThreadCtx<'a> {
    pub(crate) now: SimTime,
    pub(crate) logical_pages: u64,
    pub(crate) submissions: &'a mut Vec<OsIo>,
    pub(crate) timers: &'a mut Vec<SimDuration>,
    pub(crate) finished: &'a mut bool,
}

impl ThreadCtx<'_> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Logical pages exported by the device (the workload address space).
    pub fn logical_pages(&self) -> u64 {
        self.logical_pages
    }

    /// Enqueue an IO with the OS (dispatched per OS policy/queue depth).
    pub fn submit(&mut self, io: OsIo) {
        self.submissions.push(io);
    }

    /// Request a [`Workload::on_timer`] callback after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration) {
        self.timers.push(delay);
    }

    /// Request a [`Workload::on_timer`] callback at the absolute virtual
    /// instant `at`. Instants at or before [`ThreadCtx::now`] fire on the
    /// next scheduling pass. This is the open-loop replay primitive: a
    /// trace's recorded arrival timestamps can be scheduled directly
    /// without converting to relative delays at each call site.
    pub fn set_timer_at(&mut self, at: SimTime) {
        self.timers.push(at.saturating_since(self.now));
    }

    /// Declare this thread finished. Threads depending on it may start;
    /// its remaining in-flight IOs still complete (with callbacks).
    pub fn finish(&mut self) {
        *self.finished = true;
    }
}

/// A simulated application thread.
///
/// Implementations drive arbitrary IO patterns: issue any number of IOs
/// from `init`, then react to each completion in `call_back`.
pub trait Workload {
    /// Called once when the OS starts the thread (dependencies satisfied).
    fn init(&mut self, ctx: &mut ThreadCtx);

    /// Called on each completion of one of this thread's IOs.
    fn call_back(&mut self, ctx: &mut ThreadCtx, done: CompletedIo);

    /// Called when a timer set via [`ThreadCtx::set_timer`] expires.
    fn on_timer(&mut self, _ctx: &mut ThreadCtx) {}

    /// Short name for reports.
    fn name(&self) -> &str {
        "thread"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn os_io_constructors() {
        assert_eq!(OsIo::read(5).kind, RequestKind::Read);
        assert_eq!(OsIo::write(5).kind, RequestKind::Write);
        assert_eq!(OsIo::trim(5).kind, RequestKind::Trim);
        let t = OsIo::write(1).tagged(IoTags::none().with_priority(2));
        assert_eq!(t.tags.priority, Some(2));
    }

    #[test]
    fn completed_io_latencies() {
        let c = CompletedIo {
            io: OsIo::read(0),
            enqueued_at: SimTime::from_nanos(100),
            dispatched_at: SimTime::from_nanos(150),
            completed_at: SimTime::from_nanos(500),
        };
        assert_eq!(c.latency().as_nanos(), 400);
        assert_eq!(c.device_latency().as_nanos(), 350);
    }

    #[test]
    fn ctx_buffers_submissions_and_state() {
        let mut subs = Vec::new();
        let mut timers = Vec::new();
        let mut fin = false;
        let mut ctx = ThreadCtx {
            now: SimTime::from_nanos(9),
            logical_pages: 64,
            submissions: &mut subs,
            timers: &mut timers,
            finished: &mut fin,
        };
        assert_eq!(ctx.now().as_nanos(), 9);
        assert_eq!(ctx.logical_pages(), 64);
        ctx.submit(OsIo::read(1));
        ctx.set_timer(SimDuration::from_micros(5));
        ctx.finish();
        assert_eq!(subs.len(), 1);
        assert_eq!(timers.len(), 1);
        assert!(fin);
    }

    #[test]
    fn absolute_timers_become_relative_delays() {
        let mut subs = Vec::new();
        let mut timers = Vec::new();
        let mut fin = false;
        let mut ctx = ThreadCtx {
            now: SimTime::from_nanos(1_000),
            logical_pages: 64,
            submissions: &mut subs,
            timers: &mut timers,
            finished: &mut fin,
        };
        ctx.set_timer_at(SimTime::from_nanos(1_750));
        // An instant already in the past clamps to an immediate timer
        // rather than panicking or wrapping.
        ctx.set_timer_at(SimTime::from_nanos(400));
        assert_eq!(timers[0].as_nanos(), 750);
        assert_eq!(timers[1], SimDuration::ZERO);
    }
}
