//! The OS dispatcher and main simulation loop.
//!
//! [`Os`] owns the [`Controller`] and the simulated threads. Threads hand
//! IOs to per-thread queues; the OS dispatches up to
//! [`OsConfig::queue_depth`] outstanding requests to the SSD, choosing the
//! next one per [`OsSchedPolicy`]. When the SSD completes a request the OS
//! "interrupts": it updates the dispatching thread's statistics and invokes
//! its `call_back`, which may submit further IOs — the paper's reactive
//! thread model.

use std::collections::{HashMap, VecDeque};

use eagletree_controller::{
    Completion, Controller, IoTags, RequestId, RequestKind, SsdRequest,
};
use eagletree_core::{EventQueue, Histogram, OnlineStats, SimDuration, SimTime, TimeSeries};

use crate::sched::{DispatchCandidate, OsSchedPolicy};
use crate::thread::{CompletedIo, OsIo, ThreadCtx, ThreadId, Workload};

/// OS-layer configuration.
#[derive(Debug, Clone)]
pub struct OsConfig {
    /// Maximum requests outstanding at the SSD (the device queue).
    pub queue_depth: usize,
    /// Dispatch policy across thread queues.
    pub policy: OsSchedPolicy,
    /// Unlock the open interface: pass tags/messages through to the SSD.
    /// When `false`, the OS strips all hints — a traditional block device.
    pub open_interface: bool,
    /// Capture per-thread completion timelines at this resolution
    /// (`None` disables). Feeds the "metric vs. virtual time" plots of the
    /// experimental suite (§2.3).
    pub timeline_interval: Option<SimDuration>,
}

impl Default for OsConfig {
    fn default() -> Self {
        OsConfig {
            queue_depth: 32,
            policy: OsSchedPolicy::Fifo,
            open_interface: false,
            timeline_interval: None,
        }
    }
}

/// Per-thread measurement: the "statistics gathering objects" attachable to
/// individual threads (§2.3).
#[derive(Debug, Clone)]
pub struct ThreadStats {
    pub reads_completed: u64,
    pub writes_completed: u64,
    pub trims_completed: u64,
    /// End-to-end (enqueue → completion) read latencies.
    pub read_latency: Histogram,
    /// End-to-end write latencies.
    pub write_latency: Histogram,
    /// Read latency mean/stddev in µs (latency variability metric).
    pub read_lat_us: OnlineStats,
    /// Write latency mean/stddev in µs.
    pub write_lat_us: OnlineStats,
    /// Time spent in the OS queue before dispatch (µs).
    pub queue_wait_us: OnlineStats,
    /// First and last completion instants (throughput window).
    pub first_completion: Option<SimTime>,
    pub last_completion: Option<SimTime>,
    /// Completions per interval over virtual time, when the OS was
    /// configured with a `timeline_interval`.
    pub timeline: Option<TimeSeries>,
}

impl ThreadStats {
    fn new() -> Self {
        ThreadStats {
            reads_completed: 0,
            writes_completed: 0,
            trims_completed: 0,
            read_latency: Histogram::new(),
            write_latency: Histogram::new(),
            read_lat_us: OnlineStats::new(),
            write_lat_us: OnlineStats::new(),
            queue_wait_us: OnlineStats::new(),
            first_completion: None,
            last_completion: None,
            timeline: None,
        }
    }

    /// Total completions.
    pub fn completed(&self) -> u64 {
        self.reads_completed + self.writes_completed + self.trims_completed
    }

    /// Completions per second over this thread's completion window.
    pub fn throughput_iops(&self) -> f64 {
        match (self.first_completion, self.last_completion) {
            (Some(a), Some(b)) if b > a => {
                self.completed() as f64 / b.since(a).as_secs_f64()
            }
            _ => 0.0,
        }
    }
}

struct QueuedIo {
    io: OsIo,
    enqueued_at: SimTime,
    seq: u64,
}

struct ThreadState {
    workload: Box<dyn Workload>,
    queue: VecDeque<QueuedIo>,
    deps: Vec<ThreadId>,
    started: bool,
    finished: bool,
    stats: ThreadStats,
}

struct Inflight {
    thread: ThreadId,
    io: OsIo,
    enqueued_at: SimTime,
    dispatched_at: SimTime,
}

/// The simulated operating system.
pub struct Os {
    ctrl: Controller,
    cfg: OsConfig,
    threads: Vec<ThreadState>,
    inflight: HashMap<RequestId, Inflight>,
    timers: EventQueue<ThreadId>,
    now: SimTime,
    next_req_id: RequestId,
    next_seq: u64,
    last_served: ThreadId,
}

impl Os {
    /// An OS over a controller.
    pub fn new(ctrl: Controller, cfg: OsConfig) -> Self {
        assert!(cfg.queue_depth > 0, "queue depth must be positive");
        Os {
            ctrl,
            cfg,
            threads: Vec::new(),
            inflight: HashMap::new(),
            timers: EventQueue::new(),
            now: SimTime::ZERO,
            next_req_id: 0,
            next_seq: 0,
            last_served: 0,
        }
    }

    /// Register a thread that starts immediately.
    pub fn add_thread(&mut self, workload: Box<dyn Workload>) -> ThreadId {
        self.add_thread_after(workload, Vec::new())
    }

    /// Register a thread that starts once all of `deps` have finished —
    /// the preconditioning mechanism of §2.3.
    pub fn add_thread_after(&mut self, workload: Box<dyn Workload>, deps: Vec<ThreadId>) -> ThreadId {
        for &d in &deps {
            assert!(d < self.threads.len(), "dependency on unknown thread {d}");
        }
        self.threads.push(ThreadState {
            workload,
            queue: VecDeque::new(),
            deps,
            started: false,
            finished: false,
            stats: ThreadStats::new(),
        });
        self.threads.len() - 1
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The controller (counters, wear metrics, write amplification …).
    pub fn controller(&self) -> &Controller {
        &self.ctrl
    }

    /// Simulation events processed so far: controller agenda events plus
    /// OS timer firings. The numerator of `events_per_sec`.
    pub fn events_simulated(&self) -> u64 {
        self.ctrl.events_processed() + self.timers.popped()
    }

    /// Statistics of one thread.
    pub fn thread_stats(&self, t: ThreadId) -> &ThreadStats {
        &self.threads[t].stats
    }

    /// Whether thread `t` has declared itself finished.
    pub fn thread_finished(&self, t: ThreadId) -> bool {
        self.threads[t].finished
    }

    /// Run until no further progress is possible (all queues empty, no
    /// in-flight IOs, no timers, controller idle).
    pub fn run(&mut self) {
        self.run_inner(None);
    }

    /// Run until progress stops or virtual time would pass `horizon`.
    pub fn run_until(&mut self, horizon: SimTime) {
        self.run_inner(Some(horizon));
    }

    fn run_inner(&mut self, horizon: Option<SimTime>) {
        self.try_start_threads();
        self.pump();
        loop {
            let next = match (self.ctrl.next_event_time(), self.timers.peek_time()) {
                (None, None) => break,
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (Some(a), Some(b)) => a.min(b),
            };
            if let Some(h) = horizon {
                if next > h {
                    self.now = h;
                    break;
                }
            }
            self.now = next;
            let completions = self.ctrl.advance(next);
            for c in completions {
                self.handle_completion(c);
            }
            while self.timers.peek_time() == Some(next) {
                let tid = self.timers.pop().expect("peeked timer").payload;
                self.call_workload(tid, |w, ctx| w.on_timer(ctx));
            }
            self.pump();
        }
    }

    /// Dispatch + drain instant completions until a fixpoint.
    fn pump(&mut self) {
        loop {
            self.dispatch();
            let completions = self.ctrl.advance(self.now);
            if completions.is_empty() {
                break;
            }
            for c in completions {
                self.handle_completion(c);
            }
        }
    }

    /// Move queued IOs to the SSD while device-queue slots are free.
    fn dispatch(&mut self) {
        while self.inflight.len() < self.cfg.queue_depth {
            let heads: Vec<DispatchCandidate> = self
                .threads
                .iter()
                .enumerate()
                .filter_map(|(tid, t)| {
                    t.queue.front().map(|q| DispatchCandidate {
                        thread: tid,
                        kind: q.io.kind,
                        enqueued_at: q.enqueued_at,
                        seq: q.seq,
                    })
                })
                .collect();
            let Some(pick) = self.cfg.policy.select(&heads, self.last_served) else {
                break;
            };
            let tid = heads[pick].thread;
            let q = self.threads[tid].queue.pop_front().expect("head exists");
            self.last_served = tid;
            let id = self.next_req_id;
            self.next_req_id += 1;
            let tags = if self.cfg.open_interface {
                q.io.tags
            } else {
                IoTags::none()
            };
            self.threads[tid]
                .stats
                .queue_wait_us
                .record(self.now.saturating_since(q.enqueued_at).as_micros_f64());
            self.inflight.insert(
                id,
                Inflight {
                    thread: tid,
                    io: q.io,
                    enqueued_at: q.enqueued_at,
                    dispatched_at: self.now,
                },
            );
            self.ctrl.submit(
                SsdRequest {
                    id,
                    kind: q.io.kind,
                    lpn: q.io.lpn,
                    tags,
                },
                self.now,
            );
        }
    }

    fn handle_completion(&mut self, c: Completion) {
        let inf = self
            .inflight
            .remove(&c.id)
            .expect("completion for unknown request");
        let done = CompletedIo {
            io: inf.io,
            enqueued_at: inf.enqueued_at,
            dispatched_at: inf.dispatched_at,
            completed_at: c.at,
        };
        {
            let stats = &mut self.threads[inf.thread].stats;
            match inf.io.kind {
                RequestKind::Read => {
                    stats.reads_completed += 1;
                    stats.read_latency.record(done.latency());
                    stats.read_lat_us.record(done.latency().as_micros_f64());
                }
                RequestKind::Write => {
                    stats.writes_completed += 1;
                    stats.write_latency.record(done.latency());
                    stats.write_lat_us.record(done.latency().as_micros_f64());
                }
                RequestKind::Trim => stats.trims_completed += 1,
            }
            if stats.first_completion.is_none() {
                stats.first_completion = Some(c.at);
            }
            stats.last_completion = Some(c.at);
            if let Some(interval) = self.cfg.timeline_interval {
                stats
                    .timeline
                    .get_or_insert_with(|| TimeSeries::new(interval))
                    .observe(c.at, 1.0);
            }
        }
        self.call_workload(inf.thread, |w, ctx| w.call_back(ctx, done));
    }

    /// Start every not-yet-started thread whose dependencies all finished.
    fn try_start_threads(&mut self) {
        loop {
            let ready: Vec<ThreadId> = self
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| {
                    !t.started && t.deps.iter().all(|&d| self.threads[d].finished)
                })
                .map(|(tid, _)| tid)
                .collect();
            if ready.is_empty() {
                return;
            }
            for tid in ready {
                self.threads[tid].started = true;
                self.call_workload(tid, |w, ctx| w.init(ctx));
            }
        }
    }

    /// Invoke a workload callback with a fresh context, then apply the
    /// buffered effects (submissions, timers, finish).
    fn call_workload(&mut self, tid: ThreadId, f: impl FnOnce(&mut dyn Workload, &mut ThreadCtx)) {
        let mut submissions = Vec::new();
        let mut timer_delays = Vec::new();
        let mut finished = self.threads[tid].finished;
        {
            let mut ctx = ThreadCtx {
                now: self.now,
                logical_pages: self.ctrl.logical_pages(),
                submissions: &mut submissions,
                timers: &mut timer_delays,
                finished: &mut finished,
            };
            f(self.threads[tid].workload.as_mut(), &mut ctx);
        }
        for io in submissions {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.threads[tid].queue.push_back(QueuedIo {
                io,
                enqueued_at: self.now,
                seq,
            });
        }
        for d in timer_delays {
            self.timers.schedule(self.now + d, tid);
        }
        let newly_finished = finished && !self.threads[tid].finished;
        self.threads[tid].finished = finished;
        if newly_finished {
            self.try_start_threads();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eagletree_controller::ControllerConfig;
    use eagletree_core::SimDuration;
    use eagletree_flash::{Geometry, TimingSpec};

    /// Writes `count` sequential pages with `inflight` self-imposed
    /// parallelism, then finishes.
    struct SeqWriter {
        next: u64,
        count: u64,
        inflight: u64,
        outstanding: u64,
    }

    impl SeqWriter {
        fn new(count: u64, inflight: u64) -> Self {
            SeqWriter {
                next: 0,
                count,
                inflight,
                outstanding: 0,
            }
        }
        fn feed(&mut self, ctx: &mut ThreadCtx) {
            while self.outstanding < self.inflight && self.next < self.count {
                ctx.submit(OsIo::write(self.next));
                self.next += 1;
                self.outstanding += 1;
            }
            if self.next == self.count && self.outstanding == 0 {
                ctx.finish();
            }
        }
    }

    impl Workload for SeqWriter {
        fn init(&mut self, ctx: &mut ThreadCtx) {
            self.feed(ctx);
        }
        fn call_back(&mut self, ctx: &mut ThreadCtx, _done: CompletedIo) {
            self.outstanding -= 1;
            self.feed(ctx);
        }
        fn name(&self) -> &str {
            "seq-writer"
        }
    }

    fn os(cfg: OsConfig) -> Os {
        let ctrl = Controller::new(
            Geometry::tiny(),
            TimingSpec::slc(),
            ControllerConfig::default(),
        )
        .unwrap();
        Os::new(ctrl, cfg)
    }

    #[test]
    fn single_thread_completes_all_ios() {
        let mut os = os(OsConfig::default());
        let t = os.add_thread(Box::new(SeqWriter::new(100, 4)));
        os.run();
        assert_eq!(os.thread_stats(t).writes_completed, 100);
        assert!(os.thread_finished(t));
        assert!(os.thread_stats(t).throughput_iops() > 0.0);
        assert!(os.now() > SimTime::ZERO);
    }

    #[test]
    fn queue_depth_bounds_outstanding() {
        // qd=1 must serialize: makespan ≈ count × write path; much larger
        // than qd=16 on a 4-LUN device.
        let makespan = |qd: usize| {
            let mut o = os(OsConfig {
                queue_depth: qd,
                ..OsConfig::default()
            });
            o.add_thread(Box::new(SeqWriter::new(200, 64)));
            o.run();
            o.now()
        };
        let serial = makespan(1);
        let parallel = makespan(16);
        assert!(
            serial > parallel,
            "qd=1 ({serial:?}) should be slower than qd=16 ({parallel:?})"
        );
    }

    #[test]
    fn dependencies_serialize_threads() {
        struct Recorder {
            target: std::rc::Rc<std::cell::RefCell<Vec<&'static str>>>,
            label: &'static str,
        }
        impl Workload for Recorder {
            fn init(&mut self, ctx: &mut ThreadCtx) {
                self.target.borrow_mut().push(self.label);
                ctx.submit(OsIo::write(0));
            }
            fn call_back(&mut self, ctx: &mut ThreadCtx, _d: CompletedIo) {
                ctx.finish();
            }
        }
        let order = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut o = os(OsConfig::default());
        let a = o.add_thread(Box::new(Recorder {
            target: order.clone(),
            label: "a",
        }));
        let _b = o.add_thread_after(
            Box::new(Recorder {
                target: order.clone(),
                label: "b",
            }),
            vec![a],
        );
        o.run();
        assert_eq!(*order.borrow(), vec!["a", "b"]);
    }

    #[test]
    fn round_robin_is_fairer_than_fifo_for_greedy_thread() {
        // Thread 0 floods 600 IOs up front; thread 1 trickles with
        // self-limited parallelism. Under round-robin, thread 1's queue
        // wait should be far lower than under FIFO.
        struct Flood {
            n: u64,
        }
        impl Workload for Flood {
            fn init(&mut self, ctx: &mut ThreadCtx) {
                for i in 0..self.n {
                    ctx.submit(OsIo::write(i % ctx.logical_pages()));
                }
            }
            fn call_back(&mut self, ctx: &mut ThreadCtx, _d: CompletedIo) {
                ctx.finish();
            }
        }
        let wait = |policy: OsSchedPolicy| {
            let mut o = os(OsConfig {
                queue_depth: 8,
                policy,
                ..OsConfig::default()
            });
            let _flood = o.add_thread(Box::new(Flood { n: 600 }));
            let victim = o.add_thread(Box::new(SeqWriter::new(50, 2)));
            o.run();
            o.thread_stats(victim).queue_wait_us.mean()
        };
        let fifo = wait(OsSchedPolicy::Fifo);
        let rr = wait(OsSchedPolicy::RoundRobin);
        assert!(
            rr < fifo / 2.0,
            "round-robin wait {rr:.0}us not clearly fairer than fifo {fifo:.0}us"
        );
    }

    #[test]
    fn timers_fire_and_resubmit() {
        struct Ticker {
            ticks: u32,
        }
        impl Workload for Ticker {
            fn init(&mut self, ctx: &mut ThreadCtx) {
                ctx.set_timer(SimDuration::from_micros(100));
            }
            fn call_back(&mut self, _ctx: &mut ThreadCtx, _d: CompletedIo) {}
            fn on_timer(&mut self, ctx: &mut ThreadCtx) {
                self.ticks += 1;
                if self.ticks < 5 {
                    ctx.set_timer(SimDuration::from_micros(100));
                } else {
                    ctx.finish();
                }
            }
        }
        let mut o = os(OsConfig::default());
        let t = o.add_thread(Box::new(Ticker { ticks: 0 }));
        o.run();
        assert!(o.thread_finished(t));
        assert_eq!(o.now(), SimTime::from_nanos(500_000));
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut o = os(OsConfig::default());
        o.add_thread(Box::new(SeqWriter::new(10_000, 8)));
        let horizon = SimTime::from_nanos(1_000_000); // 1 ms
        o.run_until(horizon);
        assert!(o.now() <= horizon);
        let done = o.thread_stats(0).writes_completed;
        assert!(done > 0, "nothing completed within horizon");
        assert!(done < 10_000, "horizon did not cut the run short");
    }

    #[test]
    fn locked_interface_strips_tags() {
        // With the interface locked, priority tags must not reach the
        // controller; with it open, they must. Observable through the
        // controller's TagPriority scheduler only as behavior, so here we
        // assert the plumbing directly on dispatch by running twice and
        // checking both complete (smoke) — detailed behavioral assertions
        // live in the experiments crate.
        for open in [false, true] {
            let mut o = os(OsConfig {
                open_interface: open,
                ..OsConfig::default()
            });
            struct Tagged;
            impl Workload for Tagged {
                fn init(&mut self, ctx: &mut ThreadCtx) {
                    ctx.submit(
                        OsIo::write(1).tagged(IoTags::none().with_priority(0)),
                    );
                }
                fn call_back(&mut self, ctx: &mut ThreadCtx, _d: CompletedIo) {
                    ctx.finish();
                }
            }
            let t = o.add_thread(Box::new(Tagged));
            o.run();
            assert!(o.thread_finished(t));
        }
    }

    #[test]
    fn per_thread_stats_are_isolated() {
        let mut o = os(OsConfig::default());
        let a = o.add_thread(Box::new(SeqWriter::new(30, 2)));
        let b = o.add_thread(Box::new(SeqWriter::new(70, 2)));
        o.run();
        assert_eq!(o.thread_stats(a).writes_completed, 30);
        assert_eq!(o.thread_stats(b).writes_completed, 70);
        assert_eq!(o.thread_stats(a).read_latency.count(), 0);
    }

    #[test]
    #[should_panic(expected = "dependency on unknown thread")]
    fn bad_dependency_panics() {
        let mut o = os(OsConfig::default());
        o.add_thread_after(Box::new(SeqWriter::new(1, 1)), vec![5]);
    }

    #[test]
    fn timeline_captures_completions_over_time() {
        let mut o = os(OsConfig {
            timeline_interval: Some(SimDuration::from_micros(500)),
            ..OsConfig::default()
        });
        let t = o.add_thread(Box::new(SeqWriter::new(100, 4)));
        o.run();
        let tl = o.thread_stats(t).timeline.as_ref().expect("timeline on");
        let total: f64 = tl.points().iter().sum();
        assert_eq!(total, 100.0, "every completion lands in some interval");
        assert!(tl.points().len() > 1, "run spans several intervals");
        // Disabled by default.
        let mut o2 = os(OsConfig::default());
        let t2 = o2.add_thread(Box::new(SeqWriter::new(10, 2)));
        o2.run();
        assert!(o2.thread_stats(t2).timeline.is_none());
    }
}
