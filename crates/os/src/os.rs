//! The OS dispatcher and main simulation loop.
//!
//! [`Os`] owns the [`Controller`] and the simulated threads. Threads hand
//! IOs to per-thread queues; the OS dispatches up to
//! [`OsConfig::queue_depth`] outstanding requests to the SSD, choosing the
//! next one per [`OsSchedPolicy`]. When the SSD completes a request the OS
//! "interrupts": it updates the dispatching thread's statistics and invokes
//! its `call_back`, which may submit further IOs — the paper's reactive
//! thread model.
//!
//! Threads are grouped into [tenants](crate::tenant): each tenant owns a
//! namespace (tenant-relative LBAs, translated and bounds-checked here at
//! the OS boundary) and per-tenant QoS parameters. When a [`QosPolicy`]
//! other than `None` is configured, dispatch is two-stage: the QoS layer
//! picks the tenant, then the [`OsSchedPolicy`] picks among that tenant's
//! thread queues. Both stages work over reused scratch buffers — no
//! allocation per dispatched IO.

use std::collections::{BTreeMap, VecDeque};

use eagletree_controller::{
    class_index, Completion, Controller, CrashImage, IoTags, OpClass, RequestId, RequestKind,
    SsdRequest,
};
use eagletree_core::{
    EventQueue, Histogram, Obs, OnlineStats, QueueKind, SimDuration, SimTime, TimeSeries,
    Timeline, NO_SPAN,
};

use crate::qos::{self, QosPolicy, QosSlot, TenantCand};
use crate::sched::{DispatchCandidate, OsSchedPolicy};
use crate::tenant::{Namespace, TenantConfig, TenantId, TenantStats};
use crate::thread::{CompletedIo, OsIo, ThreadCtx, ThreadId, Workload};

/// OS-layer configuration.
#[derive(Debug, Clone)]
pub struct OsConfig {
    /// Maximum requests outstanding at the SSD (the device queue).
    pub queue_depth: usize,
    /// Dispatch policy across thread queues.
    pub policy: OsSchedPolicy,
    /// Tenant-selection policy above `policy`. `None` keeps the flat
    /// single-tenant behavior (all thread queues compete directly).
    pub qos: QosPolicy,
    /// Unlock the open interface: pass tags/messages through to the SSD.
    /// When `false`, the OS strips all hints — a traditional block device.
    pub open_interface: bool,
    /// Capture per-thread completion timelines at this resolution
    /// (`None` disables). Feeds the "metric vs. virtual time" plots of the
    /// experimental suite (§2.3).
    pub timeline_interval: Option<SimDuration>,
    /// Event-queue backend for the OS timer queue. Results are
    /// byte-identical across backends; see `ControllerConfig::queue` for
    /// the controller-agenda counterpart.
    pub queue: QueueKind,
}

impl Default for OsConfig {
    fn default() -> Self {
        OsConfig {
            queue_depth: 32,
            policy: OsSchedPolicy::Fifo,
            qos: QosPolicy::None,
            open_interface: false,
            timeline_interval: None,
            queue: QueueKind::default(),
        }
    }
}

/// Per-thread measurement: the "statistics gathering objects" attachable to
/// individual threads (§2.3).
#[derive(Debug, Clone)]
pub struct ThreadStats {
    pub reads_completed: u64,
    pub writes_completed: u64,
    pub trims_completed: u64,
    /// End-to-end (enqueue → completion) read latencies.
    pub read_latency: Histogram,
    /// End-to-end write latencies.
    pub write_latency: Histogram,
    /// Read latency mean/stddev in µs (latency variability metric).
    pub read_lat_us: OnlineStats,
    /// Write latency mean/stddev in µs.
    pub write_lat_us: OnlineStats,
    /// Time spent in the OS queue before dispatch (µs).
    pub queue_wait_us: OnlineStats,
    /// First and last completion instants (throughput window).
    pub first_completion: Option<SimTime>,
    pub last_completion: Option<SimTime>,
    /// Completions per interval over virtual time, when the OS was
    /// configured with a `timeline_interval`.
    pub timeline: Option<TimeSeries>,
}

impl ThreadStats {
    fn new() -> Self {
        ThreadStats {
            reads_completed: 0,
            writes_completed: 0,
            trims_completed: 0,
            read_latency: Histogram::new(),
            write_latency: Histogram::new(),
            read_lat_us: OnlineStats::new(),
            write_lat_us: OnlineStats::new(),
            queue_wait_us: OnlineStats::new(),
            first_completion: None,
            last_completion: None,
            timeline: None,
        }
    }

    /// Total completions.
    pub fn completed(&self) -> u64 {
        self.reads_completed + self.writes_completed + self.trims_completed
    }

    /// Completions per second over this thread's completion window.
    pub fn throughput_iops(&self) -> f64 {
        match (self.first_completion, self.last_completion) {
            (Some(a), Some(b)) if b > a => {
                self.completed() as f64 / b.since(a).as_secs_f64()
            }
            _ => 0.0,
        }
    }
}

struct QueuedIo {
    io: OsIo,
    enqueued_at: SimTime,
    seq: u64,
    /// Lifecycle span opened at submission ([`NO_SPAN`] with obs off).
    span: u64,
}

struct ThreadState {
    workload: Box<dyn Workload>,
    queue: VecDeque<QueuedIo>,
    deps: Vec<ThreadId>,
    tenant: TenantId,
    started: bool,
    finished: bool,
    stats: ThreadStats,
}

/// One tenant's OS-side state: its namespace window, member threads and
/// accounting. QoS state lives in the parallel `qos_slots` vector.
struct TenantEntry {
    name: String,
    ns: Namespace,
    threads: Vec<ThreadId>,
    /// Queued (not yet dispatched) IOs across this tenant's threads.
    backlog: usize,
    /// IOs dispatched to the device and not yet completed.
    inflight: usize,
    stats: TenantStats,
    /// The implicit whole-device tenant (identity translation).
    is_default: bool,
    /// Instant this tenant became QoS rate-blocked with device slots
    /// free (span accounting only; `None` when dispatchable).
    held_since: Option<SimTime>,
}

struct Inflight {
    thread: ThreadId,
    io: OsIo,
    enqueued_at: SimTime,
    dispatched_at: SimTime,
}

/// The simulated operating system.
pub struct Os {
    ctrl: Controller,
    cfg: OsConfig,
    threads: Vec<ThreadState>,
    tenants: Vec<TenantEntry>,
    qos_slots: Vec<QosSlot>,
    /// Index of the implicit whole-device tenant, once created.
    default_tenant: Option<TenantId>,
    /// Next free logical page for namespace carving.
    ns_watermark: u64,
    /// WFQ virtual clock: virtual start time of the last dispatched IO.
    vclock: f64,
    inflight: BTreeMap<RequestId, Inflight>,
    timers: EventQueue<ThreadId>,
    /// Largest timer delay seen so far: the timer queue's wake-source
    /// horizon. Growth re-tunes the calendar backend's bucket width.
    timer_horizon: SimDuration,
    now: SimTime,
    next_req_id: RequestId,
    next_seq: u64,
    last_served: ThreadId,
    /// Dispatch scratch (reused; no per-IO allocation).
    scratch_heads: Vec<DispatchCandidate>,
    scratch_tenants: Vec<TenantCand>,
    /// Time-sliced telemetry, when `ObsConfig::timeline_interval_us` is
    /// set on the controller.
    timeline: Option<Timeline>,
    /// Start of the current (not yet emitted) timeline interval.
    tl_next: SimTime,
    /// Cumulative-counter snapshot at the last emitted row.
    tl_prev: TlSnap,
}

/// Snapshot of the cumulative counters a timeline row differences.
#[derive(Debug, Clone, Copy, Default)]
struct TlSnap {
    completions: u64,
    issued: [u64; OpClass::COUNT],
    corrected_bits: u64,
    read_retries: u64,
    grown_bad: u64,
}

/// Timeline column names, in row order. Issue columns are per-interval
/// flash-command counts; `iops` is host completions per second over the
/// interval; `wa` is the cumulative write amplification at the interval
/// boundary; depth columns are instantaneous.
const TL_COLUMNS: &[&str] = &[
    "iops",
    "wa",
    "os_backlog",
    "dev_inflight",
    "app_read_issues",
    "app_write_issues",
    "gc_issues",
    "wl_issues",
    "merge_issues",
    "mapping_issues",
    "scrub_issues",
    "erase_issues",
    "corrected_bits",
    "read_retries",
    "grown_bad",
];

impl Os {
    /// An OS over a controller.
    pub fn new(ctrl: Controller, cfg: OsConfig) -> Self {
        assert!(cfg.queue_depth > 0, "queue depth must be positive");
        let timers = EventQueue::with_kind(cfg.queue);
        let obs_cfg = ctrl.obs_config();
        let timeline = obs_cfg.timeline_enabled().then(|| {
            Timeline::new(
                SimDuration::from_micros(obs_cfg.timeline_interval_us),
                TL_COLUMNS.to_vec(),
            )
        });
        Os {
            ctrl,
            cfg,
            threads: Vec::new(),
            tenants: Vec::new(),
            qos_slots: Vec::new(),
            default_tenant: None,
            ns_watermark: 0,
            vclock: 0.0,
            inflight: BTreeMap::new(),
            timers,
            timer_horizon: SimDuration::ZERO,
            now: SimTime::ZERO,
            next_req_id: 0,
            next_seq: 0,
            last_served: 0,
            scratch_heads: Vec::new(),
            scratch_tenants: Vec::new(),
            timeline,
            tl_next: SimTime::ZERO,
            tl_prev: TlSnap::default(),
        }
    }

    /// Create a tenant: carves its namespace from the next free logical
    /// pages (setup-time operation). Panics when the device has too few
    /// logical pages left.
    pub fn add_tenant(&mut self, cfg: TenantConfig) -> TenantId {
        assert!(cfg.namespace_pages > 0, "namespace must have pages");
        let base = self.ns_watermark;
        assert!(
            base + cfg.namespace_pages <= self.ctrl.logical_pages(),
            "tenant `{}`: namespace of {} pages does not fit ({} of {} logical pages already carved)",
            cfg.name,
            cfg.namespace_pages,
            base,
            self.ctrl.logical_pages()
        );
        self.ns_watermark = base + cfg.namespace_pages;
        self.tenants.push(TenantEntry {
            name: cfg.name,
            ns: Namespace {
                base,
                len: cfg.namespace_pages,
            },
            threads: Vec::new(),
            backlog: 0,
            inflight: 0,
            stats: TenantStats::new(cfg.namespace_pages),
            is_default: false,
            held_since: None,
        });
        self.qos_slots.push(QosSlot::new(cfg.qos));
        self.tenants.len() - 1
    }

    /// Resize a tenant's namespace (setup-time: panics while the tenant
    /// has queued or in-flight IOs). Grows in place when the namespace is
    /// the most recently carved one, otherwise relocates it to fresh
    /// logical pages; shrinking always happens in place. A relocated
    /// namespace is a fresh, logically empty window — previously written
    /// pages are left behind at the old location, so the tenant's
    /// valid-page accounting is cleared.
    pub fn resize_namespace(&mut self, t: TenantId, new_pages: u64) {
        assert!(new_pages > 0, "namespace must have pages");
        let e = &self.tenants[t];
        assert!(!e.is_default, "the default tenant always spans the whole device");
        assert!(
            e.backlog == 0 && e.inflight == 0,
            "resize is a setup-time operation: tenant `{}` has IOs outstanding",
            e.name
        );
        let old = e.ns;
        let last_carved = old.base + old.len == self.ns_watermark;
        if new_pages <= old.len {
            self.tenants[t].ns.len = new_pages;
            if last_carved {
                self.ns_watermark = old.base + new_pages;
            }
        } else if last_carved && old.base + new_pages <= self.ctrl.logical_pages() {
            self.tenants[t].ns.len = new_pages;
            self.ns_watermark = old.base + new_pages;
        } else {
            let base = self.ns_watermark;
            assert!(
                base + new_pages <= self.ctrl.logical_pages(),
                "tenant `{}`: cannot grow namespace to {} pages",
                self.tenants[t].name,
                new_pages
            );
            self.ns_watermark = base + new_pages;
            self.tenants[t].ns = Namespace {
                base,
                len: new_pages,
            };
            // The new window holds none of the tenant's old writes.
            self.tenants[t].stats.clear_valid();
        }
        self.tenants[t].stats.resize(new_pages);
    }

    /// The implicit whole-device tenant (identity namespace), created on
    /// first use. Threads registered through [`Os::add_thread`] belong to
    /// it, which keeps single-tenant setups working unchanged.
    fn ensure_default_tenant(&mut self) -> TenantId {
        if let Some(t) = self.default_tenant {
            return t;
        }
        self.tenants.push(TenantEntry {
            name: "default".to_string(),
            ns: Namespace {
                base: 0,
                len: self.ctrl.logical_pages(),
            },
            threads: Vec::new(),
            backlog: 0,
            inflight: 0,
            stats: TenantStats::new(self.ctrl.logical_pages()),
            is_default: true,
            held_since: None,
        });
        self.qos_slots.push(QosSlot::new(crate::QosParams::default()));
        let t = self.tenants.len() - 1;
        self.default_tenant = Some(t);
        t
    }

    /// Register a thread that starts immediately (default tenant).
    pub fn add_thread(&mut self, workload: Box<dyn Workload>) -> ThreadId {
        self.add_thread_after(workload, Vec::new())
    }

    /// Register a thread that starts once all of `deps` have finished —
    /// the preconditioning mechanism of §2.3 (default tenant).
    pub fn add_thread_after(&mut self, workload: Box<dyn Workload>, deps: Vec<ThreadId>) -> ThreadId {
        let t = self.ensure_default_tenant();
        self.add_tenant_thread_after(t, workload, deps)
    }

    /// Register a thread owned by tenant `t`; its IOs address the tenant's
    /// namespace (`ThreadCtx::logical_pages` reports the namespace size).
    pub fn add_tenant_thread(&mut self, t: TenantId, workload: Box<dyn Workload>) -> ThreadId {
        self.add_tenant_thread_after(t, workload, Vec::new())
    }

    /// Tenant-owned thread with start dependencies.
    pub fn add_tenant_thread_after(
        &mut self,
        t: TenantId,
        workload: Box<dyn Workload>,
        deps: Vec<ThreadId>,
    ) -> ThreadId {
        assert!(t < self.tenants.len(), "unknown tenant {t}");
        for &d in &deps {
            assert!(d < self.threads.len(), "dependency on unknown thread {d}");
        }
        self.threads.push(ThreadState {
            workload,
            queue: VecDeque::new(),
            deps,
            tenant: t,
            started: false,
            finished: false,
            stats: ThreadStats::new(),
        });
        let tid = self.threads.len() - 1;
        self.tenants[t].threads.push(tid);
        tid
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The controller (counters, wear metrics, write amplification …).
    pub fn controller(&self) -> &Controller {
        &self.ctrl
    }

    /// The structured span collector, when observability is enabled on
    /// the controller (`ObsConfig::span_capacity > 0`).
    pub fn obs(&self) -> Option<&Obs> {
        self.ctrl.obs()
    }

    /// The sampled telemetry timeline, when enabled
    /// (`ObsConfig::timeline_interval_us > 0`).
    pub fn timeline(&self) -> Option<&Timeline> {
        self.timeline.as_ref()
    }

    /// Tenant names in id order (the Perfetto exporter's tenant tracks).
    pub fn tenant_names(&self) -> Vec<String> {
        self.tenants.iter().map(|t| t.name.clone()).collect()
    }

    /// Simulation events processed so far: controller agenda events plus
    /// OS timer firings. The numerator of `events_per_sec`.
    pub fn events_simulated(&self) -> u64 {
        self.ctrl.events_processed() + self.timers.popped()
    }

    /// Total event-queue operations (schedules + pops) across the
    /// controller agenda and the OS timer queue: the event-engine work
    /// metric reported by the E18 throughput sweep.
    pub fn queue_ops(&self) -> u64 {
        self.ctrl.queue_ops() + self.timers.scheduled() + self.timers.popped()
    }

    /// The event-queue backend the simulation runs on (OS timer queue;
    /// the controller agenda is configured independently but experiments
    /// set both together).
    pub fn queue_kind(&self) -> QueueKind {
        self.timers.kind()
    }

    /// Declare the largest expected gap between now and future wake-ups
    /// (timers and controller agenda). Behavior-neutral calendar tuning
    /// for workloads with known long idle phases.
    pub fn hint_horizon(&mut self, horizon: SimDuration) {
        if horizon > self.timer_horizon {
            self.timer_horizon = horizon;
            self.timers.hint_horizon(horizon);
        }
        self.ctrl.hint_horizon(horizon);
    }

    /// Statistics of one thread.
    pub fn thread_stats(&self, t: ThreadId) -> &ThreadStats {
        &self.threads[t].stats
    }

    /// Whether thread `t` has declared itself finished.
    pub fn thread_finished(&self, t: ThreadId) -> bool {
        self.threads[t].finished
    }

    /// Number of tenants (including the implicit default tenant, if any
    /// thread was registered without an explicit tenant).
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// A tenant's name.
    pub fn tenant_name(&self, t: TenantId) -> &str {
        &self.tenants[t].name
    }

    /// A tenant's namespace window.
    pub fn namespace(&self, t: TenantId) -> Namespace {
        self.tenants[t].ns
    }

    /// A tenant's accounting: completion counts, per-class tail-latency
    /// histograms, namespace utilization.
    pub fn tenant_stats(&self, t: TenantId) -> &TenantStats {
        &self.tenants[t].stats
    }

    /// A tenant's namespace utilization (valid pages / namespace pages).
    pub fn namespace_utilization(&self, t: TenantId) -> f64 {
        self.tenants[t].stats.utilization(self.tenants[t].ns.len)
    }

    /// Threads owned by tenant `t`.
    pub fn tenant_threads(&self, t: TenantId) -> &[ThreadId] {
        &self.tenants[t].threads
    }

    /// Pull the plug at the current virtual instant: the whole host dies
    /// with the device. Queued and in-flight (unacknowledged) IOs, thread
    /// state and OS statistics are lost; the SSD loses exactly the flash
    /// operations still in flight. Returns the dead medium — pass it to
    /// [`Controller::remount`] and wrap the recovered controller in a
    /// fresh [`Os`] to model the reboot.
    ///
    /// Typically used after [`Os::run_until`], which stops the simulation
    /// at the chosen crash instant.
    pub fn power_cut(self) -> CrashImage {
        let now = self.now;
        self.ctrl.power_cut(now)
    }

    /// Run until no further progress is possible (all queues empty, no
    /// in-flight IOs, no timers, controller idle). Flushes the trailing
    /// partial telemetry interval, when the timeline is on.
    pub fn run(&mut self) {
        self.run_inner(None);
        self.timeline_final();
    }

    /// Run until progress stops or virtual time would pass `horizon`.
    pub fn run_until(&mut self, horizon: SimTime) {
        self.run_inner(Some(horizon));
    }

    fn run_inner(&mut self, horizon: Option<SimTime>) {
        self.try_start_threads();
        self.pump();
        loop {
            let wake = [
                self.ctrl.next_event_time(),
                self.timers.peek_time(),
                self.qos_next_ready(),
            ];
            let Some(next) = wake.into_iter().flatten().min() else {
                break;
            };
            if let Some(h) = horizon {
                if next > h {
                    self.now = h;
                    break;
                }
            }
            self.now = next;
            self.timeline_tick();
            let completions = self.ctrl.advance(next);
            for c in completions {
                self.handle_completion(c);
            }
            while self.timers.peek_time() == Some(next) {
                let tid = self.timers.pop().expect("peeked timer").payload;
                self.call_workload(tid, |w, ctx| w.on_timer(ctx));
            }
            self.pump();
        }
    }

    /// Dispatch + drain instant completions until a fixpoint.
    fn pump(&mut self) {
        loop {
            self.dispatch();
            let completions = self.ctrl.advance(self.now);
            if completions.is_empty() {
                break;
            }
            for c in completions {
                self.handle_completion(c);
            }
        }
    }

    /// Emit telemetry rows for every whole interval the clock just
    /// crossed. Called right after `now` advances and before the events
    /// at `now` are processed, so each row covers activity strictly
    /// before its interval end.
    fn timeline_tick(&mut self) {
        let Some(tl) = &self.timeline else { return };
        let interval = tl.interval();
        while self.now >= self.tl_next + interval {
            let end = self.tl_next + interval;
            self.timeline_row(self.tl_next, end);
            self.tl_next = end;
        }
    }

    /// Flush the trailing partial interval at the end of a run.
    fn timeline_final(&mut self) {
        if self.timeline.is_none() {
            return;
        }
        if self.now > self.tl_next {
            let end = self.now;
            self.timeline_row(self.tl_next, end);
            self.tl_next = end;
        }
    }

    /// Compute and append one telemetry row covering `[from, to)`.
    fn timeline_row(&mut self, from: SimTime, to: SimTime) {
        let issued = self.ctrl.stats().issued;
        let (cb, rr, gb) = self.ctrl.reliability().map_or((0, 0, 0), |r| {
            (r.corrected_bits, r.read_retries, r.grown_bad_blocks)
        });
        let completions: u64 = self.tenants.iter().map(|t| t.stats.completed()).sum();
        let prev = self.tl_prev;
        let secs = to.since(from).as_secs_f64();
        let iops = if secs > 0.0 {
            (completions - prev.completions) as f64 / secs
        } else {
            0.0
        };
        let d = |a: OpClass| (issued[class_index(a)] - prev.issued[class_index(a)]) as f64;
        let backlog: usize = self.tenants.iter().map(|t| t.backlog).sum();
        let row = vec![
            iops,
            self.ctrl.write_amplification(),
            backlog as f64,
            self.inflight.len() as f64,
            d(OpClass::AppRead),
            d(OpClass::AppWrite),
            d(OpClass::GcRead) + d(OpClass::GcWrite),
            d(OpClass::WlRead) + d(OpClass::WlWrite),
            d(OpClass::MergeRead) + d(OpClass::MergeWrite),
            d(OpClass::MappingRead) + d(OpClass::MappingWrite),
            d(OpClass::ScrubRead) + d(OpClass::ScrubWrite),
            d(OpClass::Erase),
            (cb - prev.corrected_bits) as f64,
            (rr - prev.read_retries) as f64,
            (gb - prev.grown_bad) as f64,
        ];
        self.tl_prev = TlSnap {
            completions,
            issued,
            corrected_bits: cb,
            read_retries: rr,
            grown_bad: gb,
        };
        self.timeline
            .as_mut()
            .expect("caller checked")
            .push_row(from, row);
    }

    /// Earliest token-refill instant the main loop must wake for: only
    /// meaningful under `TokenBucket` with free device-queue slots and a
    /// rate-blocked backlog.
    fn qos_next_ready(&mut self) -> Option<SimTime> {
        if self.cfg.qos != QosPolicy::TokenBucket
            || self.inflight.len() >= self.cfg.queue_depth
        {
            return None;
        }
        self.scratch_tenants.clear();
        for (t, e) in self.tenants.iter().enumerate() {
            if e.backlog > 0 {
                self.scratch_tenants.push(TenantCand {
                    tenant: t,
                    head_seq: 0,
                    head_enqueued_at: SimTime::ZERO,
                });
            }
        }
        qos::next_ready_time(
            &self.cfg.qos,
            &self.scratch_tenants,
            &mut self.qos_slots,
            self.now,
        )
    }

    /// Collect the head-of-queue candidates of the given threads into the
    /// reused scratch buffer.
    fn collect_heads(threads: &[ThreadState], tids: impl Iterator<Item = ThreadId>, out: &mut Vec<DispatchCandidate>) {
        out.clear();
        for tid in tids {
            if let Some(q) = threads[tid].queue.front() {
                out.push(DispatchCandidate {
                    thread: tid,
                    kind: q.io.kind,
                    enqueued_at: q.enqueued_at,
                    seq: q.seq,
                });
            }
        }
    }

    /// Pick the next thread to serve, or `None` when nothing is
    /// dispatchable. Stage 1 (QoS) chooses the tenant, stage 2 (the OS
    /// policy) chooses among that tenant's thread queues; under
    /// `QosPolicy::None` all thread queues compete flat, exactly as in the
    /// pre-tenant dispatcher.
    fn pick_thread(&mut self) -> Option<ThreadId> {
        if self.cfg.qos == QosPolicy::None {
            let n = self.threads.len();
            Self::collect_heads(&self.threads, 0..n, &mut self.scratch_heads);
            let pick = self.cfg.policy.select(&self.scratch_heads, self.last_served)?;
            return Some(self.scratch_heads[pick].thread);
        }
        self.scratch_tenants.clear();
        for (t, e) in self.tenants.iter().enumerate() {
            if e.backlog == 0 {
                continue;
            }
            // The tenant's oldest queued IO (min arrival seq over heads).
            let mut head: Option<(u64, SimTime)> = None;
            for &tid in &e.threads {
                if let Some(q) = self.threads[tid].queue.front() {
                    if head.is_none_or(|(s, _)| q.seq < s) {
                        head = Some((q.seq, q.enqueued_at));
                    }
                }
            }
            let (head_seq, head_enqueued_at) = head.expect("backlogged tenant has a head");
            self.scratch_tenants.push(TenantCand {
                tenant: t,
                head_seq,
                head_enqueued_at,
            });
        }
        let pick = qos::select(
            &self.cfg.qos,
            &self.scratch_tenants,
            &mut self.qos_slots,
            self.now,
            self.vclock,
        )?;
        let tenant = self.scratch_tenants[pick].tenant;
        Self::collect_heads(
            &self.threads,
            self.tenants[tenant].threads.iter().copied(),
            &mut self.scratch_heads,
        );
        let pick = self
            .cfg
            .policy
            .select(&self.scratch_heads, self.last_served)
            .expect("backlogged tenant has dispatchable heads");
        Some(self.scratch_heads[pick].thread)
    }

    /// Move queued IOs to the SSD while device-queue slots are free.
    fn dispatch(&mut self) {
        while self.inflight.len() < self.cfg.queue_depth {
            let Some(tid) = self.pick_thread() else {
                break;
            };
            let q = self.threads[tid].queue.pop_front().expect("head exists");
            let tenant = self.threads[tid].tenant;
            self.tenants[tenant].backlog -= 1;
            self.tenants[tenant].inflight += 1;
            self.vclock = qos::charge(
                &self.cfg.qos,
                &mut self.qos_slots,
                tenant,
                self.now,
                self.vclock,
            );
            self.last_served = tid;
            let id = self.next_req_id;
            self.next_req_id += 1;
            let tags = if self.cfg.open_interface {
                q.io.tags
            } else {
                IoTags::none()
            };
            let wait_us = self.now.saturating_since(q.enqueued_at).as_micros_f64();
            self.threads[tid].stats.queue_wait_us.record(wait_us);
            self.tenants[tenant].stats.queue_wait_us.record(wait_us);
            if q.span != NO_SPAN {
                // The span's host wait splits into QoS hold (while the
                // tenant was rate-blocked) and plain queue wait; bind the
                // device request id so the controller continues the span.
                let hold = match self.tenants[tenant].held_since.take() {
                    Some(since) => self.now.saturating_since(since),
                    None => SimDuration::ZERO,
                };
                if let Some(o) = self.ctrl.obs_mut() {
                    o.acc_queue(q.span, self.now, hold);
                    o.bind_request(id, q.span);
                }
            }
            // Namespace translation: queues hold tenant-relative LBAs
            // (bounds-checked at submission); the device sees absolute ones.
            let lpn = self.tenants[tenant].ns.base + q.io.lpn;
            self.inflight.insert(
                id,
                Inflight {
                    thread: tid,
                    io: q.io,
                    enqueued_at: q.enqueued_at,
                    dispatched_at: self.now,
                },
            );
            self.ctrl.submit(
                SsdRequest {
                    id,
                    kind: q.io.kind,
                    lpn,
                    tags,
                },
                self.now,
            );
        }
        // Dispatch stopped with device slots free: under a token bucket
        // any still-backlogged tenant is rate-blocked — note when the
        // hold began so its next dispatch can attribute the wait.
        if self.cfg.qos == QosPolicy::TokenBucket
            && self.inflight.len() < self.cfg.queue_depth
            && self.ctrl.obs().is_some()
        {
            let now = self.now;
            for e in &mut self.tenants {
                if e.backlog > 0 {
                    e.held_since.get_or_insert(now);
                } else {
                    e.held_since = None;
                }
            }
        }
    }

    fn handle_completion(&mut self, c: Completion) {
        let inf = self
            .inflight
            .remove(&c.id)
            .expect("completion for unknown request");
        let done = CompletedIo {
            io: inf.io,
            enqueued_at: inf.enqueued_at,
            dispatched_at: inf.dispatched_at,
            completed_at: c.at,
        };
        {
            let tenant = self.threads[inf.thread].tenant;
            if let Some(st) = self.ctrl.obs_mut().and_then(|o| o.take_finished(c.id)) {
                self.tenants[tenant].stats.record_stages(inf.io.kind, st);
            }
            let te = &mut self.tenants[tenant];
            te.inflight -= 1;
            te.stats
                .record_completion(inf.io.kind, inf.io.lpn, done.latency());
        }
        {
            let stats = &mut self.threads[inf.thread].stats;
            match inf.io.kind {
                RequestKind::Read => {
                    stats.reads_completed += 1;
                    stats.read_latency.record(done.latency());
                    stats.read_lat_us.record(done.latency().as_micros_f64());
                }
                RequestKind::Write => {
                    stats.writes_completed += 1;
                    stats.write_latency.record(done.latency());
                    stats.write_lat_us.record(done.latency().as_micros_f64());
                }
                RequestKind::Trim => stats.trims_completed += 1,
            }
            if stats.first_completion.is_none() {
                stats.first_completion = Some(c.at);
            }
            stats.last_completion = Some(c.at);
            if let Some(interval) = self.cfg.timeline_interval {
                stats
                    .timeline
                    .get_or_insert_with(|| TimeSeries::new(interval))
                    .observe(c.at, 1.0);
            }
        }
        self.call_workload(inf.thread, |w, ctx| w.call_back(ctx, done));
    }

    /// Start every not-yet-started thread whose dependencies all finished.
    fn try_start_threads(&mut self) {
        loop {
            let ready: Vec<ThreadId> = self
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| {
                    !t.started && t.deps.iter().all(|&d| self.threads[d].finished)
                })
                .map(|(tid, _)| tid)
                .collect();
            if ready.is_empty() {
                return;
            }
            for tid in ready {
                self.threads[tid].started = true;
                self.call_workload(tid, |w, ctx| w.init(ctx));
            }
        }
    }

    /// Invoke a workload callback with a fresh context, then apply the
    /// buffered effects (submissions, timers, finish). Submissions are
    /// bounds-checked against the thread's namespace here — the OS
    /// boundary no tenant-relative LBA crosses unchecked.
    fn call_workload(&mut self, tid: ThreadId, f: impl FnOnce(&mut dyn Workload, &mut ThreadCtx)) {
        let tenant = self.threads[tid].tenant;
        let ns = self.tenants[tenant].ns;
        let mut submissions = Vec::new();
        let mut timer_delays = Vec::new();
        let mut finished = self.threads[tid].finished;
        {
            let mut ctx = ThreadCtx {
                now: self.now,
                logical_pages: ns.len,
                submissions: &mut submissions,
                timers: &mut timer_delays,
                finished: &mut finished,
            };
            f(self.threads[tid].workload.as_mut(), &mut ctx);
        }
        if !submissions.is_empty() {
            if self.tenants[tenant].backlog == 0 {
                // Idle → backlogged: sync the WFQ virtual time.
                self.qos_slots[tenant].on_backlogged(self.vclock);
            }
            for io in submissions {
                // Bounds check (panics on violation); translation to the
                // device-absolute LBA happens at dispatch.
                ns.translate(io.lpn, &self.tenants[tenant].name);
                let seq = self.next_seq;
                self.next_seq += 1;
                let now = self.now;
                let span = self.ctrl.obs_mut().map_or(NO_SPAN, |o| {
                    let kind = match io.kind {
                        RequestKind::Read => "AppRead",
                        RequestKind::Write => "AppWrite",
                        RequestKind::Trim => "Trim",
                    };
                    o.open(kind, Some(tenant as u32), now)
                });
                self.threads[tid].queue.push_back(QueuedIo {
                    io,
                    enqueued_at: self.now,
                    seq,
                    span,
                });
                self.tenants[tenant].backlog += 1;
            }
        }
        for d in timer_delays {
            // A longer delay than any seen widens this wake source's
            // horizon: tell the calendar so its bucket width follows
            // (behavior-neutral; order is unaffected).
            if d > self.timer_horizon {
                self.timer_horizon = d;
                self.timers.hint_horizon(d);
            }
            self.timers.schedule(self.now + d, tid);
        }
        let newly_finished = finished && !self.threads[tid].finished;
        self.threads[tid].finished = finished;
        if newly_finished {
            self.try_start_threads();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eagletree_controller::ControllerConfig;
    use eagletree_core::SimDuration;
    use eagletree_flash::{Geometry, TimingSpec};

    /// Writes `count` sequential pages with `inflight` self-imposed
    /// parallelism, then finishes.
    struct SeqWriter {
        next: u64,
        count: u64,
        inflight: u64,
        outstanding: u64,
    }

    impl SeqWriter {
        fn new(count: u64, inflight: u64) -> Self {
            SeqWriter {
                next: 0,
                count,
                inflight,
                outstanding: 0,
            }
        }
        fn feed(&mut self, ctx: &mut ThreadCtx) {
            while self.outstanding < self.inflight && self.next < self.count {
                ctx.submit(OsIo::write(self.next));
                self.next += 1;
                self.outstanding += 1;
            }
            if self.next == self.count && self.outstanding == 0 {
                ctx.finish();
            }
        }
    }

    impl Workload for SeqWriter {
        fn init(&mut self, ctx: &mut ThreadCtx) {
            self.feed(ctx);
        }
        fn call_back(&mut self, ctx: &mut ThreadCtx, _done: CompletedIo) {
            self.outstanding -= 1;
            self.feed(ctx);
        }
        fn name(&self) -> &str {
            "seq-writer"
        }
    }

    fn os(cfg: OsConfig) -> Os {
        let ctrl = Controller::new(
            Geometry::tiny(),
            TimingSpec::slc(),
            ControllerConfig::default(),
        )
        .unwrap();
        Os::new(ctrl, cfg)
    }

    #[test]
    fn single_thread_completes_all_ios() {
        let mut os = os(OsConfig::default());
        let t = os.add_thread(Box::new(SeqWriter::new(100, 4)));
        os.run();
        assert_eq!(os.thread_stats(t).writes_completed, 100);
        assert!(os.thread_finished(t));
        assert!(os.thread_stats(t).throughput_iops() > 0.0);
        assert!(os.now() > SimTime::ZERO);
    }

    #[test]
    fn queue_depth_bounds_outstanding() {
        // qd=1 must serialize: makespan ≈ count × write path; much larger
        // than qd=16 on a 4-LUN device.
        let makespan = |qd: usize| {
            let mut o = os(OsConfig {
                queue_depth: qd,
                ..OsConfig::default()
            });
            o.add_thread(Box::new(SeqWriter::new(200, 64)));
            o.run();
            o.now()
        };
        let serial = makespan(1);
        let parallel = makespan(16);
        assert!(
            serial > parallel,
            "qd=1 ({serial:?}) should be slower than qd=16 ({parallel:?})"
        );
    }

    #[test]
    fn dependencies_serialize_threads() {
        struct Recorder {
            target: std::rc::Rc<std::cell::RefCell<Vec<&'static str>>>,
            label: &'static str,
        }
        impl Workload for Recorder {
            fn init(&mut self, ctx: &mut ThreadCtx) {
                self.target.borrow_mut().push(self.label);
                ctx.submit(OsIo::write(0));
            }
            fn call_back(&mut self, ctx: &mut ThreadCtx, _d: CompletedIo) {
                ctx.finish();
            }
        }
        let order = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut o = os(OsConfig::default());
        let a = o.add_thread(Box::new(Recorder {
            target: order.clone(),
            label: "a",
        }));
        let _b = o.add_thread_after(
            Box::new(Recorder {
                target: order.clone(),
                label: "b",
            }),
            vec![a],
        );
        o.run();
        assert_eq!(*order.borrow(), vec!["a", "b"]);
    }

    #[test]
    fn round_robin_is_fairer_than_fifo_for_greedy_thread() {
        // Thread 0 floods 600 IOs up front; thread 1 trickles with
        // self-limited parallelism. Under round-robin, thread 1's queue
        // wait should be far lower than under FIFO.
        struct Flood {
            n: u64,
        }
        impl Workload for Flood {
            fn init(&mut self, ctx: &mut ThreadCtx) {
                for i in 0..self.n {
                    ctx.submit(OsIo::write(i % ctx.logical_pages()));
                }
            }
            fn call_back(&mut self, ctx: &mut ThreadCtx, _d: CompletedIo) {
                ctx.finish();
            }
        }
        let wait = |policy: OsSchedPolicy| {
            let mut o = os(OsConfig {
                queue_depth: 8,
                policy,
                ..OsConfig::default()
            });
            let _flood = o.add_thread(Box::new(Flood { n: 600 }));
            let victim = o.add_thread(Box::new(SeqWriter::new(50, 2)));
            o.run();
            o.thread_stats(victim).queue_wait_us.mean()
        };
        let fifo = wait(OsSchedPolicy::Fifo);
        let rr = wait(OsSchedPolicy::RoundRobin);
        assert!(
            rr < fifo / 2.0,
            "round-robin wait {rr:.0}us not clearly fairer than fifo {fifo:.0}us"
        );
    }

    #[test]
    fn timers_fire_and_resubmit() {
        struct Ticker {
            ticks: u32,
        }
        impl Workload for Ticker {
            fn init(&mut self, ctx: &mut ThreadCtx) {
                ctx.set_timer(SimDuration::from_micros(100));
            }
            fn call_back(&mut self, _ctx: &mut ThreadCtx, _d: CompletedIo) {}
            fn on_timer(&mut self, ctx: &mut ThreadCtx) {
                self.ticks += 1;
                if self.ticks < 5 {
                    ctx.set_timer(SimDuration::from_micros(100));
                } else {
                    ctx.finish();
                }
            }
        }
        let mut o = os(OsConfig::default());
        let t = o.add_thread(Box::new(Ticker { ticks: 0 }));
        o.run();
        assert!(o.thread_finished(t));
        assert_eq!(o.now(), SimTime::from_nanos(500_000));
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut o = os(OsConfig::default());
        o.add_thread(Box::new(SeqWriter::new(10_000, 8)));
        let horizon = SimTime::from_nanos(1_000_000); // 1 ms
        o.run_until(horizon);
        assert!(o.now() <= horizon);
        let done = o.thread_stats(0).writes_completed;
        assert!(done > 0, "nothing completed within horizon");
        assert!(done < 10_000, "horizon did not cut the run short");
    }

    #[test]
    fn locked_interface_strips_tags() {
        // With the interface locked, priority tags must not reach the
        // controller; with it open, they must. Observable through the
        // controller's TagPriority scheduler only as behavior, so here we
        // assert the plumbing directly on dispatch by running twice and
        // checking both complete (smoke) — detailed behavioral assertions
        // live in the experiments crate.
        for open in [false, true] {
            let mut o = os(OsConfig {
                open_interface: open,
                ..OsConfig::default()
            });
            struct Tagged;
            impl Workload for Tagged {
                fn init(&mut self, ctx: &mut ThreadCtx) {
                    ctx.submit(
                        OsIo::write(1).tagged(IoTags::none().with_priority(0)),
                    );
                }
                fn call_back(&mut self, ctx: &mut ThreadCtx, _d: CompletedIo) {
                    ctx.finish();
                }
            }
            let t = o.add_thread(Box::new(Tagged));
            o.run();
            assert!(o.thread_finished(t));
        }
    }

    #[test]
    fn per_thread_stats_are_isolated() {
        let mut o = os(OsConfig::default());
        let a = o.add_thread(Box::new(SeqWriter::new(30, 2)));
        let b = o.add_thread(Box::new(SeqWriter::new(70, 2)));
        o.run();
        assert_eq!(o.thread_stats(a).writes_completed, 30);
        assert_eq!(o.thread_stats(b).writes_completed, 70);
        assert_eq!(o.thread_stats(a).read_latency.count(), 0);
    }

    #[test]
    #[should_panic(expected = "dependency on unknown thread")]
    fn bad_dependency_panics() {
        let mut o = os(OsConfig::default());
        o.add_thread_after(Box::new(SeqWriter::new(1, 1)), vec![5]);
    }

    #[test]
    fn tenants_get_disjoint_namespaces_and_isolated_stats() {
        use crate::tenant::TenantConfig;
        let mut o = os(OsConfig::default());
        let a = o.add_tenant(TenantConfig::new("a", 64));
        let b = o.add_tenant(TenantConfig::new("b", 32));
        assert_eq!(o.namespace(a).base, 0);
        assert_eq!(o.namespace(b).base, 64);
        o.add_tenant_thread(a, Box::new(SeqWriter::new(64, 4)));
        o.add_tenant_thread(b, Box::new(SeqWriter::new(10, 2)));
        o.run();
        assert_eq!(o.tenant_stats(a).writes_completed, 64);
        assert_eq!(o.tenant_stats(b).writes_completed, 10);
        // Utilization counts distinct namespace pages.
        assert_eq!(o.tenant_stats(a).valid_pages(), 64);
        assert_eq!(o.namespace_utilization(a), 1.0);
        assert!((o.namespace_utilization(b) - 10.0 / 32.0).abs() < 1e-12);
        assert!(o.tenant_stats(a).tail(eagletree_controller::OpClass::AppWrite).p99
            > SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "outside its 8-page namespace")]
    fn tenant_lba_out_of_namespace_panics_at_the_boundary() {
        use crate::tenant::TenantConfig;
        let mut o = os(OsConfig::default());
        let t = o.add_tenant(TenantConfig::new("tiny", 8));
        // SeqWriter writes LBAs 0..16: the 9th violates the namespace.
        o.add_tenant_thread(t, Box::new(SeqWriter::new(16, 1)));
        o.run();
    }

    #[test]
    fn namespace_resize_at_setup_grows_and_relocates() {
        use crate::tenant::TenantConfig;
        let mut o = os(OsConfig::default());
        let a = o.add_tenant(TenantConfig::new("a", 16));
        let b = o.add_tenant(TenantConfig::new("b", 16));
        // `b` is the last carved: grows in place.
        o.resize_namespace(b, 32);
        assert_eq!(o.namespace(b), crate::tenant::Namespace { base: 16, len: 32 });
        // `a` is not: relocates past the watermark. Pages written before
        // the relocation are left behind, so valid-page accounting resets.
        let w = o.add_tenant_thread(a, Box::new(SeqWriter::new(4, 2)));
        o.run();
        assert_eq!(o.tenant_stats(a).valid_pages(), 4);
        let _ = w;
        o.resize_namespace(a, 24);
        assert_eq!(o.namespace(a), crate::tenant::Namespace { base: 48, len: 24 });
        assert_eq!(o.tenant_stats(a).valid_pages(), 0, "relocated window is empty");
        // Shrink is always in place.
        o.resize_namespace(a, 8);
        assert_eq!(o.namespace(a), crate::tenant::Namespace { base: 48, len: 8 });
        o.add_tenant_thread(a, Box::new(SeqWriter::new(8, 2)));
        o.run();
        // 4 pre-relocation writes + 8 in the new window (counters are
        // cumulative; only the valid-page bitmap was reset).
        assert_eq!(o.tenant_stats(a).writes_completed, 12);
        assert_eq!(o.tenant_stats(a).valid_pages(), 8);
    }

    #[test]
    fn wfq_isolates_a_modest_tenant_from_a_flooder() {
        use crate::qos::QosPolicy;
        use crate::tenant::TenantConfig;
        // Tenant "hog" floods 600 writes up front; tenant "victim" issues
        // a trickle. Under WFQ the victim's queue wait must collapse
        // relative to the flat (None) dispatch.
        let victim_wait = |qos: QosPolicy, hog_weight: u32, victim_weight: u32| {
            let mut o = os(OsConfig {
                queue_depth: 8,
                qos,
                ..OsConfig::default()
            });
            let mut hog_cfg = TenantConfig::new("hog", 32);
            hog_cfg.qos.weight = hog_weight;
            let mut victim_cfg = TenantConfig::new("victim", 32);
            victim_cfg.qos.weight = victim_weight;
            let hog = o.add_tenant(hog_cfg);
            let victim = o.add_tenant(victim_cfg);
            struct Flood {
                n: u64,
            }
            impl Workload for Flood {
                fn init(&mut self, ctx: &mut ThreadCtx) {
                    for i in 0..self.n {
                        ctx.submit(OsIo::write(i % ctx.logical_pages()));
                    }
                }
                fn call_back(&mut self, ctx: &mut ThreadCtx, _d: CompletedIo) {
                    ctx.finish();
                }
            }
            o.add_tenant_thread(hog, Box::new(Flood { n: 600 }));
            let v = o.add_tenant_thread(victim, Box::new(SeqWriter::new(30, 2)));
            o.run();
            let _ = v;
            o.tenant_stats(victim).queue_wait_us.mean()
        };
        let flat = victim_wait(QosPolicy::None, 1, 1);
        let wfq = victim_wait(QosPolicy::Wfq, 1, 1);
        assert!(
            wfq < flat / 2.0,
            "wfq victim wait {wfq:.0}us not clearly better than flat {flat:.0}us"
        );
    }

    #[test]
    fn token_bucket_caps_tenant_throughput() {
        use crate::qos::QosPolicy;
        use crate::tenant::TenantConfig;
        // One tenant capped at 10k IOPS must take ≥ ~100µs per IO of
        // virtual time even though the device is much faster.
        let mut o = os(OsConfig {
            qos: QosPolicy::TokenBucket,
            ..OsConfig::default()
        });
        let mut cfg = TenantConfig::new("capped", 64);
        cfg.qos.iops_limit = Some(10_000.0);
        cfg.qos.burst = 1.0;
        let t = o.add_tenant(cfg);
        o.add_tenant_thread(t, Box::new(SeqWriter::new(50, 8)));
        o.run();
        let makespan_us = o.now().as_nanos() as f64 / 1e3;
        assert!(
            makespan_us >= 49.0 * 100.0,
            "50 IOs at 10k IOPS must span ≥4.9ms of virtual time, got {makespan_us:.0}us"
        );
        assert_eq!(o.tenant_stats(t).writes_completed, 50);
    }

    #[test]
    fn strict_tiers_prefer_low_tier_and_never_starve() {
        use crate::qos::QosPolicy;
        use crate::tenant::TenantConfig;
        let mut o = os(OsConfig {
            queue_depth: 4,
            qos: QosPolicy::StrictTiers {
                starvation_us: 50_000,
            },
            ..OsConfig::default()
        });
        let mut hi = TenantConfig::new("hi", 256);
        hi.qos.tier = 0;
        let mut lo = TenantConfig::new("lo", 64);
        lo.qos.tier = 3;
        let hi = o.add_tenant(hi);
        let lo = o.add_tenant(lo);
        o.add_tenant_thread(hi, Box::new(SeqWriter::new(200, 16)));
        o.add_tenant_thread(lo, Box::new(SeqWriter::new(50, 16)));
        o.run();
        // Both finish (starvation guard), and the high tier waits less.
        assert_eq!(o.tenant_stats(hi).writes_completed, 200);
        assert_eq!(o.tenant_stats(lo).writes_completed, 50);
        assert!(
            o.tenant_stats(hi).queue_wait_us.mean()
                < o.tenant_stats(lo).queue_wait_us.mean()
        );
    }

    #[test]
    fn default_tenant_coexists_with_named_tenants() {
        use crate::tenant::TenantConfig;
        let mut o = os(OsConfig::default());
        // Preconditioning-style whole-device thread (default tenant) plus
        // a carved tenant.
        let fill = o.add_thread(Box::new(SeqWriter::new(100, 8)));
        let t = o.add_tenant(TenantConfig::new("t", 32));
        o.add_tenant_thread(t, Box::new(SeqWriter::new(32, 4)));
        o.run();
        assert_eq!(o.thread_stats(fill).writes_completed, 100);
        assert_eq!(o.tenant_stats(t).writes_completed, 32);
        assert_eq!(o.tenant_count(), 2);
        assert_eq!(o.tenant_name(t), "t");
    }

    #[test]
    fn obs_spans_and_timeline_capture_lifecycles() {
        let mut ccfg = ControllerConfig::default();
        ccfg.obs.span_capacity = 4096;
        ccfg.obs.timeline_interval_us = 200;
        let ctrl =
            Controller::new(Geometry::tiny(), TimingSpec::slc(), ccfg).unwrap();
        let mut o = Os::new(ctrl, OsConfig::default());
        let t = o.add_thread(Box::new(SeqWriter::new(100, 4)));
        o.run();
        assert_eq!(o.thread_stats(t).writes_completed, 100);
        let obs = o.obs().expect("spans enabled");
        assert_eq!(obs.open_count(), 0, "all spans closed at quiescence");
        assert!(obs.closed_count() > 0);
        // Every host write fed a per-tenant stage breakdown, and the
        // cursor accounting makes stage sums equal end-to-end latency.
        let bd = o
            .tenant_stats(0)
            .stage_breakdown(RequestKind::Write)
            .expect("write breakdowns recorded");
        assert_eq!(bd.count(), 100);
        assert!(bd.total().mean() > SimDuration::ZERO);
        for s in obs.spans() {
            assert_eq!(
                s.stages.total(),
                s.end.since(s.start).as_nanos(),
                "span {} stage sums must equal end-to-end",
                s.id
            );
        }
        let tl = o.timeline().expect("timeline enabled");
        assert!(!tl.is_empty(), "run must span telemetry intervals");
        assert!(tl.to_csv().starts_with("t_us,iops,wa,"));
        let writes: f64 = tl
            .rows()
            .iter()
            .map(|(_, v)| v[TL_COLUMNS.iter().position(|c| *c == "app_write_issues").unwrap()])
            .sum();
        assert!(writes >= 100.0, "all write issues land in some interval");
        // Obs off: no collector, no timeline, no breakdowns.
        let mut plain = os(OsConfig::default());
        plain.add_thread(Box::new(SeqWriter::new(10, 2)));
        plain.run();
        assert!(plain.obs().is_none());
        assert!(plain.timeline().is_none());
        assert!(plain
            .tenant_stats(0)
            .stage_breakdown(RequestKind::Write)
            .is_none());
    }

    #[test]
    fn timeline_captures_completions_over_time() {
        let mut o = os(OsConfig {
            timeline_interval: Some(SimDuration::from_micros(500)),
            ..OsConfig::default()
        });
        let t = o.add_thread(Box::new(SeqWriter::new(100, 4)));
        o.run();
        let tl = o.thread_stats(t).timeline.as_ref().expect("timeline on");
        let total: f64 = tl.points().iter().sum();
        assert_eq!(total, 100.0, "every completion lands in some interval");
        assert!(tl.points().len() > 1, "run spans several intervals");
        // Disabled by default.
        let mut o2 = os(OsConfig::default());
        let t2 = o2.add_thread(Box::new(SeqWriter::new(10, 2)));
        o2.run();
        assert!(o2.thread_stats(t2).timeline.is_none());
    }
}
