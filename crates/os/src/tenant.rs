//! Tenants and NVMe-style namespaces.
//!
//! A *tenant* models one isolated client of the device under server
//! consolidation: it owns a **namespace** — a contiguous partition of the
//! exported logical space — plus a set of threads, QoS parameters
//! ([`crate::QosParams`]) and its own tail-latency accounting. Tenant
//! threads address *tenant-relative* LBAs: `ThreadCtx::logical_pages`
//! reports the namespace size, and the OS bounds-checks and translates
//! every submission at the boundary, so no tenant can read or write
//! another's pages no matter how buggy or hostile its workload.
//!
//! Namespaces are created (and may be resized) at setup time, carved from
//! logical page 0 upward. The OS also keeps one implicit *default* tenant
//! whose namespace is the whole device (identity translation) for
//! preconditioning threads and single-tenant experiments — it overlays the
//! carved namespaces by design, like an admin view.

use eagletree_controller::{OpClass, RequestKind};
use eagletree_core::{Histogram, OnlineStats, StageBreakdown, StageNs, Tail};

/// Identifier of a tenant (index into the OS tenant table).
pub type TenantId = usize;

/// Setup-time description of one tenant.
#[derive(Debug, Clone)]
pub struct TenantConfig {
    /// Name for reports.
    pub name: String,
    /// Namespace size in logical pages.
    pub namespace_pages: u64,
    /// QoS parameters consumed by the configured [`crate::QosPolicy`].
    pub qos: crate::QosParams,
}

impl TenantConfig {
    /// A tenant with default QoS parameters (weight 1, tier 0, no caps).
    pub fn new(name: impl Into<String>, namespace_pages: u64) -> Self {
        TenantConfig {
            name: name.into(),
            namespace_pages,
            qos: crate::QosParams::default(),
        }
    }
}

/// A contiguous namespace: the tenant's window onto the logical space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Namespace {
    /// First device-absolute logical page.
    pub base: u64,
    /// Size in pages; tenant-relative LBAs are `0..len`.
    pub len: u64,
}

impl Namespace {
    /// Translate a tenant-relative LBA to a device-absolute one.
    /// Panics when out of bounds — the OS-boundary check.
    pub fn translate(&self, rel_lpn: u64, tenant: &str) -> u64 {
        assert!(
            rel_lpn < self.len,
            "tenant `{tenant}`: LBA {rel_lpn} outside its {}-page namespace",
            self.len
        );
        self.base + rel_lpn
    }
}

/// Per-tenant measurement: completion counts, per-class tail-latency
/// histograms (fixed-memory, log-bucketed) and namespace utilization.
#[derive(Debug, Clone)]
pub struct TenantStats {
    pub reads_completed: u64,
    pub writes_completed: u64,
    pub trims_completed: u64,
    /// End-to-end (enqueue → completion) read latencies.
    pub read_latency: Histogram,
    /// End-to-end write latencies.
    pub write_latency: Histogram,
    /// Time spent in the OS queue before dispatch (µs) — where QoS
    /// throttling and neighbor interference show up.
    pub queue_wait_us: OnlineStats,
    /// Distinct namespace pages currently holding data (written and not
    /// since trimmed), maintained as a bitmap popcount.
    valid_pages: u64,
    /// One bit per namespace page.
    valid: Vec<u64>,
    /// Stage-attributed latency (index 0 reads, 1 writes), allocated on
    /// the first completion carrying a span breakdown — `None` unless
    /// observability was enabled.
    stages: Option<Box<[StageBreakdown; 2]>>,
}

impl TenantStats {
    pub(crate) fn new(namespace_pages: u64) -> Self {
        TenantStats {
            reads_completed: 0,
            writes_completed: 0,
            trims_completed: 0,
            read_latency: Histogram::new(),
            write_latency: Histogram::new(),
            queue_wait_us: OnlineStats::new(),
            valid_pages: 0,
            valid: vec![0; namespace_pages.div_ceil(64) as usize],
            stages: None,
        }
    }

    /// Total completions.
    pub fn completed(&self) -> u64 {
        self.reads_completed + self.writes_completed + self.trims_completed
    }

    /// Tail summary (p50/p95/p99/p99.9) for an application op class.
    /// Tenants only generate application traffic, so only
    /// [`OpClass::AppRead`] and [`OpClass::AppWrite`] carry latencies.
    pub fn tail(&self, class: OpClass) -> Tail {
        match class {
            OpClass::AppRead => self.read_latency.tail(),
            OpClass::AppWrite => self.write_latency.tail(),
            OpClass::GcRead
            | OpClass::GcWrite
            | OpClass::WlRead
            | OpClass::WlWrite
            | OpClass::MergeRead
            | OpClass::MergeWrite
            | OpClass::MappingRead
            | OpClass::MappingWrite
            | OpClass::Erase
            | OpClass::ScrubRead
            | OpClass::ScrubWrite => Tail::default(),
        }
    }

    /// Stage-attributed latency breakdown for reads or writes: where this
    /// tenant's end-to-end latency went (OS queue, QoS hold, scheduler
    /// pending, media, ECC retry). `None` unless observability was on and
    /// IOs of that kind completed; always `None` for trims (instant).
    pub fn stage_breakdown(&self, kind: RequestKind) -> Option<&StageBreakdown> {
        let idx = match kind {
            RequestKind::Read => 0,
            RequestKind::Write => 1,
            RequestKind::Trim => return None,
        };
        self.stages.as_deref().map(|s| &s[idx])
    }

    pub(crate) fn record_stages(&mut self, kind: RequestKind, st: StageNs) {
        let idx = match kind {
            RequestKind::Read => 0,
            RequestKind::Write => 1,
            RequestKind::Trim => return,
        };
        self.stages.get_or_insert_with(Default::default)[idx].record(st);
    }

    /// Distinct valid (written, untrimmed) pages in the namespace.
    pub fn valid_pages(&self) -> u64 {
        self.valid_pages
    }

    /// Valid fraction of the namespace, `0.0..=1.0`.
    pub fn utilization(&self, namespace_pages: u64) -> f64 {
        if namespace_pages == 0 {
            0.0
        } else {
            self.valid_pages as f64 / namespace_pages as f64
        }
    }

    pub(crate) fn record_completion(
        &mut self,
        kind: RequestKind,
        rel_lpn: u64,
        latency: eagletree_core::SimDuration,
    ) {
        let (word, bit) = ((rel_lpn / 64) as usize, rel_lpn % 64);
        match kind {
            RequestKind::Read => {
                self.reads_completed += 1;
                self.read_latency.record(latency);
            }
            RequestKind::Write => {
                self.writes_completed += 1;
                self.write_latency.record(latency);
                if self.valid[word] & (1 << bit) == 0 {
                    self.valid[word] |= 1 << bit;
                    self.valid_pages += 1;
                }
            }
            RequestKind::Trim => {
                self.trims_completed += 1;
                if self.valid[word] & (1 << bit) != 0 {
                    self.valid[word] &= !(1 << bit);
                    self.valid_pages -= 1;
                }
            }
        }
    }

    /// Forget all valid pages (the namespace was relocated to a fresh,
    /// logically empty window).
    pub(crate) fn clear_valid(&mut self) {
        self.valid.fill(0);
        self.valid_pages = 0;
    }

    /// Resize the utilization bitmap (namespace resize at setup); bits past
    /// the new length are dropped.
    pub(crate) fn resize(&mut self, namespace_pages: u64) {
        let words = namespace_pages.div_ceil(64) as usize;
        self.valid.resize(words, 0);
        if !namespace_pages.is_multiple_of(64) {
            if let Some(last) = self.valid.last_mut() {
                *last &= (1u64 << (namespace_pages % 64)) - 1;
            }
        }
        self.valid_pages = self.valid.iter().map(|w| w.count_ones() as u64).sum();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eagletree_core::SimDuration;

    #[test]
    fn namespace_translates_and_bounds_checks() {
        let ns = Namespace { base: 100, len: 50 };
        assert_eq!(ns.translate(0, "t"), 100);
        assert_eq!(ns.translate(49, "t"), 149);
    }

    #[test]
    #[should_panic(expected = "outside its 50-page namespace")]
    fn namespace_rejects_out_of_bounds() {
        Namespace { base: 100, len: 50 }.translate(50, "t");
    }

    #[test]
    fn utilization_tracks_distinct_writes_and_trims() {
        let mut s = TenantStats::new(100);
        let d = SimDuration::from_micros(10);
        s.record_completion(RequestKind::Write, 3, d);
        s.record_completion(RequestKind::Write, 3, d); // overwrite, not new
        s.record_completion(RequestKind::Write, 64, d);
        assert_eq!(s.valid_pages(), 2);
        assert!((s.utilization(100) - 0.02).abs() < 1e-12);
        s.record_completion(RequestKind::Trim, 3, d);
        s.record_completion(RequestKind::Trim, 3, d); // double trim is a no-op
        assert_eq!(s.valid_pages(), 1);
        assert_eq!(s.writes_completed, 3);
        assert_eq!(s.trims_completed, 2);
    }

    #[test]
    fn tail_reports_only_app_classes() {
        let mut s = TenantStats::new(10);
        s.record_completion(RequestKind::Read, 0, SimDuration::from_micros(100));
        assert_eq!(s.tail(OpClass::AppRead).count, 1);
        assert!(s.tail(OpClass::AppRead).p99 > SimDuration::ZERO);
        assert_eq!(s.tail(OpClass::AppWrite).count, 0);
        assert_eq!(s.tail(OpClass::GcRead), Tail::default());
    }

    #[test]
    fn resize_preserves_low_bits_and_recounts() {
        let mut s = TenantStats::new(128);
        let d = SimDuration::from_micros(1);
        s.record_completion(RequestKind::Write, 10, d);
        s.record_completion(RequestKind::Write, 100, d);
        s.resize(64); // shrink drops page 100
        assert_eq!(s.valid_pages(), 1);
        s.resize(256); // grow keeps page 10
        assert_eq!(s.valid_pages(), 1);
    }
}
