//! # eagletree-os
//!
//! The operating-system layer of EagleTree. "The Operating System manages
//! IO requests incoming from multiple simulated concurrent threads. It
//! maintains a pool of pending IOs from each thread and decides, based on a
//! customizable scheduling policy, which IOs to issue next to the SSD"
//! (§2.2). On completion the SSD interrupts the OS, which activates the
//! dispatching thread's callback; the thread may respond with further IOs.
//!
//! * [`Workload`] — the thread programming framework (`init` /
//!   `call_back`), with inter-thread dependencies for preconditioning.
//! * [`OsSchedPolicy`] — FIFO, fair round-robin, thread priorities, and a
//!   deadline scheduler.
//! * [`Os`] — the dispatcher: bounded outstanding-IO window
//!   (`queue_depth`), per-thread queues and statistics, and the main
//!   simulation loop.
//! * [`interface`] — the open interface: an extensible message vocabulary
//!   that travels with IOs when the block-device boundary is unlocked.

pub mod interface;
pub mod os;
pub mod sched;
pub mod thread;

pub use interface::{tags_from_messages, Message};
pub use os::{Os, OsConfig, ThreadStats};
pub use sched::OsSchedPolicy;
pub use thread::{CompletedIo, OsIo, ThreadCtx, ThreadId, Workload};
