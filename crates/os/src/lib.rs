//! # eagletree-os
//!
//! The operating-system layer of EagleTree. "The Operating System manages
//! IO requests incoming from multiple simulated concurrent threads. It
//! maintains a pool of pending IOs from each thread and decides, based on a
//! customizable scheduling policy, which IOs to issue next to the SSD"
//! (§2.2). On completion the SSD interrupts the OS, which activates the
//! dispatching thread's callback; the thread may respond with further IOs.
//!
//! Beyond the paper's flat thread pool, this layer models the *serving*
//! side of a consolidated system: threads belong to **tenants**, each with
//! an NVMe-style namespace and QoS parameters, so one simulated SSD can
//! carry many mutually isolated clients.
//!
//! * [`Workload`] — the thread programming framework (`init` /
//!   `call_back`), with inter-thread dependencies for preconditioning.
//! * [`OsSchedPolicy`] — FIFO, fair round-robin, thread priorities, and a
//!   deadline scheduler (stage 2: which *thread queue* to serve).
//! * [`QosPolicy`] / [`QosParams`] — tenant arbitration above the thread
//!   scheduler (stage 1: which *tenant* gets the slot): weighted fair
//!   queuing, token-bucket rate limiting, strict priority tiers with a
//!   starvation guard.
//! * [`tenant`] — namespaces (tenant-relative LBAs translated and
//!   bounds-checked at the OS boundary), per-tenant tail-latency
//!   histograms and namespace-utilization accounting.
//! * [`Os`] — the dispatcher: bounded outstanding-IO window
//!   (`queue_depth`), per-thread queues and statistics, tenant-aware
//!   two-stage dispatch, and the main simulation loop.
//! * [`interface`] — the open interface: an extensible message vocabulary
//!   that travels with IOs when the block-device boundary is unlocked.

#![forbid(unsafe_code)]

pub mod interface;
pub mod os;
pub mod qos;
pub mod sched;
pub mod tenant;
pub mod thread;

pub use interface::{tags_from_messages, Message};
pub use os::{Os, OsConfig, ThreadStats};
pub use qos::{QosParams, QosPolicy};
pub use sched::OsSchedPolicy;
pub use tenant::{Namespace, TenantConfig, TenantId, TenantStats};
pub use thread::{CompletedIo, OsIo, ThreadCtx, ThreadId, Workload};
