//! Tenant-level QoS scheduling: the layer above [`crate::OsSchedPolicy`].
//!
//! Dispatch is two-stage once more than one tenant exists: a [`QosPolicy`]
//! first picks *which tenant* gets the freed device-queue slot, then the
//! per-thread [`crate::OsSchedPolicy`] picks among that tenant's thread
//! queues. The three mechanisms are the classic server-consolidation
//! arsenal:
//!
//! * [`QosPolicy::Wfq`] — start-time weighted fair queuing: each tenant
//!   carries a virtual time advanced by `1/weight` per dispatched IO;
//!   the backlogged tenant with the smallest virtual time is served, so
//!   long-run dispatch shares converge to the weight ratio regardless of
//!   how greedily any tenant floods its queues.
//! * [`QosPolicy::TokenBucket`] — per-tenant rate caps (IOPS and
//!   page-bandwidth buckets with burst credits) refilled in virtual time;
//!   a tenant without a full token is ineligible and the OS sleeps until
//!   the earliest refill when nothing else is runnable.
//! * [`QosPolicy::StrictTiers`] — strict priority by tenant tier with
//!   starvation-freedom: a lower-tier tenant whose head-of-queue has
//!   waited longer than `starvation_us` is aged up to the top tier for
//!   that decision, so no backlog waits forever.
//!
//! All state lives in fixed per-tenant slots ([`QosSlot`]) owned by the
//! OS; selection walks the tenant candidates gathered into a reused
//! scratch buffer — no allocation on the dispatch path, following the
//! controller's `pend.rs` discipline.

use eagletree_core::{SimDuration, SimTime};

use crate::tenant::TenantId;

/// Tenant-selection policy (the layer above the per-thread OS scheduler).
#[derive(Debug, Clone, PartialEq)]
pub enum QosPolicy {
    /// No tenant arbitration: all thread queues compete flat, exactly as
    /// before tenants existed (the single-tenant/back-compat mode).
    None,
    /// Start-time weighted fair queuing over [`QosParams::weight`].
    Wfq,
    /// Token-bucket rate limiting per [`QosParams`] caps; among eligible
    /// tenants, global FIFO (oldest head-of-queue first).
    TokenBucket,
    /// Strict priority by [`QosParams::tier`] (0 = highest), FIFO within a
    /// tier; heads older than `starvation_us` age up to tier 0.
    StrictTiers {
        /// Waiting time after which any tenant's head IO is treated as
        /// top-tier (starvation guard).
        starvation_us: u64,
    },
}

impl QosPolicy {
    /// Short label for experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            QosPolicy::None => "none",
            QosPolicy::Wfq => "wfq",
            QosPolicy::TokenBucket => "token_bucket",
            QosPolicy::StrictTiers { .. } => "strict_tiers",
        }
    }
}

/// Per-tenant QoS parameters, set at tenant creation.
#[derive(Debug, Clone, PartialEq)]
pub struct QosParams {
    /// WFQ weight: long-run dispatch share is proportional to this.
    pub weight: u32,
    /// Strict-tier priority, 0 = most important.
    pub tier: u8,
    /// IOPS cap (tokens/virtual-second); `None` = unlimited.
    pub iops_limit: Option<f64>,
    /// Page-bandwidth cap (pages/virtual-second); `None` = unlimited.
    pub page_bw_limit: Option<f64>,
    /// Burst credits: how many IOs (and pages) may be dispatched
    /// back-to-back from a full bucket before the rate caps bite.
    pub burst: f64,
}

impl Default for QosParams {
    fn default() -> Self {
        QosParams {
            weight: 1,
            tier: 0,
            iops_limit: None,
            page_bw_limit: None,
            burst: 8.0,
        }
    }
}

/// Mutable per-tenant QoS state (one fixed slot per tenant).
#[derive(Debug, Clone)]
pub(crate) struct QosSlot {
    pub params: QosParams,
    /// WFQ virtual time (units of 1/weight per IO).
    vtime: f64,
    /// IOPS-bucket fill.
    tok_ios: f64,
    /// Bandwidth-bucket fill (pages).
    tok_pages: f64,
    last_refill: SimTime,
}

impl QosSlot {
    pub(crate) fn new(params: QosParams) -> Self {
        assert!(params.weight > 0, "WFQ weight must be positive");
        assert!(
            params.iops_limit.is_none_or(|l| l > 0.0),
            "iops_limit must be positive"
        );
        assert!(
            params.page_bw_limit.is_none_or(|l| l > 0.0),
            "page_bw_limit must be positive"
        );
        assert!(params.burst >= 1.0, "burst must allow at least one IO");
        let burst = params.burst;
        QosSlot {
            params,
            vtime: 0.0,
            tok_ios: burst,
            tok_pages: burst,
            last_refill: SimTime::ZERO,
        }
    }

    /// Bring both buckets up to date at `now`.
    fn refill(&mut self, now: SimTime) {
        if now <= self.last_refill {
            return;
        }
        let dt = now.since(self.last_refill).as_secs_f64();
        if let Some(rate) = self.params.iops_limit {
            self.tok_ios = (self.tok_ios + dt * rate).min(self.params.burst);
        }
        if let Some(rate) = self.params.page_bw_limit {
            self.tok_pages = (self.tok_pages + dt * rate).min(self.params.burst);
        }
        self.last_refill = now;
    }

    /// Whether a one-page IO may be dispatched at `now`.
    fn eligible(&mut self, now: SimTime) -> bool {
        self.refill(now);
        (self.params.iops_limit.is_none() || self.tok_ios >= 1.0)
            && (self.params.page_bw_limit.is_none() || self.tok_pages >= 1.0)
    }

    /// Wait, in whole nanoseconds, until a bucket refills `deficit` tokens
    /// at `rate` tokens per virtual second — rounded up, with explicit
    /// guards: a zero/negative/non-finite rate never refills, and
    /// overflowing waits saturate to [`QosSlot::NEVER_NS`] instead of
    /// wrapping through the `f64 → u64` cast.
    fn refill_wait_ns(deficit: f64, rate: f64) -> u64 {
        if deficit <= 0.0 {
            return 0;
        }
        if rate.is_nan() || rate <= 0.0 {
            return Self::NEVER_NS;
        }
        let ns = (deficit * 1e9 / rate).ceil();
        if !ns.is_finite() || ns >= Self::NEVER_NS as f64 {
            Self::NEVER_NS
        } else {
            // lint:allow(R3) rates are f64 config knobs; ready_at's verification loop below guarantees the rounded wakeup is never early
            ns as u64
        }
    }

    /// "Effectively never" in integer nanoseconds: far beyond any
    /// simulated horizon, yet safely addable to a `SimTime` without
    /// overflow.
    const NEVER_NS: u64 = u64::MAX / 4;

    /// Earliest instant at which a one-page IO becomes dispatchable, for a
    /// slot currently ineligible at `now`.
    fn ready_at(&self, now: SimTime) -> SimTime {
        let mut wait_ns = 0u64;
        if let Some(rate) = self.params.iops_limit {
            wait_ns = wait_ns.max(Self::refill_wait_ns(1.0 - self.tok_ios, rate));
        }
        if let Some(rate) = self.params.page_bw_limit {
            wait_ns = wait_ns.max(Self::refill_wait_ns(1.0 - self.tok_pages, rate));
        }
        // Floating-point rounding in the division must never yield a
        // wakeup at which the bucket is still short — the main loop would
        // spin on a zero-progress wake time. Verify with the exact
        // arithmetic `refill` uses and nudge forward (exponentially, so
        // this terminates in a handful of rounds) until truly eligible.
        let mut step = 1u64;
        loop {
            let t = now + SimDuration::from_nanos(wait_ns);
            if wait_ns >= Self::NEVER_NS || self.clone().eligible(t) {
                return t;
            }
            wait_ns = wait_ns.saturating_add(step).min(Self::NEVER_NS);
            step = step.saturating_mul(2);
        }
    }

    /// Sync the WFQ virtual time when this tenant transitions from idle to
    /// backlogged, so long-idle tenants cannot bank unbounded credit.
    pub(crate) fn on_backlogged(&mut self, vclock: f64) {
        self.vtime = self.vtime.max(vclock);
    }
}

/// One backlogged tenant presented to [`select`]: its oldest queued IO.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TenantCand {
    pub tenant: TenantId,
    /// Global arrival sequence of the tenant's oldest head-of-queue IO.
    pub head_seq: u64,
    /// Enqueue instant of that IO (starvation aging).
    pub head_enqueued_at: SimTime,
}

/// Pick which backlogged tenant gets the next device-queue slot. Returns
/// an index into `cands`, or `None` when no tenant is eligible (rate caps
/// exhausted). `vclock` is the WFQ virtual clock (virtual start time of
/// the last dispatched IO).
pub(crate) fn select(
    policy: &QosPolicy,
    cands: &[TenantCand],
    slots: &mut [QosSlot],
    now: SimTime,
    vclock: f64,
) -> Option<usize> {
    match policy {
        QosPolicy::None => cands
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| c.head_seq)
            .map(|(i, _)| i),
        QosPolicy::Wfq => {
            let mut best: Option<(f64, TenantId, usize)> = None;
            for (i, c) in cands.iter().enumerate() {
                let v = slots[c.tenant].vtime.max(vclock);
                if best.is_none_or(|(bv, bt, _)| (v, c.tenant) < (bv, bt)) {
                    best = Some((v, c.tenant, i));
                }
            }
            best.map(|(_, _, i)| i)
        }
        QosPolicy::TokenBucket => cands
            .iter()
            .enumerate()
            .filter(|(_, c)| slots[c.tenant].eligible(now))
            .min_by_key(|(_, c)| c.head_seq)
            .map(|(i, _)| i),
        QosPolicy::StrictTiers { starvation_us } => {
            let aged = SimDuration::from_nanos(starvation_us * 1_000);
            cands
                .iter()
                .enumerate()
                .min_by_key(|(_, c)| {
                    let starved = now.saturating_since(c.head_enqueued_at) >= aged;
                    let tier = if starved { 0 } else { slots[c.tenant].params.tier };
                    (tier, c.head_seq)
                })
                .map(|(i, _)| i)
        }
    }
}

/// Account one dispatched one-page IO to `tenant`: consume tokens and
/// advance the WFQ virtual clock. Returns the updated `vclock`.
pub(crate) fn charge(
    policy: &QosPolicy,
    slots: &mut [QosSlot],
    tenant: TenantId,
    now: SimTime,
    vclock: f64,
) -> f64 {
    let slot = &mut slots[tenant];
    match policy {
        QosPolicy::Wfq => {
            let start = slot.vtime.max(vclock);
            slot.vtime = start + 1.0 / slot.params.weight as f64;
            start
        }
        QosPolicy::TokenBucket => {
            slot.refill(now);
            if slot.params.iops_limit.is_some() {
                slot.tok_ios -= 1.0;
            }
            if slot.params.page_bw_limit.is_some() {
                slot.tok_pages -= 1.0;
            }
            vclock
        }
        QosPolicy::None | QosPolicy::StrictTiers { .. } => vclock,
    }
}

/// Earliest instant at which any currently rate-blocked backlogged tenant
/// becomes eligible — the token-refill wake-up the main loop must not
/// sleep past. `None` when nothing is blocked on tokens.
pub(crate) fn next_ready_time(
    policy: &QosPolicy,
    cands: &[TenantCand],
    slots: &mut [QosSlot],
    now: SimTime,
) -> Option<SimTime> {
    if *policy != QosPolicy::TokenBucket {
        return None;
    }
    let mut earliest: Option<SimTime> = None;
    for c in cands {
        if !slots[c.tenant].eligible(now) {
            let t = slots[c.tenant].ready_at(now);
            earliest = Some(earliest.map_or(t, |e| e.min(t)));
        }
    }
    earliest
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(tenant: TenantId, head_seq: u64, enq_ns: u64) -> TenantCand {
        TenantCand {
            tenant,
            head_seq,
            head_enqueued_at: SimTime::from_nanos(enq_ns),
        }
    }

    fn slots(params: Vec<QosParams>) -> Vec<QosSlot> {
        params.into_iter().map(QosSlot::new).collect()
    }

    #[test]
    fn wfq_shares_follow_weights() {
        // Tenant 0 weight 3, tenant 1 weight 1, both always backlogged:
        // over 400 dispatches tenant 0 must get ~300.
        let mut s = slots(vec![
            QosParams {
                weight: 3,
                ..QosParams::default()
            },
            QosParams::default(),
        ]);
        let cands = [cand(0, 0, 0), cand(1, 1, 0)];
        let mut vclock = 0.0;
        let mut served = [0u32; 2];
        for _ in 0..400 {
            let i = select(&QosPolicy::Wfq, &cands, &mut s, SimTime::ZERO, vclock).unwrap();
            let t = cands[i].tenant;
            served[t] += 1;
            vclock = charge(&QosPolicy::Wfq, &mut s, t, SimTime::ZERO, vclock);
        }
        assert_eq!(served[0] + served[1], 400);
        assert!(
            (295..=305).contains(&served[0]),
            "weight-3 tenant got {} of 400",
            served[0]
        );
    }

    #[test]
    fn wfq_idle_tenant_does_not_bank_credit() {
        let mut s = slots(vec![QosParams::default(), QosParams::default()]);
        let mut vclock = 0.0;
        // Tenant 0 runs alone for a while.
        for _ in 0..100 {
            vclock = charge(&QosPolicy::Wfq, &mut s, 0, SimTime::ZERO, vclock);
        }
        // Tenant 1 wakes up: synced to the clock, it must not monopolize.
        s[1].on_backlogged(vclock);
        let cands = [cand(0, 0, 0), cand(1, 1, 0)];
        let mut served = [0u32; 2];
        for _ in 0..100 {
            let i = select(&QosPolicy::Wfq, &cands, &mut s, SimTime::ZERO, vclock).unwrap();
            served[cands[i].tenant] += 1;
            vclock = charge(&QosPolicy::Wfq, &mut s, cands[i].tenant, SimTime::ZERO, vclock);
        }
        assert!(
            (45..=55).contains(&served[1]),
            "woken tenant should get ~half, got {}",
            served[1]
        );
    }

    #[test]
    fn token_bucket_caps_and_refills() {
        let mut s = slots(vec![QosParams {
            iops_limit: Some(1000.0), // 1 IO per virtual ms
            burst: 2.0,
            ..QosParams::default()
        }]);
        let cands = [cand(0, 0, 0)];
        let pol = QosPolicy::TokenBucket;
        let mut vclock = 0.0;
        // Burst of 2 goes through at t=0, then the bucket is dry.
        for _ in 0..2 {
            assert!(select(&pol, &cands, &mut s, SimTime::ZERO, vclock).is_some());
            vclock = charge(&pol, &mut s, 0, SimTime::ZERO, vclock);
        }
        assert!(select(&pol, &cands, &mut s, SimTime::ZERO, vclock).is_none());
        let ready =
            next_ready_time(&pol, &cands, &mut s, SimTime::ZERO).expect("blocked on tokens");
        assert_eq!(ready.as_nanos(), 1_000_000, "one token takes 1ms at 1k IOPS");
        // After the refill instant the tenant is eligible again.
        assert!(select(&pol, &cands, &mut s, ready, vclock).is_some());
        assert!(next_ready_time(&pol, &cands, &mut s, ready).is_none());
    }

    #[test]
    fn refill_wakeup_is_never_early() {
        // The wake instant the slot reports must make it eligible under
        // the exact same arithmetic `refill` uses — a wakeup rounded one
        // nanosecond early would spin the main loop on zero progress.
        let now = SimTime::from_nanos(987_654_321);
        for rate in [3.0, 7.0, 1e-3, 0.333_333_333_3, 999_999.0, 1e9, 1e15] {
            let mut s = QosSlot::new(QosParams {
                iops_limit: Some(rate),
                burst: 1.0,
                ..QosParams::default()
            });
            s.tok_ios = 0.25;
            s.last_refill = now;
            let ready = s.ready_at(now);
            assert!(
                s.clone().eligible(ready),
                "rate {rate}: slot not eligible at its own ready_at"
            );
            assert!(ready >= now);
        }
    }

    #[test]
    fn refill_wait_guards_zero_and_overflowing_rates() {
        // Zero / negative / NaN rates never refill; sub-nano waits round
        // up; astronomically slow rates saturate instead of wrapping.
        assert_eq!(QosSlot::refill_wait_ns(1.0, 0.0), QosSlot::NEVER_NS);
        assert_eq!(QosSlot::refill_wait_ns(1.0, -5.0), QosSlot::NEVER_NS);
        assert_eq!(QosSlot::refill_wait_ns(1.0, f64::NAN), QosSlot::NEVER_NS);
        assert_eq!(QosSlot::refill_wait_ns(0.0, 1000.0), 0);
        assert_eq!(QosSlot::refill_wait_ns(1.0, 1e18), 1, "sub-ns waits round up");
        assert_eq!(QosSlot::refill_wait_ns(1.0, 1e-12), QosSlot::NEVER_NS);
    }

    #[test]
    fn strict_tiers_prefer_low_tier_until_starvation() {
        let mut s = slots(vec![
            QosParams {
                tier: 0,
                ..QosParams::default()
            },
            QosParams {
                tier: 1,
                ..QosParams::default()
            },
        ]);
        let pol = QosPolicy::StrictTiers { starvation_us: 100 };
        // Fresh heads: tier 0 wins even though tenant 1 arrived first.
        let cands = [cand(0, 5, 0), cand(1, 1, 0)];
        let i = select(&pol, &cands, &mut s, SimTime::ZERO, 0.0).unwrap();
        assert_eq!(cands[i].tenant, 0);
        // Once tenant 1's head has waited past the guard, it ages to the
        // top tier and its older seq breaks the tie.
        let late = SimTime::from_nanos(200_000);
        let i = select(&pol, &cands, &mut s, late, 0.0).unwrap();
        assert_eq!(cands[i].tenant, 1, "starved tenant must be served");
    }

    #[test]
    fn none_policy_is_global_fifo_over_tenants() {
        let mut s = slots(vec![QosParams::default(), QosParams::default()]);
        let cands = [cand(0, 9, 0), cand(1, 2, 0)];
        let i = select(&QosPolicy::None, &cands, &mut s, SimTime::ZERO, 0.0).unwrap();
        assert_eq!(cands[i].tenant, 1);
    }

    #[test]
    fn policy_names_are_stable() {
        assert_eq!(QosPolicy::None.name(), "none");
        assert_eq!(QosPolicy::Wfq.name(), "wfq");
        assert_eq!(QosPolicy::TokenBucket.name(), "token_bucket");
        assert_eq!(QosPolicy::StrictTiers { starvation_us: 1 }.name(), "strict_tiers");
    }
}
