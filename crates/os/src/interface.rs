//! The open interface.
//!
//! "EagleTree takes a departure from the traditional block device interface
//! by basing communication between the OS and the SSD on an extensible
//! messaging framework that allows the operating system and SSD to
//! communicate as peers" (§2.2). [`Message`]s are attached to IOs; when the
//! interface is *locked* (the red padlock of the demo GUI,
//! [`crate::OsConfig::open_interface`] = false) the OS strips them, exactly
//! reproducing a traditional opaque block device.
//!
//! The three sketched hint types are first-class; `Custom` carries
//! arbitrary user-defined protocol extensions (the SSD controller ignores
//! codes it does not understand, as real extensible protocols must).

use eagletree_controller::{IoTags, Temperature};

/// A message accompanying an IO from OS to SSD.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Message {
    /// Scheduling priority for this IO (0 = most urgent).
    Priority(u8),
    /// Declared data temperature: feeds wear leveling and GC efficiency.
    Temperature(Temperature),
    /// Update-locality group: pages in one group are co-located so they
    /// invalidate together, minimizing subsequent garbage collection.
    UpdateLocality(u32),
    /// User-defined extension: `(code, value)`. Unknown codes are ignored
    /// by the default controller.
    Custom(u32, u64),
}

/// Fold a message sequence into the [`IoTags`] the controller consumes.
/// Later messages of the same kind override earlier ones; `Custom`
/// messages do not map onto tags (they are available to custom controller
/// modules).
pub fn tags_from_messages(messages: &[Message]) -> IoTags {
    let mut tags = IoTags::none();
    for m in messages {
        match *m {
            Message::Priority(p) => tags.priority = Some(p),
            Message::Temperature(t) => tags.temperature = Some(t),
            Message::UpdateLocality(g) => tags.locality_group = Some(g),
            Message::Custom(..) => {}
        }
    }
    tags
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_fold_into_tags() {
        let tags = tags_from_messages(&[
            Message::Priority(3),
            Message::Temperature(Temperature::Hot),
            Message::UpdateLocality(9),
        ]);
        assert_eq!(tags.priority, Some(3));
        assert_eq!(tags.temperature, Some(Temperature::Hot));
        assert_eq!(tags.locality_group, Some(9));
    }

    #[test]
    fn later_messages_override() {
        let tags = tags_from_messages(&[Message::Priority(3), Message::Priority(1)]);
        assert_eq!(tags.priority, Some(1));
    }

    #[test]
    fn custom_messages_are_transparent() {
        let tags = tags_from_messages(&[Message::Custom(42, 7)]);
        assert_eq!(tags, IoTags::none());
    }

    #[test]
    fn empty_messages_give_no_tags() {
        assert_eq!(tags_from_messages(&[]), IoTags::none());
    }
}
