//! OS-level IO dispatch policies.
//!
//! "What is the best scheduling strategy (e.g., FIFO, CFQ, priorities)?
//! How many outstanding IOs should be submitted to the SSD?" (§2.1). The
//! policy chooses which thread's queue to serve next whenever a slot in the
//! bounded device queue frees up; the queue-depth knob lives in
//! [`crate::OsConfig`].

use eagletree_controller::RequestKind;
use eagletree_core::SimTime;

use crate::thread::ThreadId;

/// Which thread's head-of-queue IO to dispatch next.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OsSchedPolicy {
    /// Global arrival order across all threads (the paper's default).
    Fifo,
    /// Fair round-robin over threads with pending IOs (CFQ-like: each
    /// thread gets an equal share of dispatch slots).
    RoundRobin,
    /// Per-thread priorities, lower value first; FIFO within a priority.
    /// Threads beyond the vector get priority 128.
    ThreadPriority(Vec<u8>),
    /// Earliest-deadline-first by request kind: reads get `read_us`,
    /// writes/trims get `write_us` relative deadlines (µs).
    Deadline { read_us: u64, write_us: u64 },
}

/// A dispatch candidate: the head of one thread's queue.
#[derive(Debug, Clone, Copy)]
pub struct DispatchCandidate {
    pub thread: ThreadId,
    pub kind: RequestKind,
    pub enqueued_at: SimTime,
    /// Global arrival sequence number.
    pub seq: u64,
}

impl OsSchedPolicy {
    /// Pick the index into `heads` to dispatch next. `last_served` is the
    /// previously served thread (round-robin state). Returns `None` when
    /// `heads` is empty.
    pub fn select(&self, heads: &[DispatchCandidate], last_served: ThreadId) -> Option<usize> {
        if heads.is_empty() {
            return None;
        }
        match self {
            OsSchedPolicy::Fifo => heads
                .iter()
                .enumerate()
                .min_by_key(|(_, c)| c.seq)
                .map(|(i, _)| i),
            OsSchedPolicy::RoundRobin => {
                // The next thread strictly after `last_served` (cyclically)
                // that has a pending IO.
                heads
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, c)| {
                        let dist = c.thread.wrapping_sub(last_served + 1);
                        (dist, c.seq)
                    })
                    .map(|(i, _)| i)
            }
            OsSchedPolicy::ThreadPriority(prio) => heads
                .iter()
                .enumerate()
                .min_by_key(|(_, c)| {
                    let p = prio.get(c.thread).copied().unwrap_or(128);
                    (p, c.seq)
                })
                .map(|(i, _)| i),
            OsSchedPolicy::Deadline { read_us, write_us } => heads
                .iter()
                .enumerate()
                .min_by_key(|(_, c)| {
                    let rel = match c.kind {
                        RequestKind::Read => *read_us,
                        _ => *write_us,
                    };
                    (c.enqueued_at.as_nanos() + rel * 1_000, c.seq)
                })
                .map(|(i, _)| i),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(thread: ThreadId, kind: RequestKind, enq_ns: u64, seq: u64) -> DispatchCandidate {
        DispatchCandidate {
            thread,
            kind,
            enqueued_at: SimTime::from_nanos(enq_ns),
            seq,
        }
    }

    #[test]
    fn fifo_is_global_arrival_order() {
        let heads = vec![
            cand(0, RequestKind::Write, 10, 3),
            cand(1, RequestKind::Read, 5, 1),
        ];
        assert_eq!(OsSchedPolicy::Fifo.select(&heads, 0), Some(1));
    }

    #[test]
    fn round_robin_cycles_threads() {
        let heads = vec![
            cand(0, RequestKind::Read, 0, 0),
            cand(1, RequestKind::Read, 0, 1),
            cand(2, RequestKind::Read, 0, 2),
        ];
        let p = OsSchedPolicy::RoundRobin;
        assert_eq!(p.select(&heads, 0), Some(1)); // after 0 comes 1
        assert_eq!(p.select(&heads, 1), Some(2));
        assert_eq!(p.select(&heads, 2), Some(0)); // wraps
        // Skips threads without pending IOs.
        let heads = vec![cand(0, RequestKind::Read, 0, 0), cand(2, RequestKind::Read, 0, 1)];
        assert_eq!(p.select(&heads, 0), Some(1)); // thread 2 is next present
    }

    #[test]
    fn thread_priority_orders_threads() {
        let p = OsSchedPolicy::ThreadPriority(vec![5, 0, 3]);
        let heads = vec![
            cand(0, RequestKind::Read, 0, 0),
            cand(1, RequestKind::Read, 0, 1),
            cand(2, RequestKind::Read, 0, 2),
        ];
        assert_eq!(p.select(&heads, 0), Some(1));
        // Unlisted thread defaults to 128 (last).
        let heads = vec![cand(7, RequestKind::Read, 0, 0), cand(2, RequestKind::Read, 0, 1)];
        assert_eq!(p.select(&heads, 0), Some(1));
    }

    #[test]
    fn deadline_prefers_tight_reads() {
        let p = OsSchedPolicy::Deadline {
            read_us: 100,
            write_us: 1_000,
        };
        // Write enqueued slightly earlier, read has a tighter deadline.
        let heads = vec![
            cand(0, RequestKind::Write, 0, 0),
            cand(1, RequestKind::Read, 50_000, 1),
        ];
        assert_eq!(p.select(&heads, 0), Some(1));
        // A very old write eventually wins.
        let heads = vec![
            cand(0, RequestKind::Write, 0, 0),
            cand(1, RequestKind::Read, 2_000_000, 1),
        ];
        assert_eq!(p.select(&heads, 0), Some(0));
    }

    #[test]
    fn empty_heads_yield_none() {
        assert_eq!(OsSchedPolicy::Fifo.select(&[], 0), None);
        assert_eq!(OsSchedPolicy::RoundRobin.select(&[], 3), None);
    }
}
