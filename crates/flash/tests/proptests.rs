//! Property tests: the flash array under random (but protocol-respecting)
//! command sequences maintains its bookkeeping invariants.

use proptest::prelude::*;

use eagletree_core::{SimRng, SimTime};
use eagletree_flash::{FlashArray, FlashCommand, Geometry, PageState, PhysicalAddr, TimingSpec};

/// Model of one block: how many pages programmed / invalidated.
#[derive(Clone, Copy, Default)]
struct BlockModel {
    programmed: u32,
    invalidated: u32,
    erases: u32,
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Drive random program/invalidate/erase traffic against one LUN,
    /// always at legal instants, and check page-state bookkeeping agrees
    /// with an independent model.
    #[test]
    fn array_state_matches_model(seed in any::<u64>(), steps in 50usize..400) {
        let g = Geometry::tiny();
        let mut a = FlashArray::new(g, TimingSpec::slc());
        let mut rng = SimRng::new(seed);
        let mut now = SimTime::ZERO;
        let nblocks = g.blocks_per_plane;
        let mut model = vec![BlockModel::default(); nblocks as usize];

        let addr = |block: u32, page: u32| PhysicalAddr {
            channel: 0,
            lun: 0,
            plane: 0,
            block,
            page,
        };

        for _ in 0..steps {
            let b = rng.gen_range(nblocks as u64) as u32;
            let m = model[b as usize];
            match rng.gen_range(3) {
                0 => {
                    // Program the next page if the block has room.
                    if m.programmed < g.pages_per_block {
                        let out = a.issue(FlashCommand::Program(addr(b, m.programmed)), now)
                            .unwrap();
                        now = out.lun_free_at.max(out.channel_free_at);
                        model[b as usize].programmed += 1;
                    }
                }
                1 => {
                    // Invalidate a random still-valid page.
                    if m.invalidated < m.programmed {
                        // Find a valid page in the block.
                        let candidates: Vec<u32> = (0..m.programmed)
                            .filter(|&p| a.page_state(addr(b, p)) == PageState::Valid)
                            .collect();
                        if let Some(&p) = candidates.first() {
                            a.invalidate(addr(b, p));
                            model[b as usize].invalidated += 1;
                        }
                    }
                }
                _ => {
                    // Erase when fully invalidated.
                    if m.programmed > 0 && m.invalidated == m.programmed {
                        let out = a.issue(FlashCommand::Erase(addr(b, 0).block_addr()), now)
                            .unwrap();
                        now = out.lun_free_at;
                        model[b as usize] = BlockModel {
                            erases: m.erases + 1,
                            ..BlockModel::default()
                        };
                    }
                }
            }
        }

        // Model and array agree on every block.
        for b in 0..nblocks {
            let info = a.block_info(addr(b, 0).block_addr());
            let m = model[b as usize];
            prop_assert_eq!(info.write_ptr, m.programmed);
            prop_assert_eq!(info.live_pages, m.programmed - m.invalidated);
            prop_assert_eq!(info.erase_count, m.erases);
            // Page-state census agrees.
            let valid = (0..g.pages_per_block)
                .filter(|&p| a.page_state(addr(b, p)) == PageState::Valid)
                .count() as u32;
            prop_assert_eq!(valid, info.live_pages);
        }
        prop_assert_eq!(
            a.total_erases(),
            model.iter().map(|m| m.erases as u64).sum::<u64>()
        );
    }

    /// Resource occupancy never travels backwards, and `can_issue` is
    /// consistent with `issue` for random commands at random instants.
    #[test]
    fn can_issue_agrees_with_issue(seed in any::<u64>(), steps in 20usize..200) {
        let g = Geometry::tiny();
        let mut a = FlashArray::new(g, TimingSpec::slc());
        let mut rng = SimRng::new(seed);
        let mut now = SimTime::ZERO;
        let mut programmed: Vec<(u32, u32, u32)> = Vec::new(); // (lun, block, pages)

        for _ in 0..steps {
            // Random command attempt at a random time hop.
            now += eagletree_core::SimDuration::from_nanos(rng.gen_range(500_000));
            let lun = rng.gen_range(g.total_luns() as u64) as u32;
            let channel = lun / g.luns_per_channel;
            let l = lun % g.luns_per_channel;
            let block = rng.gen_range(4) as u32;
            let next = programmed
                .iter()
                .find(|&&(lu, b, _)| lu == lun && b == block)
                .map(|&(_, _, p)| p)
                .unwrap_or(0);
            if next >= g.pages_per_block {
                continue;
            }
            let cmd = FlashCommand::Program(PhysicalAddr {
                channel,
                lun: l,
                plane: 0,
                block,
                page: next,
            });
            let can = a.can_issue(&cmd, now);
            let result = a.issue(cmd, now);
            // `can_issue` covers resources; `issue` may still reject on
            // state grounds — but never the reverse.
            if result.is_ok() {
                prop_assert!(can, "issue succeeded where can_issue said no");
                let out = result.unwrap();
                prop_assert!(out.done_at >= now);
                prop_assert!(out.channel_free_at >= now);
                prop_assert!(out.lun_free_at >= now);
                match programmed.iter_mut().find(|&&mut (lu, b, _)| lu == lun && b == block) {
                    Some(e) => e.2 += 1,
                    None => programmed.push((lun, block, next + 1)),
                }
            }
        }
    }
}
