//! Per-page out-of-band (OOB) metadata.
//!
//! Real NAND pages carry a spare area alongside the data payload; FTLs use
//! it to persist, with every program, which logical page the physical page
//! holds and a version stamp. After a power failure this is the only
//! durable record of the mapping: mount-time recovery scans the OOB of
//! written pages and rebuilds the logical→physical map (see the
//! controller's `recovery` module).
//!
//! Two counters travel in each entry:
//!
//! * [`OobEntry::seq`] — the *content version*. Fresh for every host or
//!   translation write; **copied from the source** for GC / wear-leveling /
//!   merge relocations, because a relocation does not change the content.
//!   Recovery keeps, per logical page, the copy with the highest
//!   `(seq, stamp)` pair — so a relocated copy never outranks a newer host
//!   write, while it does supersede the original it was copied from.
//! * [`OobEntry::stamp`] — the *program stamp*, fresh for every program
//!   (copies included). Stamps grow monotonically with issue order, so
//!   within one block the last programmed page carries the block's highest
//!   stamp; checkpointed recovery probes it to decide whether the block
//!   holds any entry newer than the checkpoint watermark.

/// What a programmed page holds, as recorded in its OOB spare area.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OobTag {
    /// Application data for this logical page.
    Data { lpn: u64 },
    /// A DFTL translation page (tvpn = translation virtual page number).
    Translation { tvpn: u64 },
    /// A merge filler program keeping NAND page order over an unmapped
    /// hole; carries no logical content and is skipped by recovery.
    Filler,
    /// A page of a mapping checkpoint written to reserved blocks.
    Checkpoint { slot: u8 },
}

/// The OOB record persisted with one page program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OobEntry {
    /// What the page holds.
    pub tag: OobTag,
    /// Content version (see module docs).
    pub seq: u64,
    /// Monotone program stamp (see module docs).
    pub stamp: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn winner_ordering_prefers_seq_then_stamp() {
        // The rule recovery applies: compare (seq, stamp).
        let original = OobEntry { tag: OobTag::Data { lpn: 7 }, seq: 5, stamp: 5 };
        let gc_copy = OobEntry { tag: OobTag::Data { lpn: 7 }, seq: 5, stamp: 9 };
        let newer_write = OobEntry { tag: OobTag::Data { lpn: 7 }, seq: 8, stamp: 8 };
        assert!((gc_copy.seq, gc_copy.stamp) > (original.seq, original.stamp));
        assert!((newer_write.seq, newer_write.stamp) > (gc_copy.seq, gc_copy.stamp));
    }
}
