//! Deterministic media-fault model: probabilistic NAND failure modes.
//!
//! The array's baseline wear model is terminal only — a block dies when its
//! erase count hits the chip's endurance. Real NAND degrades long before
//! that: programs and erases fail transiently with probabilities that grow
//! with P/E cycles, and the raw bit-error rate of reads climbs with wear,
//! retention age (time since the page was programmed) and read disturb
//! (reads anywhere in a block stress its neighbours). The controller hides
//! most of this behind ECC and read-retry; what leaks through is extra
//! read latency, grown bad blocks, and — past the ECC strength — data loss.
//!
//! [`FaultModel`] injects all of these *deterministically*: every sample is
//! drawn from a [`SimRng`] seeded by hashing the model seed with the op's
//! physical address and the state that physically drives the failure mode
//! (erase count, read-disturb count, sim time). Two runs with the same
//! seed — under either event-queue backend — fault identically; a model
//! that is not installed costs nothing and changes nothing.
//!
//! The model is *advisory* for programs: the array applies the normal
//! state transition and reports [`FaultEvent::ProgramFailed`] alongside,
//! leaving the remap-vs-absorb policy to the controller (which knows
//! whether the program was allocator-backed or structure-owned). Erase
//! failures are applied by the array itself (the block is simply not
//! reset), because "did the erase happen" is medium state.

use eagletree_core::{SimRng, SimTime};

use crate::address::Geometry;
use crate::timing::CellType;

/// Knobs of the media-fault model. All probabilities are per-operation.
///
/// The defaults model a moderately worn MLC-class part: a handful of raw
/// bit errors per read at age zero (fully absorbed by ECC), failure rates
/// that only become visible after thousands of P/E cycles, and a 4-tier
/// read-retry ladder. Experiments age the device via [`FaultConfig::baseline_pe`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed of the per-op hash; independent of the controller seed.
    pub seed: u64,
    /// Program-status failure probability at zero wear.
    pub program_fail_base: f64,
    /// Additional program-failure probability per P/E cycle.
    pub program_fail_per_pe: f64,
    /// Erase failure probability at zero wear.
    pub erase_fail_base: f64,
    /// Additional erase-failure probability per P/E cycle.
    pub erase_fail_per_pe: f64,
    /// Consecutive erase failures after which the block is retired
    /// (masked bad) instead of retried.
    pub erase_retire_after: u32,
    /// Expected raw bit errors per read at zero wear/retention/disturb.
    pub raw_bits_base: f64,
    /// Extra expected raw bit errors per P/E cycle of the block.
    pub raw_bits_per_pe: f64,
    /// Extra expected raw bit errors per second of retention age.
    pub raw_bits_per_retention_s: f64,
    /// Extra expected raw bit errors per read-disturb count on the block.
    pub raw_bits_per_disturb: f64,
    /// ECC strength: bits correctable per read attempt.
    pub ecc_bits: u32,
    /// Read-retry tiers after the initial attempt. Each retry charges a
    /// full extra array read (`t_cmd + t_read`) of latency.
    pub read_retries: u32,
    /// Each retry tier re-samples at this fraction of the error rate
    /// (shifted read thresholds recover most marginal pages).
    pub retry_error_scale: f64,
    /// Pre-aging: baseline P/E cycles added to every block's erase count
    /// in the error curves (device-age sweeps without simulating years).
    pub baseline_pe: u32,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0xFA_017,
            program_fail_base: 1e-4,
            program_fail_per_pe: 2e-7,
            erase_fail_base: 1e-4,
            erase_fail_per_pe: 2e-7,
            erase_retire_after: 3,
            raw_bits_base: 2.0,
            raw_bits_per_pe: 2e-3,
            raw_bits_per_retention_s: 0.05,
            raw_bits_per_disturb: 0.01,
            ecc_bits: 8,
            read_retries: 4,
            retry_error_scale: 0.5,
            baseline_pe: 0,
        }
    }
}

impl FaultConfig {
    /// A deliberately hostile profile for fault-path tests: failures every
    /// few hundred ops instead of every few million.
    pub fn aggressive() -> Self {
        FaultConfig {
            program_fail_base: 0.02,
            erase_fail_base: 0.05,
            raw_bits_base: 5.0,
            raw_bits_per_retention_s: 0.5,
            raw_bits_per_disturb: 0.05,
            ecc_bits: 6,
            read_retries: 2,
            ..FaultConfig::default()
        }
    }

    /// Validate invariants.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("program_fail_base", self.program_fail_base),
            ("erase_fail_base", self.erase_fail_base),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be a probability, got {p}"));
            }
        }
        if self.retry_error_scale <= 0.0 || self.retry_error_scale >= 1.0 {
            return Err(format!(
                "retry_error_scale must be in (0,1), got {}",
                self.retry_error_scale
            ));
        }
        if self.erase_retire_after == 0 {
            return Err("erase_retire_after must be non-zero".into());
        }
        Ok(())
    }
}

/// ECC-path result of one read: how many raw bit errors were corrected,
/// how many retry tiers it took, and whether the page stayed unreadable
/// after the final tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReadOutcome {
    /// Raw bit errors corrected on the successful attempt.
    pub corrected_bits: u32,
    /// Retry tiers consumed (0 = first attempt succeeded). Each tier adds
    /// a full array read of latency.
    pub retries: u32,
    /// Errors exceeded the ECC strength on every tier: the payload is lost.
    pub uncorrectable: bool,
}

/// A media fault that accompanied an otherwise-issued command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// The read went through the ECC/retry path (possibly cleanly).
    Read(ReadOutcome),
    /// Program-status failure: the page burned without taking the data.
    /// Advisory — the controller decides remap-vs-absorb.
    ProgramFailed,
    /// The erase failed; the block was not reset. `retired` is set when
    /// the failure streak exhausted `erase_retire_after` and the array
    /// masked the block bad.
    EraseFailed { retired: bool },
}

/// Running totals of injected faults and their ECC-path outcomes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Reads sampled through the ECC path.
    pub reads: u64,
    /// Raw bit errors corrected across all reads.
    pub corrected_bits: u64,
    /// Retry tiers consumed across all reads.
    pub read_retries: u64,
    /// Reads left uncorrectable after the final retry tier.
    pub uncorrectable_reads: u64,
    /// Program-status failures reported.
    pub program_fails: u64,
    /// Erase failures (transient and terminal).
    pub erase_fails: u64,
    /// Blocks retired as grown bad (program-fail marks and erase-failure
    /// streaks; endurance wear-out is counted separately by the array).
    pub grown_bad_blocks: u64,
}

/// Deterministic per-array fault injector. Lives inside the `FlashArray`
/// (cloned with it, so a `CrashImage` carries its fault state across a
/// remount) and is consulted from the array's single `issue()` choke point.
#[derive(Debug, Clone)]
pub struct FaultModel {
    cfg: FaultConfig,
    /// Cell-technology multiplier on the raw-bit-error curve.
    cell_factor: f64,
    /// When each page was programmed (retention-age input). Meaningful
    /// only while the page is written.
    programmed_at: Vec<SimTime>,
    /// When each block first took a program since its last erase (block
    /// retention age for the scrubber).
    block_programmed_at: Vec<SimTime>,
    /// Reads against each block since its last erase.
    read_disturb: Vec<u32>,
    /// Consecutive erase failures per block.
    erase_streak: Vec<u32>,
    /// Blocks marked for grown-bad retirement (program-status failure);
    /// the mark converts to a hard `bad` mask at the block's next erase.
    grown_bad: Vec<bool>,
    counters: FaultCounters,
}

/// Salts separating the per-op hash domains.
const SALT_READ: u64 = 0x52_45_41_44;
const SALT_PROG: u64 = 0x50_52_4F_47;
const SALT_ERASE: u64 = 0x45_52_41_53;
const SALT_OOB: u64 = 0x4F_4F_42;

/// Mix the model seed with op-specific state into a per-op RNG seed.
fn mix(seed: u64, salt: u64, a: u64, b: u64) -> u64 {
    let mut h = seed ^ salt.rotate_left(17);
    h = h.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ a.rotate_left(29);
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9) ^ b.rotate_left(43);
    h
}

/// Knuth Poisson sampler, capped (λ far past the cap is saturated — the
/// read is uncorrectable regardless of the exact count).
fn poisson(rng: &mut SimRng, lambda: f64, cap: u32) -> u32 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda >= cap as f64 {
        return cap;
    }
    let l = (-lambda).exp();
    let mut k = 0u32;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen_f64();
        if p <= l || k >= cap {
            return k;
        }
        k += 1;
    }
}

impl FaultModel {
    /// A model over `geometry` with `cfg`, for `cell`-type NAND.
    pub fn new(cfg: FaultConfig, geometry: &Geometry, cell: CellType) -> Self {
        cfg.validate().expect("invalid fault config");
        let blocks = geometry.total_blocks() as usize;
        FaultModel {
            cfg,
            cell_factor: match cell {
                CellType::Slc => 1.0,
                // MLC cells hold tighter voltage margins: markedly worse
                // raw-bit-error growth for the same stress.
                CellType::Mlc => 4.0,
            },
            programmed_at: vec![SimTime::ZERO; geometry.total_pages() as usize],
            block_programmed_at: vec![SimTime::ZERO; blocks],
            read_disturb: vec![0; blocks],
            erase_streak: vec![0; blocks],
            grown_bad: vec![false; blocks],
            counters: FaultCounters::default(),
        }
    }

    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    pub fn counters(&self) -> FaultCounters {
        self.counters
    }

    /// Reads against `block` (linear index) since its last erase.
    pub fn read_disturb(&self, block: u64) -> u32 {
        self.read_disturb[block as usize]
    }

    /// When `block` (linear index) first took a program since its last
    /// erase; `SimTime::ZERO` for never-programmed blocks.
    pub fn block_programmed_at(&self, block: u64) -> SimTime {
        self.block_programmed_at[block as usize]
    }

    /// Whether `block` (linear index) carries a grown-bad mark awaiting
    /// retirement at its next erase.
    pub fn is_grown_bad(&self, block: u64) -> bool {
        self.grown_bad[block as usize]
    }

    /// Expected raw bit errors for a read of `page` in `block` at `now`.
    fn read_lambda(&self, page: u64, block: u64, pe: u32, now: SimTime) -> f64 {
        let c = &self.cfg;
        let pe = (pe + c.baseline_pe) as f64;
        let age_s = now
            .saturating_since(self.programmed_at[page as usize])
            .as_secs_f64();
        let disturb = self.read_disturb[block as usize] as f64;
        self.cell_factor
            * (c.raw_bits_base
                + c.raw_bits_per_pe * pe
                + c.raw_bits_per_retention_s * age_s
                + c.raw_bits_per_disturb * disturb)
    }

    /// Sample the ECC path of a read of `page` in `block` (both linear
    /// indices) with `pe` erases on the block, at sim time `now`. Bumps
    /// the block's read-disturb counter and the fault counters.
    pub fn sample_read(&mut self, page: u64, block: u64, pe: u32, now: SimTime) -> ReadOutcome {
        let lambda = self.read_lambda(page, block, pe, now);
        self.read_disturb[block as usize] += 1;
        let mut rng = SimRng::new(mix(
            self.cfg.seed,
            SALT_READ,
            page,
            now.as_nanos() ^ ((self.read_disturb[block as usize] as u64) << 40),
        ));
        let cap = self.cfg.ecc_bits.saturating_mul(4).saturating_add(16);
        let mut out = ReadOutcome::default();
        let mut tier_lambda = lambda;
        for tier in 0..=self.cfg.read_retries {
            let raw = poisson(&mut rng, tier_lambda, cap);
            if raw <= self.cfg.ecc_bits {
                out.corrected_bits = raw;
                out.retries = tier;
                self.counters.reads += 1;
                self.counters.corrected_bits += raw as u64;
                self.counters.read_retries += tier as u64;
                return out;
            }
            tier_lambda *= self.cfg.retry_error_scale;
        }
        out.retries = self.cfg.read_retries;
        out.uncorrectable = true;
        self.counters.reads += 1;
        self.counters.read_retries += self.cfg.read_retries as u64;
        self.counters.uncorrectable_reads += 1;
        out
    }

    /// Whether the spare area of `page` is unreadable at mount time.
    /// Pure (no counter updates): recovery may probe pages repeatedly.
    /// Spare areas carry their own (weaker) ECC, so this reuses the read
    /// curve in a separate hash domain without the retry ladder.
    pub fn oob_uncorrectable(&self, page: u64, block: u64, pe: u32, now: SimTime) -> bool {
        let lambda = self.read_lambda(page, block, pe, now);
        let mut rng = SimRng::new(mix(self.cfg.seed, SALT_OOB, page, now.as_nanos()));
        poisson(&mut rng, lambda, self.cfg.ecc_bits.saturating_mul(4).saturating_add(16))
            > self.cfg.ecc_bits
    }

    /// Sample a program-status failure for a program of `page` (linear
    /// index) into a block with `pe` erases. On failure the block is
    /// marked grown bad (retired at its next erase).
    pub fn sample_program(&mut self, page: u64, block: u64, pe: u32) -> bool {
        let c = &self.cfg;
        let p = c.program_fail_base + c.program_fail_per_pe * (pe + c.baseline_pe) as f64;
        let mut rng = SimRng::new(mix(self.cfg.seed, SALT_PROG, page, pe as u64));
        let failed = rng.gen_bool(p.min(1.0));
        if failed {
            self.counters.program_fails += 1;
            self.mark_grown_bad(block);
        }
        failed
    }

    /// Sample an erase failure for `block` (linear index) with `pe`
    /// erases. Returns `Some(retired)` on failure; the caller (the array)
    /// skips the reset and, when `retired`, masks the block bad.
    pub fn sample_erase(&mut self, block: u64, pe: u32) -> Option<bool> {
        let c = &self.cfg;
        let p = c.erase_fail_base + c.erase_fail_per_pe * (pe + c.baseline_pe) as f64;
        let streak = self.erase_streak[block as usize];
        let mut rng = SimRng::new(mix(
            self.cfg.seed,
            SALT_ERASE,
            block,
            ((pe as u64) << 16) ^ streak as u64,
        ));
        if !rng.gen_bool(p.min(1.0)) {
            self.erase_streak[block as usize] = 0;
            return None;
        }
        self.counters.erase_fails += 1;
        self.erase_streak[block as usize] = streak + 1;
        if streak + 1 >= c.erase_retire_after {
            self.mark_grown_bad(block);
            Some(true)
        } else {
            Some(false)
        }
    }

    /// Mark `block` (linear index) for grown-bad retirement.
    pub fn mark_grown_bad(&mut self, block: u64) {
        if !self.grown_bad[block as usize] {
            self.grown_bad[block as usize] = true;
            self.counters.grown_bad_blocks += 1;
        }
    }

    /// A page of `block` was programmed at `now`.
    pub(crate) fn on_program(&mut self, page: u64, block: u64, now: SimTime, first_in_block: bool) {
        self.programmed_at[page as usize] = now;
        if first_in_block {
            self.block_programmed_at[block as usize] = now;
        }
    }

    /// `block` was successfully erased: disturb/retention state resets and
    /// any grown-bad mark has been consumed by the caller.
    pub(crate) fn on_erase(&mut self, block: u64) {
        self.read_disturb[block as usize] = 0;
        self.erase_streak[block as usize] = 0;
        self.grown_bad[block as usize] = false;
        self.block_programmed_at[block as usize] = SimTime::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eagletree_core::SimDuration;

    fn model(cfg: FaultConfig) -> FaultModel {
        FaultModel::new(cfg, &Geometry::tiny(), CellType::Slc)
    }

    #[test]
    fn default_config_validates() {
        FaultConfig::default().validate().unwrap();
        FaultConfig::aggressive().validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_knobs() {
        let c = FaultConfig {
            program_fail_base: 1.5,
            ..FaultConfig::default()
        };
        assert!(c.validate().is_err());
        let c = FaultConfig {
            retry_error_scale: 1.0,
            ..FaultConfig::default()
        };
        assert!(c.validate().is_err());
        let c = FaultConfig {
            erase_retire_after: 0,
            ..FaultConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn sampling_is_deterministic() {
        let mut a = model(FaultConfig::aggressive());
        let mut b = model(FaultConfig::aggressive());
        for i in 0..200 {
            let now = SimTime::ZERO + SimDuration::from_micros(i * 37);
            assert_eq!(
                a.sample_read(i % 64, i % 8, i as u32, now),
                b.sample_read(i % 64, i % 8, i as u32, now)
            );
            assert_eq!(
                a.sample_program(i % 64, i % 8, i as u32),
                b.sample_program(i % 64, i % 8, i as u32)
            );
            assert_eq!(a.sample_erase(i % 8, i as u32), b.sample_erase(i % 8, i as u32));
        }
        assert_eq!(a.counters(), b.counters());
    }

    #[test]
    fn error_rate_grows_with_age_and_wear() {
        let m = model(FaultConfig::default());
        let fresh = m.read_lambda(0, 0, 0, SimTime::ZERO);
        let worn = m.read_lambda(0, 0, 5_000, SimTime::ZERO);
        assert!(worn > fresh * 2.0, "wear should dominate: {fresh} vs {worn}");
        let aged = m.read_lambda(0, 0, 0, SimTime::ZERO + SimDuration::from_secs(600));
        assert!(aged > fresh, "retention should grow errors");
    }

    #[test]
    fn read_disturb_accumulates_and_resets() {
        let mut m = model(FaultConfig::aggressive());
        for _ in 0..100 {
            m.sample_read(0, 0, 0, SimTime::ZERO);
        }
        assert_eq!(m.read_disturb(0), 100);
        m.on_erase(0);
        assert_eq!(m.read_disturb(0), 0);
    }

    #[test]
    fn uncorrectable_appears_under_hostile_rates() {
        let mut cfg = FaultConfig::aggressive();
        cfg.raw_bits_base = 20.0;
        cfg.ecc_bits = 4;
        cfg.read_retries = 1;
        cfg.retry_error_scale = 0.9;
        let mut m = model(cfg);
        let mut unc = 0;
        for i in 0..500 {
            let now = SimTime::ZERO + SimDuration::from_micros(i);
            if m.sample_read(i % 64, 0, 0, now).uncorrectable {
                unc += 1;
            }
        }
        assert!(unc > 400, "λ≫ECC should be mostly uncorrectable, got {unc}");
        assert_eq!(m.counters().uncorrectable_reads, unc);
    }

    #[test]
    fn clean_reads_at_zero_rates() {
        let cfg = FaultConfig {
            raw_bits_base: 0.0,
            raw_bits_per_pe: 0.0,
            raw_bits_per_retention_s: 0.0,
            raw_bits_per_disturb: 0.0,
            ..FaultConfig::default()
        };
        let mut m = model(cfg);
        let out = m.sample_read(0, 0, 0, SimTime::ZERO);
        assert_eq!(out, ReadOutcome::default());
    }

    #[test]
    fn erase_streak_retires_block() {
        let cfg = FaultConfig {
            erase_fail_base: 1.0, // always fail
            erase_retire_after: 3,
            ..FaultConfig::default()
        };
        let mut m = model(cfg);
        assert_eq!(m.sample_erase(5, 0), Some(false));
        assert_eq!(m.sample_erase(5, 0), Some(false));
        assert_eq!(m.sample_erase(5, 0), Some(true));
        assert!(m.is_grown_bad(5));
        assert_eq!(m.counters().erase_fails, 3);
        assert_eq!(m.counters().grown_bad_blocks, 1);
    }

    #[test]
    fn program_fail_marks_grown_bad_once() {
        let cfg = FaultConfig {
            program_fail_base: 1.0,
            ..FaultConfig::default()
        };
        let mut m = model(cfg);
        assert!(m.sample_program(0, 0, 0));
        assert!(m.sample_program(1, 0, 0));
        assert!(m.is_grown_bad(0));
        assert_eq!(m.counters().grown_bad_blocks, 1, "mark counted once");
        assert_eq!(m.counters().program_fails, 2);
    }

    #[test]
    fn retries_consume_tiers_before_uncorrectable() {
        // λ just past ECC: first tier usually fails, halved tiers recover.
        let cfg = FaultConfig {
            raw_bits_base: 12.0,
            ecc_bits: 8,
            read_retries: 4,
            ..FaultConfig::default()
        };
        let mut m = model(cfg);
        let mut retried = 0;
        for i in 0..300 {
            let out = m.sample_read(i % 64, 0, 0, SimTime::ZERO + SimDuration::from_micros(i));
            if out.retries > 0 && !out.uncorrectable {
                retried += 1;
            }
        }
        assert!(retried > 50, "expected frequent successful retries, got {retried}");
        assert!(m.counters().read_retries > 0);
    }

    #[test]
    fn mlc_worse_than_slc() {
        let mut slc = model(FaultConfig::default());
        let mlc = FaultModel::new(FaultConfig::default(), &Geometry::tiny(), CellType::Mlc);
        assert!(mlc.read_lambda(0, 0, 100, SimTime::ZERO) > slc.read_lambda(0, 0, 100, SimTime::ZERO));
        let _ = slc.sample_read(0, 0, 0, SimTime::ZERO);
    }

    #[test]
    fn oob_check_is_pure_and_deterministic() {
        let m = model(FaultConfig::aggressive());
        let now = SimTime::ZERO + SimDuration::from_secs(1);
        let a = m.oob_uncorrectable(3, 0, 50, now);
        let b = m.oob_uncorrectable(3, 0, 50, now);
        assert_eq!(a, b);
        assert_eq!(m.counters(), FaultCounters::default());
    }
}
