//! Flash-layer errors.

use std::fmt;

use crate::address::{BlockAddr, PhysicalAddr};

/// Errors returned by the flash array on invalid commands.
///
/// These represent *controller bugs* (the FTL violating NAND constraints),
/// not transient conditions, so integration code generally unwraps them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlashError {
    /// Command addressed a channel/LUN/plane/block/page outside geometry.
    OutOfRange(String),
    /// The target channel is busy at issue time.
    ChannelBusy { channel: u32 },
    /// The target LUN is busy at issue time.
    LunBusy { channel: u32, lun: u32 },
    /// Program targeted a page that is not the block's next free page.
    NonSequentialProgram {
        addr: PhysicalAddr,
        expected_page: u32,
    },
    /// Read targeted a page that holds no data.
    ReadUnwritten(PhysicalAddr),
    /// Transfer-out issued on a LUN whose register holds no data.
    NoPendingData { channel: u32, lun: u32 },
    /// Erase targeted a block that still holds live pages.
    EraseLiveBlock { block: BlockAddr, live: u32 },
    /// Copy-back crossed a plane boundary or chip lacks copy-back.
    InvalidCopyBack(String),
    /// Program or erase targeted a worn-out (masked) block.
    BadBlock(BlockAddr),
    /// Read targeted a page left partially programmed by a power cut.
    TornPage(PhysicalAddr),
    /// Program targeted a block whose erase a power cut interrupted; it
    /// must be erased again first.
    NeedsErase(BlockAddr),
    /// Read found more raw bit errors than the configured ECC strength
    /// could correct, on every read-retry tier: the data is lost. Only
    /// produced with a media-fault model installed.
    Uncorrectable(PhysicalAddr),
}

impl fmt::Display for FlashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlashError::OutOfRange(s) => write!(f, "address out of range: {s}"),
            FlashError::ChannelBusy { channel } => {
                write!(f, "channel {channel} busy")
            }
            FlashError::LunBusy { channel, lun } => {
                write!(f, "LUN c{channel}l{lun} busy")
            }
            FlashError::NonSequentialProgram {
                addr,
                expected_page,
            } => write!(
                f,
                "non-sequential program at {addr:?}, expected page {expected_page}"
            ),
            FlashError::ReadUnwritten(a) => write!(f, "read of unwritten page {a:?}"),
            FlashError::NoPendingData { channel, lun } => {
                write!(f, "no pending data in register of LUN c{channel}l{lun}")
            }
            FlashError::EraseLiveBlock { block, live } => {
                write!(f, "erase of block {block:?} holding {live} live pages")
            }
            FlashError::InvalidCopyBack(s) => write!(f, "invalid copy-back: {s}"),
            FlashError::BadBlock(b) => write!(f, "operation on bad block {b:?}"),
            FlashError::TornPage(a) => {
                write!(f, "read of torn (partially programmed) page {a:?}")
            }
            FlashError::NeedsErase(b) => {
                write!(f, "program into block {b:?} with an interrupted erase")
            }
            FlashError::Uncorrectable(a) => {
                write!(f, "uncorrectable bit errors reading page {a:?}")
            }
        }
    }
}

impl std::error::Error for FlashError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = FlashError::LunBusy { channel: 1, lun: 2 };
        assert_eq!(e.to_string(), "LUN c1l2 busy");
        let e = FlashError::EraseLiveBlock {
            block: BlockAddr {
                channel: 0,
                lun: 0,
                plane: 0,
                block: 3,
            },
            live: 4,
        };
        assert!(e.to_string().contains("4 live pages"));
    }
}
