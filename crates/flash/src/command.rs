//! Flash command set.
//!
//! The controller drives the array with four operations. `ReadStart` /
//! `TransferOut` are the two halves of a page read: the array read leaves
//! the data in the LUN's page register, and a later channel transfer brings
//! it to the controller. Splitting them is what lets the scheduler overlap
//! array reads on one LUN with transfers from another — the interleaving
//! the paper's scheduler experiments manipulate.

use crate::address::{BlockAddr, PhysicalAddr};

/// One operation the controller can issue to the flash array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlashCommand {
    /// Start an array read of a page; data lands in the LUN register.
    ReadStart(PhysicalAddr),
    /// Move previously-read data from the LUN register over the channel.
    TransferOut(PhysicalAddr),
    /// Program a page (command + data in + array program).
    Program(PhysicalAddr),
    /// Erase a whole block.
    Erase(BlockAddr),
    /// Copy a page to another page in the same plane without moving data
    /// over the channel.
    CopyBack {
        /// Source page (must be readable).
        from: PhysicalAddr,
        /// Destination page (must be the next free page of its block, in
        /// the same plane as `from`).
        to: PhysicalAddr,
    },
}

impl FlashCommand {
    /// The channel this command occupies.
    pub fn channel(&self) -> u32 {
        match self {
            FlashCommand::ReadStart(a)
            | FlashCommand::TransferOut(a)
            | FlashCommand::Program(a) => a.channel,
            FlashCommand::Erase(b) => b.channel,
            FlashCommand::CopyBack { from, .. } => from.channel,
        }
    }

    /// The LUN (linear within its channel) this command occupies.
    pub fn lun(&self) -> u32 {
        match self {
            FlashCommand::ReadStart(a)
            | FlashCommand::TransferOut(a)
            | FlashCommand::Program(a) => a.lun,
            FlashCommand::Erase(b) => b.lun,
            FlashCommand::CopyBack { from, .. } => from.lun,
        }
    }

    /// Short mnemonic for traces.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            FlashCommand::ReadStart(_) => "READ",
            FlashCommand::TransferOut(_) => "XFER",
            FlashCommand::Program(_) => "PROG",
            FlashCommand::Erase(_) => "ERASE",
            FlashCommand::CopyBack { .. } => "CPBK",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(channel: u32, lun: u32) -> PhysicalAddr {
        PhysicalAddr {
            channel,
            lun,
            plane: 0,
            block: 0,
            page: 0,
        }
    }

    #[test]
    fn commands_expose_their_resources() {
        assert_eq!(FlashCommand::ReadStart(addr(2, 1)).channel(), 2);
        assert_eq!(FlashCommand::ReadStart(addr(2, 1)).lun(), 1);
        assert_eq!(
            FlashCommand::Erase(addr(3, 0).block_addr()).channel(),
            3
        );
        let cb = FlashCommand::CopyBack {
            from: addr(1, 1),
            to: PhysicalAddr {
                channel: 1,
                lun: 1,
                plane: 0,
                block: 5,
                page: 0,
            },
        };
        assert_eq!(cb.channel(), 1);
        assert_eq!(cb.lun(), 1);
    }

    #[test]
    fn mnemonics_are_distinct() {
        let cmds = [
            FlashCommand::ReadStart(addr(0, 0)).mnemonic(),
            FlashCommand::TransferOut(addr(0, 0)).mnemonic(),
            FlashCommand::Program(addr(0, 0)).mnemonic(),
            FlashCommand::Erase(addr(0, 0).block_addr()).mnemonic(),
            FlashCommand::CopyBack {
                from: addr(0, 0),
                to: addr(0, 0),
            }
            .mnemonic(),
        ];
        let mut unique = cmds.to_vec();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), cmds.len());
    }
}
