//! Controller memory manager.
//!
//! "EagleTree includes a memory manager used to track the amount of RAM and
//! battery-backed RAM used for the controller's metadata and IO buffers"
//! (§2.2). Modules such as DFTL's cached mapping table and the write buffer
//! reserve their footprints here, so experiments can sweep RAM budgets and
//! observe which policies still fit.

use std::collections::BTreeMap;

/// Which physical memory an allocation comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MemoryKind {
    /// Volatile controller DRAM (mapping tables, caches).
    Ram,
    /// Battery/capacitor-backed RAM that survives power loss (write
    /// buffers, journals).
    BatteryBackedRam,
}

/// Tracks RAM and battery-backed RAM budgets by named purpose.
#[derive(Debug, Clone)]
pub struct MemoryManager {
    ram_capacity: u64,
    bb_capacity: u64,
    allocations: BTreeMap<(MemoryKind, String), u64>,
}

impl MemoryManager {
    /// A manager with the given capacities in bytes.
    pub fn new(ram_bytes: u64, battery_backed_bytes: u64) -> Self {
        MemoryManager {
            ram_capacity: ram_bytes,
            bb_capacity: battery_backed_bytes,
            allocations: BTreeMap::new(),
        }
    }

    /// Reserve `bytes` of `kind` memory under `purpose`.
    ///
    /// Fails (without side effects) if the reservation would exceed the
    /// capacity of that memory kind. Re-reserving the same purpose replaces
    /// the old reservation.
    pub fn reserve(&mut self, kind: MemoryKind, purpose: &str, bytes: u64) -> Result<(), String> {
        let key = (kind, purpose.to_string());
        let existing = self.allocations.get(&key).copied().unwrap_or(0);
        let used_other = self.used(kind) - existing;
        let cap = self.capacity(kind);
        if used_other + bytes > cap {
            return Err(format!(
                "cannot reserve {bytes} B of {kind:?} for `{purpose}`: {used_other} B of {cap} B already in use"
            ));
        }
        self.allocations.insert(key, bytes);
        Ok(())
    }

    /// Release the reservation for `purpose`, returning the freed bytes.
    pub fn release(&mut self, kind: MemoryKind, purpose: &str) -> u64 {
        self.allocations
            .remove(&(kind, purpose.to_string()))
            .unwrap_or(0)
    }

    /// Capacity of a memory kind.
    pub fn capacity(&self, kind: MemoryKind) -> u64 {
        match kind {
            MemoryKind::Ram => self.ram_capacity,
            MemoryKind::BatteryBackedRam => self.bb_capacity,
        }
    }

    /// Bytes currently reserved from a memory kind.
    pub fn used(&self, kind: MemoryKind) -> u64 {
        self.allocations
            .iter()
            .filter(|((k, _), _)| *k == kind)
            .map(|(_, &b)| b)
            .sum()
    }

    /// Bytes still available in a memory kind.
    pub fn available(&self, kind: MemoryKind) -> u64 {
        self.capacity(kind) - self.used(kind)
    }

    /// Reservation for a specific purpose, if any.
    pub fn reserved_for(&self, kind: MemoryKind, purpose: &str) -> Option<u64> {
        self.allocations.get(&(kind, purpose.to_string())).copied()
    }

    /// Iterate `(kind, purpose, bytes)` over all reservations.
    pub fn iter(&self) -> impl Iterator<Item = (MemoryKind, &str, u64)> + '_ {
        self.allocations
            .iter()
            .map(|((k, p), &b)| (*k, p.as_str(), b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_release() {
        let mut m = MemoryManager::new(1024, 256);
        m.reserve(MemoryKind::Ram, "cmt", 512).unwrap();
        assert_eq!(m.used(MemoryKind::Ram), 512);
        assert_eq!(m.available(MemoryKind::Ram), 512);
        assert_eq!(m.reserved_for(MemoryKind::Ram, "cmt"), Some(512));
        assert_eq!(m.release(MemoryKind::Ram, "cmt"), 512);
        assert_eq!(m.used(MemoryKind::Ram), 0);
        assert_eq!(m.release(MemoryKind::Ram, "cmt"), 0);
    }

    #[test]
    fn over_reservation_fails_atomically() {
        let mut m = MemoryManager::new(100, 0);
        m.reserve(MemoryKind::Ram, "a", 80).unwrap();
        assert!(m.reserve(MemoryKind::Ram, "b", 30).is_err());
        assert_eq!(m.used(MemoryKind::Ram), 80);
    }

    #[test]
    fn re_reserving_replaces() {
        let mut m = MemoryManager::new(100, 0);
        m.reserve(MemoryKind::Ram, "cmt", 80).unwrap();
        // Shrinking the same purpose must succeed even though 80+40 > 100.
        m.reserve(MemoryKind::Ram, "cmt", 40).unwrap();
        assert_eq!(m.used(MemoryKind::Ram), 40);
    }

    #[test]
    fn kinds_are_separate_pools() {
        let mut m = MemoryManager::new(100, 100);
        m.reserve(MemoryKind::Ram, "x", 100).unwrap();
        m.reserve(MemoryKind::BatteryBackedRam, "x", 100).unwrap();
        assert_eq!(m.available(MemoryKind::Ram), 0);
        assert_eq!(m.available(MemoryKind::BatteryBackedRam), 0);
        assert_eq!(m.iter().count(), 2);
    }
}
