//! # eagletree-flash
//!
//! The hardware layer of the EagleTree SSD simulator: an ONFI-style flash
//! memory array wired to the controller through parallel channels.
//!
//! The model follows the paper's hardware design space (§2.2 "Hardware"):
//!
//! * **Geometry** ([`Geometry`]) — channels × LUNs/channel × planes ×
//!   blocks × pages, with configurable page size. The LUN is the minimum
//!   granularity of parallelism, per the ONFI standard.
//! * **Timing** ([`TimingSpec`]) — basic flash chip timings: command latency,
//!   per-page channel transfer time, read, program and erase array times,
//!   with SLC and MLC presets derived from datasheet-typical values.
//! * **Occupancy** ([`FlashArray`]) — channels and LUNs are independent
//!   resources. A read occupies the channel for the command, the LUN for the
//!   array read, and the channel again for the data transfer out; while a
//!   LUN is busy its channel is free for *interleaved* operations on sibling
//!   LUNs. Copy-back moves a page inside a LUN without occupying the channel
//!   for data, trading channel time for pinning the LUN.
//! * **State** — per-page Free/Valid/Invalid tracking with sequential
//!   program enforcement inside each block, per-block erase counts and
//!   last-erase timestamps (consumed by wear leveling), and raw op counters.
//! * **Memory manager** ([`MemoryManager`]) — tracks controller RAM and
//!   battery-backed RAM budgets for mapping tables and write buffers.
//! * **OOB & power failure** ([`oob`], [`FlashArray::power_cut`]) — every
//!   program persists an [`OobEntry`] in the page's spare area (logical
//!   page + version stamps), the durable record mount-time recovery
//!   rebuilds the mapping from; a power cut destroys exactly the
//!   operations in flight (torn pages, interrupted erases).

#![forbid(unsafe_code)]

pub mod address;
pub mod array;
pub mod command;
pub mod error;
pub mod fault;
pub mod memory;
pub mod oob;
pub mod timing;

pub use address::{BlockAddr, Geometry, PhysicalAddr};
pub use array::{BlockInfo, FlashArray, IssueOutcome, PageState, PowerCutReport};
pub use command::FlashCommand;
pub use error::FlashError;
pub use fault::{FaultConfig, FaultCounters, FaultEvent, FaultModel, ReadOutcome};
pub use memory::{MemoryKind, MemoryManager};
pub use oob::{OobEntry, OobTag};
pub use timing::{CellType, TimingSpec};
