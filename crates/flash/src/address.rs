//! SSD geometry and physical addressing.
//!
//! A physical page is addressed by `(channel, lun, plane, block, page)`.
//! Following ONFI (and the paper's footnote 1), the LUN abstracts packages,
//! chips and dies: it is the minimum unit of parallelism. Planes subdivide a
//! LUN for copy-back locality but do not add parallelism in this model.

use std::fmt;

/// The shape of the simulated SSD.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Number of channels between controller and flash.
    pub channels: u32,
    /// LUNs attached to each channel.
    pub luns_per_channel: u32,
    /// Planes per LUN (copy-back must stay within a plane).
    pub planes_per_lun: u32,
    /// Physical blocks per plane.
    pub blocks_per_plane: u32,
    /// Pages per block (programmed strictly in order).
    pub pages_per_block: u32,
    /// Page payload size in bytes (determines channel transfer time).
    pub page_size: u32,
}

impl Geometry {
    /// A small geometry suitable for fast tests: 2 channels × 2 LUNs,
    /// 1 plane, 32 blocks of 16 pages.
    pub fn tiny() -> Self {
        Geometry {
            channels: 2,
            luns_per_channel: 2,
            planes_per_lun: 1,
            blocks_per_plane: 32,
            pages_per_block: 16,
            page_size: 4096,
        }
    }

    /// A "demo SSD" sized like the paper's interactive scenarios: 4 channels
    /// × 4 LUNs, 2 planes, 64 blocks of 32 pages (16 MiB of 4 KiB pages).
    pub fn demo() -> Self {
        Geometry {
            channels: 4,
            luns_per_channel: 4,
            planes_per_lun: 2,
            blocks_per_plane: 64,
            pages_per_block: 32,
            page_size: 4096,
        }
    }

    /// Total number of LUNs.
    pub fn total_luns(&self) -> u32 {
        self.channels * self.luns_per_channel
    }

    /// Blocks per LUN.
    pub fn blocks_per_lun(&self) -> u32 {
        self.planes_per_lun * self.blocks_per_plane
    }

    /// Total physical blocks.
    pub fn total_blocks(&self) -> u64 {
        self.total_luns() as u64 * self.blocks_per_lun() as u64
    }

    /// Total physical pages.
    pub fn total_pages(&self) -> u64 {
        self.total_blocks() * self.pages_per_block as u64
    }

    /// Raw capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_pages() * self.page_size as u64
    }

    /// Validate that every dimension is non-zero.
    pub fn validate(&self) -> Result<(), String> {
        let dims = [
            ("channels", self.channels),
            ("luns_per_channel", self.luns_per_channel),
            ("planes_per_lun", self.planes_per_lun),
            ("blocks_per_plane", self.blocks_per_plane),
            ("pages_per_block", self.pages_per_block),
            ("page_size", self.page_size),
        ];
        for (name, v) in dims {
            if v == 0 {
                return Err(format!("geometry dimension `{name}` must be non-zero"));
            }
        }
        Ok(())
    }

    /// Linear LUN index for `(channel, lun)`.
    pub fn lun_index(&self, channel: u32, lun: u32) -> u32 {
        debug_assert!(channel < self.channels && lun < self.luns_per_channel);
        channel * self.luns_per_channel + lun
    }

    /// Iterate all block addresses, channel-major.
    pub fn blocks(&self) -> impl Iterator<Item = BlockAddr> + '_ {
        let g = *self;
        (0..g.channels).flat_map(move |channel| {
            (0..g.luns_per_channel).flat_map(move |lun| {
                (0..g.planes_per_lun).flat_map(move |plane| {
                    (0..g.blocks_per_plane).map(move |block| BlockAddr {
                        channel,
                        lun,
                        plane,
                        block,
                    })
                })
            })
        })
    }

    /// Linear index of a block in `0..total_blocks()`.
    pub fn block_index(&self, b: BlockAddr) -> u64 {
        debug_assert!(self.contains_block(b));
        ((self.lun_index(b.channel, b.lun) as u64 * self.planes_per_lun as u64
            + b.plane as u64)
            * self.blocks_per_plane as u64)
            + b.block as u64
    }

    /// Inverse of [`Geometry::block_index`].
    pub fn block_at(&self, idx: u64) -> BlockAddr {
        debug_assert!(idx < self.total_blocks());
        let block = (idx % self.blocks_per_plane as u64) as u32;
        let rest = idx / self.blocks_per_plane as u64;
        let plane = (rest % self.planes_per_lun as u64) as u32;
        let lun_linear = (rest / self.planes_per_lun as u64) as u32;
        BlockAddr {
            channel: lun_linear / self.luns_per_channel,
            lun: lun_linear % self.luns_per_channel,
            plane,
            block,
        }
    }

    /// Linear index of a page in `0..total_pages()`.
    pub fn page_index(&self, p: PhysicalAddr) -> u64 {
        self.block_index(p.block_addr()) * self.pages_per_block as u64 + p.page as u64
    }

    /// Inverse of [`Geometry::page_index`].
    pub fn page_at(&self, idx: u64) -> PhysicalAddr {
        debug_assert!(idx < self.total_pages());
        let page = (idx % self.pages_per_block as u64) as u32;
        let b = self.block_at(idx / self.pages_per_block as u64);
        PhysicalAddr {
            channel: b.channel,
            lun: b.lun,
            plane: b.plane,
            block: b.block,
            page,
        }
    }

    fn contains_block(&self, b: BlockAddr) -> bool {
        b.channel < self.channels
            && b.lun < self.luns_per_channel
            && b.plane < self.planes_per_lun
            && b.block < self.blocks_per_plane
    }
}

/// Address of a physical block.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockAddr {
    pub channel: u32,
    pub lun: u32,
    pub plane: u32,
    pub block: u32,
}

impl BlockAddr {
    /// The page at `page` inside this block.
    pub fn page(self, page: u32) -> PhysicalAddr {
        PhysicalAddr {
            channel: self.channel,
            lun: self.lun,
            plane: self.plane,
            block: self.block,
            page,
        }
    }
}

impl fmt::Debug for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "c{}l{}p{}b{}",
            self.channel, self.lun, self.plane, self.block
        )
    }
}

/// Address of a physical page.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PhysicalAddr {
    pub channel: u32,
    pub lun: u32,
    pub plane: u32,
    pub block: u32,
    pub page: u32,
}

impl PhysicalAddr {
    /// The containing block.
    pub fn block_addr(self) -> BlockAddr {
        BlockAddr {
            channel: self.channel,
            lun: self.lun,
            plane: self.plane,
            block: self.block,
        }
    }

    /// True if `other` lives in the same plane (copy-back constraint).
    pub fn same_plane(self, other: PhysicalAddr) -> bool {
        self.channel == other.channel
            && self.lun == other.lun
            && self.plane == other.plane
    }

    /// True if `other` lives in the same LUN.
    pub fn same_lun(self, other: PhysicalAddr) -> bool {
        self.channel == other.channel && self.lun == other.lun
    }
}

impl fmt::Debug for PhysicalAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "c{}l{}p{}b{}pg{}",
            self.channel, self.lun, self.plane, self.block, self.page
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_totals() {
        let g = Geometry::demo();
        assert_eq!(g.total_luns(), 16);
        assert_eq!(g.blocks_per_lun(), 128);
        assert_eq!(g.total_blocks(), 16 * 128);
        assert_eq!(g.total_pages(), 16 * 128 * 32);
        assert_eq!(g.capacity_bytes(), 16 * 128 * 32 * 4096);
    }

    #[test]
    fn validate_rejects_zero_dims() {
        let mut g = Geometry::tiny();
        assert!(g.validate().is_ok());
        g.channels = 0;
        assert!(g.validate().is_err());
    }

    #[test]
    fn block_index_roundtrip() {
        let g = Geometry::demo();
        for idx in 0..g.total_blocks() {
            let b = g.block_at(idx);
            assert_eq!(g.block_index(b), idx);
        }
    }

    #[test]
    fn page_index_roundtrip() {
        let g = Geometry::tiny();
        for idx in 0..g.total_pages() {
            let p = g.page_at(idx);
            assert_eq!(g.page_index(p), idx);
        }
    }

    #[test]
    fn blocks_iterator_covers_all_blocks_once() {
        let g = Geometry::tiny();
        let mut seen: Vec<u64> = g.blocks().map(|b| g.block_index(b)).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..g.total_blocks()).collect::<Vec<_>>());
    }

    #[test]
    fn lun_index_is_channel_major() {
        let g = Geometry::demo();
        assert_eq!(g.lun_index(0, 0), 0);
        assert_eq!(g.lun_index(0, 3), 3);
        assert_eq!(g.lun_index(1, 0), 4);
        assert_eq!(g.lun_index(3, 3), 15);
    }

    #[test]
    fn same_plane_and_lun_predicates() {
        let a = PhysicalAddr {
            channel: 1,
            lun: 2,
            plane: 0,
            block: 3,
            page: 4,
        };
        let mut b = a;
        b.block = 9;
        assert!(a.same_plane(b));
        assert!(a.same_lun(b));
        b.plane = 1;
        assert!(!a.same_plane(b));
        assert!(a.same_lun(b));
        b.lun = 0;
        assert!(!a.same_lun(b));
    }

    #[test]
    fn block_addr_page_builder() {
        let b = BlockAddr {
            channel: 0,
            lun: 1,
            plane: 0,
            block: 7,
        };
        let p = b.page(5);
        assert_eq!(p.page, 5);
        assert_eq!(p.block_addr(), b);
    }
}
