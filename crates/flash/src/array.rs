//! The flash memory array: occupancy, page state, and wear tracking.
//!
//! [`FlashArray`] is the authoritative hardware model. The controller asks
//! whether a command's channel and LUN are free *now*, then issues it; the
//! array advances resource occupancy and page state and reports when the
//! command completes. The array never queues anything — queueing, ordering
//! and policy all live in the controller's scheduler, which is exactly the
//! separation the paper's design space calls for.
//!
//! Hardware invariants enforced here (violations are controller bugs and
//! return [`FlashError`]):
//!
//! * pages within a block are programmed strictly in order,
//! * a block is erased only when it holds no live pages,
//! * reads only target written pages; transfers only follow reads,
//! * copy-back stays within one plane and requires chip support.
//!
//! The array also models the *durable* half of crash consistency: every
//! program carries an [`OobEntry`] in the page's spare area, and
//! [`FlashArray::power_cut`] destroys exactly the operations still in
//! flight at the cut — partially-programmed pages become unreadable
//! (torn), interrupted erases leave their block unusable until erased
//! again, and everything already completed survives.

use eagletree_core::{SimDuration, SimTime};

use crate::address::{BlockAddr, Geometry, PhysicalAddr};
use crate::command::FlashCommand;
use crate::error::FlashError;
use crate::fault::{FaultConfig, FaultEvent, FaultModel};
use crate::oob::OobEntry;
use crate::timing::TimingSpec;

/// Lifecycle of a physical page between erases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageState {
    /// Erased, ready to program.
    Free,
    /// Holds the live copy of some logical page.
    Valid,
    /// Holds a superseded (garbage) copy.
    Invalid,
}

/// Per-block bookkeeping consumed by GC and wear leveling.
#[derive(Debug, Clone, Copy)]
pub struct BlockInfo {
    /// Number of times this block has been erased.
    pub erase_count: u32,
    /// Virtual time of the last erase (zero if never erased).
    pub last_erase: SimTime,
    /// Next page to program (pages below this are written).
    pub write_ptr: u32,
    /// Number of valid pages.
    pub live_pages: u32,
    /// Worn out: the block reached the chip's erase endurance and must be
    /// masked (never programmed or erased again).
    pub bad: bool,
}

impl BlockInfo {
    fn new() -> Self {
        BlockInfo {
            erase_count: 0,
            last_erase: SimTime::ZERO,
            write_ptr: 0,
            live_pages: 0,
            bad: false,
        }
    }
}

/// What a LUN is doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LunStatus {
    /// Free once `busy_until` passes.
    Idle,
    /// Array read finished (or will finish at `busy_until`); the page
    /// register holds data that must be transferred out before the LUN can
    /// accept any other command.
    HoldingData(PhysicalAddr),
}

/// A power-cut report: what the cut destroyed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PowerCutReport {
    /// Pages whose program was still in flight: left partially programmed
    /// and unreadable (torn).
    pub torn_pages: u64,
    /// Blocks whose erase was still in flight: left in an undefined state
    /// and unusable until erased again.
    pub interrupted_erases: u64,
    /// The virtual instant of the cut. Recovery uses it as "now" when it
    /// re-reads OOB areas, so retention age at the remount is charged
    /// against the data — not reset by the crash.
    pub at: SimTime,
}

#[derive(Debug, Clone, Copy)]
struct LunState {
    busy_until: SimTime,
    status: LunStatus,
    busy_accum: SimDuration,
    /// Set while the LUN's current operation is an array-program of this
    /// block: a cached program of the block's next page may pipeline
    /// behind it. Cleared by any other operation.
    programming: Option<BlockAddr>,
}

/// Raw operation counters (all sources combined).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounters {
    pub reads: u64,
    pub transfers: u64,
    pub programs: u64,
    pub erases: u64,
    pub copybacks: u64,
}

/// Result of successfully issuing a command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssueOutcome {
    /// When the command's effect is complete. For `ReadStart` this is when
    /// data is ready in the LUN register (a `TransferOut` must follow).
    pub done_at: SimTime,
    /// When the channel becomes free again.
    pub channel_free_at: SimTime,
    /// When the LUN becomes free again (for `ReadStart`: when data is
    /// ready — the LUN then *holds data* and only accepts `TransferOut`).
    pub lun_free_at: SimTime,
    /// Media fault that accompanied the command, when a [`FaultModel`] is
    /// installed. `done_at`/`channel_free_at`/`lun_free_at` already include
    /// any read-retry latency the fault cost. Always `None` without a
    /// model.
    pub fault: Option<FaultEvent>,
}

/// Sentinel for "no block" in the victim index's intrusive lists.
const NO_BLOCK: u32 = u32::MAX;

/// Intrusive list node of the victim index: one per physical block.
/// `bucket == NO_BLOCK` means the block is not indexed (never programmed
/// since its last erase, or masked bad).
#[derive(Debug, Clone, Copy)]
struct VictimNode {
    prev: u32,
    next: u32,
    bucket: u32,
}

/// Incremental per-LUN GC candidate index: for every LUN, one intrusive
/// doubly-linked list of blocks per live-page count (`0..=pages_per_block`).
///
/// Maintained from the program / invalidate / erase deltas the array
/// already applies. Greedy victim selection pops the lowest non-empty
/// bucket without rescanning the device; Random and CostBenefit still
/// walk a LUN's blocks in address order (their historical candidate
/// numbering) but test membership here in O(1) instead of fetching
/// `BlockInfo` per block. Moves between buckets are O(1).
#[derive(Debug, Clone)]
struct VictimIndex {
    /// Bucket heads, `lun * (ppb + 1) + live`.
    heads: Vec<u32>,
    nodes: Vec<VictimNode>,
    buckets_per_lun: u32,
    blocks_per_lun: u32,
}

impl VictimIndex {
    fn new(g: &Geometry) -> Self {
        let buckets_per_lun = g.pages_per_block + 1;
        VictimIndex {
            heads: vec![NO_BLOCK; (g.total_luns() * buckets_per_lun) as usize],
            nodes: vec![
                VictimNode {
                    prev: NO_BLOCK,
                    next: NO_BLOCK,
                    bucket: NO_BLOCK,
                };
                g.total_blocks() as usize
            ],
            buckets_per_lun,
            blocks_per_lun: g.blocks_per_lun(),
        }
    }

    fn bucket_slot(&self, block: u32, live: u32) -> u32 {
        (block / self.blocks_per_lun) * self.buckets_per_lun + live
    }

    fn contains(&self, block: u32) -> bool {
        self.nodes[block as usize].bucket != NO_BLOCK
    }

    fn link(&mut self, block: u32, live: u32) {
        debug_assert!(!self.contains(block), "double-link of block {block}");
        let bucket = self.bucket_slot(block, live);
        let head = self.heads[bucket as usize];
        self.nodes[block as usize] = VictimNode {
            prev: NO_BLOCK,
            next: head,
            bucket,
        };
        if head != NO_BLOCK {
            self.nodes[head as usize].prev = block;
        }
        self.heads[bucket as usize] = block;
    }

    fn unlink(&mut self, block: u32) {
        let node = self.nodes[block as usize];
        debug_assert!(node.bucket != NO_BLOCK, "unlink of unindexed block {block}");
        if node.prev == NO_BLOCK {
            self.heads[node.bucket as usize] = node.next;
        } else {
            self.nodes[node.prev as usize].next = node.next;
        }
        if node.next != NO_BLOCK {
            self.nodes[node.next as usize].prev = node.prev;
        }
        self.nodes[block as usize] = VictimNode {
            prev: NO_BLOCK,
            next: NO_BLOCK,
            bucket: NO_BLOCK,
        };
    }

    fn move_to(&mut self, block: u32, live: u32) {
        self.unlink(block);
        self.link(block, live);
    }

    fn bucket_head(&self, lun: u32, live: u32) -> u32 {
        self.heads[(lun * self.buckets_per_lun + live) as usize]
    }
}

/// The simulated flash memory array.
///
/// Cloneable so experiments can remount one captured post-crash medium
/// under several recovery modes.
#[derive(Clone)]
pub struct FlashArray {
    geometry: Geometry,
    timing: TimingSpec,
    channels: Vec<SimTime>,
    channel_busy_accum: Vec<SimDuration>,
    luns: Vec<LunState>,
    page_state: Vec<PageState>,
    blocks: Vec<BlockInfo>,
    victim_index: VictimIndex,
    counters: OpCounters,
    /// Per-page OOB spare-area records (persisted with each program; the
    /// durable side of the mapping). `None` for unwritten or torn pages.
    oob: Vec<Option<OobEntry>>,
    /// Pages left partially programmed by a power cut: unreadable until
    /// their block is erased.
    torn: Vec<bool>,
    /// Blocks whose erase a power cut interrupted: unusable (no programs)
    /// until erased again.
    needs_erase: Vec<bool>,
    /// Programs issued but not yet complete, for power-cut injection.
    /// Pruned lazily at each issue.
    inflight_programs: Vec<(PhysicalAddr, SimTime)>,
    /// Erases issued but not yet complete.
    inflight_erases: Vec<(BlockAddr, SimTime)>,
    /// Media-fault injector. `None` (the default) costs nothing: no RNG
    /// draws, no timing changes, no new state — fingerprints are
    /// byte-identical to an array built before the fault model existed.
    fault: Option<FaultModel>,
}

impl FlashArray {
    /// A fresh (fully-erased) array.
    pub fn new(geometry: Geometry, timing: TimingSpec) -> Self {
        geometry.validate().expect("invalid geometry");
        timing.validate().expect("invalid timing spec");
        FlashArray {
            geometry,
            timing,
            channels: vec![SimTime::ZERO; geometry.channels as usize],
            channel_busy_accum: vec![SimDuration::ZERO; geometry.channels as usize],
            luns: vec![
                LunState {
                    busy_until: SimTime::ZERO,
                    status: LunStatus::Idle,
                    busy_accum: SimDuration::ZERO,
                    programming: None,
                };
                geometry.total_luns() as usize
            ],
            page_state: vec![PageState::Free; geometry.total_pages() as usize],
            blocks: vec![BlockInfo::new(); geometry.total_blocks() as usize],
            victim_index: VictimIndex::new(&geometry),
            counters: OpCounters::default(),
            oob: vec![None; geometry.total_pages() as usize],
            torn: vec![false; geometry.total_pages() as usize],
            needs_erase: vec![false; geometry.total_blocks() as usize],
            inflight_programs: Vec::new(),
            inflight_erases: Vec::new(),
            fault: None,
        }
    }

    /// Install a media-fault model (replacing any prior one). Sized from
    /// the array's geometry and cell type; all sampling is seeded by
    /// `cfg.seed`, so a fixed seed faults identically across runs.
    pub fn install_fault_model(&mut self, cfg: FaultConfig) {
        self.fault = Some(FaultModel::new(cfg, &self.geometry, self.timing.cell));
    }

    /// The installed fault model, if any (scrub policy reads its
    /// read-disturb / retention state; stats read its counters).
    pub fn fault(&self) -> Option<&FaultModel> {
        self.fault.as_ref()
    }

    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    pub fn timing(&self) -> &TimingSpec {
        &self.timing
    }

    pub fn counters(&self) -> OpCounters {
        self.counters
    }

    fn lun_slot(&self, channel: u32, lun: u32) -> usize {
        self.geometry.lun_index(channel, lun) as usize
    }

    /// When the channel is next free.
    pub fn channel_free_at(&self, channel: u32) -> SimTime {
        self.channels[channel as usize]
    }

    /// When the LUN is next free (ignores a held data register).
    pub fn lun_free_at(&self, channel: u32, lun: u32) -> SimTime {
        self.luns[self.lun_slot(channel, lun)].busy_until
    }

    /// The address whose data sits in the LUN register, if any.
    pub fn lun_holding(&self, channel: u32, lun: u32) -> Option<PhysicalAddr> {
        match self.luns[self.lun_slot(channel, lun)].status {
            LunStatus::HoldingData(a) => Some(a),
            LunStatus::Idle => None,
        }
    }

    /// Total busy time accumulated on a channel (utilization numerator).
    pub fn channel_busy_time(&self, channel: u32) -> SimDuration {
        self.channel_busy_accum[channel as usize]
    }

    /// Total busy time accumulated on a LUN.
    pub fn lun_busy_time(&self, channel: u32, lun: u32) -> SimDuration {
        self.luns[self.lun_slot(channel, lun)].busy_accum
    }

    /// Whether `cmd`'s channel and LUN are both free at `now`.
    ///
    /// This is the resource test only; state validity (sequential program,
    /// live-erase, …) is checked at issue time.
    pub fn can_issue(&self, cmd: &FlashCommand, now: SimTime) -> bool {
        let ch = cmd.channel() as usize;
        if ch >= self.channels.len() || self.channels[ch] > now {
            return false;
        }
        let slot = self.lun_slot(cmd.channel(), cmd.lun());
        let lun = &self.luns[slot];
        if lun.busy_until > now {
            // Only a cached program may join a busy LUN.
            return match cmd {
                FlashCommand::Program(a) => self.can_pipeline(*a, now),
                _ => false,
            };
        }
        match (lun.status, cmd) {
            // A LUN holding data accepts only the matching transfer.
            (LunStatus::HoldingData(held), FlashCommand::TransferOut(a)) => held == *a,
            (LunStatus::HoldingData(_), _) => false,
            (LunStatus::Idle, FlashCommand::TransferOut(_)) => false,
            (LunStatus::Idle, _) => true,
        }
    }

    /// Whether a program of `addr` may *pipeline* behind the LUN's current
    /// array-program (cached programming): chip support, channel free, and
    /// the LUN busy programming the same block.
    pub fn can_pipeline(&self, addr: PhysicalAddr, now: SimTime) -> bool {
        if !self.timing.cached_program {
            return false;
        }
        if self.channels[addr.channel as usize] > now {
            return false;
        }
        let lun = &self.luns[self.lun_slot(addr.channel, addr.lun)];
        lun.busy_until > now
            && lun.status == LunStatus::Idle
            && lun.programming == Some(addr.block_addr())
    }

    /// The earliest time at or after `now` when `cmd`'s resources free up.
    ///
    /// A scheduler can use this to decide how long a candidate op would
    /// have to wait. Returns `None` for a LUN stuck holding another page's
    /// data (only the matching transfer can release it).
    pub fn earliest_issue(&self, cmd: &FlashCommand, now: SimTime) -> Option<SimTime> {
        let slot = self.lun_slot(cmd.channel(), cmd.lun());
        let lun = &self.luns[slot];
        match (lun.status, cmd) {
            (LunStatus::HoldingData(held), FlashCommand::TransferOut(a)) if held == *a => {}
            (LunStatus::Idle, FlashCommand::TransferOut(_)) => return None,
            (LunStatus::HoldingData(_), _) => return None,
            (LunStatus::Idle, _) => {}
        }
        Some(
            self.channels[cmd.channel() as usize]
                .max(lun.busy_until)
                .max(now),
        )
    }

    /// Issue a command whose resources are free at `now`.
    pub fn issue(
        &mut self,
        cmd: FlashCommand,
        now: SimTime,
    ) -> Result<IssueOutcome, FlashError> {
        self.check_range(&cmd)?;
        // Completed operations can no longer be destroyed by a power cut.
        self.inflight_programs.retain(|&(_, done)| done > now);
        self.inflight_erases.retain(|&(_, done)| done > now);
        let ch = cmd.channel() as usize;
        if self.channels[ch] > now {
            return Err(FlashError::ChannelBusy {
                channel: cmd.channel(),
            });
        }
        let slot = self.lun_slot(cmd.channel(), cmd.lun());
        if self.luns[slot].busy_until > now {
            let pipelined = matches!(cmd, FlashCommand::Program(a) if self.can_pipeline(a, now));
            if !pipelined {
                return Err(FlashError::LunBusy {
                    channel: cmd.channel(),
                    lun: cmd.lun(),
                });
            }
        }
        match (self.luns[slot].status, &cmd) {
            (LunStatus::HoldingData(held), FlashCommand::TransferOut(a)) if held == *a => {}
            (LunStatus::HoldingData(_), _) => {
                return Err(FlashError::LunBusy {
                    channel: cmd.channel(),
                    lun: cmd.lun(),
                })
            }
            (LunStatus::Idle, FlashCommand::TransferOut(_)) => {
                return Err(FlashError::NoPendingData {
                    channel: cmd.channel(),
                    lun: cmd.lun(),
                })
            }
            (LunStatus::Idle, _) => {}
        }

        let t = self.timing;
        match cmd {
            FlashCommand::ReadStart(addr) => {
                if self.page_state(addr) == PageState::Free {
                    return Err(FlashError::ReadUnwritten(addr));
                }
                if self.is_torn(addr) {
                    return Err(FlashError::TornPage(addr));
                }
                // ECC path: each retry tier re-issues the array read, so
                // retries surface as real scheduler-visible latency.
                let mut fault = None;
                let mut attempts = 1u64;
                if let Some(fm) = self.fault.as_mut() {
                    let pi = self.geometry.page_index(addr);
                    let bi = self.geometry.block_index(addr.block_addr());
                    let pe = self.blocks[bi as usize].erase_count;
                    let out = fm.sample_read(pi, bi, pe, now);
                    attempts += out.retries as u64;
                    fault = Some(FaultEvent::Read(out));
                }
                let channel_free = now + t.read_channel_time() * attempts;
                let data_ready = now + t.read_lun_time() * attempts;
                self.occupy(ch, slot, channel_free, data_ready);
                self.luns[slot].programming = None;
                self.luns[slot].status = LunStatus::HoldingData(addr);
                self.counters.reads += 1;
                Ok(IssueOutcome {
                    done_at: data_ready,
                    channel_free_at: channel_free,
                    lun_free_at: data_ready,
                    fault,
                })
            }
            FlashCommand::TransferOut(_) => {
                let done = now + t.t_xfer;
                self.occupy(ch, slot, done, done);
                self.luns[slot].programming = None;
                self.luns[slot].status = LunStatus::Idle;
                self.counters.transfers += 1;
                Ok(IssueOutcome {
                    done_at: done,
                    channel_free_at: done,
                    lun_free_at: done,
                    fault: None,
                })
            }
            FlashCommand::Program(addr) => {
                self.check_programmable(addr)?;
                // Program-status failure is advisory: the page is burned
                // either way (the write pointer advances and the cells
                // took the pulse), so the array applies the normal state
                // transition and the controller decides remap-vs-absorb.
                let fault = self.sample_program_fault(addr, now);
                let channel_free = now + t.program_channel_time();
                // Cached programming: the array phase starts once both the
                // data transfer finishes and the previous program (if any)
                // completes — transfers hide behind array time.
                let array_start = self.luns[slot].busy_until.max(channel_free);
                let done = array_start + t.t_prog;
                self.occupy(ch, slot, channel_free, done);
                self.luns[slot].programming = Some(addr.block_addr());
                self.mark_programmed(addr);
                self.inflight_programs.push((addr, done));
                self.counters.programs += 1;
                Ok(IssueOutcome {
                    done_at: done,
                    channel_free_at: channel_free,
                    lun_free_at: done,
                    fault,
                })
            }
            FlashCommand::Erase(block) => {
                let info = self.block_info(block);
                if info.live_pages > 0 {
                    return Err(FlashError::EraseLiveBlock {
                        block,
                        live: info.live_pages,
                    });
                }
                let channel_free = now + t.erase_channel_time();
                let done = now + t.erase_lun_time();
                self.occupy(ch, slot, channel_free, done);
                self.luns[slot].programming = None;
                // An erase failure leaves the block un-reset (the full
                // erase pulse was still spent discovering that). A streak
                // of failures retires the block as grown bad.
                let fault = self.sample_erase_fault(block);
                if !matches!(fault, Some(FaultEvent::EraseFailed { .. })) {
                    self.reset_block(block, done);
                }
                self.inflight_erases.push((block, done));
                self.counters.erases += 1;
                Ok(IssueOutcome {
                    done_at: done,
                    channel_free_at: channel_free,
                    lun_free_at: done,
                    fault,
                })
            }
            FlashCommand::CopyBack { from, to } => {
                if !t.copyback {
                    return Err(FlashError::InvalidCopyBack(
                        "chip does not support copy-back".into(),
                    ));
                }
                if !from.same_plane(to) {
                    return Err(FlashError::InvalidCopyBack(format!(
                        "{from:?} and {to:?} are in different planes"
                    )));
                }
                if self.page_state(from) == PageState::Free {
                    return Err(FlashError::ReadUnwritten(from));
                }
                if self.is_torn(from) {
                    return Err(FlashError::TornPage(from));
                }
                self.check_programmable(to)?;
                // Copy-back reads through the same ECC path (an on-die
                // move cannot scrub what ECC cannot correct), then
                // programs: an uncorrectable source outranks a program
                // failure — the destination holds garbage either way.
                let mut fault = None;
                let mut attempts = 1u64;
                if self.fault.is_some() {
                    let pi = self.geometry.page_index(from);
                    let bi = self.geometry.block_index(from.block_addr());
                    let pe = self.blocks[bi as usize].erase_count;
                    let out = self
                        .fault
                        .as_mut()
                        .expect("checked above")
                        .sample_read(pi, bi, pe, now);
                    attempts += out.retries as u64;
                    let prog = self.sample_program_fault(to, now);
                    fault = if out.uncorrectable || prog.is_none() {
                        Some(FaultEvent::Read(out))
                    } else {
                        prog
                    };
                }
                let channel_free = now + t.copyback_channel_time();
                let done = now + t.copyback_lun_time() + t.read_lun_time() * (attempts - 1);
                self.occupy(ch, slot, channel_free, done);
                self.luns[slot].programming = None;
                self.mark_programmed(to);
                self.inflight_programs.push((to, done));
                self.counters.copybacks += 1;
                Ok(IssueOutcome {
                    done_at: done,
                    channel_free_at: channel_free,
                    lun_free_at: done,
                    fault,
                })
            }
        }
    }

    /// Sample a program-status failure for `addr` (no-op without a fault
    /// model) and record the page's program time for retention aging.
    fn sample_program_fault(&mut self, addr: PhysicalAddr, now: SimTime) -> Option<FaultEvent> {
        let fm = self.fault.as_mut()?;
        let pi = self.geometry.page_index(addr);
        let bi = self.geometry.block_index(addr.block_addr());
        let info = &self.blocks[bi as usize];
        let failed = fm.sample_program(pi, bi, info.erase_count);
        fm.on_program(pi, bi, now, info.write_ptr == 0);
        failed.then_some(FaultEvent::ProgramFailed)
    }

    /// Sample an erase failure for `block` (no-op without a fault model).
    /// A terminal failure (streak exhausted) masks the block bad here, so
    /// the controller's existing bad-block retirement paths apply
    /// unchanged.
    fn sample_erase_fault(&mut self, block: BlockAddr) -> Option<FaultEvent> {
        let fm = self.fault.as_mut()?;
        let bi = self.geometry.block_index(block);
        let retired = fm.sample_erase(bi, self.blocks[bi as usize].erase_count)?;
        if retired {
            self.blocks[bi as usize].bad = true;
            if self.victim_index.contains(bi as u32) {
                self.victim_index.unlink(bi as u32);
            }
        }
        Some(FaultEvent::EraseFailed { retired })
    }

    fn occupy(&mut self, ch: usize, lun_slot: usize, channel_until: SimTime, lun_until: SimTime) {
        let now_ch = self.channels[ch];
        self.channel_busy_accum[ch] += channel_until.saturating_since(now_ch.max(SimTime::ZERO));
        self.channels[ch] = channel_until;
        let lun = &mut self.luns[lun_slot];
        lun.busy_accum += lun_until.saturating_since(lun.busy_until);
        lun.busy_until = lun_until;
    }

    fn check_range(&self, cmd: &FlashCommand) -> Result<(), FlashError> {
        let g = &self.geometry;
        let (b, page) = match cmd {
            FlashCommand::ReadStart(a)
            | FlashCommand::TransferOut(a)
            | FlashCommand::Program(a) => (a.block_addr(), Some(a.page)),
            FlashCommand::Erase(b) => (*b, None),
            FlashCommand::CopyBack { from, to } => {
                self.check_range(&FlashCommand::ReadStart(*from))?;
                (to.block_addr(), Some(to.page))
            }
        };
        if b.channel >= g.channels
            || b.lun >= g.luns_per_channel
            || b.plane >= g.planes_per_lun
            || b.block >= g.blocks_per_plane
            || page.is_some_and(|p| p >= g.pages_per_block)
        {
            return Err(FlashError::OutOfRange(format!("{cmd:?}")));
        }
        Ok(())
    }

    fn check_programmable(&self, addr: PhysicalAddr) -> Result<(), FlashError> {
        let info = self.block_info(addr.block_addr());
        if info.bad {
            return Err(FlashError::BadBlock(addr.block_addr()));
        }
        if self.needs_erase[self.geometry.block_index(addr.block_addr()) as usize] {
            return Err(FlashError::NeedsErase(addr.block_addr()));
        }
        if info.write_ptr != addr.page {
            return Err(FlashError::NonSequentialProgram {
                addr,
                expected_page: info.write_ptr,
            });
        }
        debug_assert_eq!(self.page_state(addr), PageState::Free);
        Ok(())
    }

    fn mark_programmed(&mut self, addr: PhysicalAddr) {
        let pi = self.geometry.page_index(addr) as usize;
        self.page_state[pi] = PageState::Valid;
        let bi = self.geometry.block_index(addr.block_addr()) as usize;
        self.blocks[bi].write_ptr += 1;
        self.blocks[bi].live_pages += 1;
        let live = self.blocks[bi].live_pages;
        if self.blocks[bi].write_ptr == 1 {
            // First program since erase: the block enters the index.
            self.victim_index.link(bi as u32, live);
        } else {
            self.victim_index.move_to(bi as u32, live);
        }
    }

    fn reset_block(&mut self, block: BlockAddr, when: SimTime) {
        let bi = self.geometry.block_index(block) as usize;
        // Erased (or never-programmed) blocks hold nothing reclaimable.
        if self.victim_index.contains(bi as u32) {
            self.victim_index.unlink(bi as u32);
        }
        // A pending grown-bad mark (program-status failure) converts to a
        // hard mask at the block's next erase; the erase also resets the
        // model's read-disturb and retention state.
        let grown_bad = match self.fault.as_mut() {
            Some(fm) => {
                let g = fm.is_grown_bad(bi as u64);
                fm.on_erase(bi as u64);
                g
            }
            None => false,
        };
        let endurance = self.timing.endurance;
        let info = &mut self.blocks[bi];
        info.erase_count += 1;
        info.last_erase = when;
        info.write_ptr = 0;
        info.live_pages = 0;
        // Endurance exhausted: the block wears out with this erase. The
        // erase itself still succeeds (the controller learns from the
        // status afterwards), but the block must be masked from further
        // use — the "mask bad blocks" duty the paper assigns to WL.
        if info.erase_count >= endurance || grown_bad {
            info.bad = true;
        }
        self.needs_erase[bi] = false;
        let base = bi * self.geometry.pages_per_block as usize;
        let end = base + self.geometry.pages_per_block as usize;
        for s in &mut self.page_state[base..end] {
            *s = PageState::Free;
        }
        for o in &mut self.oob[base..end] {
            *o = None;
        }
        for t in &mut self.torn[base..end] {
            *t = false;
        }
    }

    // ----- OOB metadata & power-failure injection -------------------------

    /// Record the OOB spare-area entry of a page the controller just
    /// programmed. The controller calls this alongside every `Program` /
    /// `CopyBack` issue; the entry persists until the block is erased.
    pub fn set_oob(&mut self, addr: PhysicalAddr, entry: OobEntry) {
        let pi = self.geometry.page_index(addr) as usize;
        debug_assert_ne!(
            self.page_state[pi],
            PageState::Free,
            "OOB write to unprogrammed page {addr:?}"
        );
        self.oob[pi] = Some(entry);
    }

    /// The OOB entry of a page: `None` for unwritten or torn pages (a torn
    /// page's spare area is as unreadable as its payload).
    pub fn oob(&self, addr: PhysicalAddr) -> Option<OobEntry> {
        let pi = self.geometry.page_index(addr) as usize;
        if self.torn[pi] {
            return None;
        }
        self.oob[pi]
    }

    /// The OOB entry of a page through the media-fault model: recovery's
    /// view of the spare area. `Err(Uncorrectable)` when the installed
    /// fault model deems the spare area unreadable at `now` (recovery must
    /// skip-and-reconstruct); otherwise identical to [`FlashArray::oob`].
    /// Pure and deterministic — probing the same page twice agrees.
    pub fn oob_checked(
        &self,
        addr: PhysicalAddr,
        now: SimTime,
    ) -> Result<Option<OobEntry>, FlashError> {
        let entry = self.oob(addr);
        if entry.is_some() {
            if let Some(fm) = &self.fault {
                let pi = self.geometry.page_index(addr);
                let bi = self.geometry.block_index(addr.block_addr());
                let pe = self.blocks[bi as usize].erase_count;
                if fm.oob_uncorrectable(pi, bi, pe, now) {
                    return Err(FlashError::Uncorrectable(addr));
                }
            }
        }
        Ok(entry)
    }

    /// Whether a page was left partially programmed by a power cut.
    pub fn is_torn(&self, addr: PhysicalAddr) -> bool {
        self.torn[self.geometry.page_index(addr) as usize]
    }

    /// Whether a power cut interrupted this block's erase: it must be
    /// erased again before any page of it can be programmed.
    pub fn block_needs_erase(&self, block: BlockAddr) -> bool {
        self.needs_erase[self.geometry.block_index(block) as usize]
    }

    /// Cut power at virtual instant `at`: every program still in flight
    /// leaves its page partially programmed (torn — unreadable payload and
    /// OOB), every erase still in flight leaves its block in an undefined
    /// state (unusable until erased again), and all transient controller
    /// ↔ array state (busy windows, held page registers, program
    /// pipelines) is lost. Completed operations are durable.
    ///
    /// The array afterwards models the dead medium a remount starts from;
    /// wear state (erase counts, bad-block masks) survives.
    pub fn power_cut(&mut self, at: SimTime) -> PowerCutReport {
        let mut report = PowerCutReport {
            at,
            ..PowerCutReport::default()
        };
        let inflight: Vec<(PhysicalAddr, SimTime)> = std::mem::take(&mut self.inflight_programs);
        for (addr, done) in inflight {
            if done <= at {
                continue;
            }
            let pi = self.geometry.page_index(addr) as usize;
            self.torn[pi] = true;
            self.oob[pi] = None;
            if self.page_state[pi] == PageState::Valid {
                // The partial program holds nothing readable: it is garbage
                // from birth (live-page accounting and the victim index
                // follow, exactly as for an invalidation).
                self.page_state[pi] = PageState::Invalid;
                let bi = self.geometry.block_index(addr.block_addr()) as usize;
                debug_assert!(self.blocks[bi].live_pages > 0);
                self.blocks[bi].live_pages -= 1;
                self.victim_index
                    .move_to(bi as u32, self.blocks[bi].live_pages);
            }
            report.torn_pages += 1;
        }
        let inflight: Vec<(BlockAddr, SimTime)> = std::mem::take(&mut self.inflight_erases);
        for (block, done) in inflight {
            if done <= at {
                continue;
            }
            self.needs_erase[self.geometry.block_index(block) as usize] = true;
            report.interrupted_erases += 1;
        }
        // Power off: every channel and LUN is idle, registers are empty.
        for ch in &mut self.channels {
            *ch = SimTime::ZERO;
        }
        for lun in &mut self.luns {
            lun.busy_until = SimTime::ZERO;
            lun.status = LunStatus::Idle;
            lun.programming = None;
        }
        report
    }

    /// Mount-time erase, outside the scheduler: reset `block` immediately.
    /// Used by recovery for interrupted-erase blocks and blocks holding no
    /// live data; the erase's virtual-time cost is accounted by the
    /// recovery report, not by array occupancy. Requires a block with no
    /// valid pages.
    pub fn recovery_erase(&mut self, block: BlockAddr) {
        let info = self.block_info(block);
        assert_eq!(info.live_pages, 0, "recovery erase of a live block {block:?}");
        self.reset_block(block, SimTime::ZERO);
        self.counters.erases += 1;
    }

    /// Mount-time reconciliation: recovery determined that this (written,
    /// non-torn) page holds the live copy of its logical content, but the
    /// pre-crash controller had marked it superseded. Validity is
    /// controller RAM state, not medium state — the rebuilt controller's
    /// view wins. Live-page accounting and the victim index follow.
    pub fn recovery_set_valid(&mut self, addr: PhysicalAddr) {
        let pi = self.geometry.page_index(addr) as usize;
        assert!(!self.torn[pi], "torn page {addr:?} cannot be revalidated");
        assert_ne!(
            self.page_state[pi],
            PageState::Free,
            "unwritten page {addr:?} cannot be revalidated"
        );
        if self.page_state[pi] == PageState::Valid {
            return;
        }
        self.page_state[pi] = PageState::Valid;
        let bi = self.geometry.block_index(addr.block_addr()) as usize;
        self.blocks[bi].live_pages += 1;
        self.victim_index
            .move_to(bi as u32, self.blocks[bi].live_pages);
    }

    /// State of one physical page.
    pub fn page_state(&self, addr: PhysicalAddr) -> PageState {
        self.page_state[self.geometry.page_index(addr) as usize]
    }

    /// Bookkeeping for one block.
    pub fn block_info(&self, block: BlockAddr) -> BlockInfo {
        self.blocks[self.geometry.block_index(block) as usize]
    }

    /// Mark a valid page invalid (the FTL superseded its contents).
    ///
    /// Panics if the page was not valid: double-invalidation means the FTL
    /// lost track of the mapping.
    pub fn invalidate(&mut self, addr: PhysicalAddr) {
        let pi = self.geometry.page_index(addr) as usize;
        assert_eq!(
            self.page_state[pi],
            PageState::Valid,
            "invalidate of non-valid page {addr:?}"
        );
        self.page_state[pi] = PageState::Invalid;
        let bi = self.geometry.block_index(addr.block_addr()) as usize;
        debug_assert!(self.blocks[bi].live_pages > 0);
        self.blocks[bi].live_pages -= 1;
        self.victim_index
            .move_to(bi as u32, self.blocks[bi].live_pages);
    }

    /// Blocks on linear LUN `lun` currently holding exactly `live` valid
    /// pages, drawn from the incremental victim index. Only blocks that
    /// have been programmed since their last erase (and are not masked
    /// bad) are indexed. Iteration order within a bucket is unspecified
    /// but deterministic.
    pub fn blocks_with_live(&self, lun: u32, live: u32) -> impl Iterator<Item = BlockAddr> + '_ {
        debug_assert!(lun < self.geometry.total_luns());
        debug_assert!(live <= self.geometry.pages_per_block);
        let mut cur = self.victim_index.bucket_head(lun, live);
        std::iter::from_fn(move || {
            if cur == NO_BLOCK {
                return None;
            }
            let b = self.geometry.block_at(cur as u64);
            cur = self.victim_index.nodes[cur as usize].next;
            Some(b)
        })
    }

    /// Whether reclaiming `block` could gain space right now: programmed
    /// since its last erase, not masked bad, and not fully valid. O(1)
    /// via the victim index plus one live-page check.
    pub fn is_reclaimable(&self, block: BlockAddr) -> bool {
        let bi = self.geometry.block_index(block);
        self.victim_index.contains(bi as u32)
            && self.blocks[bi as usize].live_pages < self.geometry.pages_per_block
    }

    /// Valid pages in a block (the pages GC must migrate).
    pub fn valid_pages_in(&self, block: BlockAddr) -> Vec<PhysicalAddr> {
        let ppb = self.geometry.pages_per_block;
        (0..ppb)
            .map(|p| block.page(p))
            .filter(|&a| self.page_state(a) == PageState::Valid)
            .collect()
    }

    /// Erase-count distribution over all blocks (wear histogram input).
    pub fn erase_counts(&self) -> Vec<u32> {
        self.blocks.iter().map(|b| b.erase_count).collect()
    }

    /// Number of blocks masked as bad (endurance exhausted).
    pub fn bad_blocks(&self) -> u64 {
        self.blocks.iter().filter(|b| b.bad).count() as u64
    }

    /// Sum of all erase counts.
    pub fn total_erases(&self) -> u64 {
        self.blocks.iter().map(|b| b.erase_count as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eagletree_core::SimDuration;

    fn array() -> FlashArray {
        FlashArray::new(Geometry::tiny(), TimingSpec::slc())
    }

    fn addr(block: u32, page: u32) -> PhysicalAddr {
        PhysicalAddr {
            channel: 0,
            lun: 0,
            plane: 0,
            block,
            page,
        }
    }

    #[test]
    fn fresh_array_is_idle_and_free() {
        let a = array();
        assert_eq!(a.channel_free_at(0), SimTime::ZERO);
        assert_eq!(a.lun_free_at(0, 0), SimTime::ZERO);
        assert_eq!(a.page_state(addr(0, 0)), PageState::Free);
        assert_eq!(a.counters(), OpCounters::default());
    }

    #[test]
    fn program_then_read_then_transfer() {
        let mut a = array();
        let t = *a.timing();
        let w = a.issue(FlashCommand::Program(addr(0, 0)), SimTime::ZERO).unwrap();
        assert_eq!(w.lun_free_at, SimTime::ZERO + t.program_lun_time());
        assert_eq!(w.channel_free_at, SimTime::ZERO + t.program_channel_time());
        assert_eq!(a.page_state(addr(0, 0)), PageState::Valid);

        let now = w.lun_free_at;
        let r = a.issue(FlashCommand::ReadStart(addr(0, 0)), now).unwrap();
        assert_eq!(r.done_at, now + t.read_lun_time());
        // LUN now holds data: only the matching transfer may issue.
        assert_eq!(a.lun_holding(0, 0), Some(addr(0, 0)));
        assert!(!a.can_issue(&FlashCommand::Program(addr(0, 1)), r.done_at));
        assert!(a.can_issue(&FlashCommand::TransferOut(addr(0, 0)), r.done_at));

        let x = a.issue(FlashCommand::TransferOut(addr(0, 0)), r.done_at).unwrap();
        assert_eq!(x.done_at, r.done_at + t.t_xfer);
        assert_eq!(a.lun_holding(0, 0), None);
        assert_eq!(a.counters().reads, 1);
        assert_eq!(a.counters().transfers, 1);
        assert_eq!(a.counters().programs, 1);
    }

    #[test]
    fn programs_must_be_sequential_within_block() {
        let mut a = array();
        let err = a.issue(FlashCommand::Program(addr(0, 1)), SimTime::ZERO);
        assert!(matches!(
            err,
            Err(FlashError::NonSequentialProgram {
                expected_page: 0,
                ..
            })
        ));
    }

    #[test]
    fn channel_frees_before_lun_on_program() {
        let mut a = array();
        let out = a.issue(FlashCommand::Program(addr(0, 0)), SimTime::ZERO).unwrap();
        assert!(out.channel_free_at < out.lun_free_at);
        // Another LUN on the same channel can start once the channel frees.
        let other = PhysicalAddr {
            channel: 0,
            lun: 1,
            plane: 0,
            block: 0,
            page: 0,
        };
        assert!(!a.can_issue(&FlashCommand::Program(other), SimTime::ZERO));
        assert!(a.can_issue(&FlashCommand::Program(other), out.channel_free_at));
    }

    #[test]
    fn interleaving_two_luns_beats_serial() {
        // Two programs on different LUNs of one channel overlap their
        // array-program phases; two on the same LUN cannot.
        let mut a = array();
        let t = *a.timing();
        let p0 = addr(0, 0);
        let p1 = PhysicalAddr {
            channel: 0,
            lun: 1,
            plane: 0,
            block: 0,
            page: 0,
        };
        let o0 = a.issue(FlashCommand::Program(p0), SimTime::ZERO).unwrap();
        let o1 = a.issue(FlashCommand::Program(p1), o0.channel_free_at).unwrap();
        let interleaved_makespan = o1.done_at;
        let serial_makespan = SimTime::ZERO + t.program_lun_time() * 2;
        assert!(
            interleaved_makespan < serial_makespan,
            "interleaving gained nothing: {interleaved_makespan:?} vs {serial_makespan:?}"
        );
    }

    #[test]
    fn erase_requires_dead_block_and_resets_it() {
        let mut a = array();
        let mut now = SimTime::ZERO;
        for p in 0..4 {
            let out = a.issue(FlashCommand::Program(addr(0, p)), now).unwrap();
            now = out.lun_free_at;
        }
        let block = addr(0, 0).block_addr();
        assert_eq!(a.block_info(block).live_pages, 4);
        assert!(matches!(
            a.issue(FlashCommand::Erase(block), now),
            Err(FlashError::EraseLiveBlock { live: 4, .. })
        ));
        for p in 0..4 {
            a.invalidate(addr(0, p));
        }
        let out = a.issue(FlashCommand::Erase(block), now).unwrap();
        let info = a.block_info(block);
        assert_eq!(info.erase_count, 1);
        assert_eq!(info.write_ptr, 0);
        assert_eq!(info.live_pages, 0);
        assert_eq!(info.last_erase, out.done_at);
        assert_eq!(a.page_state(addr(0, 0)), PageState::Free);
        // Programming restarts from page 0.
        a.issue(FlashCommand::Program(addr(0, 0)), out.done_at).unwrap();
    }

    #[test]
    fn read_of_unwritten_page_fails() {
        let mut a = array();
        assert!(matches!(
            a.issue(FlashCommand::ReadStart(addr(0, 0)), SimTime::ZERO),
            Err(FlashError::ReadUnwritten(_))
        ));
    }

    #[test]
    fn transfer_without_read_fails() {
        let mut a = array();
        assert!(matches!(
            a.issue(FlashCommand::TransferOut(addr(0, 0)), SimTime::ZERO),
            Err(FlashError::NoPendingData { .. })
        ));
    }

    #[test]
    fn busy_resources_reject_and_can_issue_agrees() {
        let mut a = array();
        let out = a.issue(FlashCommand::Program(addr(0, 0)), SimTime::ZERO).unwrap();
        // A read cannot join the busy LUN at any point before it frees.
        let read = FlashCommand::ReadStart(addr(0, 0));
        assert!(!a.can_issue(&read, SimTime::ZERO));
        assert!(matches!(
            a.issue(read, SimTime::ZERO),
            Err(FlashError::ChannelBusy { .. })
        ));
        assert!(matches!(
            a.issue(read, out.channel_free_at),
            Err(FlashError::LunBusy { .. })
        ));
        assert!(a.can_issue(&read, out.lun_free_at));
        a.issue(read, out.lun_free_at).unwrap();
    }

    #[test]
    fn cached_program_pipelines_within_block() {
        let mut a = array();
        let t = *a.timing();
        let o0 = a.issue(FlashCommand::Program(addr(0, 0)), SimTime::ZERO).unwrap();
        let next = FlashCommand::Program(addr(0, 1));
        // Same block, channel free: pipelined issue allowed mid-program.
        assert!(a.can_issue(&next, o0.channel_free_at));
        let o1 = a.issue(next, o0.channel_free_at).unwrap();
        // The second program's array phase starts when the first ends:
        // back-to-back completions are t_prog apart, not a full cycle.
        assert_eq!(o1.done_at, o0.done_at + t.t_prog);
        assert!(o1.done_at < o0.done_at + t.program_lun_time());
        // A different block may not pipeline.
        let other = FlashCommand::Program(addr(1, 0));
        assert!(!a.can_issue(&other, o1.channel_free_at));
        assert!(matches!(
            a.issue(other, o1.channel_free_at),
            Err(FlashError::LunBusy { .. })
        ));
    }

    #[test]
    fn pipelining_disabled_without_chip_support() {
        let mut spec = TimingSpec::slc();
        spec.cached_program = false;
        let mut a = FlashArray::new(Geometry::tiny(), spec);
        let o0 = a.issue(FlashCommand::Program(addr(0, 0)), SimTime::ZERO).unwrap();
        let next = FlashCommand::Program(addr(0, 1));
        assert!(!a.can_issue(&next, o0.channel_free_at));
        assert!(a.can_issue(&next, o0.lun_free_at));
    }

    #[test]
    fn reads_break_the_program_pipeline() {
        let mut a = array();
        let o0 = a.issue(FlashCommand::Program(addr(0, 0)), SimTime::ZERO).unwrap();
        let r = a
            .issue(FlashCommand::ReadStart(addr(0, 0)), o0.lun_free_at)
            .unwrap();
        let x = a
            .issue(FlashCommand::TransferOut(addr(0, 0)), r.done_at)
            .unwrap();
        // After the read, a new program cannot pipeline (no program in
        // flight) — it needs the LUN idle, which it is.
        let next = FlashCommand::Program(addr(0, 1));
        assert!(!a.can_pipeline(addr(0, 1), x.done_at));
        assert!(a.can_issue(&next, x.done_at));
    }

    #[test]
    fn copyback_moves_within_plane_without_channel_data() {
        let mut a = array();
        let t = *a.timing();
        let out = a.issue(FlashCommand::Program(addr(0, 0)), SimTime::ZERO).unwrap();
        let now = out.lun_free_at;
        let dst = addr(1, 0);
        let cb = a
            .issue(FlashCommand::CopyBack { from: addr(0, 0), to: dst }, now)
            .unwrap();
        assert_eq!(cb.channel_free_at, now + t.copyback_channel_time());
        assert!(cb.channel_free_at < cb.done_at);
        assert_eq!(a.page_state(dst), PageState::Valid);
        assert_eq!(a.counters().copybacks, 1);
        // Source keeps its state; the FTL invalidates it after remapping.
        assert_eq!(a.page_state(addr(0, 0)), PageState::Valid);
    }

    #[test]
    fn copyback_rejects_cross_plane_and_unsupported_chips() {
        let g = Geometry {
            planes_per_lun: 2,
            ..Geometry::tiny()
        };
        let mut a = FlashArray::new(g, TimingSpec::slc());
        let out = a.issue(FlashCommand::Program(addr(0, 0)), SimTime::ZERO).unwrap();
        let cross = PhysicalAddr {
            channel: 0,
            lun: 0,
            plane: 1,
            block: 0,
            page: 0,
        };
        assert!(matches!(
            a.issue(
                FlashCommand::CopyBack { from: addr(0, 0), to: cross },
                out.lun_free_at
            ),
            Err(FlashError::InvalidCopyBack(_))
        ));

        let mut spec = TimingSpec::slc();
        spec.copyback = false;
        let mut b = FlashArray::new(Geometry::tiny(), spec);
        let out = b.issue(FlashCommand::Program(addr(0, 0)), SimTime::ZERO).unwrap();
        assert!(matches!(
            b.issue(
                FlashCommand::CopyBack { from: addr(0, 0), to: addr(1, 0) },
                out.lun_free_at
            ),
            Err(FlashError::InvalidCopyBack(_))
        ));
    }

    #[test]
    fn out_of_range_commands_rejected() {
        let mut a = array();
        let bad = PhysicalAddr {
            channel: 0,
            lun: 0,
            plane: 0,
            block: 999,
            page: 0,
        };
        assert!(matches!(
            a.issue(FlashCommand::Program(bad), SimTime::ZERO),
            Err(FlashError::OutOfRange(_))
        ));
        let bad_page = addr(0, 999);
        assert!(matches!(
            a.issue(FlashCommand::Program(bad_page), SimTime::ZERO),
            Err(FlashError::OutOfRange(_))
        ));
    }

    #[test]
    fn invalidate_tracks_live_counts() {
        let mut a = array();
        let out = a.issue(FlashCommand::Program(addr(0, 0)), SimTime::ZERO).unwrap();
        a.issue(FlashCommand::Program(addr(0, 1)), out.lun_free_at).unwrap();
        assert_eq!(a.block_info(addr(0, 0).block_addr()).live_pages, 2);
        a.invalidate(addr(0, 0));
        assert_eq!(a.block_info(addr(0, 0).block_addr()).live_pages, 1);
        assert_eq!(a.page_state(addr(0, 0)), PageState::Invalid);
        assert_eq!(a.valid_pages_in(addr(0, 0).block_addr()), vec![addr(0, 1)]);
    }

    #[test]
    #[should_panic(expected = "invalidate of non-valid page")]
    fn double_invalidate_panics() {
        let mut a = array();
        a.issue(FlashCommand::Program(addr(0, 0)), SimTime::ZERO).unwrap();
        a.invalidate(addr(0, 0));
        a.invalidate(addr(0, 0));
    }

    #[test]
    fn earliest_issue_reports_wait() {
        let mut a = array();
        let out = a.issue(FlashCommand::Program(addr(0, 0)), SimTime::ZERO).unwrap();
        let next = FlashCommand::Program(addr(0, 1));
        assert_eq!(a.earliest_issue(&next, SimTime::ZERO), Some(out.lun_free_at));
        // Transfers on an idle LUN can never issue.
        assert_eq!(
            a.earliest_issue(&FlashCommand::TransferOut(addr(0, 0)), out.lun_free_at),
            None
        );
    }

    #[test]
    fn utilization_accumulates() {
        let mut a = array();
        let t = *a.timing();
        let out = a.issue(FlashCommand::Program(addr(0, 0)), SimTime::ZERO).unwrap();
        assert_eq!(a.channel_busy_time(0), t.program_channel_time());
        assert_eq!(a.lun_busy_time(0, 0), t.program_lun_time());
        a.issue(FlashCommand::Program(addr(0, 1)), out.lun_free_at).unwrap();
        assert_eq!(a.lun_busy_time(0, 0), t.program_lun_time() * 2);
    }

    #[test]
    fn reads_of_invalid_pages_are_allowed() {
        // GC may still be moving a page that the FTL invalidated after
        // remapping a newer write; the bits remain readable.
        let mut a = array();
        let out = a.issue(FlashCommand::Program(addr(0, 0)), SimTime::ZERO).unwrap();
        a.invalidate(addr(0, 0));
        assert!(a
            .issue(FlashCommand::ReadStart(addr(0, 0)), out.lun_free_at)
            .is_ok());
    }

    #[test]
    fn erase_counts_and_totals() {
        let mut a = array();
        assert_eq!(a.total_erases(), 0);
        let out = a.issue(FlashCommand::Program(addr(0, 0)), SimTime::ZERO).unwrap();
        a.invalidate(addr(0, 0));
        a.issue(FlashCommand::Erase(addr(0, 0).block_addr()), out.lun_free_at)
            .unwrap();
        assert_eq!(a.total_erases(), 1);
        let counts = a.erase_counts();
        assert_eq!(counts.iter().map(|&c| c as u64).sum::<u64>(), 1);
        assert_eq!(counts.len() as u64, a.geometry().total_blocks());
    }

    #[test]
    fn power_cut_tears_inflight_program_only() {
        use crate::oob::{OobEntry, OobTag};
        let mut a = array();
        let o0 = a.issue(FlashCommand::Program(addr(0, 0)), SimTime::ZERO).unwrap();
        a.set_oob(addr(0, 0), OobEntry { tag: OobTag::Data { lpn: 1 }, seq: 1, stamp: 1 });
        // Second program issued after the first completes; cut mid-flight.
        let o1 = a.issue(FlashCommand::Program(addr(0, 1)), o0.lun_free_at).unwrap();
        a.set_oob(addr(0, 1), OobEntry { tag: OobTag::Data { lpn: 2 }, seq: 2, stamp: 2 });
        let cut = o0.lun_free_at; // before o1.done_at
        assert!(cut < o1.done_at);
        let report = a.power_cut(cut);
        assert_eq!(report.torn_pages, 1);
        assert_eq!(report.interrupted_erases, 0);
        // The completed page survives with its OOB; the torn one is gone.
        assert!(!a.is_torn(addr(0, 0)));
        assert_eq!(a.oob(addr(0, 0)).unwrap().seq, 1);
        assert!(a.is_torn(addr(0, 1)));
        assert_eq!(a.oob(addr(0, 1)), None);
        assert_eq!(a.page_state(addr(0, 1)), PageState::Invalid);
        assert_eq!(a.block_info(addr(0, 0).block_addr()).live_pages, 1);
        // Reads of the torn page fail; the medium is otherwise idle.
        assert!(matches!(
            a.issue(FlashCommand::ReadStart(addr(0, 1)), SimTime::ZERO),
            Err(FlashError::TornPage(_))
        ));
        a.issue(FlashCommand::ReadStart(addr(0, 0)), SimTime::ZERO).unwrap();
    }

    #[test]
    fn power_cut_interrupts_inflight_erase() {
        let mut a = array();
        let mut now = SimTime::ZERO;
        let out = a.issue(FlashCommand::Program(addr(0, 0)), now).unwrap();
        now = out.lun_free_at;
        a.invalidate(addr(0, 0));
        let block = addr(0, 0).block_addr();
        let e = a.issue(FlashCommand::Erase(block), now).unwrap();
        let report = a.power_cut(now); // before e.done_at
        assert!(now < e.done_at);
        assert_eq!(report.interrupted_erases, 1);
        assert!(a.block_needs_erase(block));
        // Programs are refused until the block is erased again.
        assert!(matches!(
            a.issue(FlashCommand::Program(addr(0, 0)), SimTime::ZERO),
            Err(FlashError::NeedsErase(_))
        ));
        a.issue(FlashCommand::Erase(block), SimTime::ZERO).unwrap();
        assert!(!a.block_needs_erase(block));
        assert_eq!(a.block_info(block).erase_count, 2, "interrupted erase costs wear");
    }

    #[test]
    fn erase_clears_oob_and_torn_state() {
        use crate::oob::{OobEntry, OobTag};
        let mut a = array();
        let o0 = a.issue(FlashCommand::Program(addr(0, 0)), SimTime::ZERO).unwrap();
        a.set_oob(addr(0, 0), OobEntry { tag: OobTag::Data { lpn: 3 }, seq: 1, stamp: 1 });
        let o1 = a.issue(FlashCommand::Program(addr(0, 1)), o0.lun_free_at).unwrap();
        a.power_cut(o0.lun_free_at);
        a.invalidate(addr(0, 0));
        let block = addr(0, 0).block_addr();
        let out = a.issue(FlashCommand::Erase(block), o1.done_at).unwrap();
        assert_eq!(a.oob(addr(0, 0)), None);
        assert!(!a.is_torn(addr(0, 1)));
        // Fully usable again.
        a.issue(FlashCommand::Program(addr(0, 0)), out.done_at).unwrap();
    }

    #[test]
    fn recovery_helpers_reconcile_state() {
        use crate::oob::{OobEntry, OobTag};
        let mut a = array();
        let out = a.issue(FlashCommand::Program(addr(0, 0)), SimTime::ZERO).unwrap();
        a.set_oob(addr(0, 0), OobEntry { tag: OobTag::Data { lpn: 9 }, seq: 4, stamp: 4 });
        a.invalidate(addr(0, 0));
        // Recovery decides the page is the live copy after all.
        a.recovery_set_valid(addr(0, 0));
        assert_eq!(a.page_state(addr(0, 0)), PageState::Valid);
        assert_eq!(a.block_info(addr(0, 0).block_addr()).live_pages, 1);
        // Revalidating a valid page is a no-op.
        a.recovery_set_valid(addr(0, 0));
        assert_eq!(a.block_info(addr(0, 0).block_addr()).live_pages, 1);
        // Recovery erase resets a dead block without scheduling.
        a.invalidate(addr(0, 0));
        a.recovery_erase(addr(0, 0).block_addr());
        assert_eq!(a.block_info(addr(0, 0).block_addr()).erase_count, 1);
        assert_eq!(a.page_state(addr(0, 0)), PageState::Free);
        let _ = out;
    }

    #[test]
    fn fault_model_off_by_default_and_reports_none() {
        let mut a = array();
        assert!(a.fault().is_none());
        let out = a.issue(FlashCommand::Program(addr(0, 0)), SimTime::ZERO).unwrap();
        assert_eq!(out.fault, None);
        let r = a.issue(FlashCommand::ReadStart(addr(0, 0)), out.lun_free_at).unwrap();
        assert_eq!(r.fault, None);
        assert!(a.oob_checked(addr(0, 0), SimTime::ZERO).is_ok());
    }

    #[test]
    fn clean_fault_model_changes_no_timing() {
        use crate::fault::FaultConfig;
        // A fault model with all rates zeroed must issue with timings
        // identical to no model at all.
        let mut plain = array();
        let mut faulted = array();
        faulted.install_fault_model(FaultConfig {
            program_fail_base: 0.0,
            erase_fail_base: 0.0,
            raw_bits_base: 0.0,
            raw_bits_per_pe: 0.0,
            raw_bits_per_retention_s: 0.0,
            raw_bits_per_disturb: 0.0,
            ..FaultConfig::default()
        });
        for (cmd, at) in [
            (FlashCommand::Program(addr(0, 0)), SimTime::ZERO),
            (FlashCommand::ReadStart(addr(0, 0)), SimTime::ZERO + SimDuration::from_millis(1)),
            (FlashCommand::TransferOut(addr(0, 0)), SimTime::ZERO + SimDuration::from_millis(2)),
        ] {
            let p = plain.issue(cmd, at).unwrap();
            let f = faulted.issue(cmd, at).unwrap();
            assert_eq!((p.done_at, p.channel_free_at, p.lun_free_at),
                       (f.done_at, f.channel_free_at, f.lun_free_at));
        }
    }

    #[test]
    fn read_retries_charge_visible_latency() {
        use crate::fault::{FaultConfig, FaultEvent};
        let mut a = array();
        let t = *a.timing();
        // Error rate above ECC on tier 0, collapsing on retries.
        a.install_fault_model(FaultConfig {
            raw_bits_base: 30.0,
            ecc_bits: 8,
            read_retries: 4,
            retry_error_scale: 0.1,
            program_fail_base: 0.0,
            erase_fail_base: 0.0,
            ..FaultConfig::default()
        });
        let w = a.issue(FlashCommand::Program(addr(0, 0)), SimTime::ZERO).unwrap();
        let r = a.issue(FlashCommand::ReadStart(addr(0, 0)), w.lun_free_at).unwrap();
        let Some(FaultEvent::Read(out)) = r.fault else {
            panic!("expected a read outcome, got {:?}", r.fault)
        };
        assert!(out.retries > 0, "λ=30 ≫ ecc=8 must retry");
        assert_eq!(
            r.done_at,
            w.lun_free_at + t.read_lun_time() * (1 + out.retries as u64),
            "each retry tier costs a full array read"
        );
        assert_eq!(a.fault().unwrap().counters().read_retries, out.retries as u64);
    }

    #[test]
    fn program_failure_is_advisory_and_marks_grown_bad() {
        use crate::fault::{FaultConfig, FaultEvent};
        let mut a = array();
        a.install_fault_model(FaultConfig {
            program_fail_base: 1.0,
            erase_fail_base: 0.0,
            raw_bits_base: 0.0,
            ..FaultConfig::default()
        });
        let out = a.issue(FlashCommand::Program(addr(0, 0)), SimTime::ZERO).unwrap();
        assert_eq!(out.fault, Some(FaultEvent::ProgramFailed));
        // The page burned: write pointer advanced, state Valid until the
        // controller invalidates it.
        assert_eq!(a.block_info(addr(0, 0).block_addr()).write_ptr, 1);
        assert!(a.fault().unwrap().is_grown_bad(0));
        // The mark converts to a hard mask at the next erase.
        a.invalidate(addr(0, 0));
        a.issue(FlashCommand::Erase(addr(0, 0).block_addr()), out.lun_free_at).unwrap();
        assert!(a.block_info(addr(0, 0).block_addr()).bad);
        assert_eq!(a.bad_blocks(), 1);
    }

    #[test]
    fn erase_failure_streak_retires_block() {
        use crate::fault::{FaultConfig, FaultEvent};
        let mut a = array();
        a.install_fault_model(FaultConfig {
            erase_fail_base: 1.0,
            erase_retire_after: 2,
            program_fail_base: 0.0,
            raw_bits_base: 0.0,
            ..FaultConfig::default()
        });
        let block = addr(0, 0).block_addr();
        let mut now = SimTime::ZERO;
        let o1 = a.issue(FlashCommand::Erase(block), now).unwrap();
        assert_eq!(o1.fault, Some(FaultEvent::EraseFailed { retired: false }));
        assert_eq!(a.block_info(block).erase_count, 0, "failed erase does not reset");
        now = o1.lun_free_at;
        let o2 = a.issue(FlashCommand::Erase(block), now).unwrap();
        assert_eq!(o2.fault, Some(FaultEvent::EraseFailed { retired: true }));
        assert!(a.block_info(block).bad);
        assert_eq!(a.fault().unwrap().counters().erase_fails, 2);
    }

    #[test]
    fn oob_checked_reports_uncorrectable_spare_area() {
        use crate::fault::FaultConfig;
        use crate::oob::{OobEntry, OobTag};
        let mut a = array();
        a.install_fault_model(FaultConfig {
            raw_bits_base: 500.0,
            ecc_bits: 2,
            program_fail_base: 0.0,
            erase_fail_base: 0.0,
            ..FaultConfig::default()
        });
        let out = a.issue(FlashCommand::Program(addr(0, 0)), SimTime::ZERO).unwrap();
        a.set_oob(addr(0, 0), OobEntry { tag: OobTag::Data { lpn: 1 }, seq: 1, stamp: 1 });
        let probe = a.oob_checked(addr(0, 0), out.done_at);
        assert!(matches!(probe, Err(FlashError::Uncorrectable(_))));
        // Unwritten pages are never uncorrectable — there is nothing to read.
        assert_eq!(a.oob_checked(addr(1, 0), out.done_at), Ok(None));
    }

    #[test]
    fn different_channels_fully_parallel() {
        let mut a = array();
        let p0 = addr(0, 0);
        let p1 = PhysicalAddr {
            channel: 1,
            lun: 0,
            plane: 0,
            block: 0,
            page: 0,
        };
        let o0 = a.issue(FlashCommand::Program(p0), SimTime::ZERO).unwrap();
        let o1 = a.issue(FlashCommand::Program(p1), SimTime::ZERO).unwrap();
        assert_eq!(o0.done_at, o1.done_at);
        assert!(o1.done_at.as_nanos() > 0);
        let _ = SimDuration::ZERO;
    }
}
