//! Flash chip timing specifications.
//!
//! EagleTree lets users "set up every hardware parameter of the simulated
//! SSD: basic flash chip timings (i.e., to send a command, transfer data on
//! a channel, read, write or erase)" and "specify the flash chip type (SLC
//! or MLC) and its support for advanced commands" (§2.2). The presets here
//! carry datasheet-typical values; absolute numbers are representative, the
//! experiments rely on the well-established ordering
//! `t_read ≪ t_prog ≪ t_erase` and on channel transfer costs.

use eagletree_core::SimDuration;

/// SLC vs MLC NAND. MLC trades density for slower, more wear-prone cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellType {
    /// Single-level cell: fast, endurant.
    Slc,
    /// Multi-level cell: ~2-3× slower programs, ~2× slower reads, lower
    /// erase endurance.
    Mlc,
}

/// Basic flash chip timings plus advanced-command capabilities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingSpec {
    /// Cell technology this spec models.
    pub cell: CellType,
    /// Time to send a command/address cycle over the channel.
    pub t_cmd: SimDuration,
    /// Time to move one full page of data over the channel (in or out).
    pub t_xfer: SimDuration,
    /// Array read time (page → LUN register).
    pub t_read: SimDuration,
    /// Array program time (LUN register → page).
    pub t_prog: SimDuration,
    /// Block erase time.
    pub t_erase: SimDuration,
    /// Whether the chip supports copy-back (intra-plane move without
    /// channel data transfer).
    pub copyback: bool,
    /// Whether the chip supports cached (pipelined) programming: the data
    /// transfer of the next page may overlap the array-program of the
    /// previous page in the same block.
    pub cached_program: bool,
    /// Erase endurance: nominal program/erase cycles per block.
    pub endurance: u32,
}

impl TimingSpec {
    /// Datasheet-typical SLC NAND (e.g. Micron SLC parts): 25 µs read,
    /// 200 µs program, 1.5 ms erase, 100 MB/s channel.
    pub fn slc() -> Self {
        TimingSpec {
            cell: CellType::Slc,
            t_cmd: SimDuration::from_nanos(200),
            t_xfer: SimDuration::from_micros(40), // 4 KiB @ ~100 MB/s
            t_read: SimDuration::from_micros(25),
            t_prog: SimDuration::from_micros(200),
            t_erase: SimDuration::from_millis(1) + SimDuration::from_micros(500),
            copyback: true,
            cached_program: true,
            endurance: 100_000,
        }
    }

    /// Datasheet-typical MLC NAND: 50 µs read, 600 µs program, 3 ms erase.
    pub fn mlc() -> Self {
        TimingSpec {
            cell: CellType::Mlc,
            t_cmd: SimDuration::from_nanos(200),
            t_xfer: SimDuration::from_micros(40),
            t_read: SimDuration::from_micros(50),
            t_prog: SimDuration::from_micros(600),
            t_erase: SimDuration::from_millis(3),
            copyback: true,
            cached_program: true,
            endurance: 5_000,
        }
    }

    /// Spec for a cell type.
    pub fn for_cell(cell: CellType) -> Self {
        let spec = match cell {
            CellType::Slc => Self::slc(),
            CellType::Mlc => Self::mlc(),
        };
        // Presets must uphold `t_cmd < t_read < t_prog < t_erase`; a
        // future preset that silently violates it would skew every
        // experiment built on the ordering.
        debug_assert!(spec.validate().is_ok(), "invalid preset for {cell:?}");
        spec
    }

    /// Scale the channel transfer time for a different page size, keeping
    /// the per-byte rate of the preset (presets assume 4 KiB pages).
    pub fn with_page_size(mut self, page_size: u32) -> Self {
        let base_ns = self.t_xfer.as_nanos();
        self.t_xfer = SimDuration::from_nanos(base_ns * page_size as u64 / 4096);
        self
    }

    /// Total channel occupancy to start a read (command only; data comes
    /// back later via transfer-out).
    pub fn read_channel_time(&self) -> SimDuration {
        self.t_cmd
    }

    /// LUN occupancy for the array read itself.
    pub fn read_lun_time(&self) -> SimDuration {
        self.t_cmd + self.t_read
    }

    /// Channel occupancy to start a program: command + page data in.
    pub fn program_channel_time(&self) -> SimDuration {
        self.t_cmd + self.t_xfer
    }

    /// LUN occupancy for a program from the moment the command starts.
    pub fn program_lun_time(&self) -> SimDuration {
        self.t_cmd + self.t_xfer + self.t_prog
    }

    /// Channel occupancy to start an erase.
    pub fn erase_channel_time(&self) -> SimDuration {
        self.t_cmd
    }

    /// LUN occupancy for an erase.
    pub fn erase_lun_time(&self) -> SimDuration {
        self.t_cmd + self.t_erase
    }

    /// Channel occupancy for a copy-back (two command cycles, no data).
    pub fn copyback_channel_time(&self) -> SimDuration {
        self.t_cmd * 2
    }

    /// LUN occupancy for a copy-back: internal read then program.
    pub fn copyback_lun_time(&self) -> SimDuration {
        self.t_cmd * 2 + self.t_read + self.t_prog
    }

    /// Sanity-check the spec: the experiments rely on the documented
    /// ordering `t_cmd < t_read < t_prog < t_erase`.
    pub fn validate(&self) -> Result<(), String> {
        if self.t_cmd >= self.t_read {
            return Err("t_cmd must be below t_read for NAND flash".into());
        }
        if self.t_read >= self.t_prog {
            return Err("t_read must be below t_prog for NAND flash".into());
        }
        if self.t_prog >= self.t_erase {
            return Err("t_prog must be below t_erase for NAND flash".into());
        }
        if self.endurance == 0 {
            return Err("endurance must be non-zero".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid_and_ordered() {
        for spec in [
            TimingSpec::slc(),
            TimingSpec::mlc(),
            TimingSpec::for_cell(CellType::Slc),
            TimingSpec::for_cell(CellType::Mlc),
        ] {
            spec.validate().unwrap();
            assert!(spec.t_cmd < spec.t_read);
            assert!(spec.t_read < spec.t_prog);
            assert!(spec.t_prog < spec.t_erase);
        }
    }

    #[test]
    fn mlc_slower_than_slc() {
        let slc = TimingSpec::slc();
        let mlc = TimingSpec::mlc();
        assert!(mlc.t_read > slc.t_read);
        assert!(mlc.t_prog > slc.t_prog);
        assert!(mlc.t_erase > slc.t_erase);
        assert!(mlc.endurance < slc.endurance);
    }

    #[test]
    fn for_cell_dispatches() {
        assert_eq!(TimingSpec::for_cell(CellType::Slc).cell, CellType::Slc);
        assert_eq!(TimingSpec::for_cell(CellType::Mlc).cell, CellType::Mlc);
    }

    #[test]
    fn page_size_scales_transfer_linearly() {
        let base = TimingSpec::slc();
        let doubled = base.with_page_size(8192);
        assert_eq!(doubled.t_xfer.as_nanos(), base.t_xfer.as_nanos() * 2);
        let halved = base.with_page_size(2048);
        assert_eq!(halved.t_xfer.as_nanos(), base.t_xfer.as_nanos() / 2);
    }

    #[test]
    fn derived_occupancies_compose() {
        let s = TimingSpec::slc();
        assert_eq!(s.read_lun_time(), s.t_cmd + s.t_read);
        assert_eq!(s.program_lun_time(), s.t_cmd + s.t_xfer + s.t_prog);
        assert_eq!(s.erase_lun_time(), s.t_cmd + s.t_erase);
        assert_eq!(s.copyback_lun_time(), s.t_cmd * 2 + s.t_read + s.t_prog);
        // Copy-back frees the channel relative to read+program.
        assert!(
            s.copyback_channel_time()
                < s.read_channel_time() + s.t_xfer + s.program_channel_time()
        );
    }

    #[test]
    fn validate_catches_inverted_timings() {
        let mut s = TimingSpec::slc();
        s.t_read = s.t_prog + SimDuration::from_nanos(1);
        assert!(s.validate().is_err());
        let mut s = TimingSpec::slc();
        s.t_cmd = s.t_read;
        assert!(s.validate().is_err());
        let mut s = TimingSpec::slc();
        s.t_erase = SimDuration::ZERO;
        assert!(s.validate().is_err());
        let mut s = TimingSpec::slc();
        s.endurance = 0;
        assert!(s.validate().is_err());
    }
}
