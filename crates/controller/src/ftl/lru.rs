//! A small intrusive-list LRU cache used by DFTL's cached mapping table.
//!
//! Keys are `u64` (logical page numbers). Entries carry a dirty flag and a
//! pin count; pinned entries are skipped by eviction so mapping entries of
//! in-flight IOs cannot disappear under them.

use std::collections::BTreeMap;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Node {
    key: u64,
    dirty: bool,
    pins: u32,
    prev: usize,
    next: usize,
}

/// LRU cache with dirty flags and pinning.
#[derive(Debug, Clone)]
pub struct LruCache {
    map: BTreeMap<u64, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity: usize,
}

impl LruCache {
    /// A cache bounded to `capacity` entries (> 0).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LRU capacity must be positive");
        LruCache {
            map: BTreeMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn contains(&self, key: u64) -> bool {
        self.map.contains_key(&key)
    }

    /// True if the entry exists and is dirty.
    pub fn is_dirty(&self, key: u64) -> bool {
        self.map.get(&key).is_some_and(|&i| self.nodes[i].dirty)
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.nodes[i].prev, self.nodes[i].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.nodes[i].prev = NIL;
        self.nodes[i].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Touch `key` (move to MRU). Returns true if present.
    pub fn touch(&mut self, key: u64) -> bool {
        if let Some(&i) = self.map.get(&key) {
            self.unlink(i);
            self.push_front(i);
            true
        } else {
            false
        }
    }

    /// Insert `key` (or touch it if present), setting `dirty` by OR.
    ///
    /// If the cache is over capacity afterwards, evicts the least recently
    /// used *unpinned* entry and returns `Some((key, was_dirty))`. Returns
    /// `None` when nothing was evicted (capacity available, or every entry
    /// pinned — the cache then temporarily exceeds capacity rather than
    /// deadlock).
    pub fn insert(&mut self, key: u64, dirty: bool) -> Option<(u64, bool)> {
        if let Some(&i) = self.map.get(&key) {
            self.nodes[i].dirty |= dirty;
            self.unlink(i);
            self.push_front(i);
            return None;
        }
        let i = if let Some(i) = self.free.pop() {
            self.nodes[i] = Node {
                key,
                dirty,
                pins: 0,
                prev: NIL,
                next: NIL,
            };
            i
        } else {
            self.nodes.push(Node {
                key,
                dirty,
                pins: 0,
                prev: NIL,
                next: NIL,
            });
            self.nodes.len() - 1
        };
        self.map.insert(key, i);
        self.push_front(i);
        if self.map.len() > self.capacity {
            self.evict_lru()
        } else {
            None
        }
    }

    fn evict_lru(&mut self) -> Option<(u64, bool)> {
        let mut i = self.tail;
        // Never evict the head: that is the entry whose insertion caused
        // the overflow, and evicting it would make insert a no-op.
        while i != NIL && i != self.head {
            if self.nodes[i].pins == 0 {
                let key = self.nodes[i].key;
                let dirty = self.nodes[i].dirty;
                self.remove(key);
                return Some((key, dirty));
            }
            i = self.nodes[i].prev;
        }
        None
    }

    /// Remove `key` outright. Returns its dirty flag if it was present.
    pub fn remove(&mut self, key: u64) -> Option<bool> {
        let i = self.map.remove(&key)?;
        self.unlink(i);
        let dirty = self.nodes[i].dirty;
        self.free.push(i);
        Some(dirty)
    }

    /// Pin an entry against eviction (must be present).
    pub fn pin(&mut self, key: u64) {
        let i = *self.map.get(&key).expect("pin of absent LRU entry");
        self.nodes[i].pins += 1;
    }

    /// Release one pin.
    pub fn unpin(&mut self, key: u64) {
        if let Some(&i) = self.map.get(&key) {
            debug_assert!(self.nodes[i].pins > 0, "unpin without pin");
            self.nodes[i].pins = self.nodes[i].pins.saturating_sub(1);
        }
    }

    /// Set the dirty flag of a present entry.
    pub fn set_dirty(&mut self, key: u64, dirty: bool) {
        if let Some(&i) = self.map.get(&key) {
            self.nodes[i].dirty = dirty;
        }
    }

    /// Iterate all keys (unspecified order).
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.map.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_lru_on_overflow() {
        let mut c = LruCache::new(2);
        assert_eq!(c.insert(1, false), None);
        assert_eq!(c.insert(2, false), None);
        assert_eq!(c.insert(3, false), Some((1, false)));
        assert!(!c.contains(1));
        assert!(c.contains(2) && c.contains(3));
    }

    #[test]
    fn touch_changes_eviction_order() {
        let mut c = LruCache::new(2);
        c.insert(1, false);
        c.insert(2, false);
        assert!(c.touch(1));
        assert_eq!(c.insert(3, false), Some((2, false)));
        assert!(c.contains(1));
    }

    #[test]
    fn dirty_flag_survives_and_reports_on_eviction() {
        let mut c = LruCache::new(1);
        c.insert(1, true);
        assert!(c.is_dirty(1));
        assert_eq!(c.insert(2, false), Some((1, true)));
    }

    #[test]
    fn insert_existing_ors_dirty_and_touches() {
        let mut c = LruCache::new(2);
        c.insert(1, false);
        c.insert(2, false);
        c.insert(1, true); // touch + dirty
        assert!(c.is_dirty(1));
        assert_eq!(c.insert(3, false), Some((2, false)));
    }

    #[test]
    fn pinned_entries_survive_eviction() {
        let mut c = LruCache::new(2);
        c.insert(1, false);
        c.pin(1);
        c.insert(2, false);
        // 1 is LRU but pinned; 2 gets evicted instead.
        assert_eq!(c.insert(3, false), Some((2, false)));
        assert!(c.contains(1));
        c.unpin(1);
        assert_eq!(c.insert(4, false), Some((1, false)));
    }

    #[test]
    fn all_pinned_overflows_gracefully() {
        let mut c = LruCache::new(1);
        c.insert(1, false);
        c.pin(1);
        assert_eq!(c.insert(2, false), None);
        assert_eq!(c.len(), 2); // temporarily over capacity
    }

    #[test]
    fn remove_and_reuse_slots() {
        let mut c = LruCache::new(3);
        c.insert(1, true);
        c.insert(2, false);
        assert_eq!(c.remove(1), Some(true));
        assert_eq!(c.remove(1), None);
        c.insert(3, false);
        c.insert(4, false);
        assert_eq!(c.len(), 3);
        let mut keys: Vec<_> = c.keys().collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![2, 3, 4]);
    }

    #[test]
    fn long_sequence_is_consistent() {
        let mut c = LruCache::new(8);
        for k in 0..1000u64 {
            c.insert(k, k % 3 == 0);
            assert!(c.len() <= 8);
        }
        for k in 992..1000 {
            assert!(c.contains(k));
        }
    }
}
