//! Flash translation layer: logical-to-physical mapping schemes.
//!
//! The mapping scheme is the first axis of the paper's §2.2 design space.
//! Three families are modeled, all behind [`Ftl`] / [`FtlKind`]:
//!
//! | scheme | granularity | RAM cost | flash cost | design-space coordinate |
//! |---|---|---|---|---|
//! | [`PageMap`] | page | 8 B / logical page | none | maximum flexibility, maximum RAM |
//! | [`Dftl`] | page, demand-cached | CMT + GTD (bounded) | translation-page fetches & writebacks | flexibility at bounded RAM, extra read traffic |
//! | [`Hybrid`] | block + log pages | directory + log page tables | switch / partial / full **merges** | minimum RAM, write placement constrained, merge storms under random writes |
//!
//! The page-based schemes are "the most flexible schemes i.e., page-based
//! mappings: the well-known DFTL and a page-based mapping scheme where the
//! entire mapping is kept in RAM" (§2.2); the hybrid log-block scheme
//! (FAST, Lee et al., TECS 2007) is the classic third point, whose merge
//! costs interact with GC, scheduling and wear leveling in exactly the
//! ways the paper's design questions probe.
//!
//! Simulator note: each scheme keeps the *authoritative* logical→physical
//! map in RAM for correctness bookkeeping; what differs is the **cost
//! model** — which lookups and updates require flash IOs, and (for the
//! hybrid scheme) which physical placements are legal. For DFTL the cost is
//! determined by the cached mapping table (CMT), the global translation
//! directory (GTD), and the batched pending updates from GC relocation;
//! for the hybrid scheme it is the log-block discipline and the merge
//! machinery the controller schedules on its behalf.

mod dftl;
mod hybrid;
mod lru;
mod page_map;

pub use dftl::{Dftl, DftlStats};
pub use hybrid::{FullMergePlan, Hybrid, HybridEvent, HybridPlace, HybridStats, SwMergePlan};
pub use lru::LruCache;
pub use page_map::PageMap;

use crate::types::{Lpn, Ppn};

/// Result of a mapping lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapLookup {
    /// The entry is available now. `None` means the page was never written
    /// (reads of it complete immediately with zero-fill semantics).
    Ready(Option<Ppn>),
    /// The translation page `tvpn` must be read from flash first; retry
    /// after signalling `fetch_complete(tvpn)`.
    NeedsFetch(u64),
}

/// A dirty translation page that must be written back to flash.
///
/// Produced when a CMT eviction (or explicit flush) needs persistence. The
/// controller turns each into a mapping-source read (of `old_ppn`, when the
/// page already exists on flash) followed by a program, then calls
/// [`Ftl::translation_written`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TranslationWriteback {
    /// Translation virtual page number.
    pub tvpn: u64,
    /// Current flash copy to read+merge (None on first persistence).
    pub old_ppn: Option<Ppn>,
}

/// Common interface of mapping schemes.
pub trait Ftl {
    /// Look up the mapping entry for `lpn` (for a read, or before a write).
    ///
    /// `pin` prevents the entry from being evicted while an IO that depends
    /// on it is in flight; pair every `pin=true` lookup that returns
    /// `Ready` with an eventual [`Ftl::unpin`].
    fn lookup(&mut self, lpn: Lpn, pin: bool) -> MapLookup;

    /// Release a pin taken by `lookup(.., true)`.
    fn unpin(&mut self, lpn: Lpn);

    /// Record that `lpn` now lives at `ppn` (application write committed).
    /// Returns the superseded physical page (to invalidate).
    fn update(&mut self, lpn: Lpn, ppn: Ppn) -> Option<Ppn>;

    /// Record that GC moved `lpn`'s live copy to `new_ppn` without changing
    /// its contents. Never stalls: schemes absorb the update in RAM
    /// (CMT or the batched pending-update set).
    fn relocate(&mut self, lpn: Lpn, new_ppn: Ppn);

    /// Drop the mapping for `lpn` (trim). Returns the physical page to
    /// invalidate, if one existed.
    fn trim(&mut self, lpn: Lpn) -> Option<Ppn>;

    /// A translation-page fetch issued for `NeedsFetch(tvpn)` finished;
    /// entries of that page may now be inserted.
    fn fetch_complete(&mut self, tvpn: u64, lpns: &[Lpn]);

    /// Drain translation writebacks queued by any mutation since the last
    /// drain. Every [`Ftl::lookup`], [`Ftl::update`], [`Ftl::trim`] or
    /// [`Ftl::fetch_complete`] may evict dirty CMT entries; the controller
    /// calls this after each batch of FTL activity and turns the results
    /// into mapping-source flash IOs.
    fn take_writebacks(&mut self) -> Vec<TranslationWriteback>;

    /// Where translation page `tvpn` currently lives on flash.
    fn translation_location(&self, tvpn: u64) -> Option<Ppn>;

    /// A translation page was (re)programmed at `new_ppn` (writeback
    /// completion or GC move). Returns the superseded flash copy.
    fn translation_written(&mut self, tvpn: u64, new_ppn: Ppn) -> Option<Ppn>;

    /// Translation virtual page covering `lpn` (DFTL); page-map returns 0.
    fn tvpn_of(&self, lpn: Lpn) -> u64;

    /// Current mapping-structure RAM footprint in bytes (for the memory
    /// manager and RAM-budget experiments).
    fn ram_bytes(&self) -> u64;

    /// The authoritative location of `lpn`, bypassing the cost model.
    /// For invariant checks and tests only.
    fn peek(&self, lpn: Lpn) -> Option<Ppn>;
}

/// The available schemes behind one concrete type.
pub enum FtlKind {
    PageMap(PageMap),
    // Boxed: Dftl and Hybrid are an order of magnitude larger than
    // PageMap's header.
    Dftl(Box<Dftl>),
    Hybrid(Box<Hybrid>),
}

impl Ftl for FtlKind {
    fn lookup(&mut self, lpn: Lpn, pin: bool) -> MapLookup {
        match self {
            FtlKind::PageMap(m) => m.lookup(lpn, pin),
            FtlKind::Dftl(m) => m.lookup(lpn, pin),
            FtlKind::Hybrid(m) => m.lookup(lpn, pin),
        }
    }
    fn unpin(&mut self, lpn: Lpn) {
        match self {
            FtlKind::PageMap(m) => m.unpin(lpn),
            FtlKind::Dftl(m) => m.unpin(lpn),
            FtlKind::Hybrid(m) => m.unpin(lpn),
        }
    }
    fn update(&mut self, lpn: Lpn, ppn: Ppn) -> Option<Ppn> {
        match self {
            FtlKind::PageMap(m) => m.update(lpn, ppn),
            FtlKind::Dftl(m) => m.update(lpn, ppn),
            FtlKind::Hybrid(m) => m.update(lpn, ppn),
        }
    }
    fn relocate(&mut self, lpn: Lpn, new_ppn: Ppn) {
        match self {
            FtlKind::PageMap(m) => m.relocate(lpn, new_ppn),
            FtlKind::Dftl(m) => m.relocate(lpn, new_ppn),
            FtlKind::Hybrid(m) => m.relocate(lpn, new_ppn),
        }
    }
    fn trim(&mut self, lpn: Lpn) -> Option<Ppn> {
        match self {
            FtlKind::PageMap(m) => m.trim(lpn),
            FtlKind::Dftl(m) => m.trim(lpn),
            FtlKind::Hybrid(m) => m.trim(lpn),
        }
    }
    fn fetch_complete(&mut self, tvpn: u64, lpns: &[Lpn]) {
        match self {
            FtlKind::PageMap(m) => m.fetch_complete(tvpn, lpns),
            FtlKind::Dftl(m) => m.fetch_complete(tvpn, lpns),
            FtlKind::Hybrid(m) => m.fetch_complete(tvpn, lpns),
        }
    }
    fn take_writebacks(&mut self) -> Vec<TranslationWriteback> {
        match self {
            FtlKind::PageMap(m) => m.take_writebacks(),
            FtlKind::Dftl(m) => m.take_writebacks(),
            FtlKind::Hybrid(m) => m.take_writebacks(),
        }
    }
    fn translation_location(&self, tvpn: u64) -> Option<Ppn> {
        match self {
            FtlKind::PageMap(m) => m.translation_location(tvpn),
            FtlKind::Dftl(m) => m.translation_location(tvpn),
            FtlKind::Hybrid(m) => m.translation_location(tvpn),
        }
    }
    fn translation_written(&mut self, tvpn: u64, new_ppn: Ppn) -> Option<Ppn> {
        match self {
            FtlKind::PageMap(m) => m.translation_written(tvpn, new_ppn),
            FtlKind::Dftl(m) => m.translation_written(tvpn, new_ppn),
            FtlKind::Hybrid(m) => m.translation_written(tvpn, new_ppn),
        }
    }
    fn tvpn_of(&self, lpn: Lpn) -> u64 {
        match self {
            FtlKind::PageMap(m) => m.tvpn_of(lpn),
            FtlKind::Dftl(m) => m.tvpn_of(lpn),
            FtlKind::Hybrid(m) => m.tvpn_of(lpn),
        }
    }
    fn ram_bytes(&self) -> u64 {
        match self {
            FtlKind::PageMap(m) => m.ram_bytes(),
            FtlKind::Dftl(m) => m.ram_bytes(),
            FtlKind::Hybrid(m) => m.ram_bytes(),
        }
    }
    fn peek(&self, lpn: Lpn) -> Option<Ppn> {
        match self {
            FtlKind::PageMap(m) => m.peek(lpn),
            FtlKind::Dftl(m) => m.peek(lpn),
            FtlKind::Hybrid(m) => m.peek(lpn),
        }
    }
}
