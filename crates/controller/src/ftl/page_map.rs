//! Full in-RAM page-level mapping.
//!
//! The simplest flexible scheme: the whole logical→physical map lives in
//! controller DRAM, so every lookup and update is free of flash IOs. Its
//! cost is RAM: 8 bytes per logical page, reported via
//! [`PageMap::ram_bytes`] so experiments can compare against DFTL budgets.

use crate::ftl::{Ftl, MapLookup, TranslationWriteback};
use crate::types::{Lpn, Ppn};

/// Full page-level map held in RAM.
pub struct PageMap {
    map: Vec<Option<Ppn>>,
}

impl PageMap {
    /// A map for `logical_pages` pages, all initially unmapped.
    pub fn new(logical_pages: u64) -> Self {
        PageMap {
            map: vec![None; logical_pages as usize],
        }
    }

    /// Number of mapped logical pages.
    pub fn mapped_count(&self) -> u64 {
        self.map.iter().filter(|m| m.is_some()).count() as u64
    }

    /// Rebuild a map from a recovered logical→physical table (mount-time
    /// OOB scan or checkpoint replay).
    pub fn restore(map: Vec<Option<Ppn>>) -> Self {
        PageMap { map }
    }
}

impl Ftl for PageMap {
    fn lookup(&mut self, lpn: Lpn, _pin: bool) -> MapLookup {
        MapLookup::Ready(self.map[lpn as usize])
    }

    fn unpin(&mut self, _lpn: Lpn) {}

    fn update(&mut self, lpn: Lpn, ppn: Ppn) -> Option<Ppn> {
        self.map[lpn as usize].replace(ppn)
    }

    fn relocate(&mut self, lpn: Lpn, new_ppn: Ppn) {
        debug_assert!(
            self.map[lpn as usize].is_some(),
            "relocate of unmapped lpn {lpn}"
        );
        self.map[lpn as usize] = Some(new_ppn);
    }

    fn trim(&mut self, lpn: Lpn) -> Option<Ppn> {
        self.map[lpn as usize].take()
    }

    fn fetch_complete(&mut self, _tvpn: u64, _lpns: &[Lpn]) {}

    fn take_writebacks(&mut self) -> Vec<TranslationWriteback> {
        Vec::new()
    }

    fn translation_location(&self, _tvpn: u64) -> Option<Ppn> {
        None
    }

    fn translation_written(&mut self, _tvpn: u64, _new_ppn: Ppn) -> Option<Ppn> {
        None
    }

    fn tvpn_of(&self, _lpn: Lpn) -> u64 {
        0
    }

    fn ram_bytes(&self) -> u64 {
        self.map.len() as u64 * 8
    }

    fn peek(&self, lpn: Lpn) -> Option<Ppn> {
        self.map[lpn as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_is_always_ready() {
        let mut m = PageMap::new(10);
        assert_eq!(m.lookup(3, false), MapLookup::Ready(None));
        m.update(3, 77);
        assert_eq!(m.lookup(3, true), MapLookup::Ready(Some(77)));
        assert_eq!(m.peek(3), Some(77));
    }

    #[test]
    fn update_returns_superseded_ppn() {
        let mut m = PageMap::new(4);
        assert_eq!(m.update(0, 5), None);
        assert!(m.take_writebacks().is_empty());
        assert_eq!(m.update(0, 9), Some(5));
    }

    #[test]
    fn relocate_moves_without_history() {
        let mut m = PageMap::new(4);
        m.update(1, 10);
        m.relocate(1, 20);
        assert_eq!(m.peek(1), Some(20));
    }

    #[test]
    fn trim_unmaps() {
        let mut m = PageMap::new(4);
        m.update(2, 8);
        assert_eq!(m.trim(2), Some(8));
        assert_eq!(m.trim(2), None);
        assert_eq!(m.lookup(2, false), MapLookup::Ready(None));
    }

    #[test]
    fn ram_cost_is_8_bytes_per_page() {
        let m = PageMap::new(1000);
        assert_eq!(m.ram_bytes(), 8000);
    }

    #[test]
    fn mapped_count_tracks() {
        let mut m = PageMap::new(4);
        assert_eq!(m.mapped_count(), 0);
        m.update(0, 1);
        m.update(1, 2);
        m.trim(0);
        assert_eq!(m.mapped_count(), 1);
    }
}
