//! FAST-style hybrid log-block mapping.
//!
//! The classic third family of the mapping design space (§2.2): data blocks
//! are **block-mapped** (one directory entry per logical block, pages at
//! their in-block offsets), while updates append to a small pool of
//! **page-mapped log blocks** — one dedicated *sequential* (SW) log block
//! fed by offset-0 streams, plus `budget` *random* (RW) log blocks shared
//! by all logical blocks, exactly the FAST layout (Lee et al., TECS 2007).
//!
//! Reclamation is by **merge**, not by generic GC:
//!
//! * **switch merge** — the SW log block holds a complete, current,
//!   in-order copy of one logical block: it *becomes* the data block; the
//!   superseded data block is erased. Cost: one erase, zero copies.
//! * **partial merge** — the SW log block holds a current sequential
//!   *prefix*: the remaining pages are copied in from the old data block,
//!   then the block switches. Cost: the tail copies plus one erase.
//! * **full merge** — an RW log block is reclaimed by folding every logical
//!   block it holds pages of into a fresh block (latest copy of each page,
//!   wherever it lives), erasing the superseded data blocks and finally the
//!   log block itself. This is the expensive path that dominates random
//!   writes on hybrid FTLs.
//!
//! Division of labor: this module owns the mapping state and *decides*
//! placements and merge plans; the controller executes each copy / program
//! / erase as scheduled flash operations (`OpClass::MergeRead` /
//! `MergeWrite` / `Erase`), so merges compete with application IO under
//! every `SchedPolicy`.
//!
//! Simulator note: as with the other schemes, the authoritative
//! logical→physical map is kept in RAM for correctness bookkeeping; the
//! block directory and log-block page tables model the *RAM cost* (a few
//! bytes per logical block plus `pages_per_block` entries per log block —
//! the scheme's selling point against a full page map).

use crate::config::MergePolicy;
use crate::ftl::{Ftl, MapLookup, TranslationWriteback};
use crate::types::{Lpn, Ppn};

/// Where the next write of an LPN must go, per the log-block discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HybridPlace {
    /// Program exactly this physical page (an append to a log block).
    Append(Ppn),
    /// No open log block can take it: open a fresh one first.
    NeedsLogBlock {
        /// `true`: the new block becomes the sequential (SW) log block.
        sequential: bool,
    },
    /// A new sequential stream wants the SW log block: merge it first.
    NeedsSeqMerge,
    /// The write sits *ahead* of its logical block's sequential stream
    /// (`offset > fill`): hold it until the stream catches up, so queued
    /// sequential writes keep their in-order placement under queue depth.
    /// If the gap never fills, the controller's quiescence fallback merges
    /// the SW block and the write falls back to the random path.
    AwaitSequential,
    /// The random log-block budget is exhausted: full-merge a victim first.
    NeedsMerge,
}

/// RAM-side bookkeeping events the controller must turn into flash work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HybridEvent {
    /// A switch merge retired this data block; erase it.
    EraseDataBlock {
        /// Base PPN (page 0) of the superseded block.
        base: Ppn,
    },
}

/// Plan for merging the sequential log block.
#[derive(Debug, Clone, Copy)]
pub struct SwMergePlan {
    /// Base PPN of the SW log block.
    pub base: Ppn,
    /// Logical block the SW stream belongs to.
    pub lbn: u64,
    /// `Some(fill)`: the block holds a current sequential prefix — reuse it
    /// as the fold destination, copying from offset `fill` on (partial
    /// merge; a switch if nothing is left to copy). `None`: the prefix was
    /// superseded — fold into a fresh block and erase this one (counted as
    /// a full merge).
    pub reuse_from: Option<u32>,
}

/// Plan for full-merging a random log block.
#[derive(Debug, Clone)]
pub struct FullMergePlan {
    /// Base PPN of the victim log block (erased once the folds finish).
    pub victim: Ppn,
    /// Logical blocks with at least one live page in the victim, in
    /// first-appearance order.
    pub lbns: Vec<u64>,
}

/// Scheme-level merge counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HybridStats {
    /// Switch merges (log block became the data block for free).
    pub switch_merges: u64,
    /// Partial merges (sequential prefix completed in place).
    pub partial_merges: u64,
    /// Full merges (log victim folded logical block by logical block).
    pub full_merges: u64,
    /// Wear-leveling refresh merges (data block folded to a fresh block).
    pub refresh_merges: u64,
    /// Log blocks opened (SW + RW).
    pub log_blocks_opened: u64,
}

#[derive(Debug, Clone)]
struct LogBlock {
    /// Base PPN (page 0); pages of a block are consecutive PPNs.
    base: Ppn,
    /// Next append offset (mirrors the flash block's write pointer).
    fill: u32,
    /// Appends issued to flash but not yet committed to the map.
    inflight: u32,
    /// `entries[i]` = LPN programmed at `base + i` (possibly superseded).
    entries: Vec<Lpn>,
}

impl LogBlock {
    fn new(base: Ppn) -> Self {
        LogBlock {
            base,
            fill: 0,
            inflight: 0,
            entries: Vec::new(),
        }
    }

    fn contains(&self, ppn: Ppn, ppb: u64) -> bool {
        ppn >= self.base && ppn < self.base + ppb
    }
}

#[derive(Debug, Clone)]
struct SwLog {
    lb: LogBlock,
    /// The logical block whose sequential stream this holds.
    lbn: u64,
    /// Sealed: a competing stream wants the block; no further appends.
    sealed: bool,
}

/// The hybrid log-block FTL.
pub struct Hybrid {
    /// Authoritative logical→physical map (simulator ground truth).
    map: Vec<Option<Ppn>>,
    /// Pages per (logical and physical) block.
    ppb: u64,
    /// lbn → base PPN of its data block.
    dir: Vec<Option<Ppn>>,
    /// The sequential log block, if open.
    sw: Option<SwLog>,
    /// Random log blocks, oldest first; only the last may be non-full.
    rw: Vec<LogBlock>,
    /// RW log-block budget.
    budget: usize,
    /// Full-merge victim selection.
    policy: MergePolicy,
    /// Events awaiting the controller (switch-merge erases).
    events: Vec<HybridEvent>,
    stats: HybridStats,
}

impl Hybrid {
    /// A hybrid FTL over `logical_pages`, with physical/logical blocks of
    /// `pages_per_block` pages, `log_blocks` RW log blocks and `policy`
    /// victim selection.
    pub fn new(
        logical_pages: u64,
        pages_per_block: u32,
        log_blocks: usize,
        policy: MergePolicy,
    ) -> Self {
        assert!(pages_per_block > 0, "pages_per_block must be positive");
        assert!(log_blocks > 0, "log_blocks must be positive");
        let ppb = pages_per_block as u64;
        let lbns = logical_pages.div_ceil(ppb).max(1);
        Hybrid {
            map: vec![None; logical_pages as usize],
            ppb,
            dir: vec![None; lbns as usize],
            sw: None,
            rw: Vec::new(),
            budget: log_blocks,
            policy,
            events: Vec::new(),
            stats: HybridStats::default(),
        }
    }

    /// Rebuild a hybrid FTL from recovered state (mount-time OOB scan).
    ///
    /// `dir` registers the blocks recovery classified as data blocks (all
    /// live pages at their logical offsets, one logical block each);
    /// `logs` re-registers every other block still holding live pages as a
    /// random log block `(base, entries)`, where `entries[o]` is the OOB
    /// logical page of offset `o` (superseded entries included, exactly as
    /// the live page table would have recorded them). No sequential log
    /// block survives a crash — the next offset-0 stream opens a fresh
    /// one. `logs` may exceed the budget: the controller then full-merges
    /// the excess down before accepting new random writes, the recovery
    /// merge storm a crashed log pool implies.
    pub fn restore(
        logical_pages: u64,
        pages_per_block: u32,
        log_blocks: usize,
        policy: MergePolicy,
        map: Vec<Option<Ppn>>,
        dir: Vec<Option<Ppn>>,
        logs: Vec<(Ppn, Vec<Lpn>)>,
    ) -> Self {
        let mut h = Hybrid::new(logical_pages, pages_per_block, log_blocks, policy);
        assert_eq!(map.len(), h.map.len());
        assert_eq!(dir.len(), h.dir.len());
        h.map = map;
        h.dir = dir;
        for (base, entries) in logs {
            let mut lb = LogBlock::new(base);
            lb.fill = entries.len() as u32;
            lb.entries = entries;
            h.rw.push(lb);
        }
        h
    }

    /// Scheme-level merge counters.
    pub fn stats(&self) -> HybridStats {
        self.stats
    }

    /// Logical block of `lpn`.
    pub fn lbn_of(&self, lpn: Lpn) -> u64 {
        lpn / self.ppb
    }

    /// Number of logical blocks.
    pub fn lbn_count(&self) -> u64 {
        self.dir.len() as u64
    }

    /// Pages `lbn` actually spans (the last logical block may be partial).
    fn lbn_pages(&self, lbn: u64) -> u32 {
        let start = lbn * self.ppb;
        (self.map.len() as u64 - start).min(self.ppb) as u32
    }

    /// Log blocks currently in use (SW + RW), as base PPNs.
    pub fn log_bases(&self) -> Vec<Ppn> {
        let mut v: Vec<Ppn> = self.rw.iter().map(|l| l.base).collect();
        if let Some(sw) = &self.sw {
            v.push(sw.lb.base);
        }
        v
    }

    /// The logical block whose data block starts at `base`, if any.
    /// Linear in the directory — for repeated membership tests over many
    /// blocks, build [`Hybrid::data_block_map`] once instead.
    pub fn data_lbn(&self, base: Ppn) -> Option<u64> {
        self.dir
            .iter()
            .position(|d| *d == Some(base))
            .map(|i| i as u64)
    }

    /// Invert the directory: base PPN → lbn for every registered data
    /// block, for O(1) membership tests in whole-array block scans.
    pub fn data_block_map(&self) -> std::collections::BTreeMap<Ppn, u64> {
        self.dir
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.map(|base| (base, i as u64)))
            .collect()
    }

    /// Where the next write of `lpn` must go. Pure: the decision is
    /// re-derived (and committed) by [`Hybrid::commit_append`] at issue
    /// time.
    pub fn place(&self, lpn: Lpn) -> HybridPlace {
        let lbn = self.lbn_of(lpn);
        let off = (lpn % self.ppb) as u32;
        if let Some(sw) = &self.sw {
            if !sw.sealed && sw.lbn == lbn {
                if sw.lb.fill == off {
                    return HybridPlace::Append(sw.lb.base + off as u64);
                }
                if off > sw.lb.fill {
                    return HybridPlace::AwaitSequential;
                }
                // `off < fill`: an overwrite behind the stream → random.
            }
            if off == 0 {
                // A new sequential stream contends for the SW block.
                return HybridPlace::NeedsSeqMerge;
            }
        } else if off == 0 {
            return HybridPlace::NeedsLogBlock { sequential: true };
        }
        // Random path: append to the open RW block, else open, else merge.
        if let Some(open) = self.rw.last() {
            if open.fill < self.ppb as u32 {
                return HybridPlace::Append(open.base + open.fill as u64);
            }
        }
        if self.rw.len() < self.budget {
            return HybridPlace::NeedsLogBlock { sequential: false };
        }
        HybridPlace::NeedsMerge
    }

    /// Commit the placement for `lpn`: advance the log block's fill pointer
    /// and record the in-flight append. Callers must have seen
    /// [`HybridPlace::Append`] from [`Hybrid::place`] in the same scheduling
    /// step.
    pub fn commit_append(&mut self, lpn: Lpn) -> Ppn {
        let place = self.place(lpn);
        let HybridPlace::Append(ppn) = place else {
            panic!("commit_append of {lpn} without an append placement ({place:?})");
        };
        let lb = match &mut self.sw {
            Some(sw) if sw.lb.contains(ppn, self.ppb) => &mut sw.lb,
            _ => self
                .rw
                .last_mut()
                .expect("random append implies open block"),
        };
        debug_assert_eq!(lb.base + lb.fill as u64, ppn);
        lb.entries.push(lpn);
        lb.fill += 1;
        lb.inflight += 1;
        ppn
    }

    /// An issued append completed but its payload was discarded (stale
    /// buffered flush): release the in-flight slot without mapping it.
    pub fn abort_append(&mut self, ppn: Ppn) {
        self.note_commit(ppn);
    }

    /// Open a fresh log block at `base`. `sequential` carries the logical
    /// block of the incoming offset-0 stream for an SW block.
    pub fn open_log(&mut self, base: Ppn, sequential: Option<u64>) {
        self.stats.log_blocks_opened += 1;
        match sequential {
            Some(lbn) => {
                assert!(self.sw.is_none(), "opening SW log over an existing one");
                self.sw = Some(SwLog {
                    lb: LogBlock::new(base),
                    lbn,
                    sealed: false,
                });
            }
            None => {
                assert!(self.rw.len() < self.budget, "RW log budget exceeded");
                self.rw.push(LogBlock::new(base));
            }
        }
    }

    /// Seal the SW log block: a competing sequential stream needs it; no
    /// further appends until it is merged.
    pub fn seal_sw(&mut self) {
        if let Some(sw) = &mut self.sw {
            sw.sealed = true;
        }
    }

    /// Hand a still-empty SW log block to a new sequential stream instead
    /// of merging it (two offset-0 streams racing before either appended).
    /// Returns whether the retarget happened.
    pub fn retarget_empty_sw(&mut self, lbn: u64) -> bool {
        match &mut self.sw {
            Some(sw) if sw.lb.fill == 0 => {
                sw.lbn = lbn;
                sw.sealed = false;
                true
            }
            _ => false,
        }
    }

    /// Current data block of `lbn`, as a base PPN.
    pub fn data_block(&self, lbn: u64) -> Option<Ppn> {
        self.dir[lbn as usize]
    }

    /// Take the SW log block for merging, once no append is in flight.
    /// Removes it from the log set; the caller owns the block until the
    /// merge completes.
    pub fn take_sw_for_merge(&mut self) -> Option<SwMergePlan> {
        let sw = self.sw.as_ref()?;
        if sw.lb.inflight > 0 {
            return None; // retry once issued appends commit
        }
        let sw = self.sw.take().expect("checked above");
        let base = sw.lb.base;
        let lbn = sw.lbn;
        let prefix_current = (0..sw.lb.fill)
            .all(|o| self.map[(lbn * self.ppb + o as u64) as usize] == Some(base + o as u64));
        let reuse_from = prefix_current.then_some(sw.lb.fill);
        if reuse_from.is_some() {
            // Switch vs partial is decided by whether a tail remains; the
            // controller reports back via `fold_finished`, but the scheme
            // classification is known now.
            if self.fold_end(lbn) <= sw.lb.fill {
                self.stats.switch_merges += 1;
            } else {
                self.stats.partial_merges += 1;
            }
        } else {
            self.stats.full_merges += 1;
        }
        Some(SwMergePlan {
            base,
            lbn,
            reuse_from,
        })
    }

    /// Pick and take a full-merge victim among the exhausted RW log blocks,
    /// once it has no append in flight. Removes it from the log set.
    pub fn take_merge_victim(&mut self) -> Option<FullMergePlan> {
        if self.rw.len() < self.budget {
            return None; // budget not exhausted: no forced merge
        }
        let idx = match self.policy {
            MergePolicy::Fifo => self.rw.iter().position(|l| l.inflight == 0)?,
            MergePolicy::MinValid => self
                .rw
                .iter()
                .enumerate()
                .filter(|(_, l)| l.inflight == 0)
                .min_by_key(|(i, l)| (self.live_entries(l), *i))
                .map(|(i, _)| i)?,
        };
        let victim = self.rw.remove(idx);
        let mut lbns: Vec<u64> = Vec::new();
        for (o, &lpn) in victim.entries.iter().enumerate() {
            if self.map[lpn as usize] == Some(victim.base + o as u64) {
                let lbn = self.lbn_of(lpn);
                if !lbns.contains(&lbn) {
                    lbns.push(lbn);
                }
            }
        }
        self.stats.full_merges += 1;
        Some(FullMergePlan {
            victim: victim.base,
            lbns,
        })
    }

    /// Live (still-mapped) entries in a log block.
    fn live_entries(&self, lb: &LogBlock) -> u32 {
        lb.entries
            .iter()
            .enumerate()
            .filter(|(o, &lpn)| self.map[lpn as usize] == Some(lb.base + *o as u64))
            .count() as u32
    }

    /// One past the highest mapped offset of `lbn` (0 = nothing mapped).
    /// The controller folds offsets `[start, end)`; trailing unmapped pages
    /// stay unprogrammed.
    pub fn fold_end(&self, lbn: u64) -> u32 {
        let pages = self.lbn_pages(lbn);
        (0..pages)
            .rev()
            .find(|&o| self.map[(lbn * self.ppb + o as u64) as usize].is_some())
            .map_or(0, |o| o + 1)
    }

    /// A WL-refresh victim is only meaningful for registered data blocks.
    /// Count it at plan time.
    pub fn note_refresh_merge(&mut self) {
        self.stats.refresh_merges += 1;
    }

    /// A merge copy of `lpn` landed at `new_ppn` and is still current.
    pub fn merge_committed(&mut self, lpn: Lpn, new_ppn: Ppn) {
        self.map[lpn as usize] = Some(new_ppn);
    }

    /// A fold of `lbn` finished with `dest` as its new data block (`None`:
    /// the logical block had no live pages and keeps no data block).
    /// Returns the superseded data block to erase, if any.
    pub fn fold_finished(&mut self, lbn: u64, dest: Option<Ppn>) -> Option<Ppn> {
        let old = self.dir[lbn as usize];
        self.dir[lbn as usize] = dest;
        old.filter(|&o| Some(o) != dest)
    }

    /// Drain switch-merge events for the controller.
    pub fn take_events(&mut self) -> Vec<HybridEvent> {
        std::mem::take(&mut self.events)
    }

    /// Decrement the in-flight count of the log block holding `ppn`.
    fn note_commit(&mut self, ppn: Ppn) {
        let ppb = self.ppb;
        if let Some(sw) = &mut self.sw {
            if sw.lb.contains(ppn, ppb) {
                debug_assert!(sw.lb.inflight > 0);
                sw.lb.inflight -= 1;
                return;
            }
        }
        if let Some(lb) = self.rw.iter_mut().find(|l| l.contains(ppn, ppb)) {
            debug_assert!(lb.inflight > 0);
            lb.inflight -= 1;
        }
    }

    /// After an append into the SW block commits: if the block now holds a
    /// complete, current, in-order copy of its logical block, switch-merge
    /// it on the spot — the log block becomes the data block and the old
    /// data block is queued for erase. The free merge the scheme exists for.
    fn maybe_switch(&mut self) {
        let Some(sw) = &self.sw else { return };
        if sw.lb.fill < self.ppb as u32 || sw.lb.inflight > 0 {
            return;
        }
        let (base, lbn) = (sw.lb.base, sw.lbn);
        let complete =
            (0..self.ppb).all(|o| self.map[(lbn * self.ppb + o) as usize] == Some(base + o));
        if !complete {
            return;
        }
        self.sw = None;
        self.stats.switch_merges += 1;
        if let Some(old) = self.fold_finished(lbn, Some(base)) {
            self.events.push(HybridEvent::EraseDataBlock { base: old });
        }
    }

    #[cfg(test)]
    fn rw_len(&self) -> usize {
        self.rw.len()
    }
}

impl Ftl for Hybrid {
    fn lookup(&mut self, lpn: Lpn, _pin: bool) -> MapLookup {
        // The directory and log page tables fit in RAM: lookups never
        // require flash IOs (the scheme's cost sits in merges instead).
        MapLookup::Ready(self.map[lpn as usize])
    }

    fn unpin(&mut self, _lpn: Lpn) {}

    fn update(&mut self, lpn: Lpn, ppn: Ppn) -> Option<Ppn> {
        let old = self.map[lpn as usize].replace(ppn);
        self.note_commit(ppn);
        self.maybe_switch();
        old
    }

    fn relocate(&mut self, lpn: Lpn, new_ppn: Ppn) {
        // Generic GC/WL relocation does not run under the hybrid scheme
        // (merges replace it), but keep the map authoritative if called.
        debug_assert!(
            self.map[lpn as usize].is_some(),
            "relocate of unmapped lpn {lpn}"
        );
        self.map[lpn as usize] = Some(new_ppn);
    }

    fn trim(&mut self, lpn: Lpn) -> Option<Ppn> {
        self.map[lpn as usize].take()
    }

    fn fetch_complete(&mut self, _tvpn: u64, _lpns: &[Lpn]) {}

    fn take_writebacks(&mut self) -> Vec<TranslationWriteback> {
        Vec::new()
    }

    fn translation_location(&self, _tvpn: u64) -> Option<Ppn> {
        None
    }

    fn translation_written(&mut self, _tvpn: u64, _new_ppn: Ppn) -> Option<Ppn> {
        None
    }

    fn tvpn_of(&self, _lpn: Lpn) -> u64 {
        0
    }

    fn ram_bytes(&self) -> u64 {
        // Directory: 8 B per logical block. Log page tables: 8 B per page
        // plus a small header per log block, at the static worst case
        // (full RW budget + the SW block) — the controller reserves this
        // once at construction, before any log block opens. The
        // authoritative `map` is simulator ground truth, not part of the
        // modeled footprint.
        let log_blocks = self.budget as u64 + 1;
        self.dir.len() as u64 * 8 + log_blocks * (self.ppb * 8 + 32)
    }

    fn peek(&self, lpn: Lpn) -> Option<Ppn> {
        self.map[lpn as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 64 logical pages over 8-page blocks, 2 RW log blocks.
    fn hybrid() -> Hybrid {
        Hybrid::new(64, 8, 2, MergePolicy::Fifo)
    }

    /// Simulate an append landing: place must be Append, then commit both
    /// the placement and (immediately) the map update.
    fn append(h: &mut Hybrid, lpn: Lpn) -> Ppn {
        let ppn = h.commit_append(lpn);
        let old = h.update(lpn, ppn);
        assert_ne!(old, Some(ppn));
        ppn
    }

    #[test]
    fn offset_zero_opens_sequential_log() {
        let h = hybrid();
        assert_eq!(h.place(0), HybridPlace::NeedsLogBlock { sequential: true });
        assert_eq!(h.place(3), HybridPlace::NeedsLogBlock { sequential: false });
    }

    #[test]
    fn sequential_stream_appends_then_switch_merges() {
        let mut h = hybrid();
        h.open_log(800, Some(0));
        for lpn in 0..8 {
            assert_eq!(h.place(lpn), HybridPlace::Append(800 + lpn));
            append(&mut h, lpn);
        }
        // Full in-order block: switched for free, no data block existed.
        assert_eq!(h.stats().switch_merges, 1);
        assert!(h.take_events().is_empty());
        assert_eq!(h.data_lbn(800), Some(0));
        assert_eq!(h.peek(5), Some(805));
        // The SW slot is free again.
        assert_eq!(h.place(8), HybridPlace::NeedsLogBlock { sequential: true });
    }

    #[test]
    fn switch_merge_erases_superseded_data_block() {
        let mut h = hybrid();
        h.open_log(800, Some(0));
        for lpn in 0..8 {
            append(&mut h, lpn);
        }
        h.open_log(900, Some(0));
        for lpn in 0..8 {
            append(&mut h, lpn);
        }
        assert_eq!(h.stats().switch_merges, 2);
        assert_eq!(
            h.take_events(),
            vec![HybridEvent::EraseDataBlock { base: 800 }]
        );
        assert_eq!(h.data_lbn(900), Some(0));
        assert_eq!(h.data_lbn(800), None);
    }

    #[test]
    fn random_writes_fill_rw_blocks_then_demand_merge() {
        let mut h = hybrid();
        h.open_log(800, None);
        // Non-zero offsets from several logical blocks.
        let lpns = [1u64, 9, 17, 25, 33, 41, 49, 57];
        for (i, &lpn) in lpns.iter().enumerate() {
            assert_eq!(h.place(lpn), HybridPlace::Append(800 + i as u64));
            append(&mut h, lpn);
        }
        assert_eq!(h.place(2), HybridPlace::NeedsLogBlock { sequential: false });
        h.open_log(900, None);
        for i in 0..8u64 {
            append(&mut h, 2 + i * 8);
        }
        assert_eq!(h.rw_len(), 2);
        assert_eq!(h.place(3), HybridPlace::NeedsMerge);
    }

    #[test]
    fn full_merge_plan_lists_live_lbns_in_order() {
        let mut h = hybrid();
        h.open_log(800, None);
        for &lpn in &[1u64, 9, 1, 9, 17, 2, 3, 10] {
            append(&mut h, lpn);
        }
        h.open_log(900, None);
        append(&mut h, 17); // supersedes the lpn-17 entry in the victim
        let plan = h.take_merge_victim().expect("budget exhausted");
        assert_eq!(plan.victim, 800);
        // lpn 17's copy in block 800 is stale; lbns 0 and 1 remain.
        assert_eq!(plan.lbns, vec![0, 1]);
        assert_eq!(h.rw_len(), 1);
        assert_eq!(h.stats().full_merges, 1);
    }

    #[test]
    fn min_valid_policy_picks_cheapest_victim() {
        let mut h = Hybrid::new(64, 4, 2, MergePolicy::MinValid);
        h.open_log(800, None);
        for &lpn in &[1u64, 2, 3, 5] {
            append(&mut h, lpn);
        }
        h.open_log(900, None);
        // Supersede most of block 800 from block 900.
        for &lpn in &[1u64, 2, 3, 6] {
            append(&mut h, lpn);
        }
        let plan = h.take_merge_victim().unwrap();
        assert_eq!(plan.victim, 800, "block 800 has one live entry");
        assert_eq!(plan.lbns, vec![1]);
    }

    #[test]
    fn sw_merge_partial_vs_switch_classification() {
        let mut h = hybrid();
        // Stream pages 0..3 of lbn 1 into the SW block, then let lbn 0
        // contend for it.
        h.open_log(800, Some(1));
        for lpn in 8..11 {
            append(&mut h, lpn);
        }
        h.seal_sw();
        let plan = h.take_sw_for_merge().unwrap();
        assert_eq!(plan.base, 800);
        assert_eq!(plan.lbn, 1);
        assert_eq!(plan.reuse_from, Some(3));
        // Nothing beyond the prefix is mapped: a switch (no copies).
        assert_eq!(h.fold_end(1), 3);
        assert_eq!(h.stats().switch_merges, 1);

        // Now a prefix with a mapped tail → partial merge. The tail write
        // (offset 4, ahead of the stream) waits until the SW is sealed,
        // then takes the random path.
        h.open_log(900, Some(2));
        append(&mut h, 16);
        h.open_log(1000, None);
        assert_eq!(h.place(20), HybridPlace::AwaitSequential);
        h.seal_sw();
        append(&mut h, 20); // offset 4 of lbn 2 lives in an RW block
        let plan = h.take_sw_for_merge().unwrap();
        assert_eq!(plan.reuse_from, Some(1));
        assert_eq!(h.fold_end(2), 5);
        assert_eq!(h.stats().partial_merges, 1);
    }

    #[test]
    fn superseded_sw_prefix_forces_full_style_fold() {
        let mut h = hybrid();
        h.open_log(800, Some(1));
        for lpn in 8..11 {
            append(&mut h, lpn);
        }
        // Overwrite page 9 through the random path: the prefix is stale.
        h.open_log(900, None);
        append(&mut h, 9);
        h.seal_sw();
        let plan = h.take_sw_for_merge().unwrap();
        assert_eq!(plan.reuse_from, None);
        assert_eq!(h.stats().full_merges, 1);
    }

    #[test]
    fn inflight_appends_defer_merges() {
        let mut h = hybrid();
        h.open_log(800, Some(0));
        let ppn = h.commit_append(0); // issued, not yet committed
        h.seal_sw();
        assert!(h.take_sw_for_merge().is_none(), "in-flight append");
        h.update(0, ppn);
        assert!(h.take_sw_for_merge().is_some());
    }

    #[test]
    fn fold_bookkeeping_replaces_data_block() {
        let mut h = hybrid();
        h.open_log(800, None);
        append(&mut h, 1);
        assert_eq!(h.fold_end(0), 2);
        // Fold lbn 0 into a fresh block at 1600.
        h.merge_committed(1, 1601);
        assert_eq!(h.fold_finished(0, Some(1600)), None);
        assert_eq!(h.data_lbn(1600), Some(0));
        // A later fold supersedes it.
        h.merge_committed(1, 1701);
        assert_eq!(h.fold_finished(0, Some(1700)), Some(1600));
    }

    #[test]
    fn trim_unmaps_and_shrinks_fold_end() {
        let mut h = hybrid();
        h.open_log(800, None);
        append(&mut h, 5);
        append(&mut h, 3);
        assert_eq!(h.fold_end(0), 6);
        assert_eq!(h.trim(5), Some(800));
        assert_eq!(h.fold_end(0), 4);
        assert_eq!(h.trim(5), None);
    }

    #[test]
    fn ram_bytes_far_below_page_map() {
        let h = Hybrid::new(1 << 16, 64, 8, MergePolicy::Fifo);
        // Page map would be 8 B × 65536 = 512 KiB; hybrid holds a 1024-entry
        // directory plus at most 9 log page tables.
        assert!(h.ram_bytes() < (1u64 << 19) / 8);
    }

    #[test]
    fn last_partial_logical_block_is_bounded() {
        let h = Hybrid::new(20, 8, 2, MergePolicy::Fifo);
        assert_eq!(h.lbn_count(), 3);
        assert_eq!(h.lbn_pages(2), 4);
        assert_eq!(h.fold_end(2), 0);
    }

    #[test]
    fn abort_append_releases_inflight_slot() {
        let mut h = hybrid();
        h.open_log(800, Some(0));
        let ppn = h.commit_append(0);
        h.seal_sw();
        assert!(h.take_sw_for_merge().is_none());
        h.abort_append(ppn);
        assert!(h.take_sw_for_merge().is_some());
    }
}
