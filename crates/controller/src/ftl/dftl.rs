//! DFTL: demand-based selective caching of page-level mappings.
//!
//! Faithful cost model of Gupta, Kim & Urgaonkar (ASPLOS 2009):
//!
//! * The full page map is logically stored on flash in *translation pages*,
//!   each covering `entries_per_tp` consecutive logical pages.
//! * A **GTD** (global translation directory) in RAM maps each translation
//!   virtual page (tvpn) to its current flash location.
//! * A **CMT** (cached mapping table) holds a bounded set of entries; a
//!   lookup miss costs a flash read of the translation page, and evicting a
//!   dirty entry costs a read-merge-program of its translation page.
//! * **Batched updates**: evicting one dirty entry writes back *all* dirty
//!   CMT entries of the same translation page in the same program, and GC
//!   relocations accumulate in a pending set folded into the next write of
//!   that translation page — DFTL's lazy-copying optimization.
//!
//! Any mutation may evict dirty entries; the resulting
//! [`TranslationWriteback`]s are queued internally and drained by the
//! controller via [`Ftl::take_writebacks`].
//!
//! The authoritative map is kept in RAM for simulator correctness; the CMT
//! / GTD / pending structures model the *cost* (which operations require
//! flash IOs), never the values.

use std::collections::{BTreeMap, BTreeSet};

use crate::ftl::lru::LruCache;
use crate::ftl::{Ftl, MapLookup, TranslationWriteback};
use crate::types::{Lpn, Ppn};

/// DFTL mapping scheme.
pub struct Dftl {
    /// Authoritative logical→physical map (simulator ground truth).
    map: Vec<Option<Ppn>>,
    /// Cached mapping table: which entries are in controller RAM.
    cmt: LruCache,
    /// tvpn → flash location of the translation page.
    gtd: Vec<Option<Ppn>>,
    /// GC-relocated entries not yet persisted nor cached, by tvpn.
    pending: BTreeMap<u64, BTreeSet<Lpn>>,
    /// Dirty-eviction writebacks awaiting the controller.
    queued: Vec<TranslationWriteback>,
    /// Mapping entries per translation page.
    entries_per_tp: u64,
    /// Cost-model counters.
    stats: DftlStats,
}

/// Observability counters for the mapping cost model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DftlStats {
    /// Lookups answered from the CMT.
    pub cmt_hits: u64,
    /// Lookups answered from the pending-update set.
    pub pending_hits: u64,
    /// Lookups that required a translation-page fetch.
    pub misses: u64,
    /// Dirty evictions that triggered a translation writeback.
    pub writebacks: u64,
    /// Dirty sibling entries cleaned for free by batched writebacks.
    pub batched_entries: u64,
}

impl Dftl {
    /// A DFTL over `logical_pages`, with `cmt_entries` cached entries and
    /// translation pages covering `entries_per_tp` entries each
    /// (typically `page_size / 8`).
    pub fn new(logical_pages: u64, cmt_entries: usize, entries_per_tp: u64) -> Self {
        assert!(entries_per_tp > 0, "entries_per_tp must be positive");
        let tvpns = logical_pages.div_ceil(entries_per_tp).max(1);
        Dftl {
            map: vec![None; logical_pages as usize],
            cmt: LruCache::new(cmt_entries),
            gtd: vec![None; tvpns as usize],
            pending: BTreeMap::new(),
            queued: Vec::new(),
            entries_per_tp,
            stats: DftlStats::default(),
        }
    }

    /// Rebuild a DFTL from recovered state (mount-time OOB scan or
    /// checkpoint replay): the authoritative data map plus the flash
    /// locations of surviving translation pages. The CMT starts cold and
    /// the pending set empty — the first lookups after a remount pay
    /// translation fetches, exactly the cost model a cold mount implies.
    pub fn restore(
        logical_pages: u64,
        cmt_entries: usize,
        entries_per_tp: u64,
        map: Vec<Option<Ppn>>,
        gtd: Vec<Option<Ppn>>,
    ) -> Self {
        let mut d = Dftl::new(logical_pages, cmt_entries, entries_per_tp);
        assert_eq!(map.len(), d.map.len());
        assert_eq!(gtd.len(), d.gtd.len());
        d.map = map;
        d.gtd = gtd;
        d
    }

    /// Cost-model counters.
    pub fn stats(&self) -> DftlStats {
        self.stats
    }

    /// Number of translation virtual pages.
    pub fn tvpn_count(&self) -> u64 {
        self.gtd.len() as u64
    }

    /// Entries currently cached.
    pub fn cmt_len(&self) -> usize {
        self.cmt.len()
    }

    fn tvpn_of_internal(&self, lpn: Lpn) -> u64 {
        lpn / self.entries_per_tp
    }

    /// Queue a writeback of `tvpn`, batch-cleaning dirty siblings and
    /// folding its pending GC relocations into the same program.
    fn queue_writeback(&mut self, tvpn: u64) {
        self.stats.writebacks += 1;
        let siblings: Vec<Lpn> = self
            .cmt
            .keys()
            .filter(|&l| self.tvpn_of_internal(l) == tvpn && self.cmt.is_dirty(l))
            .collect();
        for l in siblings {
            self.cmt.set_dirty(l, false);
            self.stats.batched_entries += 1;
        }
        self.pending.remove(&tvpn);
        self.queued.push(TranslationWriteback {
            tvpn,
            old_ppn: self.gtd[tvpn as usize],
        });
    }

    /// Insert `lpn` into the CMT; a dirty eviction queues a writeback.
    fn cmt_insert(&mut self, lpn: Lpn, dirty: bool) {
        if let Some((victim, was_dirty)) = self.cmt.insert(lpn, dirty) {
            if was_dirty {
                let tvpn = self.tvpn_of_internal(victim);
                self.queue_writeback(tvpn);
            }
        }
    }
}

impl Ftl for Dftl {
    fn lookup(&mut self, lpn: Lpn, pin: bool) -> MapLookup {
        let tvpn = self.tvpn_of_internal(lpn);
        if self.cmt.contains(lpn) {
            self.cmt.touch(lpn);
            if pin {
                self.cmt.pin(lpn);
            }
            self.stats.cmt_hits += 1;
            return MapLookup::Ready(self.map[lpn as usize]);
        }
        if self.pending.get(&tvpn).is_some_and(|s| s.contains(&lpn)) {
            // The latest location is known in RAM (awaiting fold); no flash
            // read needed. Promote into the CMT as dirty so it eventually
            // persists.
            self.stats.pending_hits += 1;
            self.pending.get_mut(&tvpn).unwrap().remove(&lpn);
            self.cmt_insert(lpn, true);
            if pin {
                self.cmt.pin(lpn);
            }
            return MapLookup::Ready(self.map[lpn as usize]);
        }
        if self.gtd[tvpn as usize].is_none() {
            // Translation page never persisted: every entry it covers is
            // either cached, pending, or unmapped. Not cached or pending ⇒
            // unmapped; answer without flash IO, and cache the (empty)
            // entry so a subsequent write can mark it dirty.
            self.cmt_insert(lpn, false);
            if pin {
                self.cmt.pin(lpn);
            }
            self.stats.cmt_hits += 1;
            return MapLookup::Ready(self.map[lpn as usize]);
        }
        self.stats.misses += 1;
        MapLookup::NeedsFetch(tvpn)
    }

    fn unpin(&mut self, lpn: Lpn) {
        self.cmt.unpin(lpn);
    }

    fn update(&mut self, lpn: Lpn, ppn: Ppn) -> Option<Ppn> {
        let old = self.map[lpn as usize].replace(ppn);
        let tvpn = self.tvpn_of_internal(lpn);
        if let Some(s) = self.pending.get_mut(&tvpn) {
            s.remove(&lpn);
        }
        self.cmt_insert(lpn, true);
        old
    }

    fn relocate(&mut self, lpn: Lpn, new_ppn: Ppn) {
        debug_assert!(
            self.map[lpn as usize].is_some(),
            "relocate of unmapped lpn {lpn}"
        );
        self.map[lpn as usize] = Some(new_ppn);
        if self.cmt.contains(lpn) {
            self.cmt.set_dirty(lpn, true);
            self.cmt.touch(lpn);
        } else {
            let tvpn = self.tvpn_of_internal(lpn);
            self.pending.entry(tvpn).or_default().insert(lpn);
        }
    }

    fn trim(&mut self, lpn: Lpn) -> Option<Ppn> {
        let old = self.map[lpn as usize].take();
        if old.is_some() {
            let tvpn = self.tvpn_of_internal(lpn);
            if let Some(s) = self.pending.get_mut(&tvpn) {
                s.remove(&lpn);
            }
            // Record the unmapping so it persists: cache dirty.
            self.cmt_insert(lpn, true);
        }
        old
    }

    fn fetch_complete(&mut self, _tvpn: u64, lpns: &[Lpn]) {
        for &lpn in lpns {
            self.cmt_insert(lpn, false);
        }
    }

    fn take_writebacks(&mut self) -> Vec<TranslationWriteback> {
        std::mem::take(&mut self.queued)
    }

    fn translation_location(&self, tvpn: u64) -> Option<Ppn> {
        self.gtd[tvpn as usize]
    }

    fn translation_written(&mut self, tvpn: u64, new_ppn: Ppn) -> Option<Ppn> {
        // A fresh flash copy subsumes any pending relocations of this page.
        self.pending.remove(&tvpn);
        self.gtd[tvpn as usize].replace(new_ppn)
    }

    fn tvpn_of(&self, lpn: Lpn) -> u64 {
        self.tvpn_of_internal(lpn)
    }

    fn ram_bytes(&self) -> u64 {
        // CMT entries: 16 B (lpn + ppn); GTD: 8 B per tvpn; pending: 8 B.
        self.cmt.capacity() as u64 * 16
            + self.gtd.len() as u64 * 8
            + self.pending.values().map(|s| s.len() as u64 * 8).sum::<u64>()
    }

    fn peek(&self, lpn: Lpn) -> Option<Ppn> {
        self.map[lpn as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dftl() -> Dftl {
        Dftl::new(64, 4, 8)
    }

    #[test]
    fn unwritten_translation_pages_need_no_fetch() {
        let mut d = dftl();
        assert_eq!(d.lookup(0, false), MapLookup::Ready(None));
        assert_eq!(d.lookup(63, false), MapLookup::Ready(None));
        assert_eq!(d.stats().misses, 0);
    }

    #[test]
    fn miss_after_eviction_requires_fetch() {
        let mut d = dftl();
        // Writes covering distinct translation pages churn the CMT.
        for i in 0..8u64 {
            d.update(i * 8, 100 + i);
        }
        let wbs = d.take_writebacks();
        assert!(!wbs.is_empty(), "dirty evictions must queue writebacks");
        // Persist one so the GTD knows a flash location.
        let wb = wbs[0];
        assert_eq!(d.translation_written(wb.tvpn, 500), None);
        let lpn = wb.tvpn * 8;
        assert_eq!(d.lookup(lpn, false), MapLookup::NeedsFetch(wb.tvpn));
        assert!(d.stats().misses >= 1);
    }

    #[test]
    fn lookup_evictions_also_queue_writebacks() {
        // Regression: evictions triggered by read-path lookups (not just
        // updates) must surface their writebacks.
        let mut d = Dftl::new(64, 2, 8);
        d.update(0, 10);
        d.update(8, 11); // CMT full, both dirty
        let _ = d.take_writebacks();
        // Read lookup of a third tvpn evicts a dirty entry.
        assert!(matches!(d.lookup(16, false), MapLookup::Ready(None)));
        let wbs = d.take_writebacks();
        assert_eq!(wbs.len(), 1, "lookup eviction dropped its writeback");
    }

    #[test]
    fn fetch_complete_caches_entries() {
        let mut d = dftl();
        d.update(0, 42);
        for i in 1..=4u64 {
            d.update(i * 8, i);
        }
        d.take_writebacks();
        d.translation_written(0, 900);
        assert_eq!(d.lookup(0, false), MapLookup::NeedsFetch(0));
        d.fetch_complete(0, &[0]);
        assert_eq!(d.lookup(0, false), MapLookup::Ready(Some(42)));
    }

    #[test]
    fn eviction_batches_same_tvpn_dirty_entries() {
        // CMT of 4; dirty entries 0,1,2 share tvpn 0; entry 8 is tvpn 1.
        let mut d = Dftl::new(64, 4, 8);
        d.update(0, 10);
        d.update(1, 11);
        d.update(2, 12);
        d.update(8, 13);
        let _ = d.take_writebacks();
        // Insert a 5th entry: LRU victim is lpn 0 (dirty, tvpn 0) → one
        // writeback that also cleans 1 and 2.
        d.update(16, 14);
        let wbs = d.take_writebacks();
        assert_eq!(wbs.len(), 1);
        assert_eq!(wbs[0].tvpn, 0);
        assert!(d.stats().batched_entries >= 2);
    }

    #[test]
    fn relocate_uncached_goes_pending_then_hits() {
        let mut d = dftl();
        d.update(0, 10);
        for i in 1..=4u64 {
            d.update(i * 8, i); // evict lpn 0
        }
        assert!(!d.cmt.contains(0));
        d.relocate(0, 99);
        assert_eq!(d.lookup(0, false), MapLookup::Ready(Some(99)));
        assert!(d.stats().pending_hits >= 1);
    }

    #[test]
    fn translation_written_folds_pending() {
        let mut d = dftl();
        d.update(0, 10);
        for i in 1..=4u64 {
            d.update(i * 8, i);
        }
        d.relocate(0, 99);
        d.translation_written(0, 700);
        assert_eq!(d.translation_location(0), Some(700));
        assert_eq!(d.peek(0), Some(99));
    }

    #[test]
    fn pinned_entries_stay_during_churn() {
        let mut d = Dftl::new(64, 2, 8);
        d.update(0, 10);
        assert_eq!(d.lookup(0, true), MapLookup::Ready(Some(10)));
        for i in 1..10u64 {
            d.update(i * 8 % 64, i);
        }
        assert!(d.cmt.contains(0));
        d.unpin(0);
    }

    #[test]
    fn trim_unmaps_and_dirties() {
        let mut d = dftl();
        d.update(0, 10);
        assert_eq!(d.trim(0), Some(10));
        assert_eq!(d.trim(0), None);
        assert_eq!(d.lookup(0, false), MapLookup::Ready(None));
        assert!(d.cmt.is_dirty(0));
    }

    #[test]
    fn update_returns_old_ppn() {
        let mut d = dftl();
        assert_eq!(d.update(5, 50), None);
        assert_eq!(d.update(5, 51), Some(50));
        assert_eq!(d.peek(5), Some(51));
    }

    #[test]
    fn ram_bytes_scales_with_cmt() {
        let small = Dftl::new(1024, 16, 512);
        let big = Dftl::new(1024, 1024, 512);
        assert!(big.ram_bytes() > small.ram_bytes());
    }

    #[test]
    fn tvpn_partitioning() {
        let d = Dftl::new(100, 4, 8);
        assert_eq!(d.tvpn_of(0), 0);
        assert_eq!(d.tvpn_of(7), 0);
        assert_eq!(d.tvpn_of(8), 1);
        assert_eq!(d.tvpn_count(), 13); // ceil(100/8)
    }

    #[test]
    fn take_writebacks_drains() {
        let mut d = Dftl::new(64, 1, 8);
        d.update(0, 1);
        d.update(8, 2);
        assert!(!d.take_writebacks().is_empty());
        assert!(d.take_writebacks().is_empty());
    }
}
