//! Static wear leveling.
//!
//! Per §2.2, the default WL module tracks "(1) the ages of all blocks, (2) a
//! timestamp for each block marking the time in which it was last erased,
//! (3) the average length of time it takes a block to be erased, and (4)
//! the current time", and uses them to "identify particularly young blocks
//! that have not been erased for a very long time" — blocks pinning cold
//! data — and migrate that data away so the block can absorb hot writes.
//! (Dynamic wear leveling — age-aware free-block allocation — lives in the
//! allocator.)
//!
//! The victim picker is mapping-agnostic: page-mapped schemes relocate the
//! victim's pages via a generic reclaim job, while the hybrid log-block
//! FTL — whose data blocks must keep pages at their logical offsets —
//! refreshes the victim with a *merge* (fold the logical block to a fresh
//! destination, then erase), driven by the controller with the same
//! `WlRead`/`WlWrite` op classes. Callers select eligible blocks through
//! the `skip` closure: the hybrid controller, for instance, excludes log
//! blocks and anything that is not a registered data block.

use eagletree_core::SimTime;
use eagletree_flash::{BlockAddr, FlashArray};

use crate::config::WlConfig;

/// Summary of wear across the array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WearSummary {
    pub min_erases: u32,
    pub max_erases: u32,
    pub mean_erases: f64,
    pub stddev_erases: f64,
}

/// Compute the erase-count distribution summary.
///
/// A degenerate array with zero blocks yields the all-zero summary (a
/// fresh-array lookalike), never NaN — downstream reports feed these
/// fields straight into JSON, where NaN is unrepresentable.
pub fn wear_summary(array: &FlashArray) -> WearSummary {
    summarize(&array.erase_counts())
}

fn summarize(counts: &[u32]) -> WearSummary {
    if counts.is_empty() {
        return WearSummary {
            min_erases: 0,
            max_erases: 0,
            mean_erases: 0.0,
            stddev_erases: 0.0,
        };
    }
    let n = counts.len() as f64;
    let mean = counts.iter().map(|&c| c as f64).sum::<f64>() / n;
    let var = counts
        .iter()
        .map(|&c| (c as f64 - mean).powi(2))
        .sum::<f64>()
        / n;
    WearSummary {
        min_erases: counts.iter().copied().min().unwrap_or(0),
        max_erases: counts.iter().copied().max().unwrap_or(0),
        mean_erases: mean,
        stddev_erases: var.sqrt(),
    }
}

/// Identify a static-WL victim: a block whose erase count trails the
/// maximum by at least `young_delta` and which has not been erased for
/// `idle_factor ×` the fleet-average inter-erase gap.
///
/// Returns the most deserving victim (youngest, then longest idle), or
/// `None` when wear is balanced. `skip` excludes free blocks, active
/// allocation targets, and blocks already being reclaimed.
pub fn pick_wl_victim(
    array: &FlashArray,
    now: SimTime,
    cfg: &WlConfig,
    skip: impl Fn(BlockAddr) -> bool,
) -> Option<BlockAddr> {
    let total_erases = array.total_erases();
    if total_erases == 0 {
        return None;
    }
    let g = *array.geometry();
    let max_erases = array.erase_counts().into_iter().max().unwrap_or(0);
    // Average time between erases of a single block, fleet-wide: elapsed
    // time divided by erases-per-block. Clamped to at least one erase per
    // block so that sparse early erase activity does not push the idle
    // floor beyond any reachable horizon.
    let erases_per_block = (total_erases as f64 / g.total_blocks() as f64).max(1.0);
    let avg_gap_ns = now.as_nanos() as f64 / erases_per_block;
    let idle_floor_ns = (cfg.idle_factor * avg_gap_ns) as u64;

    g.blocks()
        .filter(|&b| !skip(b))
        .filter_map(|b| {
            let info = array.block_info(b);
            // Must be serviceable and hold data worth migrating.
            if info.bad || info.write_ptr == 0 {
                return None;
            }
            let young = max_erases.saturating_sub(info.erase_count) >= cfg.young_delta;
            let idle_ns = now.saturating_since(info.last_erase).as_nanos();
            if young && idle_ns >= idle_floor_ns {
                Some((b, info.erase_count, idle_ns))
            } else {
                None
            }
        })
        // Most deserving: fewest erases, then longest idle; address breaks
        // ties deterministically.
        .min_by_key(|&(b, erases, idle)| (erases, std::cmp::Reverse(idle), b))
        .map(|(b, _, _)| b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eagletree_core::SimDuration;
    use eagletree_flash::{FlashCommand, Geometry, PhysicalAddr, TimingSpec};

    fn addr(block: u32, page: u32) -> PhysicalAddr {
        PhysicalAddr {
            channel: 0,
            lun: 0,
            plane: 0,
            block,
            page,
        }
    }

    /// Program one page into `block` then cycle (invalidate + erase) it
    /// `cycles` times to inflate its erase count.
    fn cycle_block(a: &mut FlashArray, block: u32, cycles: u32) {
        for _ in 0..cycles {
            let now = a.lun_free_at(0, 0).max(a.channel_free_at(0));
            let out = a.issue(FlashCommand::Program(addr(block, 0)), now).unwrap();
            a.invalidate(addr(block, 0));
            a.issue(FlashCommand::Erase(addr(block, 0).block_addr()), out.lun_free_at)
                .unwrap();
        }
    }

    #[test]
    fn wear_summary_of_fresh_array_is_zero() {
        let a = FlashArray::new(Geometry::tiny(), TimingSpec::slc());
        let s = wear_summary(&a);
        assert_eq!(s.min_erases, 0);
        assert_eq!(s.max_erases, 0);
        assert_eq!(s.mean_erases, 0.0);
        assert_eq!(s.stddev_erases, 0.0);
    }

    #[test]
    fn summary_of_no_blocks_is_zeroed_not_nan() {
        let s = summarize(&[]);
        assert_eq!(s.min_erases, 0);
        assert_eq!(s.max_erases, 0);
        assert_eq!(s.mean_erases, 0.0);
        assert_eq!(s.stddev_erases, 0.0);
        assert!(s.mean_erases.is_finite() && s.stddev_erases.is_finite());
    }

    #[test]
    fn summary_tracks_skewed_wear() {
        let mut a = FlashArray::new(Geometry::tiny(), TimingSpec::slc());
        cycle_block(&mut a, 0, 10);
        let s = wear_summary(&a);
        assert_eq!(s.max_erases, 10);
        assert_eq!(s.min_erases, 0);
        assert!(s.stddev_erases > 0.0);
    }

    #[test]
    fn no_victim_before_any_erase() {
        let a = FlashArray::new(Geometry::tiny(), TimingSpec::slc());
        let cfg = WlConfig::default();
        assert_eq!(
            pick_wl_victim(&a, SimTime::from_nanos(1_000_000), &cfg, |_| false),
            None
        );
    }

    #[test]
    fn young_idle_block_with_data_is_victim() {
        let mut a = FlashArray::new(Geometry::tiny(), TimingSpec::slc());
        // Block 1 holds cold data written once, long ago.
        let out = a
            .issue(FlashCommand::Program(addr(1, 0)), SimTime::ZERO)
            .unwrap();
        let _ = out;
        // Block 0 churns: its erase count races ahead.
        cycle_block(&mut a, 0, 12);
        let cfg = WlConfig {
            young_delta: 8,
            idle_factor: 0.5,
            ..WlConfig::default()
        };
        let far_future = SimTime::ZERO + SimDuration::from_secs(100);
        let v = pick_wl_victim(&a, far_future, &cfg, |_| false).unwrap();
        assert_eq!(v.block, 1);
    }

    #[test]
    fn balanced_wear_produces_no_victim() {
        let mut a = FlashArray::new(Geometry::tiny(), TimingSpec::slc());
        cycle_block(&mut a, 0, 3);
        cycle_block(&mut a, 1, 3);
        // Leave data in block 1 so it would qualify if young.
        let now = a.lun_free_at(0, 0);
        a.issue(FlashCommand::Program(addr(1, 0)), now).unwrap();
        let cfg = WlConfig {
            young_delta: 8,
            ..WlConfig::default()
        };
        let far = SimTime::ZERO + SimDuration::from_secs(100);
        assert_eq!(pick_wl_victim(&a, far, &cfg, |_| false), None);
    }

    #[test]
    fn skip_is_respected() {
        let mut a = FlashArray::new(Geometry::tiny(), TimingSpec::slc());
        a.issue(FlashCommand::Program(addr(1, 0)), SimTime::ZERO).unwrap();
        cycle_block(&mut a, 0, 12);
        let cfg = WlConfig {
            young_delta: 8,
            idle_factor: 0.5,
            ..WlConfig::default()
        };
        let far = SimTime::ZERO + SimDuration::from_secs(100);
        assert_eq!(
            pick_wl_victim(&a, far, &cfg, |b| b.block == 1 && b.channel == 0 && b.lun == 0),
            None
        );
    }

    #[test]
    fn empty_blocks_are_not_victims() {
        let mut a = FlashArray::new(Geometry::tiny(), TimingSpec::slc());
        cycle_block(&mut a, 0, 12);
        // All other blocks are empty (write_ptr = 0) → nothing to migrate.
        let cfg = WlConfig {
            young_delta: 8,
            idle_factor: 0.1,
            ..WlConfig::default()
        };
        let far = SimTime::ZERO + SimDuration::from_secs(100);
        assert_eq!(pick_wl_victim(&a, far, &cfg, |_| false), None);
    }
}
