//! Battery-backed RAM write buffer.
//!
//! §2.2: "other modules can be added to the SSD controller, e.g., a
//! write-buffering module that uses battery-backed RAM to temporarily
//! store data before it is written on flash pages." Because the RAM is
//! battery-backed, a buffered write is durable and completes immediately;
//! repeated writes to the same logical page are *absorbed* (only the last
//! version ever reaches flash), and reads of buffered pages are served
//! from RAM.
//!
//! Entries carry a version so an in-flight flush can detect that its page
//! was re-dirtied (or trimmed) while the program was in flight and discard
//! the stale flash copy instead of publishing it.

use std::collections::{BTreeMap, VecDeque};

use crate::types::Lpn;

/// FIFO write buffer with per-entry versions.
#[derive(Debug, Clone)]
pub struct WriteBuffer {
    capacity: usize,
    entries: BTreeMap<Lpn, u64>,
    order: VecDeque<Lpn>,
    next_version: u64,
    /// Overwrites absorbed in RAM (writes that never cost a flash program).
    pub absorbed: u64,
    /// Reads served from the buffer.
    pub read_hits: u64,
    /// Flush programs started.
    pub flushes_started: u64,
}

impl WriteBuffer {
    /// A buffer holding up to `capacity` pages (> 0).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "write buffer capacity must be positive");
        WriteBuffer {
            capacity,
            entries: BTreeMap::new(),
            order: VecDeque::new(),
            next_version: 0,
            absorbed: 0,
            read_hits: 0,
            flushes_started: 0,
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn contains(&self, lpn: Lpn) -> bool {
        self.entries.contains_key(&lpn)
    }

    /// Buffer a write. Returns `true` when it absorbed an existing entry
    /// (no growth), `false` when a new entry was added.
    pub fn write(&mut self, lpn: Lpn) -> bool {
        self.next_version += 1;
        let v = self.next_version;
        if self.entries.insert(lpn, v).is_some() {
            self.absorbed += 1;
            true
        } else {
            self.order.push_back(lpn);
            false
        }
    }

    /// Note a read served from the buffer.
    pub fn note_read_hit(&mut self) {
        self.read_hits += 1;
    }

    /// Drop an entry (trim).
    pub fn remove(&mut self, lpn: Lpn) {
        self.entries.remove(&lpn);
        // `order` is lazily cleaned in `next_flush_candidates`.
    }

    /// The buffered logical pages, oldest first. Battery-backed RAM
    /// survives a power cut; remount re-installs exactly this list.
    pub fn resident_lpns(&self) -> Vec<Lpn> {
        let mut seen = std::collections::BTreeSet::new();
        self.order
            .iter()
            .filter(|l| self.entries.contains_key(l) && seen.insert(**l))
            .copied()
            .collect()
    }

    /// Whether the buffer is at/over capacity and should flush.
    pub fn needs_flush(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Oldest entries to flush, with their captured versions. Takes up to
    /// `max(1, capacity/4)` entries (they stay buffered until the flush
    /// completes; callers must not re-request while flushes are pending).
    pub fn next_flush_candidates(&mut self) -> Vec<(Lpn, u64)> {
        let want = (self.capacity / 4).max(1);
        let mut out = Vec::with_capacity(want);
        let mut requeue = VecDeque::new();
        while out.len() < want {
            let Some(lpn) = self.order.pop_front() else {
                break;
            };
            // Entries trimmed since enqueueing drop out of `order` here.
            if let Some(&v) = self.entries.get(&lpn) {
                out.push((lpn, v));
                requeue.push_back(lpn); // still buffered until done
            }
        }
        // Flushing entries go to the back so a second flush round picks
        // other pages first.
        self.order.extend(requeue);
        self.flushes_started += out.len() as u64;
        out
    }

    /// Finish a flush: remove the entry if its version is unchanged.
    /// Returns `true` when the flushed copy is current (publish it) and
    /// `false` when it was superseded or trimmed mid-flight (discard).
    pub fn flush_done(&mut self, lpn: Lpn, version: u64) -> bool {
        match self.entries.get(&lpn) {
            Some(&v) if v == version => {
                self.entries.remove(&lpn);
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_absorb_duplicates() {
        let mut b = WriteBuffer::new(4);
        assert!(!b.write(1));
        assert!(b.write(1));
        assert_eq!(b.len(), 1);
        assert_eq!(b.absorbed, 1);
    }

    #[test]
    fn needs_flush_at_capacity() {
        let mut b = WriteBuffer::new(2);
        b.write(1);
        assert!(!b.needs_flush());
        b.write(2);
        assert!(b.needs_flush());
    }

    #[test]
    fn flush_candidates_are_oldest_first() {
        let mut b = WriteBuffer::new(8);
        for lpn in 0..8 {
            b.write(lpn);
        }
        let c = b.next_flush_candidates();
        assert_eq!(c.len(), 2); // capacity/4
        assert_eq!(c[0].0, 0);
        assert_eq!(c[1].0, 1);
        assert_eq!(b.flushes_started, 2);
    }

    #[test]
    fn flush_done_checks_version() {
        let mut b = WriteBuffer::new(4);
        b.write(5);
        let c = b.next_flush_candidates();
        let (lpn, v) = c[0];
        // Re-dirty before the flush lands.
        b.write(5);
        assert!(!b.flush_done(lpn, v), "stale flush must be discarded");
        assert!(b.contains(5), "re-dirtied entry must stay");
        // Second flush with the fresh version succeeds.
        let c = b.next_flush_candidates();
        assert!(b.flush_done(c[0].0, c[0].1));
        assert!(!b.contains(5));
    }

    #[test]
    fn trimmed_entries_never_flush() {
        let mut b = WriteBuffer::new(4);
        b.write(1);
        b.write(2);
        b.remove(1);
        let c = b.next_flush_candidates();
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].0, 2);
    }

    #[test]
    fn flush_done_after_trim_is_stale() {
        let mut b = WriteBuffer::new(4);
        b.write(9);
        let c = b.next_flush_candidates();
        b.remove(9);
        assert!(!b.flush_done(c[0].0, c[0].1));
    }
}
