//! The SSD controller: orchestration of mapping, GC, wear leveling and
//! scheduling over the flash array.
//!
//! The controller owns an internal event agenda (flash completions and
//! scheduler wake-ups) and exposes a pull interface to the OS layer:
//! [`Controller::submit`] accepts requests, [`Controller::next_event_time`]
//! reports when something internal happens next, and
//! [`Controller::advance`] processes the agenda up to a virtual instant and
//! returns request completions. All policy — *which* pending flash
//! operation issues next and *where* unbound writes land — is delegated to
//! the configured [`crate::sched::SchedPolicy`] and write allocator — precisely
//! the design space the paper exposes.

use std::collections::{BTreeMap, BTreeSet};

use eagletree_core::{
    Cause, Obs, ObsConfig, OnlineStats, SimDuration, SimRng, SimTime, TraceKind, TraceLog,
    NO_SPAN,
};
use eagletree_flash::{
    BlockAddr, FaultEvent, FlashArray, FlashCommand, Geometry, MemoryKind, MemoryManager,
    OobEntry, OobTag, PageState, PhysicalAddr, TimingSpec,
};

use crate::alloc::{Allocator, Stream};
use crate::buffer::WriteBuffer;
use crate::config::{ControllerConfig, MappingKind, TemperatureMode};
use crate::ftl::{
    Dftl, Ftl, FtlKind, Hybrid, HybridEvent, HybridPlace, HybridStats, MapLookup, PageMap,
    TranslationWriteback,
};
use crate::gc::{pick_victim, FoldPlan, FoldState, MergeJob, ReclaimJob};
use crate::lanes::{LaneSet, MISC_LANE};
use crate::pend::{LaneKey, PendingSet, QueueKey, NO_SLOT};
use crate::recovery::{self, CheckpointRecord, CrashImage, RecoveryMode, RecoveryReport};
use crate::sched::{class_index, class_table, ClassTable};
use crate::scrub::pick_scrub_victim;
use crate::temperature::MultiBloomDetector;
use crate::types::{
    Completion, IoSource, Lpn, OpClass, Ppn, RequestId, RequestKind, SsdRequest, Temperature,
};
use crate::wear::pick_wl_victim;

/// Sort key the scheduler sees per issuable op: class, open-interface
/// priority tag, enqueue time, arrival sequence.
type SchedKey = (OpClass, Option<u8>, SimTime, u64);

/// Per-scheduling-round memo of write-issuability results, keyed by the
/// op-independent `(bound LUN, stream)` pair: every unbound write of one
/// stream shares one probe per round instead of re-scanning all LUNs.
type WriteMemo = Vec<((Option<u32>, Stream), bool)>;

/// What a physical page holds (the controller's reverse map).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageContent {
    /// Application data for this logical page.
    Data(Lpn),
    /// A DFTL translation page.
    Translation(u64),
    /// A page of a mapping checkpoint in one of the reserved slots.
    Checkpoint(u8),
}

/// Completion-event payloads: what finished and what to do next.
#[derive(Debug, Clone, Copy)]
enum DoneWhat {
    AppReadArray { id: RequestId, addr: PhysicalAddr },
    AppReadXfer { id: RequestId },
    AppWriteDone { id: RequestId, lpn: Lpn, ppn: Ppn },
    GcReadArray { job: usize, from: PhysicalAddr },
    GcXfer { job: usize, from: PhysicalAddr },
    GcWriteDone { job: usize, from_ppn: Ppn, content: PageContent, new: PhysicalAddr },
    GcCopyBackDone { job: usize, from: PhysicalAddr, to: PhysicalAddr, content: PageContent },
    EraseDone { job: usize, block: BlockAddr },
    MapFetchRead { tvpn: u64, addr: PhysicalAddr },
    MapFetchXfer { tvpn: u64 },
    WbRead { wb: usize, addr: PhysicalAddr },
    WbXfer { wb: usize },
    WbWrite { wb: usize, new: PhysicalAddr },
    FlushDone { lpn: Lpn, version: u64, ppn: Ppn },
    MergeReadDone { mj: usize, from: PhysicalAddr },
    MergeXfer { mj: usize, from: PhysicalAddr },
    MergeProgDone { mj: usize, from: Option<Ppn>, dest: Ppn },
    MergeEraseDone { source: IoSource, block: BlockAddr, job: Option<usize> },
    CkptWriteDone,
    CkptEraseDone { block: BlockAddr },
}

enum CtrlEvent {
    Wake,
    Done(DoneWhat),
}

/// Payload of an unbound write op.
#[derive(Debug, Clone, Copy)]
enum WriteWhat {
    App { id: RequestId, lpn: Lpn },
    Gc { job: usize, from_ppn: Ppn, content: PageContent },
    Translation { wb: usize },
    /// Background flush of a buffered write.
    Flush { lpn: Lpn, version: u64 },
}

/// Payload of a hybrid-FTL log append (placement resolved at issue time
/// by the log-block discipline, not the free write allocator).
#[derive(Debug, Clone, Copy)]
enum HybridWhat {
    App { id: RequestId, lpn: Lpn },
    Flush { lpn: Lpn, version: u64 },
}

impl HybridWhat {
    fn lpn(self) -> Lpn {
        match self {
            HybridWhat::App { lpn, .. } | HybridWhat::Flush { lpn, .. } => lpn,
        }
    }
}

/// A pending flash operation awaiting scheduling.
#[derive(Debug, Clone, Copy)]
enum PendKind {
    /// Transfer previously read data out of a LUN register.
    Transfer { addr: PhysicalAddr, done: DoneWhat },
    /// Erase a reclaimed victim.
    Erase { block: BlockAddr, job: usize },
    /// Application read; physical target resolved at issue time.
    AppRead { id: RequestId, lpn: Lpn },
    /// DFTL translation-page fetch; location resolved at issue time.
    MapFetchRead { tvpn: u64 },
    /// Read-merge source of a translation writeback.
    WbRead { wb: usize },
    /// Program with destination chosen at issue time.
    Write { lun: Option<u32>, stream: Stream, what: WriteWhat },
    /// GC page migration (copy-back or read+program, decided at issue).
    GcMove { job: usize, from: PhysicalAddr },
    /// Hybrid-FTL write: appends to the scheme's current log block.
    HybridWrite { what: HybridWhat },
    /// Read of the current merge-fold offset's live copy (source resolved
    /// at issue; a trimmed page reroutes to a filler program).
    MergeRead { mj: usize },
    /// Program of the current merge-fold offset into the destination
    /// block. `from` is the copied source (`None`: filler keeping the
    /// destination's NAND program order over an unmapped hole).
    MergeProgram { mj: usize, from: Option<Ppn> },
    /// Erase of a merge-retired block. `job`: set for the victim log
    /// block whose erase completes merge job `mj`.
    MergeErase { source: IoSource, block: BlockAddr, job: Option<usize> },
    /// Program of the in-flight checkpoint's next snapshot page into its
    /// reserved slot (destination derived from the checkpoint job).
    CkptWrite,
    /// Erase of a reserved block whose checkpoint a newer commit retired.
    CkptErase { block: BlockAddr },
}

#[derive(Debug, Clone, Copy)]
struct PendingOp {
    seq: u64,
    class: OpClass,
    tag: Option<u8>,
    enqueued_at: SimTime,
    kind: PendKind,
    /// Lifecycle span this op belongs to ([`NO_SPAN`] with obs off).
    span: u64,
}

/// Issue-time observability context, handed from [`Controller::issue`] to
/// `issue_cmd` through a field so the ~18 `issue_cmd` call sites stay
/// untouched: the span of the op being issued, whether it is bound to a
/// host request (vs. an internal op), and when it entered the pending set.
#[derive(Debug, Clone, Copy)]
struct ObsCur {
    span: u64,
    host: bool,
    enqueued_at: SimTime,
}

impl Default for ObsCur {
    fn default() -> Self {
        ObsCur {
            span: NO_SPAN,
            host: false,
            enqueued_at: SimTime::ZERO,
        }
    }
}

struct AppIo {
    req: SsdRequest,
    pinned: bool,
}

/// Something parked on a translation-page fetch.
#[derive(Debug, Clone, Copy)]
enum Waiter {
    Request(RequestId),
    Flush { lpn: Lpn, version: u64 },
}

struct FetchJob {
    waiting: Vec<Waiter>,
}

struct WbJob {
    tvpn: u64,
    old_ppn: Option<Ppn>,
}

/// Runtime state of the periodic mapping checkpoint
/// (`ControllerConfig::checkpoint_interval_programs > 0`).
///
/// Two reserved block groups double-buffer the snapshot: the next
/// checkpoint programs into `slots[next_slot]` page by page through the
/// scheduler, commits when its last program lands, and only then retires
/// (erases) the previous committed slot — so at every instant, either the
/// old or the new checkpoint is whole on flash.
struct CkptState {
    /// Program stamps between checkpoints.
    interval: u64,
    /// Pages one snapshot serializes to.
    pages_per_snapshot: u32,
    /// Reserved blocks per slot (never in the allocator's free pool).
    slots: [Vec<BlockAddr>; 2],
    /// Slot the next checkpoint writes into.
    next_slot: usize,
    /// The last committed checkpoint — what a power cut recovers from.
    committed: Option<CheckpointRecord>,
    /// Snapshot currently being programmed, if any.
    job: Option<CkptJob>,
    /// Stamp-counter value at the last checkpoint trigger.
    last_stamp: u64,
}

struct CkptJob {
    record: CheckpointRecord,
    /// Next snapshot page to program, `0..pages_per_snapshot`.
    next_page: u32,
}

/// Merge observability: scheme-level merge kinds (from the hybrid FTL)
/// plus flash-level merge traffic (from the controller).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeCounters {
    pub switch_merges: u64,
    pub partial_merges: u64,
    pub full_merges: u64,
    pub refresh_merges: u64,
    pub moves: u64,
    pub stale: u64,
    pub fillers: u64,
    pub erases: u64,
}

/// Controller counters.
#[derive(Debug, Clone, Default)]
pub struct CtrlStats {
    /// Flash operations issued, per class.
    pub issued: ClassTable,
    /// Per-class queue waiting time (µs).
    pub wait_us: Vec<OnlineStats>,
    pub app_reads_completed: u64,
    pub app_writes_completed: u64,
    pub trims_completed: u64,
    /// GC page migrations finished.
    pub gc_moves: u64,
    /// Migrations dropped because the page was superseded mid-flight.
    pub gc_stale: u64,
    /// Victim pages already invalid at move time (free reclamation).
    pub gc_skipped: u64,
    pub gc_erases: u64,
    pub wl_erases: u64,
    pub wl_moves: u64,
    pub mapping_fetches: u64,
    pub mapping_writebacks: u64,
    /// Hybrid-FTL merge copies committed (page landed and was still live).
    pub merge_moves: u64,
    /// Merge copies superseded mid-flight (programmed then invalidated).
    pub merge_stale: u64,
    /// Filler programs keeping merge destinations in NAND page order
    /// across unmapped holes.
    pub merge_fillers: u64,
    /// Erases of merge-retired blocks (log victims and old data blocks).
    pub merge_erases: u64,
    /// Blocks retired after exhausting erase endurance.
    pub bad_blocks_retired: u64,
    /// Mapping checkpoints committed (crash-recovery anchors).
    pub checkpoints_committed: u64,
    /// Snapshot pages programmed into the reserved checkpoint slots.
    pub checkpoint_pages: u64,
    /// Program-status failures remapped to a fresh allocation (the failed
    /// program's block is retired as grown bad).
    pub program_remaps: u64,
    /// Transient erase failures retried in place.
    pub erase_retries: u64,
    /// Scrub refresh jobs started (block evacuations driven by the
    /// read-disturb / retention thresholds).
    pub scrub_refreshes: u64,
    /// Erases completing scrub refreshes.
    pub scrub_erases: u64,
}

/// Media-reliability observables, assembled from the fault model's
/// counters and the controller's fault-handling paths. Only meaningful —
/// and only reported — when a fault model is configured
/// (`ControllerConfig::fault`); without one every field would be zero and
/// the harness omits the columns entirely.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliabilityStats {
    /// Reads sampled through the ECC path.
    pub reads_sampled: u64,
    /// Raw bit errors corrected across all reads.
    pub corrected_bits: u64,
    /// Read-retry tiers consumed (each cost a full extra array read).
    pub read_retries: u64,
    /// Reads left uncorrectable after the final retry tier.
    pub uncorrectable_reads: u64,
    /// Program-status failures reported by the medium.
    pub program_fails: u64,
    /// Erase failures reported by the medium (transient and terminal).
    pub erase_fails: u64,
    /// Blocks retired as grown bad (program-fail marks and erase-failure
    /// streaks; endurance wear-out is counted in `bad_blocks_retired`).
    pub grown_bad_blocks: u64,
    /// Failed programs the controller remapped to a fresh allocation.
    pub program_remaps: u64,
    /// Transient erase failures the controller retried.
    pub erase_retries: u64,
    /// ScrubRead operations issued through the scheduler.
    pub scrub_reads: u64,
    /// ScrubWrite operations issued through the scheduler.
    pub scrub_writes: u64,
    /// Scrub refresh jobs started.
    pub scrub_refreshes: u64,
    /// Distinct logical pages whose content hit uncorrectable bit errors
    /// (the lost-data ledger).
    pub lost_lpns: u64,
    /// Uncorrectable bit error rate: uncorrectable reads over total bits
    /// read through the ECC path.
    pub uber: f64,
}

impl CtrlStats {
    fn new() -> Self {
        CtrlStats {
            wait_us: vec![OnlineStats::new(); OpClass::ALL.len()],
            ..Default::default()
        }
    }
}

/// The simulated SSD controller.
pub struct Controller {
    array: FlashArray,
    ftl: FtlKind,
    alloc: Allocator,
    cfg: ControllerConfig,
    mem: MemoryManager,
    rng: SimRng,
    detector: MultiBloomDetector,
    /// The agenda: per-LUN event lanes (lane 0 = misc) merged
    /// deterministically. Backend per `ControllerConfig::queue`.
    events: LaneSet<CtrlEvent>,
    pending: PendingSet<PendingOp>,
    /// Reusable scratch for one scheduling round's head candidates
    /// (`(key, slot)`), keys-only view, write memo and hybrid-write scan —
    /// kept on the controller so steady-state dispatch never allocates.
    sched_cand: Vec<(SchedKey, u32)>,
    sched_keys: Vec<SchedKey>,
    write_memo: WriteMemo,
    hybrid_scratch: Vec<(u64, Lpn)>,
    lun_scratch: Vec<bool>,
    op_seq: u64,
    app: BTreeMap<RequestId, AppIo>,
    jobs: Vec<Option<ReclaimJob>>,
    merge_jobs: Vec<Option<MergeJob>>,
    /// At most one merge runs at a time: it bounds destination-block use
    /// and keeps fold programs in NAND page order.
    merge_active: bool,
    fetches: BTreeMap<u64, FetchJob>,
    wb_jobs: Vec<Option<WbJob>>,
    reverse: Vec<Option<PageContent>>,
    victims: BTreeSet<BlockAddr>,
    reclaim_active: Vec<u32>,
    buffer: Option<WriteBuffer>,
    flushes_inflight: u32,
    tracer: Option<TraceLog>,
    /// Lifecycle-span collector (`ObsConfig::span_capacity > 0`). Boxed
    /// so the disabled default costs one pointer; pure observation — it
    /// never feeds back into scheduling, timing or the RNG.
    obs: Option<Box<Obs>>,
    /// Context of the op currently being issued (see [`ObsCur`]).
    obs_cur: ObsCur,
    logical_pages: u64,
    serviced: ClassTable,
    stats: CtrlStats,
    erases_since_wl: u32,
    completions: Vec<Completion>,
    /// Next OOB program stamp (monotone over the device's whole life —
    /// remount resumes it above every stamp the scan saw).
    stamp_next: u64,
    /// Stamps of data/translation programs whose mapping effect has not
    /// landed yet; their minimum bounds the checkpoint watermark, so a
    /// snapshot never claims to cover an entry it cannot contain.
    inflight_stamps: BTreeSet<u64>,
    stamp_by_ppn: BTreeMap<Ppn, u64>,
    /// Periodic mapping checkpoint, when configured.
    ckpt: Option<CkptState>,
    /// Trim journal for the next checkpoint (only maintained when
    /// checkpointing is configured): lpn → the content version (`seq`) of
    /// the copy the trim discarded. Snapshotted into each
    /// [`CheckpointRecord`] so checkpoint replay rejects stale copies of
    /// trimmed pages instead of resurrecting them; pruned once the page
    /// is mapped again (any newer copy outranks the barrier by itself).
    /// Deterministically ordered so snapshots are reproducible.
    trim_barriers: BTreeMap<Lpn, u64>,
    /// The lost-data ledger: logical pages whose content hit uncorrectable
    /// bit errors. Deterministically ordered; only populated with a fault
    /// model installed.
    lost_lpns: BTreeSet<Lpn>,
    /// Flash ops issued since the scrubber last looked for a victim.
    ops_since_scrub: u64,
    /// Scrub refresh jobs currently in flight (bounded by
    /// `ScrubConfig::max_inflight`).
    scrub_inflight: usize,
}

impl Controller {
    /// Build a controller over a fresh flash array.
    pub fn new(
        geometry: Geometry,
        timing: TimingSpec,
        cfg: ControllerConfig,
    ) -> Result<Self, String> {
        geometry.validate()?;
        timing.validate()?;
        cfg.validate()?;
        let logical_pages =
            ((geometry.total_pages() as f64) * cfg.logical_capacity).floor() as u64;
        if logical_pages == 0 {
            return Err("logical capacity rounds to zero pages".into());
        }
        let entries_per_tp = (geometry.page_size as u64 / 8).max(1);
        let ftl = match cfg.mapping {
            MappingKind::PageMap => FtlKind::PageMap(PageMap::new(logical_pages)),
            MappingKind::Dftl { cmt_entries } => {
                FtlKind::Dftl(Box::new(Dftl::new(logical_pages, cmt_entries, entries_per_tp)))
            }
            MappingKind::Hybrid { log_blocks, merge } => {
                let lbns = logical_pages.div_ceil(geometry.pages_per_block as u64);
                let spare = geometry.total_blocks() as i64 - lbns as i64;
                // SW log block + one merge destination + slack for
                // erase-pending blocks.
                let need = log_blocks as i64 + 3;
                if spare < need {
                    return Err(format!(
                        "hybrid log budget {log_blocks} does not fit: {spare} spare \
                         blocks ({} total − {lbns} data), need ≥ {need}",
                        geometry.total_blocks()
                    ));
                }
                FtlKind::Hybrid(Box::new(Hybrid::new(
                    logical_pages,
                    geometry.pages_per_block,
                    log_blocks,
                    merge,
                )))
            }
        };
        let mut mem = MemoryManager::new(cfg.ram_bytes, cfg.battery_ram_bytes);
        mem.reserve(MemoryKind::Ram, "mapping", ftl.ram_bytes())?;
        let buffer = if cfg.write_buffer_pages > 0 {
            mem.reserve(
                MemoryKind::BatteryBackedRam,
                "write-buffer",
                cfg.write_buffer_pages * geometry.page_size as u64,
            )?;
            Some(WriteBuffer::new(cfg.write_buffer_pages as usize))
        } else {
            None
        };
        let mut array = FlashArray::new(geometry, timing);
        if let Some(fc) = cfg.fault {
            array.install_fault_model(fc);
        }
        let mut alloc = Allocator::new(geometry, cfg.write_alloc, cfg.wl.dynamic_enabled);
        let tvpns = match &ftl {
            FtlKind::Dftl(d) => d.tvpn_count(),
            _ => 0,
        };
        let ckpt =
            Self::checkpoint_state(&cfg, &geometry, logical_pages, tvpns, &mut mem, &mut alloc)?;
        let tracer = if cfg.trace_events > 0 {
            Some(TraceLog::new(cfg.trace_events))
        } else {
            None
        };
        let obs = cfg
            .obs
            .spans_enabled()
            .then(|| Box::new(Obs::new(cfg.obs.span_capacity)));
        let agenda = Self::new_agenda(&geometry, &timing, &cfg);
        Ok(Controller {
            reverse: vec![None; geometry.total_pages() as usize],
            reclaim_active: vec![0; geometry.total_luns() as usize],
            rng: SimRng::new(cfg.seed),
            detector: MultiBloomDetector::default_detector(),
            array,
            ftl,
            alloc,
            cfg,
            mem,
            events: agenda,
            pending: PendingSet::new(),
            sched_cand: Vec::new(),
            sched_keys: Vec::new(),
            write_memo: Vec::new(),
            hybrid_scratch: Vec::new(),
            lun_scratch: Vec::new(),
            op_seq: 0,
            app: BTreeMap::new(),
            jobs: Vec::new(),
            merge_jobs: Vec::new(),
            merge_active: false,
            fetches: BTreeMap::new(),
            wb_jobs: Vec::new(),
            victims: BTreeSet::new(),
            buffer,
            flushes_inflight: 0,
            tracer,
            obs,
            obs_cur: ObsCur::default(),
            logical_pages,
            serviced: class_table(0),
            stats: CtrlStats::new(),
            erases_since_wl: 0,
            completions: Vec::new(),
            stamp_next: 1,
            inflight_stamps: BTreeSet::new(),
            stamp_by_ppn: BTreeMap::new(),
            ckpt,
            trim_barriers: BTreeMap::new(),
            lost_lpns: BTreeSet::new(),
            ops_since_scrub: 0,
            scrub_inflight: 0,
        })
    }

    /// Reserve the double-buffered checkpoint slots and account their
    /// staging RAM, when checkpointing is configured.
    fn checkpoint_state(
        cfg: &ControllerConfig,
        geometry: &Geometry,
        logical_pages: u64,
        tvpns: u64,
        mem: &mut MemoryManager,
        alloc: &mut Allocator,
    ) -> Result<Option<CkptState>, String> {
        if cfg.checkpoint_interval_programs == 0 {
            return Ok(None);
        }
        let bytes = (logical_pages + tvpns) * 8;
        let pages = bytes.div_ceil(geometry.page_size as u64).max(1);
        let blocks_per_slot = pages.div_ceil(geometry.pages_per_block as u64).max(1) as usize;
        mem.reserve(MemoryKind::Ram, "checkpoint-staging", bytes)?;
        let mut slots = [Vec::new(), Vec::new()];
        for slot in &mut slots {
            for _ in 0..blocks_per_slot {
                let Some((b, _)) = alloc.take_block() else {
                    return Err(format!(
                        "checkpoint reservation does not fit: need {} spare blocks",
                        2 * blocks_per_slot
                    ));
                };
                slot.push(b);
            }
        }
        Ok(Some(CkptState {
            interval: cfg.checkpoint_interval_programs,
            pages_per_snapshot: pages as u32,
            slots,
            next_slot: 0,
            committed: None,
            job: None,
            last_stamp: 0,
        }))
    }

    /// Number of logical pages the device exports.
    pub fn logical_pages(&self) -> u64 {
        self.logical_pages
    }

    /// The underlying flash array (wear metrics, utilization, counters).
    pub fn array(&self) -> &FlashArray {
        &self.array
    }

    /// Controller counters.
    pub fn stats(&self) -> &CtrlStats {
        &self.stats
    }

    /// Internal agenda events processed so far (completions + wake-ups).
    /// One axis of the simulator-throughput metric (`events_per_sec`).
    pub fn events_processed(&self) -> u64 {
        self.events.popped()
    }

    /// Media-reliability counters, or `None` when no fault model is
    /// installed (the default — reliability reporting is strictly opt-in,
    /// so fault-free runs stay byte-identical to builds without it).
    pub fn reliability(&self) -> Option<ReliabilityStats> {
        let fm = self.array.fault()?;
        let c = fm.counters();
        let bits_read = c.reads * self.array.geometry().page_size as u64 * 8;
        Some(ReliabilityStats {
            reads_sampled: c.reads,
            corrected_bits: c.corrected_bits,
            read_retries: c.read_retries,
            uncorrectable_reads: c.uncorrectable_reads,
            program_fails: c.program_fails,
            erase_fails: c.erase_fails,
            grown_bad_blocks: c.grown_bad_blocks,
            program_remaps: self.stats.program_remaps,
            erase_retries: self.stats.erase_retries,
            scrub_reads: self.stats.issued[class_index(OpClass::ScrubRead)],
            scrub_writes: self.stats.issued[class_index(OpClass::ScrubWrite)],
            scrub_refreshes: self.stats.scrub_refreshes,
            lost_lpns: self.lost_lpns.len() as u64,
            uber: if bits_read == 0 {
                0.0
            } else {
                c.uncorrectable_reads as f64 / bits_read as f64
            },
        })
    }

    /// Logical pages whose acknowledged content hit an uncorrectable read
    /// (the lost-data ledger), in ascending LPN order.
    pub fn lost_data(&self) -> impl Iterator<Item = Lpn> + '_ {
        self.lost_lpns.iter().copied()
    }

    /// Total agenda queue operations (schedules + pops) so far: the
    /// event-engine work metric the E18 throughput sweep reports.
    pub fn queue_ops(&self) -> u64 {
        self.events.scheduled() + self.events.popped()
    }

    /// Events popped per agenda lane (index 0 = the misc lane, then one
    /// per LUN in geometry order).
    pub fn lane_pops(&self) -> &[u64] {
        self.events.lane_pops()
    }

    /// Number of agenda lanes (the misc lane plus one per LUN).
    pub fn event_lanes(&self) -> u32 {
        self.events.lane_count()
    }

    /// The event-queue backend the agenda runs on.
    pub fn queue_kind(&self) -> eagletree_core::QueueKind {
        self.events.kind()
    }

    /// Declare the largest gap expected between now and future agenda
    /// events (wake-source horizon). Forwarded to the calendar backend to
    /// self-tune bucket width; never changes behavior, only speed.
    pub fn hint_horizon(&mut self, horizon: SimDuration) {
        self.events.hint_horizon(horizon);
    }

    /// Build the per-LUN lane agenda: lane 0 is the misc lane (channel
    /// wakes, instant completions), then one lane per LUN. The horizon
    /// hint covers the longest single flash op with slack so completions
    /// stay in the calendar's near ring.
    fn new_agenda(
        geometry: &Geometry,
        timing: &TimingSpec,
        cfg: &ControllerConfig,
    ) -> LaneSet<CtrlEvent> {
        let mut lanes = LaneSet::new(cfg.queue, 1 + geometry.total_luns() as usize);
        let max_op = timing
            .t_erase
            .as_nanos()
            .max(timing.t_prog.as_nanos())
            .max(timing.t_read.as_nanos());
        lanes.hint_horizon(SimDuration::from_nanos(max_op.saturating_mul(2).max(1)));
        lanes
    }

    /// The memory manager (RAM budget introspection).
    pub fn memory(&self) -> &MemoryManager {
        &self.mem
    }

    /// DFTL cost-model counters, when DFTL is configured.
    pub fn dftl_stats(&self) -> Option<crate::ftl::DftlStats> {
        match &self.ftl {
            FtlKind::Dftl(d) => Some(d.stats()),
            _ => None,
        }
    }

    /// Hybrid-FTL scheme counters, when the hybrid mapping is configured.
    pub fn hybrid_stats(&self) -> Option<HybridStats> {
        match &self.ftl {
            FtlKind::Hybrid(h) => Some(h.stats()),
            _ => None,
        }
    }

    /// Combined merge counters: scheme-level merge kinds plus the
    /// controller's flash-level merge traffic. All zero outside the hybrid
    /// mapping.
    pub fn merge_counters(&self) -> MergeCounters {
        let h = self.hybrid_stats().unwrap_or_default();
        MergeCounters {
            switch_merges: h.switch_merges,
            partial_merges: h.partial_merges,
            full_merges: h.full_merges,
            refresh_merges: h.refresh_merges,
            moves: self.stats.merge_moves,
            stale: self.stats.merge_stale,
            fillers: self.stats.merge_fillers,
            erases: self.stats.merge_erases,
        }
    }

    fn hybrid_mut(&mut self) -> &mut Hybrid {
        match &mut self.ftl {
            FtlKind::Hybrid(h) => h,
            _ => panic!("hybrid operation outside hybrid mapping"),
        }
    }

    fn is_hybrid(&self) -> bool {
        matches!(self.ftl, FtlKind::Hybrid(_))
    }

    /// Write amplification: flash programs (including copy-backs and
    /// translation traffic) per completed application write.
    pub fn write_amplification(&self) -> f64 {
        let c = self.array.counters();
        if self.stats.app_writes_completed == 0 {
            return 0.0;
        }
        (c.programs + c.copybacks) as f64 / self.stats.app_writes_completed as f64
    }

    /// Authoritative mapping of `lpn`, bypassing the DFTL cost model.
    /// For tests and invariant checks.
    pub fn peek_mapping(&self, lpn: Lpn) -> Option<Ppn> {
        self.ftl.peek(lpn)
    }

    /// The write buffer, when configured.
    pub fn write_buffer(&self) -> Option<&WriteBuffer> {
        self.buffer.as_ref()
    }

    /// The visual trace, when `trace_events > 0` was configured.
    pub fn trace(&self) -> Option<&TraceLog> {
        self.tracer.as_ref()
    }

    /// The span collector, when `ObsConfig::span_capacity > 0`.
    pub fn obs(&self) -> Option<&Obs> {
        self.obs.as_deref()
    }

    /// Mutable span collector (the OS layer opens host spans and drains
    /// finished breakdowns through this).
    pub fn obs_mut(&mut self) -> Option<&mut Obs> {
        self.obs.as_deref_mut()
    }

    /// The configured observability knobs.
    pub fn obs_config(&self) -> ObsConfig {
        self.cfg.obs
    }

    /// Display names of the span event lanes, index-aligned with
    /// [`eagletree_core::Span`] busy-slice lane ids: "misc", then one per
    /// LUN in geometry order ("ch0/lun0", …). For Perfetto export and
    /// gantt rendering.
    pub fn obs_lane_names(&self) -> Vec<String> {
        let g = self.array.geometry();
        std::iter::once("misc".to_string())
            .chain((0..g.channels).flat_map(|c| {
                (0..g.luns_per_channel).map(move |l| format!("ch{c}/lun{l}"))
            }))
            .collect()
    }

    /// Whether `lpn`'s latest contents sit in the write buffer.
    pub fn is_buffered(&self, lpn: Lpn) -> bool {
        self.buffer.as_ref().is_some_and(|b| b.contains(lpn))
    }

    /// True when no work is pending, in flight, or scheduled.
    pub fn is_quiescent(&self) -> bool {
        self.pending.is_empty() && self.events.is_empty() && self.app.is_empty()
    }

    /// Earliest internal event, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.events.peek_time()
    }

    /// Submit a request. Completions (possibly instant) are collected by
    /// the next [`Controller::advance`] call.
    pub fn submit(&mut self, req: SsdRequest, now: SimTime) {
        assert!(
            req.lpn < self.logical_pages,
            "lpn {} beyond logical capacity {}",
            req.lpn,
            self.logical_pages
        );
        if let Some(o) = &mut self.obs {
            // The OS layer opens (and binds) host spans at enqueue time so
            // they capture queue wait; for controller-only drivers, open
            // one here covering the device portion.
            if o.request_span(req.id).is_none() {
                let kind = match req.kind {
                    RequestKind::Read => "AppRead",
                    RequestKind::Write => "AppWrite",
                    RequestKind::Trim => "Trim",
                };
                let span = o.open(kind, None, now);
                o.bind_request(req.id, span);
            }
        }
        match req.kind {
            RequestKind::Trim => {
                if let Some(b) = &mut self.buffer {
                    b.remove(req.lpn);
                }
                if let Some(old) = self.ftl.trim(req.lpn) {
                    // Journal the trim for the next checkpoint: remember
                    // the discarded copy's content version so replay can
                    // reject it (and any GC relocation of it, which
                    // inherits the seq) if its block gets re-scanned.
                    // In-flight and later host writes carry newer seqs
                    // and are unaffected.
                    if self.ckpt.is_some() {
                        let seq = self
                            .array
                            .oob(self.array.geometry().page_at(old))
                            .map(|e| e.seq)
                            .unwrap_or(0);
                        let barrier = self.trim_barriers.entry(req.lpn).or_insert(0);
                        *barrier = (*barrier).max(seq);
                    }
                    self.invalidate_ppn(old);
                }
                self.stats.trims_completed += 1;
                self.completions.push(Completion { id: req.id, at: now });
                if let Some(o) = &mut self.obs {
                    o.close_request(req.id, now);
                }
            }
            RequestKind::Write if self.buffer.is_some() => {
                // Battery-backed buffering: durable on arrival.
                self.detector.record_write(req.lpn);
                self.buffer.as_mut().unwrap().write(req.lpn);
                self.stats.app_writes_completed += 1;
                self.completions.push(Completion { id: req.id, at: now });
                if let Some(o) = &mut self.obs {
                    o.close_request(req.id, now);
                }
                self.maybe_flush(now);
            }
            RequestKind::Read
                if self
                    .buffer
                    .as_ref()
                    .is_some_and(|b| b.contains(req.lpn)) =>
            {
                // Served from the buffer: no flash IO.
                self.buffer.as_mut().unwrap().note_read_hit();
                self.stats.app_reads_completed += 1;
                self.completions.push(Completion { id: req.id, at: now });
                if let Some(o) = &mut self.obs {
                    o.close_request(req.id, now);
                }
            }
            RequestKind::Read | RequestKind::Write => {
                if req.kind == RequestKind::Write {
                    self.detector.record_write(req.lpn);
                }
                let prev = self.app.insert(
                    req.id,
                    AppIo {
                        req,
                        pinned: false,
                    },
                );
                assert!(prev.is_none(), "duplicate in-flight request id {}", req.id);
                self.start_or_park(req.id, now);
            }
        }
        self.drain_ftl_writebacks(now);
        self.run_sched(now);
    }

    /// Process internal events up to and including `now`; return completed
    /// requests.
    pub fn advance(&mut self, now: SimTime) -> Vec<Completion> {
        while let Some(t) = self.events.peek_time() {
            if t > now {
                break;
            }
            let (_lane, ev) = self.events.pop().expect("peeked event");
            match ev.payload {
                CtrlEvent::Wake => {}
                CtrlEvent::Done(d) => self.handle_done(d, ev.time),
            }
            self.run_sched(ev.time);
        }
        std::mem::take(&mut self.completions)
    }

    // ----- submission plumbing -------------------------------------------

    /// Resolve the mapping for an application IO and enqueue its first
    /// flash op, or park it on a translation fetch.
    fn start_or_park(&mut self, id: RequestId, now: SimTime) {
        let (lpn, kind, tags) = {
            let io = &self.app[&id];
            (io.req.lpn, io.req.kind, io.req.tags)
        };
        match self.ftl.lookup(lpn, true) {
            MapLookup::Ready(ppn) => {
                self.app.get_mut(&id).unwrap().pinned = true;
                match kind {
                    RequestKind::Read => {
                        if ppn.is_none() {
                            // Never written: zero-fill semantics, no flash IO.
                            self.complete_app(id, now);
                        } else {
                            self.enqueue(
                                OpClass::AppRead,
                                tags.priority,
                                now,
                                PendKind::AppRead { id, lpn },
                            );
                        }
                    }
                    RequestKind::Write if self.is_hybrid() => {
                        // The log-block discipline binds the destination;
                        // streams and LUN policies do not apply.
                        self.enqueue(
                            OpClass::AppWrite,
                            tags.priority,
                            now,
                            PendKind::HybridWrite {
                                what: HybridWhat::App { id, lpn },
                            },
                        );
                    }
                    RequestKind::Write => {
                        let stream = self.stream_for(lpn, tags);
                        let lun = match self.cfg.write_alloc {
                            crate::config::WriteAllocPolicy::Striping => {
                                Some(self.alloc.striped_lun(lpn))
                            }
                            _ => None,
                        };
                        self.enqueue(
                            OpClass::AppWrite,
                            tags.priority,
                            now,
                            PendKind::Write {
                                lun,
                                stream,
                                what: WriteWhat::App { id, lpn },
                            },
                        );
                    }
                    RequestKind::Trim => unreachable!("trims complete at submit"),
                }
            }
            MapLookup::NeedsFetch(tvpn) => {
                self.park_on_fetch(Waiter::Request(id), tvpn, now);
            }
        }
    }

    fn park_on_fetch(&mut self, waiter: Waiter, tvpn: u64, now: SimTime) {
        self.stats.mapping_fetches += 1;
        if let Some(f) = self.fetches.get_mut(&tvpn) {
            f.waiting.push(waiter);
        } else {
            if let Some(o) = &mut self.obs {
                // Link the fetch span to the request it stalls (or the
                // flush policy) rather than the generic mapping policy.
                let cause = match waiter {
                    Waiter::Request(id) => o
                        .request_span(id)
                        .map_or(Cause::Policy("mapping"), Cause::Op),
                    Waiter::Flush { .. } => Cause::Policy("flush"),
                };
                o.set_cause(cause);
            }
            self.fetches.insert(
                tvpn,
                FetchJob {
                    waiting: vec![waiter],
                },
            );
            self.enqueue(
                OpClass::MappingRead,
                None,
                now,
                PendKind::MapFetchRead { tvpn },
            );
            if let Some(o) = &mut self.obs {
                o.set_cause(Cause::None);
            }
        }
    }

    /// Kick background flushes while the buffer is at capacity.
    fn maybe_flush(&mut self, now: SimTime) {
        let Some(b) = &mut self.buffer else { return };
        if !b.needs_flush() || self.flushes_inflight > 0 {
            return;
        }
        let candidates = b.next_flush_candidates();
        for (lpn, version) in candidates {
            self.start_flush(lpn, version, now);
        }
    }

    /// Resolve the mapping for a buffered page and enqueue its program.
    fn start_flush(&mut self, lpn: Lpn, version: u64, now: SimTime) {
        match self.ftl.lookup(lpn, true) {
            MapLookup::Ready(_) => {
                self.flushes_inflight += 1;
                if self.is_hybrid() {
                    self.enqueue(
                        OpClass::AppWrite,
                        None,
                        now,
                        PendKind::HybridWrite {
                            what: HybridWhat::Flush { lpn, version },
                        },
                    );
                    return;
                }
                let stream = self.stream_for(lpn, crate::types::IoTags::none());
                self.enqueue(
                    OpClass::AppWrite,
                    None,
                    now,
                    PendKind::Write {
                        lun: None,
                        stream,
                        what: WriteWhat::Flush { lpn, version },
                    },
                );
            }
            MapLookup::NeedsFetch(tvpn) => {
                self.park_on_fetch(Waiter::Flush { lpn, version }, tvpn, now);
            }
        }
    }

    /// The write stream for an application write: open-interface locality
    /// and temperature hints first, then the on-device detector.
    fn stream_for(&self, lpn: Lpn, tags: crate::types::IoTags) -> Stream {
        if self.cfg.honor_locality {
            if let Some(g) = tags.locality_group {
                return Stream::Locality(g);
            }
        }
        let temp = match self.cfg.temperature {
            TemperatureMode::Off => return Stream::Hot,
            TemperatureMode::Detector => self.detector.classify(lpn),
            TemperatureMode::Hints => tags
                .temperature
                .unwrap_or_else(|| self.detector.classify(lpn)),
        };
        match temp {
            Temperature::Hot => Stream::Hot,
            Temperature::Cold => Stream::Cold,
        }
    }

    fn enqueue(&mut self, class: OpClass, tag: Option<u8>, now: SimTime, kind: PendKind) {
        let seq = self.op_seq;
        self.op_seq += 1;
        if let Some(t) = &mut self.tracer {
            t.record(now, seq, TraceKind::Enqueue { queue: class.name() });
        }
        let span = if self.obs.is_none() {
            NO_SPAN
        } else {
            match Self::pend_request(&kind) {
                // Host-bound phase: continue the request's lifecycle span.
                Some(id) => self
                    .obs
                    .as_ref()
                    .and_then(|o| o.request_span(id))
                    .unwrap_or(NO_SPAN),
                // Internal op: open a fresh span, causally linked to the
                // job/policy that spawned it.
                None => {
                    let cause = self.pend_cause(&kind);
                    match (self.obs.as_mut(), cause) {
                        (Some(o), Cause::None) => o.open_internal(class.name(), now),
                        (Some(o), c) => o.open_caused(class.name(), now, c),
                        (None, _) => NO_SPAN,
                    }
                }
            }
        };
        let key = match kind {
            PendKind::Transfer { .. } => QueueKey::Transfer,
            _ => QueueKey::Class(class, tag),
        };
        self.pending.insert(
            key,
            Self::write_lane(&kind),
            PendingOp {
                seq,
                class,
                tag,
                enqueued_at: now,
                kind,
                span,
            },
        );
    }

    /// The application request a pending op serves directly, if any —
    /// such ops continue the request's lifecycle span instead of opening
    /// an internal one.
    fn pend_request(kind: &PendKind) -> Option<RequestId> {
        match kind {
            PendKind::AppRead { id, .. } => Some(*id),
            PendKind::Write {
                what: WriteWhat::App { id, .. },
                ..
            } => Some(*id),
            PendKind::HybridWrite {
                what: HybridWhat::App { id, .. },
            } => Some(*id),
            PendKind::Transfer {
                done: DoneWhat::AppReadXfer { id },
                ..
            } => Some(*id),
            _ => None,
        }
    }

    /// Span cause for an op spawned by an [`IoSource`]-attributed job.
    fn source_cause(source: IoSource) -> Cause {
        Cause::Policy(match source {
            IoSource::Application => "host",
            IoSource::GarbageCollection => "gc",
            IoSource::WearLeveling => "wear-leveling",
            IoSource::Mapping => "mapping",
            IoSource::Merge => "merge",
            IoSource::Scrub => "scrub",
        })
    }

    /// Derive the cause of an internal op structurally from its pending
    /// kind: GC/WL/merge phases point at their job's source policy,
    /// mapping and checkpoint traffic at theirs. `MapFetchRead` returns
    /// [`Cause::None`] so the ambient cause context set by
    /// [`Self::park_on_fetch`] (which links the stalled *request*) wins.
    fn pend_cause(&self, kind: &PendKind) -> Cause {
        let job_cause = |job: usize| {
            self.jobs[job]
                .as_ref()
                .map_or(Cause::Policy("gc"), |j| Self::source_cause(j.source))
        };
        let merge_cause = |mj: usize| {
            self.merge_jobs[mj]
                .as_ref()
                .map_or(Cause::Policy("merge"), |j| Self::source_cause(j.source))
        };
        match kind {
            PendKind::Erase { job, .. } | PendKind::GcMove { job, .. } => job_cause(*job),
            PendKind::Write {
                what: WriteWhat::Gc { job, .. },
                ..
            } => job_cause(*job),
            PendKind::Write {
                what: WriteWhat::Translation { .. },
                ..
            }
            | PendKind::WbRead { .. } => Cause::Policy("mapping-writeback"),
            PendKind::Write {
                what: WriteWhat::Flush { .. },
                ..
            }
            | PendKind::HybridWrite {
                what: HybridWhat::Flush { .. },
            } => Cause::Policy("flush"),
            PendKind::MergeRead { mj } | PendKind::MergeProgram { mj, .. } => merge_cause(*mj),
            PendKind::MergeErase { source, .. } => Self::source_cause(*source),
            PendKind::CkptWrite | PendKind::CkptErase { .. } => Cause::Policy("checkpoint"),
            PendKind::Transfer { done, .. } => match done {
                DoneWhat::GcXfer { job, .. } => job_cause(*job),
                DoneWhat::MapFetchXfer { .. } => Cause::Policy("mapping"),
                DoneWhat::WbXfer { .. } => Cause::Policy("mapping-writeback"),
                DoneWhat::MergeXfer { mj, .. } => merge_cause(*mj),
                _ => Cause::None,
            },
            _ => Cause::None,
        }
    }

    /// Write-lane key for ops whose issuability is a pure function of
    /// `(LUN, stream)` — the contract a `PendingSet` lane requires (the
    /// lane head's verdict then covers the whole lane). Everything else
    /// goes to the group's order-scan queue.
    fn write_lane(kind: &PendKind) -> LaneKey {
        match kind {
            PendKind::Write { lun, stream, .. } => {
                let s = match stream {
                    Stream::Hot => 0u64,
                    Stream::Cold => 1,
                    Stream::Gc => 2,
                    Stream::Translation => 3,
                    Stream::Locality(g) => 4 + u64::from(*g),
                };
                Some((lun.map_or(0, |l| u64::from(l) + 1) << 40) | s)
            }
            _ => None,
        }
    }

    /// Issue a flash command whose resources the scheduler verified free,
    /// recording it in the visual trace. Returns the event lane of the
    /// LUN the command occupies alongside the flash timing outcome.
    fn issue_cmd(
        &mut self,
        cmd: FlashCommand,
        now: SimTime,
        trace_id: u64,
    ) -> (u32, eagletree_flash::IssueOutcome) {
        let out = self
            .array
            .issue(cmd, now)
            .unwrap_or_else(|e| panic!("scheduler issued invalid command: {e}"));
        if let Some(t) = &mut self.tracer {
            t.record(
                now,
                trace_id,
                TraceKind::FlashOp {
                    op: cmd.mnemonic(),
                    channel: cmd.channel(),
                    lun: cmd.lun(),
                    busy: out.lun_free_at.saturating_since(now),
                },
            );
        }
        let lane = 1 + self
            .array
            .geometry()
            .lun_index(cmd.channel(), cmd.lun());
        if self.obs_cur.span != NO_SPAN {
            if let Some(o) = &mut self.obs {
                // ECC read-retry rounds extend the busy window; attribute
                // the extra rounds' share of it to the Retry stage.
                let retry = match out.fault {
                    Some(FaultEvent::Read(r)) if r.retries > 0 => {
                        let busy = out.done_at.saturating_since(now);
                        busy * r.retries as u64 / (r.retries as u64 + 1)
                    }
                    _ => SimDuration::ZERO,
                };
                o.on_issue(
                    self.obs_cur.span,
                    lane,
                    now,
                    out.done_at,
                    retry,
                    self.obs_cur.enqueued_at,
                    self.obs_cur.host,
                );
            }
        }
        (lane, out)
    }

    /// Close the current op's internal span without a flash command —
    /// for pending ops consumed at issue time with no NAND work (a
    /// RAM-resolved map fetch, a superseded GC move, a trimmed merge
    /// source, a skipped writeback read). Host-bound spans stay open:
    /// the request's completion closes them.
    fn obs_close_cur(&mut self, now: SimTime) {
        if self.obs_cur.span != NO_SPAN && !self.obs_cur.host {
            if let Some(o) = &mut self.obs {
                o.close(self.obs_cur.span, now);
            }
        }
    }

    fn complete_app(&mut self, id: RequestId, now: SimTime) {
        if let Some(t) = &mut self.tracer {
            t.record(now, id, TraceKind::Complete);
        }
        if let Some(o) = &mut self.obs {
            o.close_request(id, now);
        }
        let io = self.app.remove(&id).expect("completing unknown request");
        if io.pinned {
            self.ftl.unpin(io.req.lpn);
        }
        match io.req.kind {
            RequestKind::Read => self.stats.app_reads_completed += 1,
            RequestKind::Write => self.stats.app_writes_completed += 1,
            RequestKind::Trim => {}
        }
        self.completions.push(Completion { id, at: now });
    }

    fn invalidate_ppn(&mut self, ppn: Ppn) {
        let addr = self.array.geometry().page_at(ppn);
        self.array.invalidate(addr);
        self.reverse[ppn as usize] = None;
    }

    // ----- OOB stamping (the durable half of the mapping) -----------------

    fn fresh_stamp(&mut self) -> u64 {
        let s = self.stamp_next;
        self.stamp_next += 1;
        s
    }

    /// The content version a relocation inherits from its source page.
    fn source_seq(&self, src_ppn: Ppn) -> u64 {
        self.array
            .oob(self.array.geometry().page_at(src_ppn))
            .expect("live relocation source carries OOB")
            .seq
    }

    /// Persist the OOB record of a data/translation program the scheduler
    /// just issued, and track its stamp until the mapping effect lands
    /// (the minimum outstanding stamp bounds the checkpoint watermark).
    /// `seq`: `None` = fresh content version (host/translation write),
    /// `Some` = inherited from a relocation source (GC / WL / merge copy —
    /// the copy must never outrank a newer host write).
    fn stamp_program(&mut self, addr: PhysicalAddr, tag: OobTag, seq: Option<u64>) {
        let stamp = self.fresh_stamp();
        let seq = seq.unwrap_or(stamp);
        self.array.set_oob(addr, OobEntry { tag, seq, stamp });
        let ppn = self.array.geometry().page_index(addr);
        self.inflight_stamps.insert(stamp);
        let prev = self.stamp_by_ppn.insert(ppn, stamp);
        debug_assert!(prev.is_none(), "page programmed twice without landing");
    }

    /// The program at `ppn` has landed (mapping effect applied or
    /// discarded): release its stamp from the watermark bound.
    fn stamp_landed(&mut self, ppn: Ppn) {
        if let Some(s) = self.stamp_by_ppn.remove(&ppn) {
            self.inflight_stamps.remove(&s);
        }
    }

    /// OOB tag for a page holding `content`.
    fn content_tag(content: PageContent) -> OobTag {
        match content {
            PageContent::Data(lpn) => OobTag::Data { lpn },
            PageContent::Translation(tvpn) => OobTag::Translation { tvpn },
            PageContent::Checkpoint(slot) => OobTag::Checkpoint { slot },
        }
    }

    // ----- garbage collection & wear leveling ----------------------------

    fn reclaim_skip_set(&self) -> impl Fn(BlockAddr) -> bool + '_ {
        move |b: BlockAddr| {
            self.victims.contains(&b)
                || self.alloc.is_free(b)
                || self.alloc.is_active(b)
                || self.is_ckpt_reserved(b)
        }
    }

    /// Whether `b` is one of the reserved checkpoint blocks (never a GC or
    /// wear-leveling victim; its pages are retired by checkpoint commits).
    fn is_ckpt_reserved(&self, b: BlockAddr) -> bool {
        self.ckpt
            .as_ref()
            .is_some_and(|c| c.slots.iter().any(|s| s.contains(&b)))
    }

    /// Effective GC trigger threshold: collect while `free < floor`.
    ///
    /// The floor is at least 2 regardless of the configured greediness:
    /// the allocator reserves the last free block for internal streams, so
    /// application writes need two free blocks to open a fresh one —
    /// a floor of 1 would deadlock (GC never triggers, app never writes).
    /// Strictly-below is essential: triggering at equality makes GC
    /// repack the device forever once free blocks settle at the threshold.
    fn gc_floor(&self) -> usize {
        (self.cfg.gc.greediness as usize).max(2)
    }

    fn maybe_gc(&mut self, lun: u32, now: SimTime) {
        while self.alloc.free_blocks(lun) < self.gc_floor()
            && self.reclaim_active[lun as usize] == 0
        {
            let victim = {
                let mut rng = self.rng.clone();
                let skip = self.reclaim_skip_set();
                let v = pick_victim(&self.array, lun, self.cfg.gc.victim, skip, &mut rng, now);
                self.rng = rng;
                v
            };
            let Some(victim) = victim else { break };
            self.start_reclaim(victim, lun, IoSource::GarbageCollection, now);
        }
    }

    fn maybe_wl(&mut self, now: SimTime) {
        let victim = {
            let skip = self.reclaim_skip_set();
            pick_wl_victim(&self.array, now, &self.cfg.wl, skip)
        };
        if let Some(victim) = victim {
            let lun = self.array.geometry().lun_index(victim.channel, victim.lun);
            self.start_reclaim(victim, lun, IoSource::WearLeveling, now);
        }
    }

    // ----- background scrubbing -------------------------------------------

    /// Every `check_every_ops` issued flash ops, look for a block whose
    /// read-disturb count or retention age crossed the scrub thresholds
    /// and refresh it: evacuate-and-erase through the reclaim machinery
    /// (page-mapped schemes) or a refresh merge (hybrid). The refresh IO
    /// rides the scheduler as `ScrubRead`/`ScrubWrite`, competing with
    /// application traffic under the configured policy.
    fn maybe_scrub(&mut self, now: SimTime) {
        let Some(sc) = self.cfg.scrub else { return };
        if self.ops_since_scrub < sc.check_every_ops {
            return;
        }
        self.ops_since_scrub = 0;
        if self.scrub_inflight >= sc.max_inflight {
            return;
        }
        if self.is_hybrid() {
            self.scrub_hybrid(now);
            return;
        }
        let victim = {
            let skip = self.reclaim_skip_set();
            pick_scrub_victim(&self.array, &sc, now, skip)
        };
        if let Some(victim) = victim {
            let lun = self.array.geometry().lun_index(victim.channel, victim.lun);
            self.scrub_inflight += 1;
            self.stats.scrub_refreshes += 1;
            self.start_reclaim(victim, lun, IoSource::Scrub, now);
        }
    }

    /// Hybrid-scheme scrub: refresh an at-risk *data* block by folding its
    /// logical block to a fresh destination (the discipline-preserving
    /// relocation static WL also uses). Log blocks are skipped — their
    /// churn through merges refreshes them anyway.
    fn scrub_hybrid(&mut self, now: SimTime) {
        if self.merge_active {
            return; // one merge at a time; retry at the next check
        }
        let Some(sc) = self.cfg.scrub else { return };
        let lbn = {
            let FtlKind::Hybrid(h) = &self.ftl else { return };
            let g = *self.array.geometry();
            let logs: BTreeSet<Ppn> = h.log_bases().into_iter().collect();
            let data = h.data_block_map();
            let skip = |b: BlockAddr| {
                let base = g.page_index(b.page(0));
                logs.contains(&base) || !data.contains_key(&base)
            };
            let Some(victim) = pick_scrub_victim(&self.array, &sc, now, skip) else {
                return;
            };
            let base = g.page_index(victim.page(0));
            data[&base]
        };
        self.scrub_inflight += 1;
        self.stats.scrub_refreshes += 1;
        self.hybrid_mut().note_refresh_merge();
        self.start_merge_job(
            MergeJob::new(
                IoSource::Scrub,
                None,
                vec![FoldPlan {
                    lbn,
                    reuse: None,
                    start: 0,
                }],
            ),
            now,
        );
    }

    // ----- injected-fault handling ----------------------------------------

    /// Schedule the wake-ups of an issued command whose completion event
    /// was cancelled by an injected fault (the op re-enqueued instead):
    /// the LUN/channel occupancy the command charged is still real, and
    /// the retry can only issue once those resources free.
    fn fault_wakes(&mut self, lane: u32, out: eagletree_flash::IssueOutcome) {
        self.events.schedule(lane, out.done_at, CtrlEvent::Wake);
        if out.channel_free_at < out.done_at {
            self.events
                .schedule(MISC_LANE, out.channel_free_at, CtrlEvent::Wake);
        }
        if out.lun_free_at < out.done_at {
            self.events.schedule(lane, out.lun_free_at, CtrlEvent::Wake);
        }
    }

    /// Ledger an uncorrectable read of application data: `lpn` is the
    /// logical page whose content the read carried, if any (translation
    /// and checkpoint pages are rebuilt from RAM state and not ledgered).
    fn note_read_fault(&mut self, out: &eagletree_flash::IssueOutcome, lpn: Option<Lpn>) {
        if let Some(FaultEvent::Read(o)) = out.fault {
            if o.uncorrectable {
                if let Some(lpn) = lpn {
                    self.lost_lpns.insert(lpn);
                }
            }
        }
    }

    /// The logical page a relocated `content` carries, for the ledger.
    fn content_lpn(content: PageContent) -> Option<Lpn> {
        match content {
            PageContent::Data(lpn) => Some(lpn),
            _ => None,
        }
    }

    fn start_reclaim(&mut self, victim: BlockAddr, lun: u32, source: IoSource, now: SimTime) {
        let valid = self.array.valid_pages_in(victim);
        let job_id = self.jobs.len();
        self.jobs
            .push(Some(ReclaimJob::new(victim, lun, source, valid.len() as u32)));
        self.victims.insert(victim);
        self.reclaim_active[lun as usize] += 1;
        if valid.is_empty() {
            self.enqueue_erase(job_id, victim, now);
        } else {
            let class = match source {
                IoSource::WearLeveling => OpClass::WlRead,
                IoSource::Scrub => OpClass::ScrubRead,
                _ => OpClass::GcRead,
            };
            for from in valid {
                self.enqueue(class, None, now, PendKind::GcMove { job: job_id, from });
            }
        }
    }

    fn enqueue_erase(&mut self, job: usize, block: BlockAddr, now: SimTime) {
        self.jobs[job].as_mut().expect("live job").erase_enqueued = true;
        self.enqueue(OpClass::Erase, None, now, PendKind::Erase { block, job });
    }

    /// Turn any translation writebacks (DFTL) or switch-merge events
    /// (hybrid) queued inside the FTL into flash work. Called after every
    /// FTL mutation.
    fn drain_ftl_writebacks(&mut self, now: SimTime) {
        let wbs = self.ftl.take_writebacks();
        if !wbs.is_empty() {
            self.spawn_writebacks(wbs, now);
        }
        if let FtlKind::Hybrid(h) = &mut self.ftl {
            let events = h.take_events();
            for HybridEvent::EraseDataBlock { base } in events {
                self.enqueue_merge_erase(IoSource::Merge, base, None, now);
            }
        }
    }

    fn spawn_writebacks(&mut self, wbs: Vec<TranslationWriteback>, now: SimTime) {
        for wb in wbs {
            self.stats.mapping_writebacks += 1;
            let id = self.wb_jobs.len();
            self.wb_jobs.push(Some(WbJob {
                tvpn: wb.tvpn,
                old_ppn: wb.old_ppn,
            }));
            if wb.old_ppn.is_some() {
                self.enqueue(OpClass::MappingRead, None, now, PendKind::WbRead { wb: id });
            } else {
                self.enqueue(
                    OpClass::MappingWrite,
                    None,
                    now,
                    PendKind::Write {
                        lun: None,
                        stream: Stream::Translation,
                        what: WriteWhat::Translation { wb: id },
                    },
                );
            }
        }
    }

    // ----- hybrid log-block merges ----------------------------------------

    /// Op classes for a merge job's copies: WL refresh merges bill to the
    /// wear-leveling classes, everything else to the merge classes.
    fn merge_classes(source: IoSource) -> (OpClass, OpClass) {
        match source {
            IoSource::WearLeveling => (OpClass::WlRead, OpClass::WlWrite),
            IoSource::Scrub => (OpClass::ScrubRead, OpClass::ScrubWrite),
            _ => (OpClass::MergeRead, OpClass::MergeWrite),
        }
    }

    /// React to the hybrid FTL's structural needs: open log blocks for
    /// pending appends, and start (or un-stall) merge jobs when the log
    /// space is exhausted. Runs at the top of every scheduling pass.
    fn hybrid_maintenance(&mut self, now: SimTime) {
        if self.merge_active {
            if let Some(mj) = self
                .merge_jobs
                .iter()
                .position(|j| j.as_ref().is_some_and(|j| j.waiting_for_block))
            {
                self.advance_merge(mj, now);
            }
        }
        // Scan in arrival order: opening log blocks / sealing streams for
        // one write changes what later writes need.
        let mut lpns = std::mem::take(&mut self.hybrid_scratch);
        lpns.clear();
        lpns.extend(self.pending.iter().filter_map(|op| match op.kind {
            PendKind::HybridWrite { what } => Some((op.seq, what.lpn())),
            _ => None,
        }));
        lpns.sort_unstable();
        for &(_, lpn) in &lpns {
            // A switch merge can resolve *synchronously* (the SW block
            // becomes the data block: no copies, no erase, no event). The
            // write that triggered it must then be re-placed in the same
            // pass, or it would sit unissuable over an empty agenda and
            // wedge the simulation. Bounded: each extra round consumes
            // the SW block or ends in a non-merge placement.
            let mut rounds = 0u32;
            while rounds < 4 {
                rounds += 1;
                match self.hybrid_mut().place(lpn) {
                    // Appends issue through the scheduler; stream waiters
                    // hold until the sequential fill catches up (or the
                    // quiescence fallback in `run_sched` merges the
                    // wedged stream).
                    HybridPlace::Append(_) | HybridPlace::AwaitSequential => {}
                    HybridPlace::NeedsLogBlock { sequential } => {
                        if let Some((block, _)) = self.alloc.take_block() {
                            let base = self.array.geometry().page_index(block.page(0));
                            let lbn = sequential.then(|| lpn / self.ppb());
                            self.hybrid_mut().open_log(base, lbn);
                        }
                        // No free block: a pending erase will return one.
                    }
                    HybridPlace::NeedsSeqMerge => {
                        let lbn = lpn / self.ppb();
                        if self.hybrid_mut().retarget_empty_sw(lbn) {
                            break; // the empty SW block changed streams
                        }
                        self.hybrid_mut().seal_sw();
                        if self.merge_active {
                            break;
                        }
                        if let Some(plan) = self.hybrid_mut().take_sw_for_merge() {
                            let fold = FoldPlan {
                                lbn: plan.lbn,
                                reuse: plan.reuse_from.map(|_| plan.base),
                                start: plan.reuse_from.unwrap_or(0),
                            };
                            // A superseded prefix cannot be completed in
                            // place: fold elsewhere, then erase the log
                            // block.
                            let victim = plan.reuse_from.is_none().then_some(plan.base);
                            self.start_merge_job(
                                MergeJob::new(IoSource::Merge, victim, vec![fold]),
                                now,
                            );
                            if !self.merge_active {
                                // Instant switch: the SW slot freed with
                                // no event pending — re-place this write.
                                continue;
                            }
                        }
                    }
                    HybridPlace::NeedsMerge => {
                        if self.merge_active {
                            break;
                        }
                        if let Some(plan) = self.hybrid_mut().take_merge_victim() {
                            let folds = plan
                                .lbns
                                .iter()
                                .map(|&lbn| FoldPlan {
                                    lbn,
                                    reuse: None,
                                    start: 0,
                                })
                                .collect();
                            self.start_merge_job(
                                MergeJob::new(IoSource::Merge, Some(plan.victim), folds),
                                now,
                            );
                        }
                    }
                }
                break;
            }
        }
        self.hybrid_scratch = lpns;
    }

    fn ppb(&self) -> u64 {
        self.array.geometry().pages_per_block as u64
    }

    /// Quiescence fallback for a wedged sequential stream: pending writes
    /// sit ahead of the SW fill pointer (`AwaitSequential`) but the gap
    /// will never arrive. Merge the SW block so they fall back to the
    /// random path. Returns whether anything was kicked off.
    fn unwedge_sequential_stream(&mut self, now: SimTime) -> bool {
        if !self.is_hybrid() || !self.events.is_empty() || self.merge_active {
            return false;
        }
        let wedged = self.pending.iter().any(|op| match op.kind {
            PendKind::HybridWrite { what } => {
                let FtlKind::Hybrid(h) = &self.ftl else { return false };
                h.place(what.lpn()) == HybridPlace::AwaitSequential
            }
            _ => false,
        });
        if !wedged {
            return false;
        }
        self.hybrid_mut().seal_sw();
        if let Some(plan) = self.hybrid_mut().take_sw_for_merge() {
            let fold = FoldPlan {
                lbn: plan.lbn,
                reuse: plan.reuse_from.map(|_| plan.base),
                start: plan.reuse_from.unwrap_or(0),
            };
            let victim = plan.reuse_from.is_none().then_some(plan.base);
            self.start_merge_job(MergeJob::new(IoSource::Merge, victim, vec![fold]), now);
            return true;
        }
        false
    }

    fn start_merge_job(&mut self, job: MergeJob, now: SimTime) {
        let mj = self.merge_jobs.len();
        self.merge_jobs.push(Some(job));
        self.merge_active = true;
        self.advance_merge(mj, now);
    }

    /// Drive merge job `mj` forward: enqueue its next copy step, finish
    /// folds, and finally enqueue the victim's erase. Copies run one at a
    /// time so destination programs stay in NAND page order.
    fn advance_merge(&mut self, mj: usize, now: SimTime) {
        loop {
            let job = self.merge_jobs[mj].as_mut().expect("live merge job");
            job.waiting_for_block = false;
            let source = job.source;
            let (read_class, write_class) = Self::merge_classes(source);
            if let Some(cur) = job.cur {
                if cur.next < cur.end {
                    let lpn = cur.lbn * self.ppb() + cur.next as u64;
                    match self.ftl.peek(lpn) {
                        Some(_) => {
                            self.enqueue(read_class, None, now, PendKind::MergeRead { mj })
                        }
                        None => self.enqueue(
                            write_class,
                            None,
                            now,
                            PendKind::MergeProgram { mj, from: None },
                        ),
                    }
                    return;
                }
                // Fold complete: the destination becomes the data block.
                self.merge_jobs[mj].as_mut().unwrap().cur = None;
                let old = self.hybrid_mut().fold_finished(cur.lbn, Some(cur.dest));
                if let Some(old) = old {
                    self.enqueue_merge_erase(source, old, None, now);
                }
                continue;
            }
            let Some(plan) = job.folds.pop_front() else {
                // All folds done: erase the victim log block, if any.
                if let Some(v) = job.victim {
                    if !job.victim_erase_enqueued {
                        job.victim_erase_enqueued = true;
                        self.enqueue_merge_erase(source, v, Some(mj), now);
                    }
                    return;
                }
                self.merge_jobs[mj] = None;
                self.merge_active = false;
                return;
            };
            let end = {
                let FtlKind::Hybrid(h) = &self.ftl else {
                    panic!("merge outside hybrid mapping")
                };
                h.fold_end(plan.lbn)
            };
            match plan.reuse {
                Some(base) if end <= plan.start => {
                    // Switch: the log block already holds everything live.
                    let old = self.hybrid_mut().fold_finished(plan.lbn, Some(base));
                    if let Some(old) = old {
                        self.enqueue_merge_erase(source, old, None, now);
                    }
                }
                Some(base) => {
                    self.merge_jobs[mj].as_mut().unwrap().cur = Some(FoldState {
                        lbn: plan.lbn,
                        dest: base,
                        next: plan.start,
                        end,
                    });
                }
                None if end == 0 => {
                    // Nothing live (trimmed away): drop the directory entry.
                    let old = self.hybrid_mut().fold_finished(plan.lbn, None);
                    if let Some(old) = old {
                        self.enqueue_merge_erase(source, old, None, now);
                    }
                }
                None => match self.alloc.take_block() {
                    Some((block, _)) => {
                        let dest = self.array.geometry().page_index(block.page(0));
                        self.merge_jobs[mj].as_mut().unwrap().cur = Some(FoldState {
                            lbn: plan.lbn,
                            dest,
                            next: 0,
                            end,
                        });
                    }
                    None => {
                        // Out of free blocks: park until an erase lands.
                        let job = self.merge_jobs[mj].as_mut().unwrap();
                        job.folds.push_front(plan);
                        job.waiting_for_block = true;
                        return;
                    }
                },
            }
        }
    }

    fn enqueue_merge_erase(
        &mut self,
        source: IoSource,
        base: Ppn,
        job: Option<usize>,
        now: SimTime,
    ) {
        let block = self.array.geometry().page_at(base).block_addr();
        self.enqueue(
            OpClass::Erase,
            None,
            now,
            PendKind::MergeErase { source, block, job },
        );
    }

    /// Static wear leveling under the hybrid scheme: refresh a young idle
    /// *data* block by folding its logical block to a fresh destination —
    /// relocation that preserves the block-mapping discipline.
    fn hybrid_maybe_wl(&mut self, now: SimTime) {
        if self.merge_active || !self.cfg.wl.static_enabled {
            return;
        }
        let lbn = {
            let FtlKind::Hybrid(h) = &self.ftl else { return };
            let g = *self.array.geometry();
            let logs: BTreeSet<Ppn> = h.log_bases().into_iter().collect();
            let data = h.data_block_map();
            let skip = |b: BlockAddr| {
                let base = g.page_index(b.page(0));
                logs.contains(&base) || !data.contains_key(&base)
            };
            let Some(victim) = pick_wl_victim(&self.array, now, &self.cfg.wl, skip) else {
                return;
            };
            let base = g.page_index(victim.page(0));
            data[&base]
        };
        self.hybrid_mut().note_refresh_merge();
        self.start_merge_job(
            MergeJob::new(
                IoSource::WearLeveling,
                None,
                vec![FoldPlan {
                    lbn,
                    reuse: None,
                    start: 0,
                }],
            ),
            now,
        );
    }

    // ----- periodic mapping checkpoints -----------------------------------

    /// Number of translation virtual pages the scheme persists (DFTL).
    fn tvpn_count(&self) -> u64 {
        match &self.ftl {
            FtlKind::Dftl(d) => d.tvpn_count(),
            _ => 0,
        }
    }

    /// Start a checkpoint when the interval elapsed, no snapshot is in
    /// flight, and the target slot is fully erased (its previous
    /// contents' erases may still be queued). Runs at the top of every
    /// scheduling pass.
    fn maybe_checkpoint(&mut self, now: SimTime) {
        let Some(ck) = &self.ckpt else { return };
        if ck.job.is_some() || self.stamp_next.saturating_sub(ck.last_stamp) < ck.interval {
            return;
        }
        let slot = ck.next_slot;
        let ppb = self.array.geometry().pages_per_block as u64;
        if (ck.slots[slot].len() as u64) * ppb < ck.pages_per_snapshot as u64 {
            return; // slot lost blocks to wear-out and found no spares
        }
        let erased = ck.slots[slot].iter().all(|b| {
            let info = self.array.block_info(*b);
            info.write_ptr == 0 && !info.bad && !self.array.block_needs_erase(*b)
        });
        if !erased {
            return;
        }
        // Drop trim barriers that no longer guard anything: once the page
        // is mapped again, every scanned copy that could win for it
        // outranks the barrier by itself, so the filter is redundant.
        let ftl = &self.ftl;
        self.trim_barriers.retain(|&lpn, _| ftl.peek(lpn).is_none());
        let record = self.snapshot_record(slot);
        let ck = self.ckpt.as_mut().expect("checked above");
        ck.last_stamp = self.stamp_next;
        ck.job = Some(CkptJob {
            record,
            next_page: 0,
        });
        self.enqueue(OpClass::MappingWrite, None, now, PendKind::CkptWrite);
    }

    /// Capture the mapping snapshot the next checkpoint persists. The
    /// watermark is held below every outstanding (issued-but-unlanded)
    /// program stamp, so replay re-scans any block that could hold an
    /// entry this snapshot does not yet reflect.
    fn snapshot_record(&self, slot: usize) -> CheckpointRecord {
        let watermark = self
            .inflight_stamps
            .first()
            .map(|&s| s - 1)
            .unwrap_or(self.stamp_next - 1);
        let data = (0..self.logical_pages).map(|l| self.ftl.peek(l)).collect();
        let trans = (0..self.tvpn_count())
            .map(|t| self.ftl.translation_location(t))
            .collect();
        let ck = self.ckpt.as_ref().expect("snapshot without checkpoint state");
        CheckpointRecord {
            watermark,
            data,
            trans,
            slot: slot as u8,
            blocks: ck.slots[slot].clone(),
            trims: self.trim_barriers.iter().map(|(&l, &s)| (l, s)).collect(),
        }
    }

    /// Destination page of the in-flight checkpoint's next program.
    fn ckpt_dest(&self) -> PhysicalAddr {
        let ck = self.ckpt.as_ref().expect("ckpt write without state");
        let job = ck.job.as_ref().expect("ckpt write without job");
        let ppb = self.array.geometry().pages_per_block;
        let block = ck.slots[job.record.slot as usize][(job.next_page / ppb) as usize];
        block.page(job.next_page % ppb)
    }

    /// A newer checkpoint committed: the previous one's pages are garbage.
    /// Invalidate them and queue the slot's erases (the slot becomes the
    /// target of the checkpoint after next once they land).
    fn retire_checkpoint_slot(&mut self, old: CheckpointRecord, now: SimTime) {
        for block in old.blocks {
            let info = self.array.block_info(block);
            if info.write_ptr == 0 {
                continue;
            }
            let g = *self.array.geometry();
            let base = g.page_index(block.page(0));
            for p in 0..info.write_ptr as u64 {
                if self.array.page_state(g.page_at(base + p)) == PageState::Valid {
                    self.invalidate_ppn(base + p);
                }
            }
            self.enqueue(OpClass::Erase, None, now, PendKind::CkptErase { block });
        }
    }

    // ----- the scheduler ---------------------------------------------------

    /// Channel usable under the interleaving policy: with interleaving off
    /// the controller keeps at most one LUN in flight per channel.
    fn channel_ok(&self, channel: u32, lun_in_channel: u32, now: SimTime) -> bool {
        if self.cfg.interleaving {
            return true;
        }
        let g = self.array.geometry();
        (0..g.luns_per_channel).all(|l| {
            l == lun_in_channel
                || (self.array.lun_free_at(channel, l) <= now
                    && self.array.lun_holding(channel, l).is_none())
        })
    }

    fn cmd_resources_free(&self, cmd: &FlashCommand, now: SimTime) -> bool {
        self.array.can_issue(cmd, now) && self.channel_ok(cmd.channel(), cmd.lun(), now)
    }

    /// LUN (linear) free for a new program right now.
    fn lun_free_for_program(&self, lun: u32, now: SimTime) -> bool {
        let g = self.array.geometry();
        let channel = lun / g.luns_per_channel;
        let l = lun % g.luns_per_channel;
        self.array.channel_free_at(channel) <= now
            && self.array.lun_free_at(channel, l) <= now
            && self.array.lun_holding(channel, l).is_none()
            && self.channel_ok(channel, l, now)
    }

    /// Resources free for a program at exactly `addr` right now, honoring
    /// the cached-programming config gate (the array alone only checks
    /// chip support). Used for hybrid log appends and merge-fold programs,
    /// whose destinations are bound by the log-block discipline.
    fn program_ok(&self, addr: PhysicalAddr, now: SimTime) -> bool {
        self.array.can_issue(&FlashCommand::Program(addr), now)
            && self.channel_ok(addr.channel, addr.lun, now)
            && (self.cfg.use_cached_program
                || self.array.lun_free_at(addr.channel, addr.lun) <= now)
    }

    /// The merge fold step currently executing for job `mj`.
    fn merge_cur(&self, mj: usize) -> FoldState {
        self.merge_jobs[mj]
            .as_ref()
            .expect("live merge job")
            .cur
            .expect("merge op without an active fold")
    }

    /// A program for `stream` could start on `lun` right now: either the
    /// LUN is idle, or (cached programming) the stream's next page extends
    /// the block the LUN is currently programming.
    fn can_program_on(&self, lun: u32, stream: Stream, now: SimTime) -> bool {
        if !self.alloc.can_alloc(lun, stream) {
            return false;
        }
        if self.lun_free_for_program(lun, now) {
            return true;
        }
        if !self.cfg.use_cached_program {
            return false;
        }
        let g = self.array.geometry();
        let channel = lun / g.luns_per_channel;
        let l = lun % g.luns_per_channel;
        self.channel_ok(channel, l, now)
            && self
                .alloc
                .peek_active(lun, stream)
                .is_some_and(|addr| self.array.can_pipeline(addr, now))
    }

    /// Whether an unbound (or LUN-bound) write could start right now.
    fn write_can_issue(&self, lun: Option<u32>, stream: Stream, now: SimTime) -> bool {
        match lun {
            Some(l) => self.can_program_on(l, stream, now),
            None => {
                let g = self.array.geometry();
                (0..g.total_luns()).any(|l| self.can_program_on(l, stream, now))
            }
        }
    }

    /// Whether `op` could issue (or be consumed) right now. `memo` caches
    /// write-issuability per `(LUN, stream)` within one scheduling round
    /// (the underlying state only changes when an op actually issues).
    fn op_issuable(&self, op: &PendingOp, now: SimTime, memo: &mut WriteMemo) -> bool {
        match op.kind {
            PendKind::Transfer { addr, .. } => {
                self.cmd_resources_free(&FlashCommand::TransferOut(addr), now)
            }
            PendKind::Erase { block, .. } => {
                self.cmd_resources_free(&FlashCommand::Erase(block), now)
            }
            PendKind::AppRead { id, .. } => {
                let lpn = self.app[&id].req.lpn;
                match self.ftl.peek(lpn) {
                    None => true, // trimmed mid-flight: completes instantly
                    Some(ppn) => {
                        let addr = self.array.geometry().page_at(ppn);
                        self.cmd_resources_free(&FlashCommand::ReadStart(addr), now)
                    }
                }
            }
            PendKind::MapFetchRead { tvpn } => match self.ftl.translation_location(tvpn) {
                None => true, // resolvable from RAM: consumed instantly
                Some(ppn) => {
                    let addr = self.array.geometry().page_at(ppn);
                    self.cmd_resources_free(&FlashCommand::ReadStart(addr), now)
                }
            },
            PendKind::WbRead { wb } => {
                let job = self.wb_jobs[wb].as_ref().expect("live wb job");
                match job.old_ppn {
                    None => true,
                    Some(ppn) => {
                        let addr = self.array.geometry().page_at(ppn);
                        if self.array.page_state(addr) == PageState::Free {
                            true // merge source erased: skip straight to program
                        } else {
                            self.cmd_resources_free(&FlashCommand::ReadStart(addr), now)
                        }
                    }
                }
            }
            PendKind::Write { lun, stream, .. } => {
                if let Some(&(_, ok)) = memo.iter().find(|&&(k, _)| k == (lun, stream)) {
                    return ok;
                }
                let ok = self.write_can_issue(lun, stream, now);
                memo.push(((lun, stream), ok));
                ok
            }
            PendKind::GcMove { from, .. } => {
                if self.reverse[self.array.geometry().page_index(from) as usize].is_none() {
                    return true; // superseded: consumed without flash IO
                }
                self.cmd_resources_free(&FlashCommand::ReadStart(from), now)
            }
            PendKind::HybridWrite { what } => {
                let FtlKind::Hybrid(h) = &self.ftl else { return false };
                match h.place(what.lpn()) {
                    HybridPlace::Append(ppn) => {
                        let addr = self.array.geometry().page_at(ppn);
                        self.program_ok(addr, now)
                    }
                    // Waiting on a log block or a merge (maintenance's job).
                    _ => false,
                }
            }
            PendKind::MergeRead { mj } => {
                let cur = self.merge_cur(mj);
                let lpn = cur.lbn * self.ppb() + cur.next as u64;
                match self.ftl.peek(lpn) {
                    // Trimmed since enqueue: reroutes to a filler program.
                    None => true,
                    Some(src) => {
                        let addr = self.array.geometry().page_at(src);
                        self.cmd_resources_free(&FlashCommand::ReadStart(addr), now)
                    }
                }
            }
            PendKind::MergeProgram { mj, .. } => {
                let cur = self.merge_cur(mj);
                let addr = self.array.geometry().page_at(cur.dest + cur.next as u64);
                self.program_ok(addr, now)
            }
            PendKind::MergeErase { block, .. } => {
                self.cmd_resources_free(&FlashCommand::Erase(block), now)
            }
            PendKind::CkptWrite => self.program_ok(self.ckpt_dest(), now),
            PendKind::CkptErase { block } => {
                self.cmd_resources_free(&FlashCommand::Erase(block), now)
            }
        }
    }

    fn run_sched(&mut self, now: SimTime) {
        // Space maintenance is evaluated here so that every pathway that
        // could change free-space (submissions, completions, erases)
        // funnels through one place. Under the hybrid mapping, log-block
        // merges replace generic GC.
        if self.is_hybrid() {
            self.hybrid_maintenance(now);
        } else {
            let nluns = self.array.geometry().total_luns();
            for lun in 0..nluns {
                if self.alloc.free_blocks(lun) < self.gc_floor() {
                    self.maybe_gc(lun, now);
                }
            }
        }
        self.maybe_checkpoint(now);
        self.maybe_scrub(now);
        // Each round compares at most one candidate per live group (the
        // group's first issuable op dominates the rest of it under every
        // policy), so per-issue cost tracks the number of live (class,
        // tag) groups — not the number of pending ops — and the reused
        // scratch buffers keep the loop allocation-free.
        let mut memo = std::mem::take(&mut self.write_memo);
        loop {
            memo.clear();
            // Hardware necessity: pending transfers hold LUN registers
            // hostage, so they always go first (from their own group —
            // no scan over non-transfer ops).
            let t = self.first_issuable(PendingSet::<PendingOp>::TRANSFER_GROUP, now, &mut memo);
            if t != NO_SLOT {
                self.issue(t, now);
                continue;
            }
            let mut cand = std::mem::take(&mut self.sched_cand);
            cand.clear();
            for q in 1..self.pending.group_count() {
                let slot = self.first_issuable(q, now, &mut memo);
                if slot != NO_SLOT {
                    let op = self.pending.get(slot);
                    cand.push(((op.class, op.tag, op.enqueued_at, op.seq), slot));
                }
            }
            // Policies tie-break by seq: presenting heads in seq order
            // keeps Fair's first-encountered class resolution (and any
            // future order-sensitive policy) deterministic.
            cand.sort_unstable_by_key(|&((_, _, _, seq), _)| seq);
            if cand.is_empty() {
                self.sched_cand = cand;
                if self.unwedge_sequential_stream(now) {
                    // The freed writes may now need log blocks (or the
                    // merge may have resolved instantly): re-run
                    // maintenance before re-scanning the queues.
                    self.hybrid_maintenance(now);
                    continue;
                }
                break;
            }
            let mut keys = std::mem::take(&mut self.sched_keys);
            keys.clear();
            keys.extend(cand.iter().map(|&(k, _)| k));
            let chosen = self
                .cfg
                .sched
                .select(&keys, &self.serviced)
                .expect("non-empty candidates");
            let slot = cand[chosen].1;
            self.sched_keys = keys;
            self.sched_cand = cand;
            self.issue(slot, now);
        }
        self.write_memo = memo;
    }

    /// First op in `group` that could issue right now, or `NO_SLOT`.
    ///
    /// The group's order-scan queue is probed in FIFO order; each write
    /// lane contributes only its head (a blocked head proves the lane
    /// blocked — all its ops share one issuability predicate). The
    /// min-seq winner is exactly the op a single merged FIFO would have
    /// yielded: a lane head has the smallest seq of its key, and any
    /// issuable lane op implies its head (same predicate, smaller seq)
    /// is issuable too.
    fn first_issuable(&self, group: u32, now: SimTime, memo: &mut WriteMemo) -> u32 {
        let mut best = NO_SLOT;
        let mut best_seq = u64::MAX;
        let mut cur = self.pending.scan_head(group);
        while cur != NO_SLOT {
            let op = self.pending.get(cur);
            if self.op_issuable(op, now, memo) {
                best = cur;
                best_seq = op.seq;
                break;
            }
            cur = self.pending.next(cur);
        }
        for li in 0..self.pending.lane_count(group) {
            let head = self.pending.lane_head(group, li);
            if head == NO_SLOT {
                continue;
            }
            let op = self.pending.get(head);
            if op.seq < best_seq && self.op_issuable(op, now, memo) {
                best = head;
                best_seq = op.seq;
            }
        }
        best
    }

    /// Issue (or consume) the pending op in `slot`. Caller guarantees
    /// issuability.
    fn issue(&mut self, slot: u32, now: SimTime) {
        let op = self.pending.remove(slot);
        self.obs_cur = ObsCur {
            span: op.span,
            host: Self::pend_request(&op.kind).is_some(),
            enqueued_at: op.enqueued_at,
        };
        self.ops_since_scrub += 1;
        self.serviced[class_index(op.class)] += 1;
        self.stats.wait_us[class_index(op.class)]
            .record(now.saturating_since(op.enqueued_at).as_micros_f64());
        match op.kind {
            PendKind::Transfer { addr, done } => {
                let (lane, out) = self.issue_cmd(FlashCommand::TransferOut(addr), now, op.seq);
                self.finish_issue(op.class, done, lane, out);
            }
            PendKind::Erase { block, job } => {
                let (lane, out) = self.issue_cmd(FlashCommand::Erase(block), now, op.seq);
                // A transient erase failure leaves the block un-reset:
                // charge the time, retry. A retiring failure falls through
                // to EraseDone, whose bad-block path swallows the block.
                if matches!(out.fault, Some(FaultEvent::EraseFailed { retired: false })) {
                    self.stats.erase_retries += 1;
                    self.enqueue(op.class, op.tag, now, PendKind::Erase { block, job });
                    self.fault_wakes(lane, out);
                    return;
                }
                self.finish_issue(op.class, DoneWhat::EraseDone { job, block }, lane, out);
            }
            PendKind::AppRead { id, lpn } => match self.ftl.peek(lpn) {
                None => self.complete_app(id, now),
                Some(ppn) => {
                    let addr = self.array.geometry().page_at(ppn);
                    let (lane, out) = self.issue_cmd(FlashCommand::ReadStart(addr), now, op.seq);
                    self.note_read_fault(&out, Some(lpn));
                    self.finish_issue(op.class, DoneWhat::AppReadArray { id, addr }, lane, out);
                }
            },
            PendKind::MapFetchRead { tvpn } => match self.ftl.translation_location(tvpn) {
                None => {
                    // Entries live in RAM structures: resolve immediately.
                    self.obs_close_cur(now);
                    self.events
                        .schedule(MISC_LANE, now, CtrlEvent::Done(DoneWhat::MapFetchXfer { tvpn }));
                }
                Some(ppn) => {
                    let addr = self.array.geometry().page_at(ppn);
                    let (lane, out) = self.issue_cmd(FlashCommand::ReadStart(addr), now, op.seq);
                    self.finish_issue(op.class, DoneWhat::MapFetchRead { tvpn, addr }, lane, out);
                }
            },
            PendKind::WbRead { wb } => {
                let old = self.wb_jobs[wb].as_ref().expect("live wb job").old_ppn;
                let skip = match old {
                    None => true,
                    Some(ppn) => {
                        let addr = self.array.geometry().page_at(ppn);
                        self.array.page_state(addr) == PageState::Free
                    }
                };
                if skip {
                    self.obs_close_cur(now);
                    self.enqueue(
                        OpClass::MappingWrite,
                        None,
                        now,
                        PendKind::Write {
                            lun: None,
                            stream: Stream::Translation,
                            what: WriteWhat::Translation { wb },
                        },
                    );
                } else {
                    let addr = self.array.geometry().page_at(old.unwrap());
                    let (lane, out) = self.issue_cmd(FlashCommand::ReadStart(addr), now, op.seq);
                    self.finish_issue(op.class, DoneWhat::WbRead { wb, addr }, lane, out);
                }
            }
            PendKind::Write { lun, stream, what } => {
                let lun = match lun {
                    Some(l) => l,
                    None => self
                        .choose_write_lun(stream, now)
                        .expect("write issuable implies a usable LUN"),
                };
                let addr = self.alloc.alloc(lun, stream).expect("issuable implies alloc");
                let ppn = self.array.geometry().page_index(addr);
                let content = match what {
                    WriteWhat::App { lpn, .. } | WriteWhat::Flush { lpn, .. } => {
                        PageContent::Data(lpn)
                    }
                    WriteWhat::Gc { content, .. } => content,
                    WriteWhat::Translation { wb } => {
                        PageContent::Translation(self.wb_jobs[wb].as_ref().unwrap().tvpn)
                    }
                };
                self.reverse[ppn as usize] = Some(content);
                let (lane, out) = self.issue_cmd(FlashCommand::Program(addr), now, op.seq);
                if matches!(out.fault, Some(FaultEvent::ProgramFailed)) {
                    // The page is burned (no OOB stamp: recovery skips it)
                    // and its block can't be trusted for fresh allocations:
                    // retire it as grown bad and remap the write by
                    // re-enqueueing — the retry allocates elsewhere.
                    self.reverse[ppn as usize] = None;
                    self.array.invalidate(addr);
                    self.alloc.retire_block(addr.block_addr());
                    self.stats.program_remaps += 1;
                    self.enqueue(op.class, op.tag, now, PendKind::Write { lun: None, stream, what });
                    self.fault_wakes(lane, out);
                    return;
                }
                // Relocations inherit the source's content version; host
                // and translation writes get a fresh one.
                let seq = match what {
                    WriteWhat::Gc { from_ppn, .. } => Some(self.source_seq(from_ppn)),
                    _ => None,
                };
                self.stamp_program(addr, Self::content_tag(content), seq);
                let done = match what {
                    WriteWhat::App { id, lpn } => DoneWhat::AppWriteDone { id, lpn, ppn },
                    WriteWhat::Gc { job, from_ppn, content } => DoneWhat::GcWriteDone {
                        job,
                        from_ppn,
                        content,
                        new: addr,
                    },
                    WriteWhat::Translation { wb } => DoneWhat::WbWrite { wb, new: addr },
                    WriteWhat::Flush { lpn, version } => {
                        DoneWhat::FlushDone { lpn, version, ppn }
                    }
                };
                self.finish_issue(op.class, done, lane, out);
            }
            PendKind::GcMove { job, from } => {
                let from_ppn = self.array.geometry().page_index(from);
                let Some(content) = self.reverse[from_ppn as usize] else {
                    // Superseded while queued: space reclaims for free.
                    self.obs_close_cur(now);
                    self.stats.gc_skipped += 1;
                    self.move_done(job, now);
                    return;
                };
                let source = self.jobs[job].as_ref().expect("live job").source;
                // Copy-back when permitted, supported, and a same-plane
                // destination exists.
                if self.cfg.gc.use_copyback
                    && self.array.timing().copyback
                    && self.cfg.gc.migrate_same_lun
                {
                    let lun = self.jobs[job].as_ref().unwrap().lun;
                    if let Some(to) = self.alloc.alloc_in_plane(lun, from.plane, Stream::Gc) {
                        self.reverse[self.array.geometry().page_index(to) as usize] =
                            Some(content);
                        let seq = self.source_seq(from_ppn);
                        let (lane, out) = self.issue_cmd(FlashCommand::CopyBack { from, to }, now, op.seq);
                        let to_ppn = self.array.geometry().page_index(to);
                        if matches!(out.fault, Some(FaultEvent::ProgramFailed)) {
                            // Destination burned: retire its block and remap
                            // the migration; the source page is still live.
                            self.reverse[to_ppn as usize] = None;
                            self.array.invalidate(to);
                            self.alloc.retire_block(to.block_addr());
                            self.stats.program_remaps += 1;
                            self.enqueue(op.class, op.tag, now, PendKind::GcMove { job, from });
                            self.fault_wakes(lane, out);
                            return;
                        }
                        // Copy-back reads on-chip; an uncorrectable source
                        // still surfaces through the fault event.
                        self.note_read_fault(&out, Self::content_lpn(content));
                        self.stamp_program(to, Self::content_tag(content), Some(seq));
                        self.finish_issue(
                            op.class,
                            DoneWhat::GcCopyBackDone { job, from, to, content },
                            lane,
                            out,
                        );
                        return;
                    }
                }
                let (lane, out) = self.issue_cmd(FlashCommand::ReadStart(from), now, op.seq);
                let _ = source;
                self.note_read_fault(&out, Self::content_lpn(content));
                self.finish_issue(op.class, DoneWhat::GcReadArray { job, from }, lane, out);
            }
            PendKind::HybridWrite { what } => {
                let lpn = what.lpn();
                let ppn = self.hybrid_mut().commit_append(lpn);
                let addr = self.array.geometry().page_at(ppn);
                self.reverse[ppn as usize] = Some(PageContent::Data(lpn));
                let (lane, out) = self.issue_cmd(FlashCommand::Program(addr), now, op.seq);
                if matches!(out.fault, Some(FaultEvent::ProgramFailed)) {
                    // Burned log-block page: release the append slot (the
                    // entry stays, so merges see the offset as stale and
                    // switch merges are off the table) and retry — the next
                    // commit_append lands on the advanced write pointer.
                    self.reverse[ppn as usize] = None;
                    self.array.invalidate(addr);
                    self.hybrid_mut().abort_append(ppn);
                    self.stats.program_remaps += 1;
                    self.enqueue(op.class, op.tag, now, PendKind::HybridWrite { what });
                    self.fault_wakes(lane, out);
                    return;
                }
                self.stamp_program(addr, OobTag::Data { lpn }, None);
                let done = match what {
                    HybridWhat::App { id, lpn } => DoneWhat::AppWriteDone { id, lpn, ppn },
                    HybridWhat::Flush { lpn, version } => {
                        DoneWhat::FlushDone { lpn, version, ppn }
                    }
                };
                self.finish_issue(op.class, done, lane, out);
            }
            PendKind::MergeRead { mj } => {
                let cur = self.merge_cur(mj);
                let lpn = cur.lbn * self.ppb() + cur.next as u64;
                match self.ftl.peek(lpn) {
                    None => {
                        // Trimmed since enqueue: a filler program keeps the
                        // destination's page order instead.
                        self.obs_close_cur(now);
                        let source = self.merge_jobs[mj].as_ref().unwrap().source;
                        let (_, write_class) = Self::merge_classes(source);
                        self.enqueue(
                            write_class,
                            None,
                            now,
                            PendKind::MergeProgram { mj, from: None },
                        );
                    }
                    Some(src) => {
                        let addr = self.array.geometry().page_at(src);
                        let (lane, out) = self.issue_cmd(FlashCommand::ReadStart(addr), now, op.seq);
                        self.note_read_fault(&out, Some(lpn));
                        self.finish_issue(
                            op.class,
                            DoneWhat::MergeReadDone { mj, from: addr },
                            lane,
                            out,
                        );
                    }
                }
            }
            PendKind::MergeProgram { mj, from } => {
                let cur = self.merge_cur(mj);
                let lpn = cur.lbn * self.ppb() + cur.next as u64;
                let dest = cur.dest + cur.next as u64;
                let addr = self.array.geometry().page_at(dest);
                if from.is_some() {
                    self.reverse[dest as usize] = Some(PageContent::Data(lpn));
                }
                let (lane, out) = self.issue_cmd(FlashCommand::Program(addr), now, op.seq);
                // A program failure here is absorbed: the fold's destination
                // order is fixed, so the page keeps its slot and the at-risk
                // data is already counted by the fault model's counters.
                match from {
                    Some(src) => {
                        let seq = self.source_seq(src);
                        self.stamp_program(addr, OobTag::Data { lpn }, Some(seq));
                    }
                    None => {
                        // Fillers carry no logical content; recovery skips
                        // them.
                        let stamp = self.fresh_stamp();
                        self.array.set_oob(
                            addr,
                            OobEntry { tag: OobTag::Filler, seq: stamp, stamp },
                        );
                    }
                }
                self.finish_issue(op.class, DoneWhat::MergeProgDone { mj, from, dest }, lane, out);
            }
            PendKind::MergeErase { source, block, job } => {
                let (lane, out) = self.issue_cmd(FlashCommand::Erase(block), now, op.seq);
                if matches!(out.fault, Some(FaultEvent::EraseFailed { retired: false })) {
                    self.stats.erase_retries += 1;
                    self.enqueue(op.class, op.tag, now, PendKind::MergeErase { source, block, job });
                    self.fault_wakes(lane, out);
                    return;
                }
                self.finish_issue(
                    op.class,
                    DoneWhat::MergeEraseDone { source, block, job },
                    lane,
                    out,
                );
            }
            PendKind::CkptWrite => {
                let addr = self.ckpt_dest();
                let slot = {
                    let ck = self.ckpt.as_ref().expect("ckpt write without state");
                    ck.job.as_ref().expect("ckpt write without job").record.slot
                };
                let ppn = self.array.geometry().page_index(addr);
                self.reverse[ppn as usize] = Some(PageContent::Checkpoint(slot));
                let (lane, out) = self.issue_cmd(FlashCommand::Program(addr), now, op.seq);
                // Program failures are absorbed: a snapshot with a burned
                // page is caught at mount (the OOB read reports it) and
                // recovery falls back to the previous slot or a full scan.
                // Checkpoint pages carry no mapping entry of their own:
                // stamped (for block probes) but never replayed.
                let stamp = self.fresh_stamp();
                self.array.set_oob(
                    addr,
                    OobEntry {
                        tag: OobTag::Checkpoint { slot },
                        seq: stamp,
                        stamp,
                    },
                );
                self.stats.checkpoint_pages += 1;
                self.finish_issue(op.class, DoneWhat::CkptWriteDone, lane, out);
            }
            PendKind::CkptErase { block } => {
                let (lane, out) = self.issue_cmd(FlashCommand::Erase(block), now, op.seq);
                if matches!(out.fault, Some(FaultEvent::EraseFailed { retired: false })) {
                    self.stats.erase_retries += 1;
                    self.enqueue(op.class, op.tag, now, PendKind::CkptErase { block });
                    self.fault_wakes(lane, out);
                    return;
                }
                self.finish_issue(op.class, DoneWhat::CkptEraseDone { block }, lane, out);
            }
        }
    }

    fn choose_write_lun(&mut self, stream: Stream, now: SimTime) -> Option<u32> {
        let g = *self.array.geometry();
        let mut free = std::mem::take(&mut self.lun_scratch);
        free.clear();
        free.extend((0..g.total_luns()).map(|l| self.can_program_on(l, stream, now)));
        let chosen = self.alloc.choose_lun(stream, |l| free[l as usize]);
        self.lun_scratch = free;
        chosen
    }

    fn finish_issue(
        &mut self,
        class: OpClass,
        done: DoneWhat,
        lane: u32,
        out: eagletree_flash::IssueOutcome,
    ) {
        self.stats.issued[class_index(class)] += 1;
        // The completion and the LUN-free wake belong to the LUN's lane;
        // a channel freeing is cross-LUN state, so it wakes via the misc
        // lane.
        self.events.schedule(lane, out.done_at, CtrlEvent::Done(done));
        if out.channel_free_at < out.done_at {
            self.events
                .schedule(MISC_LANE, out.channel_free_at, CtrlEvent::Wake);
        }
        if out.lun_free_at < out.done_at {
            self.events.schedule(lane, out.lun_free_at, CtrlEvent::Wake);
        }
    }

    // ----- completion handling -------------------------------------------

    fn handle_done(&mut self, d: DoneWhat, now: SimTime) {
        match d {
            DoneWhat::AppReadArray { id, addr } => {
                let tag = self.app[&id].req.tags.priority;
                self.enqueue(
                    OpClass::AppRead,
                    tag,
                    now,
                    PendKind::Transfer {
                        addr,
                        done: DoneWhat::AppReadXfer { id },
                    },
                );
            }
            DoneWhat::AppReadXfer { id } => self.complete_app(id, now),
            DoneWhat::AppWriteDone { id, lpn, ppn } => {
                self.stamp_landed(ppn);
                let old = self.ftl.update(lpn, ppn);
                if let Some(old) = old {
                    debug_assert_eq!(
                        self.reverse[old as usize],
                        Some(PageContent::Data(lpn)),
                        "reverse map inconsistent at superseded page"
                    );
                    self.invalidate_ppn(old);
                }
                self.drain_ftl_writebacks(now);
                self.complete_app(id, now);
            }
            DoneWhat::GcReadArray { job, from } => {
                let class = self.job_class(job, true);
                self.enqueue(
                    class,
                    None,
                    now,
                    PendKind::Transfer {
                        addr: from,
                        done: DoneWhat::GcXfer { job, from },
                    },
                );
            }
            DoneWhat::GcXfer { job, from } => {
                let from_ppn = self.array.geometry().page_index(from);
                match self.reverse[from_ppn as usize] {
                    None => {
                        // Invalidated between read and write: drop the move.
                        self.stats.gc_stale += 1;
                        self.move_done(job, now);
                    }
                    Some(content) => {
                        let j = self.jobs[job].as_ref().expect("live job");
                        let lun = if self.cfg.gc.migrate_same_lun {
                            Some(j.lun)
                        } else {
                            None
                        };
                        let class = self.job_class(job, false);
                        let stream = match (j.source, content) {
                            (_, PageContent::Translation(_)) => Stream::Translation,
                            // Static WL migrates presumed-cold data.
                            (IoSource::WearLeveling, _) => Stream::Cold,
                            _ => Stream::Gc,
                        };
                        self.enqueue(
                            class,
                            None,
                            now,
                            PendKind::Write {
                                lun,
                                stream,
                                what: WriteWhat::Gc { job, from_ppn, content },
                            },
                        );
                    }
                }
            }
            DoneWhat::GcWriteDone { job, from_ppn, content, new } => {
                self.finalize_move(job, from_ppn, content, new, now);
            }
            DoneWhat::GcCopyBackDone { job, from, to, content } => {
                let from_ppn = self.array.geometry().page_index(from);
                self.finalize_move(job, from_ppn, content, to, now);
            }
            DoneWhat::EraseDone { job, block } => {
                let info = self.array.block_info(block);
                if info.bad {
                    // Endurance exhausted: mask the block — it never
                    // returns to the free pool.
                    self.stats.bad_blocks_retired += 1;
                } else {
                    self.alloc.block_freed(block, info.erase_count);
                }
                self.victims.remove(&block);
                let j = self.jobs[job].take().expect("live job");
                self.reclaim_active[j.lun as usize] -= 1;
                match j.source {
                    IoSource::WearLeveling => self.stats.wl_erases += 1,
                    IoSource::Scrub => {
                        self.stats.scrub_erases += 1;
                        self.scrub_inflight -= 1;
                    }
                    _ => self.stats.gc_erases += 1,
                }
                self.erases_since_wl += 1;
                if self.cfg.wl.static_enabled
                    && self.erases_since_wl >= self.cfg.wl.check_every_erases
                {
                    self.erases_since_wl = 0;
                    self.maybe_wl(now);
                }
            }
            DoneWhat::MapFetchRead { tvpn, addr } => {
                self.enqueue(
                    OpClass::MappingRead,
                    None,
                    now,
                    PendKind::Transfer {
                        addr,
                        done: DoneWhat::MapFetchXfer { tvpn },
                    },
                );
            }
            DoneWhat::MapFetchXfer { tvpn } => {
                let fetch = self.fetches.remove(&tvpn).expect("live fetch");
                let lpns: Vec<Lpn> = fetch
                    .waiting
                    .iter()
                    .map(|w| match w {
                        Waiter::Request(id) => self.app[id].req.lpn,
                        Waiter::Flush { lpn, .. } => *lpn,
                    })
                    .collect();
                self.ftl.fetch_complete(tvpn, &lpns);
                for w in fetch.waiting {
                    match w {
                        Waiter::Request(id) => self.start_or_park(id, now),
                        Waiter::Flush { lpn, version } => self.start_flush(lpn, version, now),
                    }
                }
                self.drain_ftl_writebacks(now);
            }
            DoneWhat::WbRead { wb, addr } => {
                self.enqueue(
                    OpClass::MappingWrite,
                    None,
                    now,
                    PendKind::Transfer {
                        addr,
                        done: DoneWhat::WbXfer { wb },
                    },
                );
            }
            DoneWhat::WbXfer { wb } => {
                self.enqueue(
                    OpClass::MappingWrite,
                    None,
                    now,
                    PendKind::Write {
                        lun: None,
                        stream: Stream::Translation,
                        what: WriteWhat::Translation { wb },
                    },
                );
            }
            DoneWhat::WbWrite { wb, new } => {
                let job = self.wb_jobs[wb].take().expect("live wb job");
                let new_ppn = self.array.geometry().page_index(new);
                self.stamp_landed(new_ppn);
                let old = self.ftl.translation_written(job.tvpn, new_ppn);
                if let Some(old) = old {
                    if self.reverse[old as usize] == Some(PageContent::Translation(job.tvpn)) {
                        self.invalidate_ppn(old);
                    }
                }
            }
            DoneWhat::FlushDone { lpn, version, ppn } => {
                self.stamp_landed(ppn);
                self.ftl.unpin(lpn);
                self.flushes_inflight -= 1;
                let current = self
                    .buffer
                    .as_mut()
                    .expect("flush without buffer")
                    .flush_done(lpn, version);
                if current {
                    let old = self.ftl.update(lpn, ppn);
                    if let Some(old) = old {
                        self.invalidate_ppn(old);
                    }
                    self.drain_ftl_writebacks(now);
                } else {
                    // Re-dirtied or trimmed mid-flight: discard the copy.
                    if self.is_hybrid() {
                        self.hybrid_mut().abort_append(ppn);
                    }
                    self.invalidate_ppn(ppn);
                }
                self.maybe_flush(now);
            }
            DoneWhat::MergeReadDone { mj, from } => {
                let source = self.merge_jobs[mj].as_ref().expect("live merge job").source;
                let (read_class, _) = Self::merge_classes(source);
                self.enqueue(
                    read_class,
                    None,
                    now,
                    PendKind::Transfer {
                        addr: from,
                        done: DoneWhat::MergeXfer { mj, from },
                    },
                );
            }
            DoneWhat::MergeXfer { mj, from } => {
                let source = self.merge_jobs[mj].as_ref().expect("live merge job").source;
                let (_, write_class) = Self::merge_classes(source);
                let from_ppn = self.array.geometry().page_index(from);
                self.enqueue(
                    write_class,
                    None,
                    now,
                    PendKind::MergeProgram {
                        mj,
                        from: Some(from_ppn),
                    },
                );
            }
            DoneWhat::MergeProgDone { mj, from, dest } => {
                self.stamp_landed(dest);
                let cur = self.merge_cur(mj);
                let source = self.merge_jobs[mj].as_ref().unwrap().source;
                let lpn = cur.lbn * self.ppb() + cur.next as u64;
                match from {
                    Some(f) if self.ftl.peek(lpn) == Some(f) => {
                        // Still current: commit the move.
                        self.hybrid_mut().merge_committed(lpn, dest);
                        self.invalidate_ppn(f);
                        match source {
                            IoSource::WearLeveling => self.stats.wl_moves += 1,
                            _ => self.stats.merge_moves += 1,
                        }
                    }
                    Some(_) => {
                        // Superseded mid-copy: the fresh page is garbage,
                        // but it kept the destination's program order.
                        self.stats.merge_stale += 1;
                        self.invalidate_ppn(dest);
                    }
                    None => {
                        self.stats.merge_fillers += 1;
                        self.invalidate_ppn(dest);
                    }
                }
                self.merge_jobs[mj].as_mut().unwrap().cur.as_mut().unwrap().next += 1;
                self.advance_merge(mj, now);
            }
            DoneWhat::MergeEraseDone { source, block, job } => {
                let info = self.array.block_info(block);
                if info.bad {
                    self.stats.bad_blocks_retired += 1;
                } else {
                    self.alloc.block_freed(block, info.erase_count);
                }
                match source {
                    IoSource::WearLeveling => self.stats.wl_erases += 1,
                    IoSource::Scrub => {
                        self.stats.scrub_erases += 1;
                        self.scrub_inflight -= 1;
                    }
                    _ => self.stats.merge_erases += 1,
                }
                if let Some(mj) = job {
                    // The victim's erase completes the merge.
                    self.merge_jobs[mj] = None;
                    self.merge_active = false;
                }
                self.erases_since_wl += 1;
                if self.cfg.wl.static_enabled
                    && self.erases_since_wl >= self.cfg.wl.check_every_erases
                {
                    self.erases_since_wl = 0;
                    self.hybrid_maybe_wl(now);
                }
            }
            DoneWhat::CkptWriteDone => {
                let more = {
                    let ck = self.ckpt.as_mut().expect("ckpt done without state");
                    let job = ck.job.as_mut().expect("ckpt done without job");
                    job.next_page += 1;
                    job.next_page < ck.pages_per_snapshot
                };
                if more {
                    self.enqueue(OpClass::MappingWrite, None, now, PendKind::CkptWrite);
                    return;
                }
                // The snapshot's last page landed: commit, then retire the
                // previous committed slot — old-before-new never holds a
                // window where neither checkpoint is whole.
                let old = {
                    let ck = self.ckpt.as_mut().expect("ckpt done without state");
                    let job = ck.job.take().expect("ckpt done without job");
                    ck.next_slot ^= 1;
                    ck.committed.replace(job.record)
                };
                self.stats.checkpoints_committed += 1;
                if let Some(old) = old {
                    self.retire_checkpoint_slot(old, now);
                }
            }
            DoneWhat::CkptEraseDone { block } => {
                let info = self.array.block_info(block);
                if info.bad {
                    // A reserved block wore out: replace it from the free
                    // pool (checkpointing pauses if none is available).
                    self.stats.bad_blocks_retired += 1;
                    let replacement = self.alloc.take_block();
                    if let Some(ck) = &mut self.ckpt {
                        for slot in &mut ck.slots {
                            if let Some(pos) = slot.iter().position(|b| *b == block) {
                                slot.swap_remove(pos);
                                if let Some((b, _)) = replacement {
                                    slot.push(b);
                                }
                                break;
                            }
                        }
                    }
                }
                // Otherwise the block stays reserved, erased and ready.
            }
        }
    }

    fn job_class(&self, job: usize, read: bool) -> OpClass {
        match self.jobs[job].as_ref().expect("live job").source {
            IoSource::WearLeveling => {
                if read {
                    OpClass::WlRead
                } else {
                    OpClass::WlWrite
                }
            }
            IoSource::Scrub => {
                if read {
                    OpClass::ScrubRead
                } else {
                    OpClass::ScrubWrite
                }
            }
            _ => {
                if read {
                    OpClass::GcRead
                } else {
                    OpClass::GcWrite
                }
            }
        }
    }

    /// A migration landed at `new`; commit or discard it, then advance the
    /// job toward its erase.
    fn finalize_move(
        &mut self,
        job: usize,
        from_ppn: Ppn,
        content: PageContent,
        new: PhysicalAddr,
        now: SimTime,
    ) {
        let new_ppn = self.array.geometry().page_index(new);
        self.stamp_landed(new_ppn);
        let still_current = match content {
            PageContent::Data(lpn) => self.ftl.peek(lpn) == Some(from_ppn),
            PageContent::Translation(tvpn) => {
                self.ftl.translation_location(tvpn) == Some(from_ppn)
            }
            PageContent::Checkpoint(_) => {
                unreachable!("checkpoint pages are never GC-migrated")
            }
        };
        if still_current {
            match content {
                PageContent::Data(lpn) => self.ftl.relocate(lpn, new_ppn),
                PageContent::Translation(tvpn) => {
                    self.ftl.translation_written(tvpn, new_ppn);
                }
                PageContent::Checkpoint(_) => unreachable!("checked above"),
            }
            self.invalidate_ppn(from_ppn);
            let j = self.jobs[job].as_ref().expect("live job");
            match j.source {
                IoSource::WearLeveling => self.stats.wl_moves += 1,
                _ => self.stats.gc_moves += 1,
            }
        } else {
            // A newer write superseded the page mid-migration; the fresh
            // copy is garbage on arrival.
            self.stats.gc_stale += 1;
            self.invalidate_ppn(new_ppn);
        }
        self.move_done(job, now);
    }

    fn move_done(&mut self, job: usize, now: SimTime) {
        let ready = {
            let j = self.jobs[job].as_mut().expect("live job");
            j.move_done() && !j.erase_enqueued
        };
        if ready {
            let block = self.jobs[job].as_ref().unwrap().victim;
            self.enqueue_erase(job, block, now);
        }
    }

    // ----- power failure & remount ----------------------------------------

    /// Pull the plug at virtual instant `at`. Everything volatile dies with
    /// the controller — pending operations, the event agenda, the RAM
    /// mapping state, unacknowledged requests — and the flash array loses
    /// exactly the operations still in flight (partially-programmed pages
    /// become torn, interrupted erases leave their block unusable; see
    /// [`FlashArray::power_cut`]). What survives is the returned
    /// [`CrashImage`]: the dead medium, the last *committed* mapping
    /// checkpoint, and the battery-backed write buffer's contents.
    ///
    /// Pass the image to [`Controller::remount`] to rebuild a controller.
    pub fn power_cut(mut self, at: SimTime) -> CrashImage {
        let cut = self.array.power_cut(at);
        CrashImage {
            buffered: self
                .buffer
                .as_ref()
                .map(|b| b.resident_lpns())
                .unwrap_or_default(),
            checkpoint: self.ckpt.and_then(|c| c.committed),
            flash: self.array,
            cut,
        }
    }

    /// Mount a controller on a crashed medium, rebuilding the mapping per
    /// `mode` (full OOB scan, or checkpoint replay when the image holds a
    /// committed checkpoint). See [`crate::recovery`] for the algorithm
    /// and guarantees. The returned [`RecoveryReport`] carries the modeled
    /// mount time and scan counts.
    ///
    /// `cfg` need not match the pre-crash configuration: OOB records are
    /// scheme-independent, so a device written under one mapping scheme
    /// can remount under another (the new scheme's structures are rebuilt
    /// around the recovered map).
    pub fn remount(
        image: CrashImage,
        cfg: ControllerConfig,
        mode: RecoveryMode,
    ) -> Result<(Self, RecoveryReport), String> {
        let CrashImage {
            mut flash,
            checkpoint,
            buffered,
            cut,
        } = image;
        let geometry = *flash.geometry();
        cfg.validate()?;
        // The crashed medium carries its fault model (and its accumulated
        // disturb/retention/grown-bad state) across the remount; a config
        // that newly enables faults installs a fresh model instead.
        if let Some(fc) = cfg.fault {
            if flash.fault().is_none() {
                flash.install_fault_model(fc);
            }
        }
        let logical_pages =
            ((geometry.total_pages() as f64) * cfg.logical_capacity).floor() as u64;
        if logical_pages == 0 {
            return Err("logical capacity rounds to zero pages".into());
        }
        let entries_per_tp = (geometry.page_size as u64 / 8).max(1);
        let tvpns = logical_pages.div_ceil(entries_per_tp).max(1);
        let keep_translation = matches!(cfg.mapping, MappingKind::Dftl { .. });
        let is_hybrid = matches!(cfg.mapping, MappingKind::Hybrid { .. });
        let record = match mode {
            RecoveryMode::Checkpoint => checkpoint.as_ref(),
            RecoveryMode::FullScan => None,
        };
        let rec = recovery::recover_medium(
            &mut flash,
            record,
            logical_pages,
            tvpns,
            keep_translation,
            is_hybrid,
            cut.at,
        );
        let data_entries = rec.data_map.iter().filter(|e| e.is_some()).count() as u64;
        let translation_entries =
            rec.trans_map.iter().filter(|e| e.is_some()).count() as u64;
        // Carry forward the journaled trim barriers that still guard an
        // unmapped page: until the stale copies are erased, the next
        // checkpoint written on this mount must keep filtering them.
        let seeded_barriers: BTreeMap<Lpn, u64> = if rec.used_checkpoint {
            record
                .map(|r| {
                    r.trims
                        .iter()
                        .copied()
                        .filter(|&(lpn, _)| {
                            lpn < logical_pages && rec.data_map[lpn as usize].is_none()
                        })
                        .collect()
                })
                .unwrap_or_default()
        } else {
            BTreeMap::new()
        };

        let ftl = match cfg.mapping {
            MappingKind::PageMap => FtlKind::PageMap(PageMap::restore(rec.data_map)),
            MappingKind::Dftl { cmt_entries } => FtlKind::Dftl(Box::new(Dftl::restore(
                logical_pages,
                cmt_entries,
                entries_per_tp,
                rec.data_map,
                rec.trans_map,
            ))),
            MappingKind::Hybrid { log_blocks, merge } => {
                let layout = recovery::classify_hybrid(&flash, &rec.reverse, logical_pages);
                FtlKind::Hybrid(Box::new(Hybrid::restore(
                    logical_pages,
                    geometry.pages_per_block,
                    log_blocks,
                    merge,
                    rec.data_map,
                    layout.dir,
                    layout.logs,
                )))
            }
        };

        let mut mem = MemoryManager::new(cfg.ram_bytes, cfg.battery_ram_bytes);
        mem.reserve(MemoryKind::Ram, "mapping", ftl.ram_bytes())?;
        let mut buffer = if cfg.write_buffer_pages > 0 {
            mem.reserve(
                MemoryKind::BatteryBackedRam,
                "write-buffer",
                cfg.write_buffer_pages * geometry.page_size as u64,
            )?;
            Some(WriteBuffer::new(cfg.write_buffer_pages as usize))
        } else {
            None
        };
        // The battery held: re-install every buffered (acknowledged but
        // unflushed) write.
        if let Some(b) = &mut buffer {
            for lpn in buffered {
                if lpn < logical_pages {
                    b.write(lpn);
                }
            }
        }

        // Free pool: exactly the blocks the medium reports erased, with
        // their surviving wear counts.
        let mut alloc = Allocator::empty(geometry, cfg.write_alloc, cfg.wl.dynamic_enabled);
        for block in geometry.blocks() {
            let info = flash.block_info(block);
            if info.write_ptr == 0 && !info.bad && !flash.block_needs_erase(block) {
                alloc.block_freed(block, info.erase_count);
            }
        }
        // Size the checkpoint exactly as a fresh mount would: only DFTL
        // persists translation pages worth snapshotting.
        let ckpt_tvpns = if keep_translation { tvpns } else { 0 };
        let mut ckpt = Self::checkpoint_state(
            &cfg,
            &geometry,
            logical_pages,
            ckpt_tvpns,
            &mut mem,
            &mut alloc,
        )?;
        let stamp_next = rec.max_stamp + 1;
        if let Some(ck) = &mut ckpt {
            // A fresh interval starts at mount; the first new checkpoint
            // comes after `interval` further programs.
            ck.last_stamp = stamp_next;
        }
        let tracer = if cfg.trace_events > 0 {
            Some(TraceLog::new(cfg.trace_events))
        } else {
            None
        };
        let obs = cfg
            .obs
            .spans_enabled()
            .then(|| Box::new(Obs::new(cfg.obs.span_capacity)));
        let report = RecoveryReport {
            mode,
            used_checkpoint: rec.used_checkpoint,
            oob_scanned: rec.oob_scanned,
            oob_uncorrectable: rec.oob_uncorrectable,
            blocks_probed: rec.blocks_probed,
            torn_pages: cut.torn_pages,
            interrupted_erases: cut.interrupted_erases,
            blocks_erased: rec.blocks_erased,
            data_entries,
            translation_entries,
            mount_time: rec.mount_time,
        };
        let agenda = Self::new_agenda(&geometry, flash.timing(), &cfg);
        let mut c = Controller {
            reverse: rec.reverse,
            reclaim_active: vec![0; geometry.total_luns() as usize],
            rng: SimRng::new(cfg.seed),
            detector: MultiBloomDetector::default_detector(),
            array: flash,
            ftl,
            alloc,
            cfg,
            mem,
            events: agenda,
            pending: PendingSet::new(),
            sched_cand: Vec::new(),
            sched_keys: Vec::new(),
            write_memo: Vec::new(),
            hybrid_scratch: Vec::new(),
            lun_scratch: Vec::new(),
            op_seq: 0,
            app: BTreeMap::new(),
            jobs: Vec::new(),
            merge_jobs: Vec::new(),
            merge_active: false,
            fetches: BTreeMap::new(),
            wb_jobs: Vec::new(),
            victims: BTreeSet::new(),
            buffer,
            flushes_inflight: 0,
            tracer,
            obs,
            obs_cur: ObsCur::default(),
            logical_pages,
            serviced: class_table(0),
            stats: CtrlStats::new(),
            erases_since_wl: 0,
            completions: Vec::new(),
            stamp_next,
            inflight_stamps: BTreeSet::new(),
            stamp_by_ppn: BTreeMap::new(),
            trim_barriers: if ckpt.is_some() {
                seeded_barriers
            } else {
                BTreeMap::new()
            },
            ckpt,
            lost_lpns: BTreeSet::new(),
            ops_since_scrub: 0,
            scrub_inflight: 0,
        };
        // Kick background flushes for a re-installed buffer already at
        // capacity; they issue once the simulation starts advancing.
        c.maybe_flush(SimTime::ZERO);
        Ok((c, report))
    }

    // ----- test support ----------------------------------------------------

    /// Verify cross-structure invariants. Intended for tests at quiescent
    /// points (no in-flight operations).
    pub fn check_invariants(&self) {
        let g = *self.array.geometry();
        // Every valid physical page has reverse content and vice versa.
        for ppn in 0..g.total_pages() {
            let addr = g.page_at(ppn);
            let state = self.array.page_state(addr);
            match self.reverse[ppn as usize] {
                Some(PageContent::Data(lpn)) => {
                    assert_eq!(state, PageState::Valid, "reverse points at non-valid page");
                    assert_eq!(
                        self.ftl.peek(lpn),
                        Some(ppn),
                        "forward map disagrees with reverse map for lpn {lpn}"
                    );
                }
                Some(PageContent::Translation(tvpn)) => {
                    assert_eq!(state, PageState::Valid);
                    assert_eq!(
                        self.ftl.translation_location(tvpn),
                        Some(ppn),
                        "GTD disagrees with reverse map for tvpn {tvpn}"
                    );
                }
                Some(PageContent::Checkpoint(_)) => {
                    assert_eq!(state, PageState::Valid);
                    assert!(
                        self.is_ckpt_reserved(addr.block_addr()),
                        "checkpoint page outside the reserved slots"
                    );
                }
                None => {
                    assert_ne!(state, PageState::Valid, "valid page without reverse content");
                }
            }
        }
        // Forward map targets are valid pages.
        for lpn in 0..self.logical_pages {
            if let Some(ppn) = self.ftl.peek(lpn) {
                assert_eq!(
                    self.reverse[ppn as usize],
                    Some(PageContent::Data(lpn)),
                    "lpn {lpn} maps to page not owned by it"
                );
            }
        }
        // Hybrid discipline: a data block's valid pages sit at their
        // logical offsets (block mapping would be meaningless otherwise).
        if let FtlKind::Hybrid(h) = &self.ftl {
            let ppb = g.pages_per_block as u64;
            for lbn in 0..h.lbn_count() {
                let Some(base) = h.data_block(lbn) else { continue };
                for o in 0..ppb {
                    let addr = g.page_at(base + o);
                    if self.array.page_state(addr) == PageState::Valid {
                        let lpn = lbn * ppb + o;
                        assert_eq!(
                            self.reverse[(base + o) as usize],
                            Some(PageContent::Data(lpn)),
                            "data block of lbn {lbn} holds a misaligned page at offset {o}"
                        );
                    }
                }
            }
        }
        // Allocator free-block accounting matches the array.
        for lun in 0..g.total_luns() {
            let channel = lun / g.luns_per_channel;
            let l = lun % g.luns_per_channel;
            let free_in_alloc = self.alloc.free_blocks(lun);
            let empty_blocks = (0..g.planes_per_lun)
                .flat_map(|p| (0..g.blocks_per_plane).map(move |b| (p, b)))
                .filter(|&(p, b)| {
                    let info = self.array.block_info(BlockAddr {
                        channel,
                        lun: l,
                        plane: p,
                        block: b,
                    });
                    info.write_ptr == 0
                })
                .count();
            assert!(
                free_in_alloc <= empty_blocks,
                "allocator believes more blocks free than are empty on lun {lun}"
            );
        }
    }
}
