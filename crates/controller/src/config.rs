//! Controller configuration: every §2.2 policy knob in one place.

use crate::sched::SchedPolicy;
use crate::types::OpClass;
use eagletree_core::{ObsConfig, QueueKind};
use eagletree_flash::FaultConfig;

/// Which mapping scheme the FTL uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MappingKind {
    /// Full page-level map held in controller RAM.
    PageMap,
    /// DFTL: demand-cached page map with flash-resident translation pages.
    /// `cmt_entries` bounds the cached mapping table.
    Dftl { cmt_entries: usize },
    /// FAST-style hybrid log-block mapping: block-mapped data blocks plus
    /// `log_blocks` page-mapped random log blocks (and one dedicated
    /// sequential log block). Log exhaustion triggers switch / partial /
    /// full merges whose traffic flows through the controller scheduler.
    Hybrid {
        /// Random (RW) log-block budget; the sequential log block is extra.
        log_blocks: usize,
        /// Full-merge victim selection among exhausted log blocks.
        merge: MergePolicy,
    },
}

/// Full-merge victim selection for the hybrid log-block FTL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergePolicy {
    /// Oldest log block first (the original FAST rotation).
    Fifo,
    /// Fewest valid pages first (cheapest merge, risks starving old blocks).
    MinValid,
}

/// GC victim-selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VictimPolicy {
    /// Fewest valid pages (min-effort).
    Greedy,
    /// Uniformly random among non-free, non-active blocks.
    Random,
    /// Classic cost-benefit: maximize `age · (1-u) / 2u`.
    CostBenefit,
}

/// Garbage-collection configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcConfig {
    /// "GC Greediness": keep at least this many blocks free on each LUN
    /// (§2.2). Higher = earlier GC = smoother latency but more migration.
    pub greediness: u32,
    /// Victim selection policy.
    pub victim: VictimPolicy,
    /// Use copy-back for intra-plane migration when the chip supports it.
    pub use_copyback: bool,
    /// Migrate victims' pages within the same LUN (true) or let the write
    /// allocator spread them across LUNs (false).
    pub migrate_same_lun: bool,
}

impl Default for GcConfig {
    fn default() -> Self {
        GcConfig {
            greediness: 2,
            victim: VictimPolicy::Greedy,
            use_copyback: true,
            migrate_same_lun: true,
        }
    }
}

/// Wear-leveling configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WlConfig {
    /// Enable static wear leveling (migrate cold data off young blocks).
    pub static_enabled: bool,
    /// Evaluate static WL every this many erases.
    pub check_every_erases: u32,
    /// A block is "young" if its erase count trails the maximum by at
    /// least this much.
    pub young_delta: u32,
    /// … and it has not been erased for `idle_factor ×` the fleet-average
    /// inter-erase gap.
    pub idle_factor: f64,
    /// Enable dynamic wear leveling: allocate young blocks to hot data and
    /// old blocks to cold data.
    pub dynamic_enabled: bool,
}

impl Default for WlConfig {
    fn default() -> Self {
        WlConfig {
            static_enabled: true,
            check_every_erases: 64,
            young_delta: 8,
            idle_factor: 4.0,
            dynamic_enabled: false,
        }
    }
}

/// Where unbound application writes go.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteAllocPolicy {
    /// Rotate across LUNs per write.
    RoundRobin,
    /// Pick the free LUN with the most free pages.
    LeastUtilized,
    /// Bind LUN statically by `lpn % luns` (RAID-0-like striping).
    Striping,
}

/// Temperature-detection source for dynamic WL and hot/cold separation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TemperatureMode {
    /// No detection; everything is one stream.
    Off,
    /// On-device multi-bloom-filter detector (Park & Du, MSST'11).
    Detector,
    /// Trust open-interface temperature tags; fall back to the detector
    /// for untagged writes.
    Hints,
}

/// Background-scrub configuration: when and how aggressively the
/// controller refreshes blocks whose accumulated read disturb or
/// retention age puts their pages at risk of outgrowing ECC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScrubConfig {
    /// Evaluate scrub candidates every this many completed flash ops.
    /// Lower = more aggressive (more scan points, more refresh traffic).
    pub check_every_ops: u64,
    /// Refresh a block once reads-since-erase reach this count.
    pub read_disturb_threshold: u32,
    /// Refresh a block once its oldest data has sat this many sim-seconds.
    pub retention_threshold_s: f64,
    /// At most this many scrub refreshes may be in flight at once (each
    /// is a whole-block relocation competing with app IO).
    pub max_inflight: usize,
}

impl Default for ScrubConfig {
    fn default() -> Self {
        ScrubConfig {
            check_every_ops: 256,
            read_disturb_threshold: 10_000,
            retention_threshold_s: 600.0,
            max_inflight: 1,
        }
    }
}

/// Complete controller configuration.
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// Mapping scheme.
    pub mapping: MappingKind,
    /// Fraction of physical pages exported as logical space (the rest is
    /// over-provisioning headroom for GC).
    pub logical_capacity: f64,
    /// GC knobs.
    pub gc: GcConfig,
    /// Wear-leveling knobs.
    pub wl: WlConfig,
    /// Controller IO scheduling policy.
    pub sched: SchedPolicy,
    /// Write-allocation policy for unbound application writes.
    pub write_alloc: WriteAllocPolicy,
    /// Temperature detection mode.
    pub temperature: TemperatureMode,
    /// Honor update-locality tags with per-group active blocks.
    pub honor_locality: bool,
    /// Allow channel interleaving across LUNs. When `false` the controller
    /// serializes each channel (at most one LUN in flight per channel),
    /// modelling a naive non-interleaving controller.
    pub interleaving: bool,
    /// Exploit cached (pipelined) programming when the chip supports it:
    /// stream the next page's data into a LUN that is still programming
    /// the previous page of the same block.
    pub use_cached_program: bool,
    /// Battery-backed write buffer size in pages (0 disables buffering).
    /// Buffered writes complete on arrival; overwrites are absorbed in
    /// RAM; dirty pages flush to flash in the background.
    pub write_buffer_pages: u64,
    /// Controller DRAM budget in bytes (mapping tables must fit).
    pub ram_bytes: u64,
    /// Battery-backed RAM budget in bytes (write buffer).
    pub battery_ram_bytes: u64,
    /// Write a mapping checkpoint to reserved blocks every this many page
    /// programs (0 disables checkpointing). A committed checkpoint lets
    /// mount-time recovery replay only the OOB entries written after it,
    /// instead of scanning the whole device; the trade-off is periodic
    /// checkpoint write traffic and two reserved block groups. Crash-safe:
    /// a checkpoint interrupted by a power cut is discarded and the
    /// previous committed one (or a full scan) is used instead.
    pub checkpoint_interval_programs: u64,
    /// RNG seed for randomized policies (victim selection).
    pub seed: u64,
    /// Capture a per-IO visual trace of up to this many events
    /// (0 disables tracing; see `Controller::trace`).
    pub trace_events: usize,
    /// Event-queue backend for the controller agenda. `Calendar` (the
    /// default) is amortized O(1) on the dense flash timeline; `Heap` is
    /// the O(log n) oracle. Pop order — and therefore every simulation
    /// result — is byte-identical between the two.
    pub queue: QueueKind,
    /// Media-fault model installed into the flash array. `None` (the
    /// default) simulates perfect media — byte-identical to pre-fault
    /// builds. `Some` enables program/erase failures, ECC read-retry and
    /// uncorrectable errors, all seeded deterministically.
    pub fault: Option<FaultConfig>,
    /// Background scrubbing. Only meaningful with a fault model (the
    /// disturb/retention state it reads lives there); `None` disables.
    pub scrub: Option<ScrubConfig>,
    /// Observability: lifecycle spans, stage-attributed latency and
    /// time-sliced telemetry (see `eagletree_core::obs`). The default
    /// disables everything; enabling it only *records* — control flow,
    /// RNG draws and event ordering are untouched, so results stay
    /// byte-identical with observability on or off.
    pub obs: ObsConfig,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            mapping: MappingKind::PageMap,
            logical_capacity: 0.85,
            gc: GcConfig::default(),
            wl: WlConfig::default(),
            sched: SchedPolicy::Fifo,
            write_alloc: WriteAllocPolicy::RoundRobin,
            temperature: TemperatureMode::Off,
            honor_locality: false,
            interleaving: true,
            use_cached_program: true,
            write_buffer_pages: 0,
            checkpoint_interval_programs: 0,
            ram_bytes: 64 << 20,
            battery_ram_bytes: 1 << 20,
            seed: 0xEA61E,
            trace_events: 0,
            queue: QueueKind::default(),
            fault: None,
            scrub: None,
            obs: ObsConfig::default(),
        }
    }
}

impl ControllerConfig {
    /// Validate invariants that would otherwise wedge a simulation.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0 < self.logical_capacity && self.logical_capacity < 1.0) {
            return Err(format!(
                "logical_capacity must be in (0,1), got {}",
                self.logical_capacity
            ));
        }
        if self.gc.greediness == 0 {
            return Err("gc.greediness must be at least 1".into());
        }
        match self.mapping {
            MappingKind::Dftl { cmt_entries: 0 } => {
                return Err("DFTL cmt_entries must be non-zero".into());
            }
            MappingKind::Hybrid { log_blocks: 0, .. } => {
                return Err("hybrid log_blocks must be non-zero".into());
            }
            MappingKind::PageMap | MappingKind::Dftl { .. } | MappingKind::Hybrid { .. } => {}
        }
        if self.wl.static_enabled && self.wl.check_every_erases == 0 {
            return Err("wl.check_every_erases must be non-zero".into());
        }
        if let Some(fault) = &self.fault {
            fault.validate()?;
        }
        if let Some(scrub) = &self.scrub {
            if self.fault.is_none() {
                return Err("scrub requires a fault model (disturb/retention state)".into());
            }
            if scrub.check_every_ops == 0 {
                return Err("scrub.check_every_ops must be non-zero".into());
            }
            if scrub.max_inflight == 0 {
                return Err("scrub.max_inflight must be non-zero".into());
            }
        }
        Ok(())
    }

    /// Deadline class table used by the EDF scheduler when enabled.
    pub fn default_deadlines_us() -> [(OpClass, u64); OpClass::COUNT] {
        [
            (OpClass::AppRead, 500),
            (OpClass::AppWrite, 2_000),
            (OpClass::MappingRead, 400),
            (OpClass::MappingWrite, 3_000),
            (OpClass::GcRead, 5_000),
            (OpClass::GcWrite, 5_000),
            (OpClass::MergeRead, 5_000),
            (OpClass::MergeWrite, 5_000),
            (OpClass::WlRead, 20_000),
            (OpClass::WlWrite, 20_000),
            (OpClass::Erase, 10_000),
            (OpClass::ScrubRead, 50_000),
            (OpClass::ScrubWrite, 50_000),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        ControllerConfig::default().validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_values() {
        let c = ControllerConfig {
            logical_capacity: 1.0,
            ..ControllerConfig::default()
        };
        assert!(c.validate().is_err());

        let mut c = ControllerConfig::default();
        c.gc.greediness = 0;
        assert!(c.validate().is_err());

        let c = ControllerConfig {
            mapping: MappingKind::Dftl { cmt_entries: 0 },
            ..ControllerConfig::default()
        };
        assert!(c.validate().is_err());

        let c = ControllerConfig {
            mapping: MappingKind::Hybrid {
                log_blocks: 0,
                merge: MergePolicy::Fifo,
            },
            ..ControllerConfig::default()
        };
        assert!(c.validate().is_err());

        let mut c = ControllerConfig::default();
        c.wl.check_every_erases = 0;
        assert!(c.validate().is_err());

        // Scrubbing without a fault model has no disturb state to read.
        let c = ControllerConfig {
            scrub: Some(ScrubConfig::default()),
            ..ControllerConfig::default()
        };
        assert!(c.validate().is_err());
        let c = ControllerConfig {
            fault: Some(FaultConfig::default()),
            scrub: Some(ScrubConfig::default()),
            ..ControllerConfig::default()
        };
        assert!(c.validate().is_ok());
        let c = ControllerConfig {
            fault: Some(FaultConfig {
                retry_error_scale: 2.0,
                ..FaultConfig::default()
            }),
            ..ControllerConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn deadline_table_covers_all_classes() {
        let table = ControllerConfig::default_deadlines_us();
        for class in OpClass::ALL {
            assert!(table.iter().any(|(c, _)| *c == class));
        }
    }
}
