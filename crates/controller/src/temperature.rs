//! Hot-data identification.
//!
//! Implements the multiple-bloom-filter scheme of Park & Du (MSST 2011),
//! which the paper cites as its page-temperature mechanism (§2.2): V bloom
//! filters capture write recency/frequency in successive time windows. A
//! write inserts its LPN into the current filter; every `window` writes the
//! oldest filter is cleared and becomes current (decay). An LPN is *hot*
//! when it appears in at least `threshold` filters — i.e., it was written
//! in several recent windows.

use crate::types::{Lpn, Temperature};

/// A fixed-size bloom filter over LPNs.
#[derive(Debug, Clone)]
struct Bloom {
    bits: Vec<u64>,
    mask: u64,
    hashes: u32,
}

impl Bloom {
    fn new(bits_pow2: u32, hashes: u32) -> Self {
        let nbits = 1u64 << bits_pow2;
        Bloom {
            bits: vec![0; (nbits / 64) as usize],
            mask: nbits - 1,
            hashes,
        }
    }

    fn positions(&self, lpn: Lpn) -> impl Iterator<Item = u64> + '_ {
        // Double hashing with two splitmix-derived values.
        let h1 = splitmix(lpn ^ 0x9E37_79B9_7F4A_7C15);
        let h2 = splitmix(lpn.wrapping_mul(0xBF58_476D_1CE4_E5B9)) | 1;
        (0..self.hashes as u64).map(move |i| h1.wrapping_add(i.wrapping_mul(h2)) & self.mask)
    }

    fn insert(&mut self, lpn: Lpn) {
        let positions: Vec<u64> = self.positions(lpn).collect();
        for p in positions {
            self.bits[(p / 64) as usize] |= 1 << (p % 64);
        }
    }

    fn contains(&self, lpn: Lpn) -> bool {
        self.positions(lpn)
            .all(|p| self.bits[(p / 64) as usize] & (1 << (p % 64)) != 0)
    }

    fn clear(&mut self) {
        self.bits.fill(0);
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Multi-bloom-filter hot data detector.
#[derive(Debug, Clone)]
pub struct MultiBloomDetector {
    filters: Vec<Bloom>,
    current: usize,
    writes_in_window: u64,
    window: u64,
    threshold: u32,
}

impl MultiBloomDetector {
    /// Detector with `num_filters` filters of `2^bits_pow2` bits each,
    /// `hashes` hash functions, rotating every `window` writes, declaring
    /// hot at `threshold` filter hits.
    pub fn new(num_filters: usize, bits_pow2: u32, hashes: u32, window: u64, threshold: u32) -> Self {
        assert!(num_filters >= 2, "need at least two filters for decay");
        assert!(window > 0, "window must be positive");
        assert!(
            (threshold as usize) <= num_filters,
            "threshold cannot exceed filter count"
        );
        MultiBloomDetector {
            filters: (0..num_filters).map(|_| Bloom::new(bits_pow2, hashes)).collect(),
            current: 0,
            writes_in_window: 0,
            window,
            threshold,
        }
    }

    /// A sensible default: 4 filters × 4096 bits, 2 hashes, 1024-write
    /// windows, hot at 2 hits.
    pub fn default_detector() -> Self {
        Self::new(4, 12, 2, 1024, 2)
    }

    /// Record a write to `lpn`.
    pub fn record_write(&mut self, lpn: Lpn) {
        self.filters[self.current].insert(lpn);
        self.writes_in_window += 1;
        if self.writes_in_window >= self.window {
            self.writes_in_window = 0;
            self.current = (self.current + 1) % self.filters.len();
            // The slot we rotate into holds the oldest window; clear it.
            self.filters[self.current].clear();
        }
    }

    /// How many filters currently contain `lpn` (0..=num_filters).
    pub fn hits(&self, lpn: Lpn) -> u32 {
        self.filters.iter().filter(|f| f.contains(lpn)).count() as u32
    }

    /// Classify `lpn`.
    pub fn classify(&self, lpn: Lpn) -> Temperature {
        if self.hits(lpn) >= self.threshold {
            Temperature::Hot
        } else {
            Temperature::Cold
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_writes_become_hot() {
        let mut d = MultiBloomDetector::new(4, 12, 2, 10, 2);
        // lpn 5 written in several windows; others once.
        for w in 0..4 {
            for i in 0..10u64 {
                let lpn = if i % 2 == 0 { 5 } else { 1000 + w * 10 + i };
                d.record_write(lpn);
            }
        }
        assert_eq!(d.classify(5), Temperature::Hot);
        assert_eq!(d.classify(999_999), Temperature::Cold);
    }

    #[test]
    fn one_time_writes_stay_cold_after_decay() {
        let mut d = MultiBloomDetector::new(2, 12, 2, 4, 2);
        d.record_write(42);
        // 42 is in one filter only → below threshold 2.
        assert_eq!(d.classify(42), Temperature::Cold);
        // Push enough writes to rotate both windows away.
        for i in 0..8u64 {
            d.record_write(1_000 + i);
        }
        assert_eq!(d.hits(42), 0);
    }

    #[test]
    fn hits_monotone_with_windows_written() {
        let mut d = MultiBloomDetector::new(4, 12, 2, 2, 2);
        d.record_write(7);
        let h1 = d.hits(7);
        d.record_write(99); // completes window 0
        d.record_write(7); // lands in window 1
        let h2 = d.hits(7);
        assert!(h2 >= h1);
        assert!(h2 >= 2);
    }

    #[test]
    fn bloom_no_false_negatives() {
        let mut b = Bloom::new(10, 3);
        for lpn in 0..100u64 {
            b.insert(lpn);
        }
        for lpn in 0..100u64 {
            assert!(b.contains(lpn));
        }
    }

    #[test]
    fn bloom_clear_empties() {
        let mut b = Bloom::new(10, 3);
        b.insert(1);
        assert!(b.contains(1));
        b.clear();
        assert!(!b.contains(1));
    }

    #[test]
    #[should_panic(expected = "at least two filters")]
    fn rejects_single_filter() {
        MultiBloomDetector::new(1, 10, 2, 10, 1);
    }
}
