//! Controller IO scheduling policies.
//!
//! "Given the state of the flash chip array and a queue of pending IOs from
//! various sources …, of various types …, that have been waiting in the
//! queue for different lengths of time, which IO should be executed next
//! and where?" (§2.2). A [`SchedPolicy`] answers the *which*; the write
//! allocator answers the *where*.
//!
//! Policies select among the currently *issuable* pending operations:
//!
//! * [`SchedPolicy::Fifo`] — strict arrival order.
//! * [`SchedPolicy::ClassPriority`] — rank by operation class (e.g. reads
//!   before writes, application before internal), FIFO within a rank.
//! * [`SchedPolicy::Edf`] — earliest deadline first, deadlines assigned per
//!   class at enqueue time; models latency-target scheduling and lets
//!   overdue internal ops overtake fresh application IOs.
//! * [`SchedPolicy::Fair`] — weighted fair sharing of *issue slots* across
//!   classes, preventing starvation of any source.
//! * [`SchedPolicy::TagPriority`] — honor open-interface priority tags,
//!   FIFO among untagged.

use eagletree_core::SimTime;

use crate::types::OpClass;

/// Index of an [`OpClass`] into the per-class tables. `OpClass::ALL` is
/// compile-time checked to match declaration order, so the discriminant is
/// the index.
pub fn class_index(c: OpClass) -> usize {
    c as usize
}

/// Per-class `u64` table addressed by [`class_index`]. The length derives
/// from [`OpClass::COUNT`], so growing `OpClass` (and its `ALL` table)
/// automatically grows every rank / deadline / weight / counter table —
/// no silently-desynced bare array lengths.
pub type ClassTable = [u64; OpClass::COUNT];

/// A class table with every entry set to `fill`.
pub const fn class_table(fill: u64) -> ClassTable {
    [fill; OpClass::COUNT]
}

/// A controller scheduling policy.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedPolicy {
    /// First come, first served across all classes.
    Fifo,
    /// Rank classes; lower rank issues first, FIFO within a rank.
    ClassPriority(ClassTable),
    /// Earliest deadline first; per-class relative deadlines in µs.
    Edf(ClassTable),
    /// Weighted fair sharing of issue slots; per-class weights (0 = may
    /// starve).
    Fair(ClassTable),
    /// Open-interface priority tags (0 = most urgent, untagged = 128).
    TagPriority,
}

impl SchedPolicy {
    /// Application reads overtake everything; internal ops last.
    pub fn reads_first() -> Self {
        let mut rank = class_table(5);
        rank[class_index(OpClass::AppRead)] = 0;
        rank[class_index(OpClass::MappingRead)] = 1;
        rank[class_index(OpClass::AppWrite)] = 2;
        rank[class_index(OpClass::MappingWrite)] = 3;
        rank[class_index(OpClass::GcRead)] = 5;
        rank[class_index(OpClass::GcWrite)] = 5;
        rank[class_index(OpClass::MergeRead)] = 5;
        rank[class_index(OpClass::MergeWrite)] = 5;
        rank[class_index(OpClass::Erase)] = 6;
        rank[class_index(OpClass::WlRead)] = 7;
        rank[class_index(OpClass::WlWrite)] = 7;
        SchedPolicy::ClassPriority(rank)
    }

    /// Application writes overtake reads (write-burst absorption).
    pub fn writes_first() -> Self {
        let mut rank = class_table(5);
        rank[class_index(OpClass::AppWrite)] = 0;
        rank[class_index(OpClass::MappingWrite)] = 1;
        rank[class_index(OpClass::AppRead)] = 2;
        rank[class_index(OpClass::MappingRead)] = 3;
        SchedPolicy::ClassPriority(rank)
    }

    /// All application IO before all internal IO.
    pub fn app_first() -> Self {
        let mut rank = class_table(4);
        rank[class_index(OpClass::AppRead)] = 0;
        rank[class_index(OpClass::AppWrite)] = 0;
        rank[class_index(OpClass::MappingRead)] = 1;
        rank[class_index(OpClass::MappingWrite)] = 1;
        SchedPolicy::ClassPriority(rank)
    }

    /// Internal maintenance before application IO (aggressive GC).
    pub fn internal_first() -> Self {
        let mut rank = class_table(0);
        rank[class_index(OpClass::AppRead)] = 4;
        rank[class_index(OpClass::AppWrite)] = 4;
        SchedPolicy::ClassPriority(rank)
    }

    /// EDF with the default deadline table.
    pub fn edf_default() -> Self {
        let mut d = class_table(10_000);
        for (c, us) in crate::config::ControllerConfig::default_deadlines_us() {
            d[class_index(c)] = us;
        }
        SchedPolicy::Edf(d)
    }

    /// Fair sharing with equal weights.
    pub fn fair_equal() -> Self {
        SchedPolicy::Fair(class_table(1))
    }

    /// Select among issuable candidates.
    ///
    /// `candidates` supplies `(class, tag_priority, enqueued_at, seq)` per
    /// issuable op; `serviced` counts issue slots already granted per class
    /// (state for `Fair`). Returns the index *into `candidates`* of the op
    /// to issue, or `None` if the list is empty.
    ///
    /// The controller presents one candidate per pending queue — the first
    /// issuable op of each `(class, tag)` FIFO, in ascending-`seq` order.
    /// That is lossless for every policy here: within such a FIFO both
    /// `seq` and `enqueued_at` are monotonic, so the first issuable op
    /// dominates the rest of its queue under each ranking below (for EDF,
    /// per-class deadlines are FIFO-ordered within a class). `Fair`
    /// additionally relies on the caller's seq-ordering: among classes
    /// with equal normalized service it keeps the first encountered, i.e.
    /// the one whose head arrived earliest.
    pub fn select(
        &self,
        candidates: &[(OpClass, Option<u8>, SimTime, u64)],
        serviced: &ClassTable,
    ) -> Option<usize> {
        if candidates.is_empty() {
            return None;
        }
        let best = match self {
            SchedPolicy::Fifo => candidates
                .iter()
                .enumerate()
                .min_by_key(|(_, &(_, _, _, seq))| seq),
            SchedPolicy::ClassPriority(rank) => candidates
                .iter()
                .enumerate()
                .min_by_key(|(_, &(c, _, _, seq))| (rank[class_index(c)], seq)),
            SchedPolicy::Edf(deadlines) => candidates.iter().enumerate().min_by_key(
                |(_, &(c, _, enq, seq))| {
                    let deadline = enq.as_nanos() + deadlines[class_index(c)] * 1_000;
                    (deadline, seq)
                },
            ),
            SchedPolicy::Fair(weights) => {
                // Pick the least-served class (normalized by weight) that
                // has an issuable candidate, then FIFO within it.
                let mut best_class: Option<(u128, OpClass)> = None;
                for &(c, _, _, _) in candidates {
                    let w = weights[class_index(c)].max(1) as u128;
                    // serviced/weight as a fraction, compared cross-
                    // multiplied to stay in integers.
                    let score = (serviced[class_index(c)] as u128) << 32;
                    let norm = score / w;
                    if best_class.is_none_or(|(b, _)| norm < b) {
                        best_class = Some((norm, c));
                    }
                }
                let (_, class) = best_class?;
                candidates
                    .iter()
                    .enumerate()
                    .filter(|(_, &(c, _, _, _))| c == class)
                    .min_by_key(|(_, &(_, _, _, seq))| seq)
            }
            SchedPolicy::TagPriority => candidates
                .iter()
                .enumerate()
                .min_by_key(|(_, &(_, tag, _, seq))| (tag.unwrap_or(128), seq)),
        };
        best.map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(
        class: OpClass,
        tag: Option<u8>,
        enq_ns: u64,
        seq: u64,
    ) -> (OpClass, Option<u8>, SimTime, u64) {
        (class, tag, SimTime::from_nanos(enq_ns), seq)
    }

    #[test]
    fn fifo_picks_lowest_seq() {
        let c = vec![
            cand(OpClass::AppWrite, None, 10, 5),
            cand(OpClass::AppRead, None, 20, 2),
            cand(OpClass::GcRead, None, 0, 9),
        ];
        assert_eq!(SchedPolicy::Fifo.select(&c, &class_table(0)), Some(1));
    }

    #[test]
    fn reads_first_prefers_app_reads() {
        let c = vec![
            cand(OpClass::AppWrite, None, 0, 0),
            cand(OpClass::GcWrite, None, 0, 1),
            cand(OpClass::AppRead, None, 100, 2),
        ];
        assert_eq!(SchedPolicy::reads_first().select(&c, &class_table(0)), Some(2));
    }

    #[test]
    fn writes_first_prefers_app_writes() {
        let c = vec![
            cand(OpClass::AppRead, None, 0, 0),
            cand(OpClass::AppWrite, None, 100, 1),
        ];
        assert_eq!(SchedPolicy::writes_first().select(&c, &class_table(0)), Some(1));
    }

    #[test]
    fn app_first_defers_internal() {
        let c = vec![
            cand(OpClass::GcRead, None, 0, 0),
            cand(OpClass::Erase, None, 0, 1),
            cand(OpClass::AppWrite, None, 500, 2),
        ];
        assert_eq!(SchedPolicy::app_first().select(&c, &class_table(0)), Some(2));
        assert_eq!(SchedPolicy::internal_first().select(&c, &class_table(0)), Some(0));
    }

    #[test]
    fn edf_lets_old_internal_overtake() {
        let p = SchedPolicy::edf_default();
        // GC read enqueued at t=0 (deadline 5ms); app read enqueued at
        // t=4.9ms (deadline 5.4ms) → GC wins.
        let c = vec![
            cand(OpClass::GcRead, None, 0, 0),
            cand(OpClass::AppRead, None, 4_900_000, 1),
        ];
        assert_eq!(p.select(&c, &class_table(0)), Some(0));
        // Fresh GC vs fresh app read: app read's 500µs deadline wins.
        let c = vec![
            cand(OpClass::GcRead, None, 0, 0),
            cand(OpClass::AppRead, None, 0, 1),
        ];
        assert_eq!(p.select(&c, &class_table(0)), Some(1));
    }

    #[test]
    fn fair_balances_classes() {
        let p = SchedPolicy::fair_equal();
        let c = vec![
            cand(OpClass::AppRead, None, 0, 0),
            cand(OpClass::AppWrite, None, 0, 1),
        ];
        let mut serviced = class_table(0);
        serviced[class_index(OpClass::AppRead)] = 10;
        // Writes are behind; they go first.
        assert_eq!(p.select(&c, &serviced), Some(1));
        serviced[class_index(OpClass::AppWrite)] = 20;
        assert_eq!(p.select(&c, &serviced), Some(0));
    }

    #[test]
    fn fair_weights_scale_shares() {
        let mut w = class_table(1);
        w[class_index(OpClass::AppRead)] = 3;
        let p = SchedPolicy::Fair(w);
        let c = vec![
            cand(OpClass::AppRead, None, 0, 0),
            cand(OpClass::AppWrite, None, 0, 1),
        ];
        let mut serviced = class_table(0);
        serviced[class_index(OpClass::AppRead)] = 2;
        serviced[class_index(OpClass::AppWrite)] = 1;
        // reads: 2/3 < writes: 1/1 → reads issue.
        assert_eq!(p.select(&c, &serviced), Some(0));
    }

    #[test]
    fn tag_priority_honors_tags_then_fifo() {
        let p = SchedPolicy::TagPriority;
        let c = vec![
            cand(OpClass::AppWrite, None, 0, 0),
            cand(OpClass::AppRead, Some(3), 0, 1),
            cand(OpClass::AppRead, Some(1), 0, 2),
        ];
        assert_eq!(p.select(&c, &class_table(0)), Some(2));
        let c = vec![
            cand(OpClass::AppWrite, None, 0, 4),
            cand(OpClass::AppRead, None, 0, 7),
        ];
        assert_eq!(p.select(&c, &class_table(0)), Some(0));
    }

    #[test]
    fn class_table_length_tracks_op_class_all() {
        // The compile-time assertions in `types` guarantee declaration
        // order; this guards the table type itself against regressing to a
        // bare literal length.
        assert_eq!(class_table(0).len(), OpClass::ALL.len());
        for c in OpClass::ALL {
            assert!(class_index(c) < class_table(0).len());
        }
    }

    #[test]
    fn empty_candidates_yield_none() {
        assert_eq!(SchedPolicy::Fifo.select(&[], &class_table(0)), None);
        assert_eq!(SchedPolicy::fair_equal().select(&[], &class_table(0)), None);
    }
}
