//! Garbage-collection victim selection and job bookkeeping.
//!
//! The trigger policy lives in the controller ("keep `greediness` blocks
//! free on each LUN", §2.2); this module answers *which block* to reclaim
//! once triggered, under three classic policies, and tracks the per-victim
//! migration state machine. Under the hybrid log-block FTL, generic
//! reclamation is replaced by merges; [`MergeJob`] tracks that multi-fold
//! state machine here, next to its reclaim sibling.

use eagletree_core::{SimRng, SimTime};
use eagletree_flash::{BlockAddr, FlashArray};

use crate::config::VictimPolicy;
use crate::types::IoSource;

/// Pick a GC victim on `lun` (linear index), or `None` if no block is
/// reclaimable. `skip` excludes free blocks, active allocation targets and
/// blocks already being collected.
///
/// Selection runs against the flash array's incremental victim index
/// (live-page bucket lists maintained from program/invalidate/erase
/// deltas) and allocates nothing:
///
/// * `Greedy` (the default) pops the lowest non-empty bucket — O(bucket)
///   instead of O(blocks-per-LUN);
/// * `Random` still walks the LUN's blocks — twice, in address order, to
///   preserve the pre-index candidate numbering so fixed-seed victim
///   sequences are unchanged — but each probe is an O(1) index-membership
///   test instead of a `BlockInfo` fetch, and no candidate `Vec` is built;
/// * `CostBenefit` walks the LUN once, scoring each candidate exactly
///   once (`block_info` fetched only for blocks that pass the index
///   test).
///
/// Tie-breaks are identical to the historical full-scan implementation:
/// Greedy minimizes `(live, address)`, CostBenefit maximizes score with
/// ties to the smallest address.
pub fn pick_victim(
    array: &FlashArray,
    lun: u32,
    policy: VictimPolicy,
    skip: impl Fn(BlockAddr) -> bool,
    rng: &mut SimRng,
    now: SimTime,
) -> Option<BlockAddr> {
    let g = *array.geometry();
    let channel = lun / g.luns_per_channel;
    let lun_in_ch = lun % g.luns_per_channel;
    let ppb = g.pages_per_block;
    // Candidates in the historical scan order: (plane, block) ascending,
    // i.e. address order within the LUN.
    let lun_blocks = move || {
        (0..g.planes_per_lun).flat_map(move |plane| {
            (0..g.blocks_per_plane).map(move |block| BlockAddr {
                channel,
                lun: lun_in_ch,
                plane,
                block,
            })
        })
    };

    match policy {
        VictimPolicy::Greedy => {
            // Lowest non-empty bucket wins; ties break to the smallest
            // address. Buckets are unordered, so scan the winning bucket
            // for its minimum — still O(bucket), not O(LUN).
            for live in 0..ppb {
                let best = array
                    .blocks_with_live(lun, live)
                    .filter(|&b| !skip(b))
                    .min();
                if best.is_some() {
                    return best;
                }
            }
            None
        }
        VictimPolicy::Random => {
            let count = lun_blocks()
                .filter(|&b| array.is_reclaimable(b) && !skip(b))
                .count();
            if count == 0 {
                return None;
            }
            let i = rng.gen_range(count as u64) as usize;
            lun_blocks()
                .filter(|&b| array.is_reclaimable(b) && !skip(b))
                .nth(i)
        }
        VictimPolicy::CostBenefit => {
            let mut best: Option<(BlockAddr, f64)> = None;
            for b in lun_blocks() {
                if !array.is_reclaimable(b) || skip(b) {
                    continue;
                }
                let info = array.block_info(b);
                let u = info.live_pages as f64 / ppb as f64;
                let age = now.saturating_since(info.last_erase).as_nanos() as f64;
                let score = if u == 0.0 {
                    f64::INFINITY
                } else {
                    age * (1.0 - u) / (2.0 * u)
                };
                // Strictly-greater keeps the first (smallest-address)
                // candidate among equal scores.
                if best.is_none_or(|(_, s)| score > s) {
                    best = Some((b, score));
                }
            }
            best.map(|(b, _)| b)
        }
    }
}

/// A reclamation job: migrate a victim's live pages, then erase it.
///
/// Shared by garbage collection and static wear leveling (which differ only
/// in trigger and [`IoSource`]).
#[derive(Debug, Clone)]
pub struct ReclaimJob {
    /// Block being reclaimed.
    pub victim: BlockAddr,
    /// Linear LUN index of the victim.
    pub lun: u32,
    /// GC or WL (controls the op classes of its flash traffic).
    pub source: IoSource,
    /// Page moves still outstanding (issued or queued).
    pub moves_left: u32,
    /// Set once the erase op has been enqueued.
    pub erase_enqueued: bool,
}

impl ReclaimJob {
    pub fn new(victim: BlockAddr, lun: u32, source: IoSource, moves: u32) -> Self {
        ReclaimJob {
            victim,
            lun,
            source,
            moves_left: moves,
            erase_enqueued: false,
        }
    }

    /// Record a finished (or skipped) page move; true when the victim is
    /// ready to erase.
    pub fn move_done(&mut self) -> bool {
        debug_assert!(self.moves_left > 0, "more moves completed than planned");
        self.moves_left -= 1;
        self.moves_left == 0
    }

    /// Ready to erase right away (victim had no live pages).
    pub fn ready_to_erase(&self) -> bool {
        self.moves_left == 0
    }
}

/// One fold of a hybrid merge: rebuild logical block `lbn` at a
/// destination block, page by page in offset order.
#[derive(Debug, Clone, Copy)]
pub struct FoldPlan {
    /// Logical block to fold.
    pub lbn: u64,
    /// Reuse this block (the SW log block) as the destination, programming
    /// from `start` on. `None`: fold into a fresh block from offset 0.
    pub reuse: Option<crate::types::Ppn>,
    /// First offset the fold must program (the log block's fill pointer
    /// when reusing, 0 otherwise).
    pub start: u32,
}

/// The in-progress fold of a [`MergeJob`]: one copy step in flight at a
/// time so destination programs stay in NAND page order.
#[derive(Debug, Clone, Copy)]
pub struct FoldState {
    /// Logical block being folded.
    pub lbn: u64,
    /// Base PPN of the destination block.
    pub dest: crate::types::Ppn,
    /// Next offset to copy (or fill) into the destination.
    pub next: u32,
    /// One past the last offset to process.
    pub end: u32,
}

/// A hybrid-FTL merge: a sequence of folds, then the victim log block's
/// erase. Each copy flows through the controller scheduler as
/// `MergeRead`/`MergeWrite` (or `WlRead`/`WlWrite` for wear-leveling
/// refresh merges) operations, so merges compete with application IO.
#[derive(Debug, Clone)]
pub struct MergeJob {
    /// GC-driven merge or WL-driven refresh (controls op classes and
    /// which erase counter the job's erases land in).
    pub source: IoSource,
    /// Log block erased once every fold has finished.
    pub victim: Option<crate::types::Ppn>,
    /// Folds still to run, in order (front first).
    pub folds: std::collections::VecDeque<FoldPlan>,
    /// The fold currently executing.
    pub cur: Option<FoldState>,
    /// Set once the victim's erase op has been enqueued.
    pub victim_erase_enqueued: bool,
    /// The job found no free destination block and is parked until an
    /// erase returns one (checked by the controller's maintenance pass).
    pub waiting_for_block: bool,
}

impl MergeJob {
    /// A merge reclaiming `victim` via the given folds.
    pub fn new(
        source: IoSource,
        victim: Option<crate::types::Ppn>,
        folds: Vec<FoldPlan>,
    ) -> Self {
        MergeJob {
            source,
            victim,
            folds: folds.into(),
            cur: None,
            victim_erase_enqueued: false,
            waiting_for_block: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eagletree_core::SimTime;
    use eagletree_flash::{FlashCommand, Geometry, PhysicalAddr, TimingSpec};

    fn addr(block: u32, page: u32) -> PhysicalAddr {
        PhysicalAddr {
            channel: 0,
            lun: 0,
            plane: 0,
            block,
            page,
        }
    }

    /// Fill `block` with `ppb` programs, then invalidate `kill` of them.
    fn fill_block(a: &mut FlashArray, block: u32, kill: u32) -> SimTime {
        let ppb = a.geometry().pages_per_block;
        let mut now = a.lun_free_at(0, 0).max(a.channel_free_at(0));
        for p in 0..ppb {
            let out = a.issue(FlashCommand::Program(addr(block, p)), now).unwrap();
            now = out.lun_free_at;
        }
        for p in 0..kill {
            a.invalidate(addr(block, p));
        }
        now
    }

    #[test]
    fn greedy_picks_fewest_live() {
        let mut a = FlashArray::new(Geometry::tiny(), TimingSpec::slc());
        fill_block(&mut a, 0, 2);
        fill_block(&mut a, 1, 10);
        let now = fill_block(&mut a, 2, 5);
        let mut rng = SimRng::new(1);
        let v = pick_victim(&a, 0, VictimPolicy::Greedy, |_| false, &mut rng, now).unwrap();
        assert_eq!(v.block, 1);
    }

    #[test]
    fn skip_excludes_blocks() {
        let mut a = FlashArray::new(Geometry::tiny(), TimingSpec::slc());
        fill_block(&mut a, 0, 2);
        let now = fill_block(&mut a, 1, 10);
        let mut rng = SimRng::new(1);
        let v = pick_victim(
            &a,
            0,
            VictimPolicy::Greedy,
            |b| b.block == 1,
            &mut rng,
            now,
        )
        .unwrap();
        assert_eq!(v.block, 0);
    }

    #[test]
    fn no_candidates_returns_none() {
        let a = FlashArray::new(Geometry::tiny(), TimingSpec::slc());
        let mut rng = SimRng::new(1);
        assert_eq!(
            pick_victim(
                &a,
                0,
                VictimPolicy::Greedy,
                |_| false,
                &mut rng,
                SimTime::ZERO
            ),
            None
        );
    }

    #[test]
    fn fully_valid_blocks_are_not_victims() {
        let mut a = FlashArray::new(Geometry::tiny(), TimingSpec::slc());
        let now = fill_block(&mut a, 0, 0); // all 16 pages valid
        let mut rng = SimRng::new(1);
        assert_eq!(
            pick_victim(&a, 0, VictimPolicy::Greedy, |_| false, &mut rng, now),
            None
        );
    }

    #[test]
    fn random_always_picks_a_candidate() {
        let mut a = FlashArray::new(Geometry::tiny(), TimingSpec::slc());
        fill_block(&mut a, 0, 3);
        let now = fill_block(&mut a, 1, 3);
        let mut rng = SimRng::new(42);
        for _ in 0..20 {
            let v =
                pick_victim(&a, 0, VictimPolicy::Random, |_| false, &mut rng, now).unwrap();
            assert!(v.block == 0 || v.block == 1);
        }
    }

    #[test]
    fn cost_benefit_prefers_empty_then_age() {
        let mut a = FlashArray::new(Geometry::tiny(), TimingSpec::slc());
        let ppb = a.geometry().pages_per_block;
        fill_block(&mut a, 0, ppb); // fully invalid → u = 0 → infinite score
        let now = fill_block(&mut a, 1, 2);
        let mut rng = SimRng::new(7);
        let v =
            pick_victim(&a, 0, VictimPolicy::CostBenefit, |_| false, &mut rng, now).unwrap();
        assert_eq!(v.block, 0);
    }

    #[test]
    fn reclaim_job_counts_down() {
        let victim = BlockAddr {
            channel: 0,
            lun: 0,
            plane: 0,
            block: 0,
        };
        let mut j = ReclaimJob::new(victim, 0, IoSource::GarbageCollection, 3);
        assert!(!j.ready_to_erase());
        assert!(!j.move_done());
        assert!(!j.move_done());
        assert!(j.move_done());
        assert!(j.ready_to_erase());
    }
}
