//! # eagletree-controller
//!
//! The SSD-controller layer of EagleTree: everything behind the device
//! interface. "The SSD controller is responsible for orchestrating mapping,
//! garbage-collection, wear leveling modules and scheduling" (§2.2).
//!
//! * [`ftl`] — mapping schemes: full in-RAM [`ftl::PageMap`], demand-cached
//!   [`ftl::Dftl`] with translation-page flash traffic, and the FAST-style
//!   [`ftl::Hybrid`] log-block scheme with switch/partial/full merges.
//! * [`alloc`] — write allocation: per-LUN free-block lists, per-stream
//!   active blocks (hot/cold, GC, translation, update-locality groups).
//! * [`gc`] — garbage collection: greediness trigger, greedy / random /
//!   cost-benefit victim selection, migration via copy-back or
//!   read+program; merge-job bookkeeping for the hybrid FTL.
//! * [`wear`] — static wear leveling (young-idle-block detection); dynamic
//!   wear leveling lives in the allocator's age-aware block selection.
//! * [`temperature`] — multi-bloom-filter hot-data identification.
//! * [`sched`] — the pluggable IO scheduling policies.
//! * [`recovery`] — crash consistency: OOB-stamped programs, periodic
//!   mapping checkpoints to reserved blocks, and mount-time recovery
//!   (full OOB scan or checkpoint replay) after a power cut.
//! * [`scrub`] — background media scrubbing: threshold-driven refresh of
//!   read-disturbed / retention-aged blocks before their raw bit errors
//!   outgrow the ECC (pairs with `eagletree_flash::fault`).
//! * [`Controller`] — the orchestrator tying it all to the flash array.

#![forbid(unsafe_code)]

pub mod alloc;
pub mod buffer;
pub mod config;
pub mod controller;
pub mod ftl;
pub mod gc;
mod lanes;
mod pend;
pub mod recovery;
pub mod sched;
pub mod scrub;
pub mod temperature;
pub mod types;
pub mod wear;

pub use alloc::{Allocator, Stream};
pub use buffer::WriteBuffer;
pub use config::{
    ControllerConfig, GcConfig, MappingKind, MergePolicy, ScrubConfig, TemperatureMode,
    VictimPolicy, WlConfig, WriteAllocPolicy,
};
pub use controller::{Controller, CtrlStats, MergeCounters, PageContent, ReliabilityStats};
pub use ftl::HybridStats;
pub use recovery::{CheckpointRecord, CrashImage, RecoveryMode, RecoveryReport};
pub use sched::{class_index, class_table, ClassTable, SchedPolicy};
pub use temperature::MultiBloomDetector;
pub use types::{
    Completion, IoSource, IoTags, Lpn, OpClass, Ppn, RequestId, RequestKind, SsdRequest,
    Temperature,
};
pub use wear::{wear_summary, WearSummary};
