//! Per-LUN event lanes with a deterministic merge.
//!
//! The controller's agenda used to be one monolithic event queue; a
//! [`LaneSet`] splits it into independent sub-queues ("lanes") — one per
//! LUN plus a miscellaneous lane 0 for events not bound to any LUN
//! (channel-free wakes, instant completions). Every flash completion is
//! scheduled on the lane of the LUN it fires on, so lane-local event
//! streams stay lane-local; a deterministic merge feeds the main loop.
//!
//! This is the structural seam for conservative parallel DES (one thread
//! per device/LUN): each lane is already an isolated [`EventQueue`], and
//! the merge point is the only cross-lane coupling. Today the merge runs
//! on one thread and orders lane heads by `(time, seq)` with sequence
//! numbers allocated from one shared counter — which makes the merged
//! stream *byte-identical* to the single-queue agenda it replaced. When
//! lanes move to separate threads, the shared counter becomes per-lane
//! and the merge falls back to `(time, lane, seq)`; that relaxation is
//! deliberately not taken yet so the refactor stays provably inert.

use eagletree_core::{EventQueue, QueueKind, ScheduledEvent, SimDuration, SimTime};

/// The lane for events not bound to a specific LUN.
pub(crate) const MISC_LANE: u32 = 0;

/// Calendar ring size for each lane's queue. A lane holds at most a few
/// pending events (one in-flight op per LUN plus wakes), so a compact
/// 64-bucket ring keeps the whole lane set cache-resident; the default
/// 1024-bucket ring per lane costs more in misses than its scan savings.
const LANE_RING_BUCKETS: usize = 64;

/// A fixed set of event lanes merged into one deterministic stream.
pub(crate) struct LaneSet<E> {
    lanes: Vec<EventQueue<E>>,
    /// Shared seq counter: the global tie-break order across lanes.
    next_seq: u64,
    /// `(time, seq, lane)` of the earliest pending event, kept eagerly.
    min: Option<(SimTime, u64, u32)>,
    now: SimTime,
    popped: u64,
    scheduled: u64,
    /// Pops per lane, for observability (`lane_pops`).
    lane_pops: Vec<u64>,
}

impl<E> LaneSet<E> {
    /// `nlanes` lanes (callers use `1 + total LUNs`), each on `kind`.
    pub(crate) fn new(kind: QueueKind, nlanes: usize) -> Self {
        assert!(nlanes >= 1, "lane set needs at least the misc lane");
        LaneSet {
            lanes: (0..nlanes)
                .map(|_| EventQueue::with_kind_and_ring(kind, LANE_RING_BUCKETS))
                .collect(),
            next_seq: 0,
            min: None,
            now: SimTime::ZERO,
            popped: 0,
            scheduled: 0,
            lane_pops: vec![0; nlanes],
        }
    }

    pub(crate) fn kind(&self) -> QueueKind {
        self.lanes[0].kind()
    }

    pub(crate) fn lane_count(&self) -> u32 {
        self.lanes.len() as u32
    }

    /// Schedule `payload` on `lane` at `time`.
    pub(crate) fn schedule(&mut self, lane: u32, time: SimTime, payload: E) {
        // Clamp like the underlying queue would, but against the *merged*
        // clock: a lane that has been idle lags behind `self.now`.
        debug_assert!(
            time >= self.now,
            "scheduled an event in the past: {time:?} < {:?}",
            self.now
        );
        let time = time.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.lanes[lane as usize].schedule_seq(time, seq, payload);
        self.scheduled += 1;
        if self.min.is_none_or(|(t, s, _)| (time, seq) < (t, s)) {
            self.min = Some((time, seq, lane));
        }
    }

    /// Pop the globally earliest event; ties broken by the shared seq.
    /// Returns the lane it came from alongside the event.
    pub(crate) fn pop(&mut self) -> Option<(u32, ScheduledEvent<E>)> {
        let (_, _, lane) = self.min?;
        let ev = self.lanes[lane as usize].pop().expect("cached min lane");
        self.now = ev.time;
        self.popped += 1;
        self.lane_pops[lane as usize] += 1;
        self.recompute_min();
        Some((lane, ev))
    }

    fn recompute_min(&mut self) {
        self.min = None;
        for (i, lane) in self.lanes.iter().enumerate() {
            if let Some((t, s)) = lane.peek_key() {
                if self.min.is_none_or(|(mt, ms, _)| (t, s) < (mt, ms)) {
                    self.min = Some((t, s, i as u32));
                }
            }
        }
    }

    /// Timestamp of the earliest pending event across all lanes.
    pub(crate) fn peek_time(&self) -> Option<SimTime> {
        self.min.map(|(t, _, _)| t)
    }

    /// The merged clock: timestamp of the last popped event.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn now(&self) -> SimTime {
        self.now
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn len(&self) -> usize {
        self.lanes.iter().map(|l| l.len()).sum()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.min.is_none()
    }

    /// Events popped across all lanes.
    pub(crate) fn popped(&self) -> u64 {
        self.popped
    }

    /// Events scheduled across all lanes.
    pub(crate) fn scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Per-lane pop counts (index 0 is the misc lane).
    pub(crate) fn lane_pops(&self) -> &[u64] {
        &self.lane_pops
    }

    /// Forward a horizon hint to every lane (see `EventQueue::hint_horizon`).
    pub(crate) fn hint_horizon(&mut self, horizon: SimDuration) {
        for lane in &mut self.lanes {
            lane.hint_horizon(horizon);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn merge_is_globally_fifo_for_ties() {
        for kind in [QueueKind::Heap, QueueKind::Calendar] {
            let mut ls: LaneSet<u32> = LaneSet::new(kind, 4);
            // Same timestamp spread across lanes: pops must follow
            // scheduling order (the shared seq), not lane order.
            ls.schedule(3, t(10), 0);
            ls.schedule(1, t(10), 1);
            ls.schedule(2, t(5), 2);
            ls.schedule(1, t(10), 3);
            let order: Vec<(u32, u32)> =
                std::iter::from_fn(|| ls.pop().map(|(l, e)| (l, e.payload))).collect();
            assert_eq!(order, vec![(2, 2), (3, 0), (1, 1), (1, 3)]);
            assert_eq!(ls.now(), t(10));
            assert_eq!(ls.popped(), 4);
            assert_eq!(ls.scheduled(), 4);
            assert_eq!(ls.lane_pops(), &[0, 2, 1, 1]);
        }
    }

    #[test]
    fn peek_tracks_cross_lane_min() {
        let mut ls: LaneSet<()> = LaneSet::new(QueueKind::Calendar, 3);
        assert!(ls.is_empty());
        ls.schedule(2, t(100), ());
        assert_eq!(ls.peek_time(), Some(t(100)));
        ls.schedule(1, t(40), ());
        assert_eq!(ls.peek_time(), Some(t(40)));
        ls.pop();
        assert_eq!(ls.peek_time(), Some(t(100)));
        assert_eq!(ls.len(), 1);
    }
}
