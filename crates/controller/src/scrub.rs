//! Background media scrubbing.
//!
//! NAND pages accumulate raw bit errors from read disturb and retention
//! loss (see `eagletree_flash::fault`); left alone, an at-risk block's
//! errors eventually outgrow the ECC and reads become uncorrectable. The
//! scrubber is the reliability module's answer: periodically pick the
//! block most in need of a refresh and rewrite its live data to a fresh
//! block — resetting both the read-disturb counter and the retention
//! clock — *through the scheduler*, as `ScrubRead` / `ScrubWrite` ops that
//! compete with application IO under whatever `SchedPolicy` is configured.
//! The refresh itself reuses the reclaim machinery (page-mapped schemes)
//! or a refresh merge (the hybrid scheme), exactly like static wear
//! leveling does.
//!
//! Victim selection is threshold-driven ([`crate::config::ScrubConfig`]):
//! a block is due once its read-disturb count or its block retention age
//! crosses the configured line. Among due blocks the most disturbed (then
//! oldest, then lowest address) wins, so fixed-seed runs scrub the same
//! blocks in the same order.

use eagletree_core::SimTime;
use eagletree_flash::{BlockAddr, FlashArray};

use crate::config::ScrubConfig;

/// The block most in need of a scrub refresh, or `None` when nothing has
/// crossed the thresholds (or no fault model is installed — without one
/// there is no disturb/retention state to scrub against).
///
/// `skip` excludes blocks the reclaim machinery must not touch (free,
/// active allocation targets, current victims, checkpoint slots; log
/// blocks under the hybrid scheme — their churn through merges refreshes
/// them anyway).
pub(crate) fn pick_scrub_victim(
    array: &FlashArray,
    cfg: &ScrubConfig,
    now: SimTime,
    skip: impl Fn(BlockAddr) -> bool,
) -> Option<BlockAddr> {
    let fm = array.fault()?;
    let g = *array.geometry();
    g.blocks()
        .filter(|&b| !skip(b))
        .filter_map(|b| {
            let info = array.block_info(b);
            // Only serviceable blocks holding live data need refreshing;
            // dead blocks are reclaimed (and reset) by GC for free.
            if info.bad || info.write_ptr == 0 || info.live_pages == 0 {
                return None;
            }
            let bi = g.block_index(b);
            let disturb = fm.read_disturb(bi);
            let age = now.saturating_since(fm.block_programmed_at(bi));
            let due = disturb >= cfg.read_disturb_threshold
                || age.as_secs_f64() >= cfg.retention_threshold_s;
            due.then_some((b, disturb, age.as_nanos()))
        })
        // Most at risk first: highest disturb, then oldest, then lowest
        // address for a deterministic tie-break.
        .max_by_key(|&(b, disturb, age_ns)| (disturb, age_ns, std::cmp::Reverse(b)))
        .map(|(b, _, _)| b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eagletree_flash::{FaultConfig, FlashCommand, Geometry, PhysicalAddr, TimingSpec};

    fn addr(block: u32, page: u32) -> PhysicalAddr {
        PhysicalAddr {
            channel: 0,
            lun: 0,
            plane: 0,
            block,
            page,
        }
    }

    /// Array with a clean fault model (no injected failures, so the state
    /// the scrubber reads accumulates deterministically).
    fn array_with_model() -> FlashArray {
        let mut a = FlashArray::new(Geometry::tiny(), TimingSpec::slc());
        a.install_fault_model(FaultConfig {
            program_fail_base: 0.0,
            program_fail_per_pe: 0.0,
            erase_fail_base: 0.0,
            erase_fail_per_pe: 0.0,
            raw_bits_base: 0.0,
            raw_bits_per_pe: 0.0,
            raw_bits_per_retention_s: 0.0,
            raw_bits_per_disturb: 0.0,
            ..FaultConfig::default()
        });
        a
    }

    fn cfg() -> ScrubConfig {
        ScrubConfig {
            read_disturb_threshold: 3,
            retention_threshold_s: 1_000.0,
            ..ScrubConfig::default()
        }
    }

    #[test]
    fn no_model_or_no_pressure_picks_nothing() {
        let bare = FlashArray::new(Geometry::tiny(), TimingSpec::slc());
        assert_eq!(
            pick_scrub_victim(&bare, &cfg(), SimTime::ZERO, |_| false),
            None
        );
        let mut a = array_with_model();
        let out = a.issue(FlashCommand::Program(addr(0, 0)), SimTime::ZERO).unwrap();
        // One read: disturb 1 < threshold 3, age 0 < retention threshold.
        let r = a.issue(FlashCommand::ReadStart(addr(0, 0)), out.lun_free_at).unwrap();
        assert_eq!(pick_scrub_victim(&a, &cfg(), r.done_at, |_| false), None);
    }

    #[test]
    fn read_disturb_crosses_threshold_and_most_disturbed_wins() {
        let mut a = array_with_model();
        let mut t = SimTime::ZERO;
        for block in [0u32, 1] {
            let out = a.issue(FlashCommand::Program(addr(block, 0)), t).unwrap();
            t = out.lun_free_at;
        }
        // Block 1 takes more reads than block 0; both cross the threshold.
        for (block, reads) in [(0u32, 3), (1u32, 5)] {
            for _ in 0..reads {
                let out = a.issue(FlashCommand::ReadStart(addr(block, 0)), t).unwrap();
                // Drain the page register so the LUN accepts the next read.
                let x = a
                    .issue(FlashCommand::TransferOut(addr(block, 0)), out.done_at)
                    .unwrap();
                t = x.lun_free_at.max(x.done_at);
            }
        }
        let v = pick_scrub_victim(&a, &cfg(), t, |_| false).unwrap();
        assert_eq!(v.block, 1, "the most disturbed block wins");
    }

    #[test]
    fn retention_age_triggers_and_skip_is_respected() {
        let mut a = array_with_model();
        a.issue(FlashCommand::Program(addr(2, 0)), SimTime::ZERO).unwrap();
        let old = SimTime::ZERO + eagletree_core::SimDuration::from_secs(2_000);
        let v = pick_scrub_victim(&a, &cfg(), old, |_| false).unwrap();
        assert_eq!(v.block, 2);
        assert_eq!(
            pick_scrub_victim(&a, &cfg(), old, |b| b.block == 2),
            None
        );
    }

    #[test]
    fn dead_blocks_are_not_scrubbed() {
        let mut a = array_with_model();
        let out = a.issue(FlashCommand::Program(addr(0, 0)), SimTime::ZERO).unwrap();
        a.invalidate(addr(0, 0));
        let old = out.done_at + eagletree_core::SimDuration::from_secs(2_000);
        assert_eq!(pick_scrub_victim(&a, &cfg(), old, |_| false), None);
    }
}
