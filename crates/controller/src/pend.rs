//! Pending-operation storage for the controller scheduler: a slab with
//! intrusive per-(class, tag) FIFO queues.
//!
//! The dispatch hot path must not depend on queue depth: instead of one
//! `Vec` that every scheduling pass rescans, pending ops live in slab
//! slots threaded onto doubly-linked FIFO queues — one per distinct
//! `(OpClass, priority-tag)` pair, plus a dedicated queue for register
//! transfers (the hardware-necessity fast path). Within a queue both the
//! sequence number and the enqueue time are monotonic, so for every
//! scheduling policy the queue's first *issuable* op dominates the rest
//! of the queue; a policy therefore only ever compares queue heads
//! (O(live queues), typically ≤ `OpClass::COUNT`) instead of every
//! pending op. Finding a queue's first issuable op still probes its
//! blocked prefix — O(position of the first issuable op), degrading to
//! O(queue length) in rounds where an entire queue is blocked — but the
//! common head-issuable case is O(1) and probes are cheap (memoized for
//! unbound writes). Insertion and removal are O(1) and never allocate
//! after warm-up (slots and queues are recycled).
//!
//! Determinism: queues are discovered in first-use order and slots are
//! recycled LIFO, but selection never depends on either — candidates are
//! compared by `(class, tag, enqueue-time, seq)` keys, and callers sort
//! head candidates by `seq` before handing them to a policy.

use std::collections::HashMap;

use crate::types::OpClass;

/// Sentinel slot / queue id.
pub(crate) const NO_SLOT: u32 = u32::MAX;

/// Which FIFO a pending op belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum QueueKey {
    /// Register transfers: issued before anything else whenever their
    /// channel frees, since a LUN holding data blocks all other commands.
    Transfer,
    /// Everything else, segregated by scheduling class and priority tag
    /// so FIFO order within a queue equals policy-preference order.
    Class(OpClass, Option<u8>),
}

#[derive(Debug)]
struct Slot<T> {
    item: Option<T>,
    prev: u32,
    next: u32,
}

#[derive(Debug)]
struct Queue {
    head: u32,
    tail: u32,
}

/// Slab + intrusive FIFO queues of pending items.
#[derive(Debug)]
pub(crate) struct PendingSet<T> {
    slots: Vec<Slot<T>>,
    /// Owning queue per slot (`NO_SLOT` for freed slots).
    slot_queue: Vec<u32>,
    free: Vec<u32>,
    queues: Vec<Queue>,
    by_key: HashMap<QueueKey, u32>,
    live: usize,
}

impl<T> PendingSet<T> {
    /// Queue id of the transfer fast-path queue (always present).
    pub(crate) const TRANSFER_QUEUE: u32 = 0;

    pub(crate) fn new() -> Self {
        let mut by_key = HashMap::new();
        by_key.insert(QueueKey::Transfer, Self::TRANSFER_QUEUE);
        PendingSet {
            slots: Vec::new(),
            slot_queue: Vec::new(),
            free: Vec::new(),
            queues: vec![Queue {
                head: NO_SLOT,
                tail: NO_SLOT,
            }],
            by_key,
            live: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.live
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of queues ever created (ids `0..queue_count`); emptied
    /// queues are kept for reuse, so ids are stable for a set's lifetime.
    pub(crate) fn queue_count(&self) -> u32 {
        self.queues.len() as u32
    }

    /// Head slot of a queue (`NO_SLOT` when empty).
    pub(crate) fn head(&self, queue: u32) -> u32 {
        self.queues[queue as usize].head
    }

    /// Successor of `slot` within its queue (`NO_SLOT` at the tail).
    pub(crate) fn next(&self, slot: u32) -> u32 {
        self.slots[slot as usize].next
    }

    /// The item in `slot`. Panics on a freed slot.
    pub(crate) fn get(&self, slot: u32) -> &T {
        self.slots[slot as usize]
            .item
            .as_ref()
            .expect("read of freed pending slot")
    }

    /// Append `item` to the FIFO for `key`; returns its slot id.
    pub(crate) fn insert(&mut self, key: QueueKey, item: T) -> u32 {
        let q = match self.by_key.get(&key) {
            Some(&q) => q,
            None => {
                let q = self.queues.len() as u32;
                self.queues.push(Queue {
                    head: NO_SLOT,
                    tail: NO_SLOT,
                });
                self.by_key.insert(key, q);
                q
            }
        };
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize].item = Some(item);
                s
            }
            None => {
                self.slots.push(Slot {
                    item: Some(item),
                    prev: NO_SLOT,
                    next: NO_SLOT,
                });
                (self.slots.len() - 1) as u32
            }
        };
        let queue = &mut self.queues[q as usize];
        let tail = queue.tail;
        self.slots[slot as usize].prev = tail;
        self.slots[slot as usize].next = NO_SLOT;
        if tail == NO_SLOT {
            queue.head = slot;
        } else {
            self.slots[tail as usize].next = slot;
        }
        queue.tail = slot;
        self.slot_queue.resize(self.slots.len(), NO_SLOT);
        self.slot_queue[slot as usize] = q;
        self.live += 1;
        slot
    }

    /// Detach `slot` from its queue and free it, returning the item.
    pub(crate) fn remove(&mut self, slot: u32) -> T {
        let q = self.slot_queue[slot as usize];
        debug_assert_ne!(q, NO_SLOT, "remove of freed pending slot");
        let (prev, next) = {
            let s = &self.slots[slot as usize];
            (s.prev, s.next)
        };
        let queue = &mut self.queues[q as usize];
        if prev == NO_SLOT {
            queue.head = next;
        } else {
            self.slots[prev as usize].next = next;
        }
        if next == NO_SLOT {
            queue.tail = prev;
        } else {
            self.slots[next as usize].prev = prev;
        }
        self.slot_queue[slot as usize] = NO_SLOT;
        self.free.push(slot);
        self.live -= 1;
        self.slots[slot as usize]
            .item
            .take()
            .expect("double-remove of pending slot")
    }

    /// Iterate live items in slab order (NOT scheduling order). For
    /// maintenance passes that inspect every pending op.
    pub(crate) fn iter(&self) -> impl Iterator<Item = &T> {
        self.slots.iter().filter_map(|s| s.item.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(set: &mut PendingSet<u64>, queue: u32) -> Vec<u64> {
        let mut out = Vec::new();
        loop {
            let head = set.head(queue);
            if head == NO_SLOT {
                return out;
            }
            out.push(set.remove(head));
        }
    }

    #[test]
    fn queues_are_fifo_and_isolated() {
        let mut set = PendingSet::new();
        let ka = QueueKey::Class(OpClass::AppRead, None);
        let kb = QueueKey::Class(OpClass::AppWrite, Some(1));
        for i in 0..4 {
            set.insert(ka, 10 + i);
            set.insert(kb, 20 + i);
        }
        assert_eq!(set.len(), 8);
        assert_eq!(set.queue_count(), 3); // transfer + two class queues
        let qa = 1;
        let qb = 2;
        assert_eq!(drain(&mut set, qa), vec![10, 11, 12, 13]);
        assert_eq!(drain(&mut set, qb), vec![20, 21, 22, 23]);
        assert!(set.is_empty());
    }

    #[test]
    fn removal_from_middle_keeps_links() {
        let mut set = PendingSet::new();
        let k = QueueKey::Transfer;
        let slots: Vec<u32> = (0..5).map(|i| set.insert(k, i)).collect();
        assert_eq!(set.remove(slots[2]), 2);
        assert_eq!(set.remove(slots[0]), 0);
        assert_eq!(set.remove(slots[4]), 4);
        assert_eq!(drain(&mut set, PendingSet::<u64>::TRANSFER_QUEUE), vec![1, 3]);
    }

    #[test]
    fn slots_and_queues_are_recycled() {
        let mut set = PendingSet::new();
        let k = QueueKey::Class(OpClass::Erase, None);
        let a = set.insert(k, 1);
        set.remove(a);
        let b = set.insert(k, 2);
        assert_eq!(a, b, "freed slot should be reused");
        assert_eq!(set.queue_count(), 2, "queue id should be stable");
        assert_eq!(*set.get(b), 2);
        assert_eq!(set.next(b), NO_SLOT);
    }

    #[test]
    fn iter_sees_exactly_the_live_items() {
        let mut set = PendingSet::new();
        let k = QueueKey::Class(OpClass::GcRead, None);
        let s0 = set.insert(k, 7);
        set.insert(QueueKey::Transfer, 8);
        set.remove(s0);
        let live: Vec<u64> = set.iter().copied().collect();
        assert_eq!(live, vec![8]);
    }
}
