//! Pending-operation storage for the controller scheduler: a slab with
//! intrusive FIFO queues, organized into per-(class, tag) *groups* that
//! split further into issuability lanes.
//!
//! The dispatch hot path must not depend on queue depth. Pending ops live
//! in slab slots threaded onto doubly-linked FIFO queues; each `(OpClass,
//! priority-tag)` pair owns a *group* of queues (plus a dedicated group
//! for register transfers, the hardware-necessity fast path):
//!
//! * the group's **scan queue** holds ops whose issuability is op-specific
//!   (reads resolve their target at probe time, hybrid appends depend on
//!   log-block state); finding its first issuable op probes the blocked
//!   prefix in FIFO order, O(position of the first issuable op);
//! * **write lanes** hold page writes, one lane per `(LUN, stream)` key.
//!   Every op in a lane shares one issuability predicate, so the lane
//!   *head* decides for the whole lane: a blocked head proves the entire
//!   lane blocked, and one probe replaces an O(lane length) walk. This is
//!   what keeps deep write backlogs (queue depth 512 and beyond) out of
//!   the scheduler's inner loop.
//!
//! A group's first issuable op is the min-seq candidate over the scan
//! queue's first issuable op and the issuable lane heads — exactly the op
//! a single merged FIFO would have yielded, so scheduling decisions (and
//! therefore simulation results) are byte-identical to the pre-lane
//! layout. Within a group both seq and enqueue time are monotonic per
//! queue, so policies only ever compare group candidates (O(live
//! groups), typically ≤ `OpClass::COUNT`). Insertion and removal are
//! O(1) and never allocate after warm-up (slots and queues are recycled).
//!
//! Determinism: groups and lanes are discovered in first-use order and
//! slots are recycled LIFO, but selection never depends on either —
//! candidates are compared by `(class, tag, enqueue-time, seq)` keys, and
//! callers sort head candidates by `seq` before handing them to a policy.

use std::collections::BTreeMap;

use crate::types::OpClass;

/// Sentinel slot / queue / group id.
pub(crate) const NO_SLOT: u32 = u32::MAX;

/// Which group a pending op belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub(crate) enum QueueKey {
    /// Register transfers: issued before anything else whenever their
    /// channel frees, since a LUN holding data blocks all other commands.
    Transfer,
    /// Everything else, segregated by scheduling class and priority tag
    /// so FIFO order within a group equals policy-preference order.
    Class(OpClass, Option<u8>),
}

/// Issuability lane of an op within its group: `None` routes to the scan
/// queue, `Some(key)` to the write lane for an opaque `(LUN, stream)`
/// encoding. All ops sharing a lane key must share their issuability
/// predicate — that is the contract that lets a lane's head speak for it.
pub(crate) type LaneKey = Option<u64>;

#[derive(Debug)]
struct Slot<T> {
    item: Option<T>,
    prev: u32,
    next: u32,
}

#[derive(Debug)]
struct Queue {
    head: u32,
    tail: u32,
}

#[derive(Debug)]
struct Group {
    /// Queue id of the order-scan queue.
    scan: u32,
    /// Write-lane keys and their queue ids, in first-use order. Small
    /// (≤ LUNs × streams in play); linear search beats hashing here.
    lane_keys: Vec<u64>,
    lane_queues: Vec<u32>,
}

/// Slab + intrusive FIFO queues of pending items, grouped per `QueueKey`.
#[derive(Debug)]
pub(crate) struct PendingSet<T> {
    slots: Vec<Slot<T>>,
    /// Owning queue per slot (`NO_SLOT` for freed slots).
    slot_queue: Vec<u32>,
    free: Vec<u32>,
    queues: Vec<Queue>,
    groups: Vec<Group>,
    by_key: BTreeMap<QueueKey, u32>,
    live: usize,
}

impl<T> PendingSet<T> {
    /// Group id of the transfer fast-path group (always present).
    pub(crate) const TRANSFER_GROUP: u32 = 0;

    pub(crate) fn new() -> Self {
        let mut by_key = BTreeMap::new();
        by_key.insert(QueueKey::Transfer, Self::TRANSFER_GROUP);
        PendingSet {
            slots: Vec::new(),
            slot_queue: Vec::new(),
            free: Vec::new(),
            queues: vec![Queue {
                head: NO_SLOT,
                tail: NO_SLOT,
            }],
            groups: vec![Group {
                scan: 0,
                lane_keys: Vec::new(),
                lane_queues: Vec::new(),
            }],
            by_key,
            live: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.live
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of groups ever created (ids `0..group_count`); emptied
    /// groups are kept for reuse, so ids are stable for a set's lifetime.
    pub(crate) fn group_count(&self) -> u32 {
        self.groups.len() as u32
    }

    /// Head slot of a group's scan queue (`NO_SLOT` when empty).
    pub(crate) fn scan_head(&self, group: u32) -> u32 {
        self.queues[self.groups[group as usize].scan as usize].head
    }

    /// Number of write lanes a group has accumulated.
    pub(crate) fn lane_count(&self, group: u32) -> usize {
        self.groups[group as usize].lane_queues.len()
    }

    /// Head slot of a group's `idx`-th write lane (`NO_SLOT` when empty).
    pub(crate) fn lane_head(&self, group: u32, idx: usize) -> u32 {
        let q = self.groups[group as usize].lane_queues[idx];
        self.queues[q as usize].head
    }

    /// Successor of `slot` within its queue (`NO_SLOT` at the tail).
    pub(crate) fn next(&self, slot: u32) -> u32 {
        self.slots[slot as usize].next
    }

    /// The item in `slot`. Panics on a freed slot.
    pub(crate) fn get(&self, slot: u32) -> &T {
        self.slots[slot as usize]
            .item
            .as_ref()
            .expect("read of freed pending slot")
    }

    fn new_queue(queues: &mut Vec<Queue>) -> u32 {
        let q = queues.len() as u32;
        queues.push(Queue {
            head: NO_SLOT,
            tail: NO_SLOT,
        });
        q
    }

    /// Append `item` to the FIFO for `key`/`lane`; returns its slot id.
    pub(crate) fn insert(&mut self, key: QueueKey, lane: LaneKey, item: T) -> u32 {
        let g = match self.by_key.get(&key) {
            Some(&g) => g,
            None => {
                let g = self.groups.len() as u32;
                let scan = Self::new_queue(&mut self.queues);
                self.groups.push(Group {
                    scan,
                    lane_keys: Vec::new(),
                    lane_queues: Vec::new(),
                });
                self.by_key.insert(key, g);
                g
            }
        };
        let q = match lane {
            None => self.groups[g as usize].scan,
            Some(lk) => {
                let group = &self.groups[g as usize];
                match group.lane_keys.iter().position(|&k| k == lk) {
                    Some(i) => group.lane_queues[i],
                    None => {
                        let q = Self::new_queue(&mut self.queues);
                        let group = &mut self.groups[g as usize];
                        group.lane_keys.push(lk);
                        group.lane_queues.push(q);
                        q
                    }
                }
            }
        };
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize].item = Some(item);
                s
            }
            None => {
                self.slots.push(Slot {
                    item: Some(item),
                    prev: NO_SLOT,
                    next: NO_SLOT,
                });
                (self.slots.len() - 1) as u32
            }
        };
        let queue = &mut self.queues[q as usize];
        let tail = queue.tail;
        self.slots[slot as usize].prev = tail;
        self.slots[slot as usize].next = NO_SLOT;
        if tail == NO_SLOT {
            queue.head = slot;
        } else {
            self.slots[tail as usize].next = slot;
        }
        queue.tail = slot;
        self.slot_queue.resize(self.slots.len(), NO_SLOT);
        self.slot_queue[slot as usize] = q;
        self.live += 1;
        slot
    }

    /// Detach `slot` from its queue and free it, returning the item.
    pub(crate) fn remove(&mut self, slot: u32) -> T {
        let q = self.slot_queue[slot as usize];
        debug_assert_ne!(q, NO_SLOT, "remove of freed pending slot");
        let (prev, next) = {
            let s = &self.slots[slot as usize];
            (s.prev, s.next)
        };
        let queue = &mut self.queues[q as usize];
        if prev == NO_SLOT {
            queue.head = next;
        } else {
            self.slots[prev as usize].next = next;
        }
        if next == NO_SLOT {
            queue.tail = prev;
        } else {
            self.slots[next as usize].prev = prev;
        }
        self.slot_queue[slot as usize] = NO_SLOT;
        self.free.push(slot);
        self.live -= 1;
        self.slots[slot as usize]
            .item
            .take()
            .expect("double-remove of pending slot")
    }

    /// Iterate live items in slab order (NOT scheduling order). For
    /// maintenance passes that inspect every pending op.
    pub(crate) fn iter(&self) -> impl Iterator<Item = &T> {
        self.slots.iter().filter_map(|s| s.item.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_scan(set: &mut PendingSet<u64>, group: u32) -> Vec<u64> {
        let mut out = Vec::new();
        loop {
            let head = set.scan_head(group);
            if head == NO_SLOT {
                return out;
            }
            out.push(set.remove(head));
        }
    }

    #[test]
    fn scan_queues_are_fifo_and_isolated() {
        let mut set = PendingSet::new();
        let ka = QueueKey::Class(OpClass::AppRead, None);
        let kb = QueueKey::Class(OpClass::AppWrite, Some(1));
        for i in 0..4 {
            set.insert(ka, None, 10 + i);
            set.insert(kb, None, 20 + i);
        }
        assert_eq!(set.len(), 8);
        assert_eq!(set.group_count(), 3); // transfer + two class groups
        assert_eq!(drain_scan(&mut set, 1), vec![10, 11, 12, 13]);
        assert_eq!(drain_scan(&mut set, 2), vec![20, 21, 22, 23]);
        assert!(set.is_empty());
    }

    #[test]
    fn write_lanes_split_by_key_and_keep_fifo() {
        let mut set = PendingSet::new();
        let k = QueueKey::Class(OpClass::AppWrite, None);
        set.insert(k, Some(7), 1);
        set.insert(k, Some(9), 2);
        set.insert(k, Some(7), 3);
        set.insert(k, None, 4); // order-scan op in the same group
        let g = 1;
        assert_eq!(set.lane_count(g), 2);
        assert_eq!(*set.get(set.lane_head(g, 0)), 1);
        assert_eq!(*set.get(set.lane_head(g, 1)), 2);
        assert_eq!(*set.get(set.scan_head(g)), 4);
        // Lane FIFO: removing lane 0's head exposes the next same-key op.
        set.remove(set.lane_head(g, 0));
        assert_eq!(*set.get(set.lane_head(g, 0)), 3);
        set.remove(set.lane_head(g, 0));
        assert_eq!(set.lane_head(g, 0), NO_SLOT, "drained lane stays");
        assert_eq!(set.lane_count(g), 2, "lane ids are stable");
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn removal_from_middle_keeps_links() {
        let mut set = PendingSet::new();
        let k = QueueKey::Transfer;
        let slots: Vec<u32> = (0..5).map(|i| set.insert(k, None, i)).collect();
        assert_eq!(set.remove(slots[2]), 2);
        assert_eq!(set.remove(slots[0]), 0);
        assert_eq!(set.remove(slots[4]), 4);
        assert_eq!(
            drain_scan(&mut set, PendingSet::<u64>::TRANSFER_GROUP),
            vec![1, 3]
        );
    }

    #[test]
    fn slots_and_groups_are_recycled() {
        let mut set = PendingSet::new();
        let k = QueueKey::Class(OpClass::Erase, None);
        let a = set.insert(k, None, 1);
        set.remove(a);
        let b = set.insert(k, None, 2);
        assert_eq!(a, b, "freed slot should be reused");
        assert_eq!(set.group_count(), 2, "group id should be stable");
        assert_eq!(*set.get(b), 2);
        assert_eq!(set.next(b), NO_SLOT);
    }

    #[test]
    fn iter_sees_exactly_the_live_items() {
        let mut set = PendingSet::new();
        let k = QueueKey::Class(OpClass::GcRead, None);
        let s0 = set.insert(k, None, 7);
        set.insert(QueueKey::Transfer, None, 8);
        set.remove(s0);
        let live: Vec<u64> = set.iter().copied().collect();
        assert_eq!(live, vec![8]);
    }
}
