//! Controller-level IO types.
//!
//! The controller receives [`SsdRequest`]s from the OS layer, decomposes
//! them into flash operations, and reports [`Completion`]s. Every internal
//! operation is tagged with its [`IoSource`] and classified into an
//! [`OpClass`] so scheduling policies can discriminate between application
//! IOs and GC / wear-leveling / mapping traffic — the interference the
//! paper's §1 questions revolve around.

use eagletree_core::SimTime;

/// Logical page number, the unit of the exported address space.
pub type Lpn = u64;

/// Physical page number: a linear index into the flash array
/// (see `Geometry::page_index`).
pub type Ppn = u64;

/// Identifier the OS uses to correlate completions with submissions.
pub type RequestId = u64;

/// What an application-visible request does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// Read one logical page.
    Read,
    /// Write one logical page.
    Write,
    /// Discard one logical page (invalidate its mapping).
    Trim,
}

/// Data-temperature hint, either detected on-device or supplied by the OS
/// through the open interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Temperature {
    /// Likely to be updated again soon.
    Hot,
    /// Unlikely to be updated soon.
    Cold,
}

/// Open-interface metadata attached to a request.
///
/// The paper replaces the block-device interface with "an extensible
/// messaging framework" (§2.2 "Open Interface"); these are the three hint
/// types it sketches. `None` everywhere reproduces a plain block device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoTags {
    /// Scheduling priority, 0 = most urgent. `None` = untagged.
    pub priority: Option<u8>,
    /// Declared data temperature (feeds allocation / wear leveling).
    pub temperature: Option<Temperature>,
    /// Update-locality group: pages sharing a group are co-located so they
    /// invalidate together, minimizing subsequent garbage collection.
    pub locality_group: Option<u32>,
}

impl IoTags {
    /// No hints: the traditional closed block-device interface.
    pub fn none() -> Self {
        Self::default()
    }

    /// Tag with a scheduling priority.
    pub fn with_priority(mut self, p: u8) -> Self {
        self.priority = Some(p);
        self
    }

    /// Tag with a temperature hint.
    pub fn with_temperature(mut self, t: Temperature) -> Self {
        self.temperature = Some(t);
        self
    }

    /// Tag with an update-locality group.
    pub fn with_locality(mut self, g: u32) -> Self {
        self.locality_group = Some(g);
        self
    }
}

/// A request submitted by the OS to the SSD.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SsdRequest {
    /// OS-assigned correlation id (unique among in-flight requests).
    pub id: RequestId,
    /// Operation.
    pub kind: RequestKind,
    /// Target logical page.
    pub lpn: Lpn,
    /// Open-interface hints.
    pub tags: IoTags,
}

/// Completion notice returned to the OS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Id of the completed request.
    pub id: RequestId,
    /// Virtual time of completion.
    pub at: SimTime,
}

/// Who generated a flash operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoSource {
    /// An application read/write/trim.
    Application,
    /// Garbage collection migrating or erasing.
    GarbageCollection,
    /// Wear leveling migrating or erasing.
    WearLeveling,
    /// DFTL translation-page traffic.
    Mapping,
    /// Hybrid log-block merge traffic (switch / partial / full merges).
    Merge,
    /// Background scrubber refreshing at-risk blocks (read disturb /
    /// retention) before their bit errors outgrow ECC.
    Scrub,
}

/// Scheduling class of a pending flash operation: source × direction.
///
/// Policies rank these classes; see `sched`. Per-class tables
/// (`sched::ClassTable`) derive their length from [`OpClass::COUNT`], so
/// adding a variant here only requires extending [`OpClass::ALL`] — the
/// `const` assertions below fail the build if the two fall out of sync.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpClass {
    AppRead,
    AppWrite,
    GcRead,
    GcWrite,
    WlRead,
    WlWrite,
    MergeRead,
    MergeWrite,
    MappingRead,
    MappingWrite,
    Erase,
    ScrubRead,
    ScrubWrite,
}

/// Compile-time sync check: `ALL` must list every variant in declaration
/// order. If a variant is added (anywhere) without extending `ALL`, either
/// the per-index equality or the `last + 1` length check fails the build.
const _: () = {
    let mut i = 0;
    while i < OpClass::ALL.len() {
        assert!(
            OpClass::ALL[i] as usize == i,
            "OpClass::ALL must list variants in declaration order"
        );
        i += 1;
    }
    assert!(
        OpClass::ALL.len() == OpClass::ScrubWrite as usize + 1,
        "OpClass::ALL is missing variants (extend it when OpClass grows)"
    );
};

impl OpClass {
    /// Number of classes; sizes every per-class table.
    pub const COUNT: usize = OpClass::ALL.len();

    /// All classes, for iteration in fair schedulers and reports.
    pub const ALL: [OpClass; 13] = [
        OpClass::AppRead,
        OpClass::AppWrite,
        OpClass::GcRead,
        OpClass::GcWrite,
        OpClass::WlRead,
        OpClass::WlWrite,
        OpClass::MergeRead,
        OpClass::MergeWrite,
        OpClass::MappingRead,
        OpClass::MappingWrite,
        OpClass::Erase,
        OpClass::ScrubRead,
        OpClass::ScrubWrite,
    ];

    /// Stable display name (trace labels, reports).
    pub fn name(self) -> &'static str {
        match self {
            OpClass::AppRead => "AppRead",
            OpClass::AppWrite => "AppWrite",
            OpClass::GcRead => "GcRead",
            OpClass::GcWrite => "GcWrite",
            OpClass::WlRead => "WlRead",
            OpClass::WlWrite => "WlWrite",
            OpClass::MergeRead => "MergeRead",
            OpClass::MergeWrite => "MergeWrite",
            OpClass::MappingRead => "MappingRead",
            OpClass::MappingWrite => "MappingWrite",
            OpClass::Erase => "Erase",
            OpClass::ScrubRead => "ScrubRead",
            OpClass::ScrubWrite => "ScrubWrite",
        }
    }

    /// True for application-visible classes.
    pub fn is_application(self) -> bool {
        matches!(self, OpClass::AppRead | OpClass::AppWrite)
    }

    /// True for classes generated inside the SSD.
    pub fn is_internal(self) -> bool {
        !self.is_application()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_builder_composes() {
        let t = IoTags::none()
            .with_priority(1)
            .with_temperature(Temperature::Hot)
            .with_locality(7);
        assert_eq!(t.priority, Some(1));
        assert_eq!(t.temperature, Some(Temperature::Hot));
        assert_eq!(t.locality_group, Some(7));
        assert_eq!(IoTags::none(), IoTags::default());
    }

    #[test]
    fn op_class_partitions() {
        let apps = OpClass::ALL.iter().filter(|c| c.is_application()).count();
        let internals = OpClass::ALL.iter().filter(|c| c.is_internal()).count();
        assert_eq!(apps, 2);
        assert_eq!(apps + internals, OpClass::ALL.len());
    }

    #[test]
    fn op_class_all_is_complete_and_ordered() {
        assert_eq!(OpClass::COUNT, OpClass::ALL.len());
        for (i, c) in OpClass::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i, "ALL out of declaration order at {i}");
        }
        // Names are unique (catches copy-paste in `name`).
        let mut names: Vec<&str> = OpClass::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), OpClass::COUNT);
    }
}
