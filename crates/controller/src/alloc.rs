//! Write allocation: which LUN, which block, which page.
//!
//! "For writes, the mapping scheme imposes constraints on which physical
//! address a given IO might be bound to" (§2.2) — with page mapping the
//! constraint is only NAND's sequential-program rule, so the allocator is
//! free to choose *where* each write lands, and that choice is a scheduling
//! decision. The allocator keeps, per LUN, a free-block list and one active
//! (partially written) block per [`Stream`]; streams separate hot/cold data
//! (dynamic wear leveling), GC migrations, DFTL translation pages, and
//! open-interface update-locality groups.

use std::collections::BTreeMap;

use eagletree_flash::{BlockAddr, Geometry, PhysicalAddr};

use crate::config::WriteAllocPolicy;

/// A write stream: pages in one stream share active blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Stream {
    /// Default / hot application data.
    Hot,
    /// Cold application data (dynamic WL steers this to old blocks).
    Cold,
    /// GC migration destinations.
    Gc,
    /// DFTL translation pages.
    Translation,
    /// Open-interface update-locality group.
    Locality(u32),
}

impl Stream {
    /// Streams whose writes may consume the last free block of a LUN.
    /// Application streams must leave headroom so GC can always make
    /// progress.
    pub fn is_internal(self) -> bool {
        matches!(self, Stream::Gc | Stream::Translation)
    }
}

#[derive(Debug, Clone, Copy)]
struct ActiveBlock {
    addr: BlockAddr,
    next_page: u32,
}

#[derive(Debug, Clone)]
struct LunAlloc {
    /// Free blocks with their erase counts (for age-aware allocation).
    free: Vec<(BlockAddr, u32)>,
    active: BTreeMap<Stream, ActiveBlock>,
}

/// Per-LUN free-space manager.
pub struct Allocator {
    geometry: Geometry,
    luns: Vec<LunAlloc>,
    policy: WriteAllocPolicy,
    /// Dynamic wear leveling: hot streams take young blocks, cold old.
    dynamic_wl: bool,
    rr_cursor: usize,
}

impl Allocator {
    /// All blocks start free with erase count zero.
    pub fn new(geometry: Geometry, policy: WriteAllocPolicy, dynamic_wl: bool) -> Self {
        let mut luns = vec![
            LunAlloc {
                free: Vec::new(),
                active: BTreeMap::new(),
            };
            geometry.total_luns() as usize
        ];
        for b in geometry.blocks() {
            luns[geometry.lun_index(b.channel, b.lun) as usize]
                .free
                .push((b, 0));
        }
        Allocator {
            geometry,
            luns,
            policy,
            dynamic_wl,
            rr_cursor: 0,
        }
    }

    /// An allocator with *no* free blocks: the mount-time starting point.
    /// Recovery hands back each block it found erased (with its surviving
    /// erase count) via [`Allocator::block_freed`].
    pub fn empty(geometry: Geometry, policy: WriteAllocPolicy, dynamic_wl: bool) -> Self {
        Allocator {
            geometry,
            luns: vec![
                LunAlloc {
                    free: Vec::new(),
                    active: BTreeMap::new(),
                };
                geometry.total_luns() as usize
            ],
            policy,
            dynamic_wl,
            rr_cursor: 0,
        }
    }

    /// Number of wholly-free blocks on a LUN.
    pub fn free_blocks(&self, lun: u32) -> usize {
        self.luns[lun as usize].free.len()
    }

    /// Free pages on a LUN: whole free blocks plus room in active blocks.
    pub fn free_pages(&self, lun: u32) -> u64 {
        let l = &self.luns[lun as usize];
        let ppb = self.geometry.pages_per_block as u64;
        l.free.len() as u64 * ppb
            + l.active
                .values()
                .map(|a| (self.geometry.pages_per_block - a.next_page) as u64)
                .sum::<u64>()
    }

    /// True if `block` sits in a free list.
    pub fn is_free(&self, block: BlockAddr) -> bool {
        let lun = self.geometry.lun_index(block.channel, block.lun) as usize;
        self.luns[lun].free.iter().any(|(b, _)| *b == block)
    }

    /// True if `block` is an active (partially written) allocation target.
    pub fn is_active(&self, block: BlockAddr) -> bool {
        let lun = self.geometry.lun_index(block.channel, block.lun) as usize;
        self.luns[lun].active.values().any(|a| a.addr == block)
    }

    /// Whether a page could be allocated right now on `lun` for `stream`.
    pub fn can_alloc(&self, lun: u32, stream: Stream) -> bool {
        let l = &self.luns[lun as usize];
        if let Some(a) = l.active.get(&stream) {
            if a.next_page < self.geometry.pages_per_block {
                return true;
            }
        }
        if stream.is_internal() {
            !l.free.is_empty()
        } else {
            // Application streams never take the last free block: it is
            // reserved so GC can always allocate a migration destination.
            l.free.len() > 1
        }
    }

    /// The page the next `alloc(lun, stream)` would return *if* it comes
    /// from the stream's current active block (`None` when a fresh block
    /// would have to be opened). Used to probe for pipelined programs.
    pub fn peek_active(&self, lun: u32, stream: Stream) -> Option<PhysicalAddr> {
        let l = &self.luns[lun as usize];
        let a = l.active.get(&stream)?;
        if a.next_page < self.geometry.pages_per_block {
            Some(a.addr.page(a.next_page))
        } else {
            None
        }
    }

    /// Allocate the next page on `lun` for `stream`.
    ///
    /// Returns `None` when the LUN is out of space for this stream (callers
    /// leave the op pending and retry after GC frees a block).
    pub fn alloc(&mut self, lun: u32, stream: Stream) -> Option<PhysicalAddr> {
        if !self.can_alloc(lun, stream) {
            return None;
        }
        let ppb = self.geometry.pages_per_block;
        let l = &mut self.luns[lun as usize];
        if let Some(a) = l.active.get_mut(&stream) {
            if a.next_page < ppb {
                let addr = a.addr.page(a.next_page);
                a.next_page += 1;
                if a.next_page == ppb {
                    l.active.remove(&stream);
                }
                return Some(addr);
            }
        }
        let block = Self::pop_free(l, stream, self.dynamic_wl)?;
        let addr = block.page(0);
        if ppb > 1 {
            l.active.insert(
                stream,
                ActiveBlock {
                    addr: block,
                    next_page: 1,
                },
            );
        }
        Some(addr)
    }

    /// Allocate a page in a *specific plane* of a LUN (copy-back targets).
    pub fn alloc_in_plane(&mut self, lun: u32, plane: u32, stream: Stream) -> Option<PhysicalAddr> {
        let ppb = self.geometry.pages_per_block;
        let l = &mut self.luns[lun as usize];
        if let Some(a) = l.active.get_mut(&stream) {
            if a.addr.plane == plane && a.next_page < ppb {
                let addr = a.addr.page(a.next_page);
                a.next_page += 1;
                if a.next_page == ppb {
                    l.active.remove(&stream);
                }
                return Some(addr);
            }
        }
        // Need a fresh block in this plane; only take it if the stream may
        // (or a spare remains for internal streams).
        let min_left = if stream.is_internal() { 0 } else { 1 };
        if l.free.iter().filter(|(b, _)| b.plane == plane).count() == 0
            || l.free.len() <= min_left
        {
            return None;
        }
        // Current active block (wrong plane) is abandoned for this stream:
        // its remaining pages are left unwritten; GC reclaims them later.
        let pos = Self::pick_free_in(l, stream, self.dynamic_wl, Some(plane))?;
        let (block, _) = l.free.swap_remove(pos);
        let addr = block.page(0);
        if ppb > 1 {
            l.active.insert(
                stream,
                ActiveBlock {
                    addr: block,
                    next_page: 1,
                },
            );
        }
        Some(addr)
    }

    fn pick_free_in(
        l: &LunAlloc,
        stream: Stream,
        dynamic_wl: bool,
        plane: Option<u32>,
    ) -> Option<usize> {
        let candidates = l
            .free
            .iter()
            .enumerate()
            .filter(|(_, (b, _))| plane.is_none_or(|p| b.plane == p));
        if dynamic_wl {
            // Hot data → youngest block (lowest erase count) so young
            // blocks age; cold data → oldest block so old blocks rest.
            match stream {
                Stream::Cold => candidates.max_by_key(|(_, (_, ec))| *ec).map(|(i, _)| i),
                _ => candidates.min_by_key(|(_, (_, ec))| *ec).map(|(i, _)| i),
            }
        } else {
            candidates.map(|(i, _)| i).next()
        }
    }

    fn pop_free(l: &mut LunAlloc, stream: Stream, dynamic_wl: bool) -> Option<BlockAddr> {
        let pos = Self::pick_free_in(l, stream, dynamic_wl, None)?;
        Some(l.free.swap_remove(pos).0)
    }

    /// Take a whole free block for FTL-managed structures (hybrid log
    /// blocks and merge destinations), which keep their own fill pointers.
    ///
    /// Picks the LUN with the most free blocks (load spreading, lowest
    /// index on ties); within it, dynamic wear leveling steers these
    /// hot-churn blocks to the youngest candidate. Returns the block and
    /// its erase count, or `None` when every LUN is empty — callers retry
    /// after a pending erase returns a block.
    pub fn take_block(&mut self) -> Option<(BlockAddr, u32)> {
        let lun = (0..self.geometry.total_luns())
            .max_by_key(|&l| (self.luns[l as usize].free.len(), std::cmp::Reverse(l)))?;
        let l = &mut self.luns[lun as usize];
        if l.free.is_empty() {
            return None;
        }
        let pos = if self.dynamic_wl {
            l.free
                .iter()
                .enumerate()
                .min_by_key(|(_, (b, ec))| (*ec, *b))
                .map(|(i, _)| i)
                .expect("non-empty free list")
        } else {
            0
        };
        Some(l.free.swap_remove(pos))
    }

    /// Remove `block` from this allocator entirely: drop it from the free
    /// list and close it if it is an active allocation target. Grown-bad
    /// retirement after a program-status failure — the block is never
    /// handed out again; its surviving live pages are evacuated by normal
    /// GC and the eventual erase masks it bad for good.
    pub fn retire_block(&mut self, block: BlockAddr) {
        let lun = self.geometry.lun_index(block.channel, block.lun) as usize;
        let l = &mut self.luns[lun];
        l.free.retain(|(b, _)| *b != block);
        l.active.retain(|_, a| a.addr != block);
    }

    /// Return an erased block to its LUN's free list.
    pub fn block_freed(&mut self, block: BlockAddr, erase_count: u32) {
        let lun = self.geometry.lun_index(block.channel, block.lun) as usize;
        debug_assert!(
            !self.luns[lun].free.iter().any(|(b, _)| *b == block),
            "double free of {block:?}"
        );
        self.luns[lun].free.push((block, erase_count));
    }

    /// Choose a LUN for an unbound write per the write-allocation policy,
    /// considering only LUNs for which `usable` holds (resources free) and
    /// allocation is possible.
    pub fn choose_lun(
        &mut self,
        stream: Stream,
        usable: impl Fn(u32) -> bool,
    ) -> Option<u32> {
        let n = self.geometry.total_luns();
        match self.policy {
            WriteAllocPolicy::RoundRobin => {
                for off in 0..n {
                    let lun = (self.rr_cursor as u32 + off) % n;
                    if usable(lun) && self.can_alloc(lun, stream) {
                        self.rr_cursor = (lun as usize + 1) % n as usize;
                        return Some(lun);
                    }
                }
                None
            }
            WriteAllocPolicy::LeastUtilized => (0..n)
                .filter(|&l| usable(l) && self.can_alloc(l, stream))
                .max_by_key(|&l| self.free_pages(l)),
            // Striping binds the LUN from the LPN before ops are enqueued;
            // an unbound chooser falls back to round-robin order.
            WriteAllocPolicy::Striping => {
                (0..n).find(|&l| usable(l) && self.can_alloc(l, stream))
            }
        }
    }

    /// The LUN a striped write of `lpn` is bound to.
    pub fn striped_lun(&self, lpn: u64) -> u32 {
        (lpn % self.geometry.total_luns() as u64) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc() -> Allocator {
        Allocator::new(Geometry::tiny(), WriteAllocPolicy::RoundRobin, false)
    }

    #[test]
    fn fresh_allocator_has_all_blocks_free() {
        let a = alloc();
        let g = Geometry::tiny();
        for lun in 0..g.total_luns() {
            assert_eq!(a.free_blocks(lun), g.blocks_per_lun() as usize);
            assert_eq!(
                a.free_pages(lun),
                g.blocks_per_lun() as u64 * g.pages_per_block as u64
            );
        }
    }

    #[test]
    fn allocations_are_sequential_within_block() {
        let mut a = alloc();
        let first = a.alloc(0, Stream::Hot).unwrap();
        assert_eq!(first.page, 0);
        let second = a.alloc(0, Stream::Hot).unwrap();
        assert_eq!(second.block_addr(), first.block_addr());
        assert_eq!(second.page, 1);
    }

    #[test]
    fn streams_use_distinct_blocks() {
        let mut a = alloc();
        let hot = a.alloc(0, Stream::Hot).unwrap();
        let gc = a.alloc(0, Stream::Gc).unwrap();
        let loc = a.alloc(0, Stream::Locality(3)).unwrap();
        assert_ne!(hot.block_addr(), gc.block_addr());
        assert_ne!(hot.block_addr(), loc.block_addr());
        assert_ne!(gc.block_addr(), loc.block_addr());
    }

    #[test]
    fn full_block_rolls_to_next_free() {
        let mut a = alloc();
        let ppb = Geometry::tiny().pages_per_block;
        let first_block = a.alloc(0, Stream::Hot).unwrap().block_addr();
        for _ in 1..ppb {
            a.alloc(0, Stream::Hot).unwrap();
        }
        let next = a.alloc(0, Stream::Hot).unwrap();
        assert_ne!(next.block_addr(), first_block);
        assert_eq!(next.page, 0);
    }

    #[test]
    fn app_streams_cannot_take_last_free_block() {
        let g = Geometry {
            blocks_per_plane: 2,
            ..Geometry::tiny()
        };
        let mut a = Allocator::new(g, WriteAllocPolicy::RoundRobin, false);
        // Drain: app can open the first block (2 free), fill it…
        for _ in 0..g.pages_per_block {
            a.alloc(0, Stream::Hot).unwrap();
        }
        // …but not open the last block.
        assert!(!a.can_alloc(0, Stream::Hot));
        assert!(a.alloc(0, Stream::Hot).is_none());
        // Internal streams can.
        assert!(a.can_alloc(0, Stream::Gc));
        assert!(a.alloc(0, Stream::Gc).is_some());
    }

    #[test]
    fn block_freed_returns_to_pool() {
        let g = Geometry {
            blocks_per_plane: 2,
            ..Geometry::tiny()
        };
        let mut a = Allocator::new(g, WriteAllocPolicy::RoundRobin, false);
        let block = a.alloc(0, Stream::Gc).unwrap().block_addr();
        for _ in 1..g.pages_per_block {
            a.alloc(0, Stream::Gc).unwrap();
        }
        assert_eq!(a.free_blocks(0), 1);
        a.block_freed(block, 1);
        assert_eq!(a.free_blocks(0), 2);
        assert!(a.is_free(block));
    }

    #[test]
    fn dynamic_wl_steers_hot_to_young_cold_to_old() {
        let g = Geometry {
            blocks_per_plane: 4,
            ..Geometry::tiny()
        };
        let mut a = Allocator::new(g, WriteAllocPolicy::RoundRobin, true);
        // Rebuild lun 0's free list with distinct erase counts.
        let blocks: Vec<BlockAddr> = (0..4)
            .map(|i| BlockAddr {
                channel: 0,
                lun: 0,
                plane: 0,
                block: i,
            })
            .collect();
        a.luns[0].free.clear();
        for (i, b) in blocks.iter().enumerate() {
            a.luns[0].free.push((*b, i as u32 * 10));
        }
        let hot = a.alloc(0, Stream::Hot).unwrap();
        assert_eq!(hot.block_addr(), blocks[0], "hot should take youngest");
        let cold = a.alloc(0, Stream::Cold).unwrap();
        assert_eq!(cold.block_addr(), blocks[3], "cold should take oldest");
    }

    #[test]
    fn alloc_in_plane_respects_plane() {
        let g = Geometry {
            planes_per_lun: 2,
            ..Geometry::tiny()
        };
        let mut a = Allocator::new(g, WriteAllocPolicy::RoundRobin, false);
        let p1 = a.alloc_in_plane(0, 1, Stream::Gc).unwrap();
        assert_eq!(p1.plane, 1);
        let p1b = a.alloc_in_plane(0, 1, Stream::Gc).unwrap();
        assert_eq!(p1b.block_addr(), p1.block_addr());
        assert_eq!(p1b.page, 1);
    }

    #[test]
    fn choose_lun_round_robin_rotates() {
        let mut a = alloc();
        let l1 = a.choose_lun(Stream::Hot, |_| true).unwrap();
        let l2 = a.choose_lun(Stream::Hot, |_| true).unwrap();
        assert_ne!(l1, l2);
        // Unusable LUNs are skipped.
        let l3 = a.choose_lun(Stream::Hot, |l| l == 0).unwrap();
        assert_eq!(l3, 0);
        assert_eq!(a.choose_lun(Stream::Hot, |_| false), None);
    }

    #[test]
    fn choose_lun_least_utilized_prefers_space() {
        let mut a = Allocator::new(Geometry::tiny(), WriteAllocPolicy::LeastUtilized, false);
        // Consume a block's worth on LUN 0.
        for _ in 0..Geometry::tiny().pages_per_block {
            a.alloc(0, Stream::Hot).unwrap();
        }
        let l = a.choose_lun(Stream::Hot, |_| true).unwrap();
        assert_ne!(l, 0);
    }

    #[test]
    fn striped_lun_is_modulo() {
        let a = alloc();
        let n = Geometry::tiny().total_luns() as u64;
        assert_eq!(a.striped_lun(0), 0);
        assert_eq!(a.striped_lun(n + 1), 1);
    }

    #[test]
    fn take_block_prefers_fullest_lun_and_drains() {
        let mut a = alloc();
        let g = Geometry::tiny();
        // Consume one block from LUN 0: the next take goes elsewhere.
        let first = a.take_block().unwrap().0;
        assert_eq!(g.lun_index(first.channel, first.lun), 0);
        let second = a.take_block().unwrap().0;
        assert_ne!(g.lun_index(second.channel, second.lun), 0);
        // Taken blocks are no longer free.
        assert!(!a.is_free(first));
        let total = g.total_blocks();
        for _ in 2..total {
            assert!(a.take_block().is_some());
        }
        assert!(a.take_block().is_none());
    }

    #[test]
    fn take_block_with_dynamic_wl_prefers_young() {
        let mut a = Allocator::new(Geometry::tiny(), WriteAllocPolicy::RoundRobin, true);
        // Age every block except one on LUN 0.
        for (i, entry) in a.luns[0].free.iter_mut().enumerate() {
            entry.1 = if i == 3 { 0 } else { 50 };
        }
        for l in 1..Geometry::tiny().total_luns() as usize {
            for entry in a.luns[l].free.iter_mut() {
                entry.1 = 50;
            }
        }
        let (b, ec) = a.take_block().unwrap();
        assert_eq!(ec, 0, "dynamic WL should hand out the youngest block");
        assert_eq!(Geometry::tiny().lun_index(b.channel, b.lun), 0);
    }

    #[test]
    fn is_active_tracks_open_blocks() {
        let mut a = alloc();
        let b = a.alloc(0, Stream::Hot).unwrap().block_addr();
        assert!(a.is_active(b));
        assert!(!a.is_free(b));
    }

    #[test]
    fn retire_block_closes_active_and_drops_free() {
        let mut a = alloc();
        // Retire the currently active hot block: the next allocation must
        // come from a different block.
        let active = a.alloc(0, Stream::Hot).unwrap().block_addr();
        a.retire_block(active);
        assert!(!a.is_active(active));
        let next = a.alloc(0, Stream::Hot).unwrap();
        assert_ne!(next.block_addr(), active);
        assert_eq!(next.page, 0, "retired block's fill pointer is abandoned");
        // Retiring a free block shrinks the pool.
        let free_before = a.free_blocks(0);
        let some_free = a.luns[0].free[0].0;
        a.retire_block(some_free);
        assert_eq!(a.free_blocks(0), free_before - 1);
        assert!(!a.is_free(some_free));
    }
}
