//! Crash recovery: rebuild the mapping from the flash medium after a
//! power cut.
//!
//! The durable record of an SSD's mapping is the per-page OOB metadata the
//! controller persists with every program (`eagletree_flash::oob`): the
//! logical page, a content-version `seq`, and a monotone program `stamp`.
//! After [`crate::Controller::power_cut`] freezes the medium into a
//! [`CrashImage`], [`crate::Controller::remount`] rebuilds a fresh
//! controller from it in one of two modes:
//!
//! * [`RecoveryMode::FullScan`] — read the OOB of every written page on
//!   the device and keep, per logical page, the copy with the highest
//!   `(seq, stamp)`. Always possible; mount time scales with device fill.
//! * [`RecoveryMode::Checkpoint`] — start from the last *committed*
//!   mapping checkpoint (a snapshot written to reserved blocks during
//!   normal operation), probe each block's newest stamp, and re-scan only
//!   blocks holding entries newer than the checkpoint's watermark. Falls
//!   back to a full scan when no checkpoint committed before the cut.
//!
//! Guarantees (the crash-recovery property suite drives these):
//!
//! * **No acknowledged write is lost.** A write is acknowledged only after
//!   its program completed, and completed programs survive a cut; its OOB
//!   `(seq, stamp)` outranks every older copy.
//! * **GC / merge relocation is crash-atomic.** Copies carry the source's
//!   `seq` with a fresh `stamp`, and a victim is erased only after every
//!   live copy's program completed — so at any cut point either the
//!   original or a sequence-stamped copy (or a newer host write) wins the
//!   scan, never neither.
//! * **No double mapping.** The scan keeps exactly one winner per logical
//!   page and reconciles every other copy to invalid.
//! * **Checkpointed trims stay dead.** Trims are journaled into the
//!   periodic checkpoint: a committed [`CheckpointRecord`] carries each
//!   trimmed-and-still-unmapped page with the content version (`seq`) of
//!   the copy the trim discarded, and replay rejects scanned copies at or
//!   below that barrier — so under [`RecoveryMode::Checkpoint`] a page
//!   trimmed before the last committed checkpoint is not resurrected by
//!   a re-scanned block. Post-trim writes carry newer seqs and still win.
//!
//! Remaining semantic edge, shared with real FTLs that journal
//! deallocations lazily: trims issued *after* the last committed
//! checkpoint — and every trim under [`RecoveryMode::FullScan`], which
//! has no checkpoint to consult — are RAM-only and may be *resurrected*
//! by recovery.

use std::collections::BTreeMap;

use eagletree_core::{SimDuration, SimTime};
use eagletree_flash::{BlockAddr, FlashArray, OobTag, PageState, PowerCutReport};

use crate::controller::PageContent;
use crate::types::{Lpn, Ppn};

/// How a remount rebuilds the mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryMode {
    /// Scan the OOB of every written page.
    FullScan,
    /// Replay from the last committed checkpoint; re-scan only blocks
    /// whose newest stamp exceeds the checkpoint watermark. Falls back to
    /// a full scan when the image holds no committed checkpoint.
    Checkpoint,
}

impl RecoveryMode {
    /// Short label for experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            RecoveryMode::FullScan => "full_scan",
            RecoveryMode::Checkpoint => "checkpoint",
        }
    }
}

/// A committed mapping checkpoint: the snapshot a crash survives.
///
/// During normal operation the controller serializes this into page
/// programs on the reserved `blocks` (double-buffered across two slots);
/// the in-RAM copy here models the snapshot's *content*, while the flash
/// programs model its cost and its durability window — a checkpoint whose
/// programs had not all completed at the cut is discarded with its torn
/// pages, and the previous committed one stands.
#[derive(Debug, Clone)]
pub struct CheckpointRecord {
    /// Program stamps `<= watermark` are fully reflected in the snapshot;
    /// recovery re-scans exactly the blocks holding newer stamps.
    pub watermark: u64,
    /// lpn → ppn at snapshot time.
    pub data: Vec<Option<Ppn>>,
    /// tvpn → flash location of each translation page at snapshot time
    /// (empty outside DFTL).
    pub trans: Vec<Option<Ppn>>,
    /// Which reserved slot holds it.
    pub slot: u8,
    /// The reserved blocks the snapshot was programmed into.
    pub blocks: Vec<BlockAddr>,
    /// Journaled trims: logical pages trimmed and still unmapped at
    /// snapshot time, each with the content version (`seq`) of the copy
    /// the trim discarded. Replay rejects any scanned copy of these
    /// pages with `seq <=` the barrier — the trimmed content and its GC
    /// relocations — while post-trim writes (newer seqs) still win.
    pub trims: Vec<(Lpn, u64)>,
}

/// The dead medium a power cut leaves behind: everything that survives
/// into a remount. Cloneable so one captured crash can be remounted under
/// several recovery modes.
#[derive(Clone)]
pub struct CrashImage {
    /// The flash array (page payloads, OOB, wear state, torn pages).
    pub(crate) flash: FlashArray,
    /// The last committed mapping checkpoint, if any.
    pub(crate) checkpoint: Option<CheckpointRecord>,
    /// Logical pages resident in the battery-backed write buffer (the
    /// battery is the point: these acknowledged writes survive the cut).
    pub(crate) buffered: Vec<Lpn>,
    /// What the cut destroyed.
    pub(crate) cut: PowerCutReport,
}

impl CrashImage {
    /// What the power cut destroyed.
    pub fn cut_report(&self) -> PowerCutReport {
        self.cut
    }

    /// Whether a committed checkpoint survived the cut.
    pub fn has_checkpoint(&self) -> bool {
        self.checkpoint.is_some()
    }
}

/// What a remount did and what it cost, in modeled mount time.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// The requested mode.
    pub mode: RecoveryMode,
    /// Whether a committed checkpoint was actually replayed (false for
    /// `Checkpoint` mode falling back to a full scan).
    pub used_checkpoint: bool,
    /// OOB reads performed (block probes included).
    pub oob_scanned: u64,
    /// Blocks probed for their newest stamp (checkpoint replay only).
    pub blocks_probed: u64,
    /// Pages found torn (partially programmed at the cut).
    pub torn_pages: u64,
    /// Blocks whose erase the cut interrupted (re-erased during mount).
    pub interrupted_erases: u64,
    /// OOB reads the scan could not correct (fault model installed and
    /// the spare area's raw errors outgrew the ECC): the page is skipped
    /// and its content reconstructed from another copy when one exists.
    pub oob_uncorrectable: u64,
    /// Blocks erased during mount (interrupted erases, retired checkpoint
    /// blocks, and — under the hybrid scheme — blocks left with no live
    /// pages).
    pub blocks_erased: u64,
    /// Live data mappings recovered.
    pub data_entries: u64,
    /// Translation-page locations recovered (DFTL).
    pub translation_entries: u64,
    /// Modeled mount time: per-LUN parallel OOB scanning plus mount-time
    /// erases (the metric E21 sweeps against checkpoint interval).
    pub mount_time: SimDuration,
}

/// Winner candidate: `(ppn, seq, stamp)`; higher `(seq, stamp)` wins.
type Winner = (Ppn, u64, u64);

fn fold(slot: &mut Option<Winner>, cand: Winner) {
    let better = slot.is_none_or(|(_, s, t)| (cand.1, cand.2) > (s, t));
    if better {
        *slot = Some(cand);
    }
}

/// Everything the scan-and-reconcile pass rebuilds.
pub(crate) struct Recovered {
    pub data_map: Vec<Option<Ppn>>,
    pub trans_map: Vec<Option<Ppn>>,
    pub reverse: Vec<Option<PageContent>>,
    /// Highest stamp observed anywhere; the remounted controller's stamp
    /// counter resumes above it.
    pub max_stamp: u64,
    pub used_checkpoint: bool,
    pub oob_scanned: u64,
    pub oob_uncorrectable: u64,
    pub blocks_probed: u64,
    pub blocks_erased: u64,
    pub mount_time: SimDuration,
}

/// Scan the medium, decide winners, and reconcile page validity to match:
/// winners become valid, every other written page becomes invalid, blocks
/// with nothing live left (checkpoint remnants always; all dead blocks
/// when `erase_dead_blocks`) and interrupted-erase blocks are erased.
///
/// `record` enables checkpoint replay; `keep_translation` keeps recovered
/// translation-page locations (remounting under a scheme without
/// translation pages reclaims them as garbage instead).
pub(crate) fn recover_medium(
    flash: &mut FlashArray,
    record: Option<&CheckpointRecord>,
    logical_pages: u64,
    tvpns: u64,
    keep_translation: bool,
    erase_dead_blocks: bool,
    now: SimTime,
) -> Recovered {
    let g = *flash.geometry();
    let luns = g.total_luns() as usize;
    let mut per_lun_reads = vec![0u64; luns];
    let mut per_lun_erases = vec![0u64; luns];
    let mut data: Vec<Option<Winner>> = vec![None; logical_pages as usize];
    let mut trans: Vec<Option<Winner>> = vec![None; tvpns as usize];
    let mut max_stamp = 0u64;
    let mut oob_scanned = 0u64;
    let mut oob_uncorrectable = 0u64;
    let mut blocks_probed = 0u64;
    // Journaled trims: copies of these logical pages with seq at or below
    // the barrier were dead at snapshot time and must not be resurrected
    // when their block gets re-scanned.
    let trim_barriers: BTreeMap<Lpn, u64> = record
        .map(|r| r.trims.iter().copied().collect())
        .unwrap_or_default();
    let trimmed = |lpn: u64, seq: u64| trim_barriers.get(&lpn).is_some_and(|&b| seq <= b);

    // Seed from the checkpoint snapshot. Reading the snapshot itself costs
    // its flash pages (charged here); the per-entry validation below —
    // dropping entries whose page was erased or reprogrammed since the
    // snapshot, e.g. after an unjournaled trim — is RAM-side
    // reconstruction against medium state and is not priced (a real FTL
    // avoids it by journaling trims or validating lazily on first read).
    // A dropped entry is safe to drop: any still-live version of that
    // logical page necessarily carries a post-watermark stamp and is
    // found by the block scan below.
    if let Some(r) = record {
        for block in &r.blocks {
            let written = flash.block_info(*block).write_ptr as u64;
            oob_scanned += written;
            per_lun_reads[g.lun_index(block.channel, block.lun) as usize] += written;
        }
        for (lpn, slot) in r.data.iter().enumerate() {
            let Some(ppn) = *slot else { continue };
            match flash.oob_checked(g.page_at(ppn), now) {
                Err(_) => oob_uncorrectable += 1,
                Ok(Some(e)) => {
                    if e.tag == (OobTag::Data { lpn: lpn as u64 })
                        && flash.page_state(g.page_at(ppn)) != PageState::Free
                        && !trimmed(lpn as u64, e.seq)
                    {
                        fold(&mut data[lpn], (ppn, e.seq, e.stamp));
                    }
                }
                Ok(None) => {}
            }
        }
        for (tvpn, slot) in r.trans.iter().enumerate() {
            let Some(ppn) = *slot else { continue };
            if tvpn as u64 >= tvpns {
                continue;
            }
            match flash.oob_checked(g.page_at(ppn), now) {
                Err(_) => oob_uncorrectable += 1,
                Ok(Some(e)) => {
                    if e.tag == (OobTag::Translation { tvpn: tvpn as u64 })
                        && flash.page_state(g.page_at(ppn)) != PageState::Free
                    {
                        fold(&mut trans[tvpn], (ppn, e.seq, e.stamp));
                    }
                }
                Ok(None) => {}
            }
        }
    }

    // The scan. Stamps are fresh per program, so within one block they
    // grow with page number: the newest readable page's stamp is the
    // block's maximum, and one probe decides whether a checkpointed
    // remount must re-scan the block at all.
    for block in g.blocks() {
        let info = flash.block_info(block);
        if info.write_ptr == 0 {
            continue;
        }
        let lun = g.lun_index(block.channel, block.lun) as usize;
        let scan_all = match record {
            None => true,
            Some(r) => {
                blocks_probed += 1;
                oob_scanned += 1;
                per_lun_reads[lun] += 1;
                let newest = (0..info.write_ptr)
                    .rev()
                    .find_map(|p| match flash.oob_checked(block.page(p), now) {
                        // Unreadable spare area: probe the next-older page.
                        Err(_) => {
                            oob_uncorrectable += 1;
                            None
                        }
                        Ok(o) => o,
                    })
                    .map(|e| e.stamp);
                if let Some(m) = newest {
                    max_stamp = max_stamp.max(m);
                }
                newest.is_some_and(|m| m > r.watermark)
            }
        };
        if !scan_all {
            continue;
        }
        for p in 0..info.write_ptr {
            oob_scanned += 1;
            per_lun_reads[lun] += 1;
            let addr = block.page(p);
            let e = match flash.oob_checked(addr, now) {
                Err(_) => {
                    // ECC gave up on the spare area: skip the page; any
                    // other copy of its content wins the fold instead.
                    oob_uncorrectable += 1;
                    continue;
                }
                Ok(None) => continue, // torn: spare area never completed
                Ok(Some(e)) => e,
            };
            max_stamp = max_stamp.max(e.stamp);
            let ppn = g.page_index(addr);
            match e.tag {
                OobTag::Data { lpn } if lpn < logical_pages && !trimmed(lpn, e.seq) => {
                    fold(&mut data[lpn as usize], (ppn, e.seq, e.stamp));
                }
                OobTag::Translation { tvpn } if tvpn < tvpns => {
                    fold(&mut trans[tvpn as usize], (ppn, e.seq, e.stamp));
                }
                _ => {} // fillers, checkpoint pages, out-of-range leftovers
            }
        }
    }

    // Reconcile: validity is controller RAM state — the rebuilt view wins.
    let mut reverse: Vec<Option<PageContent>> = vec![None; g.total_pages() as usize];
    let mut data_map: Vec<Option<Ppn>> = vec![None; logical_pages as usize];
    for (lpn, w) in data.iter().enumerate() {
        let Some((ppn, _, _)) = *w else { continue };
        data_map[lpn] = Some(ppn);
        reverse[ppn as usize] = Some(PageContent::Data(lpn as u64));
        flash.recovery_set_valid(g.page_at(ppn));
    }
    let mut trans_map: Vec<Option<Ppn>> = vec![None; tvpns as usize];
    if keep_translation {
        for (tvpn, w) in trans.iter().enumerate() {
            let Some((ppn, _, _)) = *w else { continue };
            trans_map[tvpn] = Some(ppn);
            reverse[ppn as usize] = Some(PageContent::Translation(tvpn as u64));
            flash.recovery_set_valid(g.page_at(ppn));
        }
    }
    for pi in 0..g.total_pages() {
        let addr = g.page_at(pi);
        if flash.page_state(addr) == PageState::Valid && reverse[pi as usize].is_none() {
            flash.invalidate(addr);
        }
    }

    // Mount-time erases: blocks an interrupted erase left undefined, the
    // (now superseded) checkpoint remnants, and — when the scheme has no
    // lazy reclamation for them — blocks with nothing live left.
    let mut blocks_erased = 0u64;
    for block in g.blocks() {
        let info = flash.block_info(block);
        if info.bad {
            continue;
        }
        let lun = g.lun_index(block.channel, block.lun) as usize;
        if flash.block_needs_erase(block) {
            flash.recovery_erase(block);
            per_lun_erases[lun] += 1;
            blocks_erased += 1;
            continue;
        }
        if info.write_ptr == 0 || info.live_pages > 0 {
            continue;
        }
        let holds_checkpoint = (0..info.write_ptr).any(|p| {
            matches!(
                flash.oob(block.page(p)),
                Some(e) if matches!(e.tag, OobTag::Checkpoint { .. })
            )
        });
        if erase_dead_blocks || holds_checkpoint {
            flash.recovery_erase(block);
            per_lun_erases[lun] += 1;
            blocks_erased += 1;
        }
    }

    // Mount time: LUNs scan their own blocks in parallel; the slowest LUN
    // bounds the mount.
    let t = *flash.timing();
    let read_ns = t.read_lun_time().as_nanos();
    let erase_ns = t.erase_lun_time().as_nanos();
    let mount_ns = per_lun_reads
        .iter()
        .zip(&per_lun_erases)
        .map(|(&r, &e)| r * read_ns + e * erase_ns)
        .max()
        .unwrap_or(0);

    Recovered {
        data_map,
        trans_map,
        reverse,
        max_stamp,
        used_checkpoint: record.is_some(),
        oob_scanned,
        oob_uncorrectable,
        blocks_probed,
        blocks_erased,
        mount_time: SimDuration::from_nanos(mount_ns),
    }
}

/// The hybrid scheme's recovered physical layout.
pub(crate) struct HybridLayout {
    /// lbn → data-block base, for blocks whose live pages all sit at their
    /// logical offsets of one logical block.
    pub dir: Vec<Option<Ppn>>,
    /// Every other block still holding live pages, re-registered as a
    /// random log block: `(base, per-offset OOB lpns)`.
    pub logs: Vec<(Ppn, Vec<Lpn>)>,
}

/// Classify recovered blocks into the hybrid scheme's structures. Runs
/// after [`recover_medium`], so a block's valid pages are exactly the scan
/// winners.
pub(crate) fn classify_hybrid(
    flash: &FlashArray,
    reverse: &[Option<PageContent>],
    logical_pages: u64,
) -> HybridLayout {
    let g = *flash.geometry();
    let ppb = g.pages_per_block as u64;
    let lbns = logical_pages.div_ceil(ppb).max(1);
    // lbn → best aligned candidate (most live pages, ties to lowest base).
    let mut candidates: BTreeMap<u64, (Ppn, u32)> = BTreeMap::new();
    let mut aligned: Vec<(Ppn, u64, u32)> = Vec::new(); // (base, lbn, live)
    let mut logs: Vec<(Ppn, Vec<Lpn>)> = Vec::new();
    for block in g.blocks() {
        let info = flash.block_info(block);
        if info.write_ptr == 0 || info.live_pages == 0 {
            continue;
        }
        let base = g.page_index(block.page(0));
        let mut lbn: Option<u64> = None;
        let mut is_aligned = true;
        let mut live = 0u32;
        for o in 0..info.write_ptr as u64 {
            match reverse[(base + o) as usize] {
                Some(PageContent::Data(lpn)) => {
                    live += 1;
                    let ok = lpn % ppb == o && lbn.is_none_or(|l| l == lpn / ppb);
                    if ok {
                        lbn = Some(lpn / ppb);
                    } else {
                        is_aligned = false;
                    }
                }
                Some(_) => is_aligned = false,
                None => {}
            }
        }
        match lbn {
            Some(l) if is_aligned => aligned.push((base, l, live)),
            _ => logs.push((base, log_entries(flash, block, info.write_ptr))),
        }
    }
    aligned.sort_unstable();
    for &(base, lbn, live) in &aligned {
        let better = candidates
            .get(&lbn)
            .is_none_or(|&(_, best)| live > best);
        if better {
            candidates.insert(lbn, (base, live));
        }
    }
    let mut dir: Vec<Option<Ppn>> = vec![None; lbns as usize];
    for (&lbn, &(base, _)) in &candidates {
        dir[lbn as usize] = Some(base);
    }
    // Aligned blocks that lost the data-block election join the log pool.
    for &(base, lbn, _) in &aligned {
        if dir[lbn as usize] != Some(base) {
            let block = g.page_at(base).block_addr();
            let fill = flash.block_info(block).write_ptr;
            logs.push((base, log_entries(flash, block, fill)));
        }
    }
    logs.sort_unstable_by_key(|&(base, _)| base);
    HybridLayout { dir, logs }
}

/// Rebuild a log block's per-offset lpn table from OOB. Torn or filler
/// pages get lpn 0 as a placeholder: a placeholder offset can never test
/// live (lpn 0's live copy, if any, is a winner page carrying a real
/// `Data {{ lpn: 0 }}` OOB tag — never a torn or filler page).
fn log_entries(flash: &FlashArray, block: BlockAddr, fill: u32) -> Vec<Lpn> {
    (0..fill)
        .map(|p| match flash.oob(block.page(p)) {
            Some(e) => match e.tag {
                OobTag::Data { lpn } => lpn,
                _ => 0,
            },
            None => 0,
        })
        .collect()
}
