//! Victim-index oracle: the incremental per-LUN live-page bucket index
//! (maintained inside `FlashArray` from program/invalidate/erase deltas)
//! must agree with a from-scratch full-device scan, for every
//! `VictimPolicy`, after arbitrary operation sequences.
//!
//! The oracle below is the pre-index implementation of `pick_victim`
//! verbatim: build the candidate list by scanning every block of the LUN,
//! then select. Any divergence — a stale bucket, a missed unlink, a
//! changed tie-break — fails here with the generating seed.

use eagletree_controller::{gc::pick_victim, VictimPolicy};
use eagletree_core::{SimRng, SimTime};
use eagletree_flash::{BlockAddr, FlashArray, FlashCommand, Geometry, PhysicalAddr, TimingSpec};
use proptest::prelude::*;

/// The historical full-scan victim picker.
fn oracle_pick(
    array: &FlashArray,
    lun: u32,
    policy: VictimPolicy,
    skip: impl Fn(BlockAddr) -> bool,
    rng: &mut SimRng,
    now: SimTime,
) -> Option<BlockAddr> {
    let g = *array.geometry();
    let channel = lun / g.luns_per_channel;
    let lun_in_ch = lun % g.luns_per_channel;
    let ppb = g.pages_per_block;
    let candidates: Vec<(BlockAddr, u32)> = (0..g.planes_per_lun)
        .flat_map(|plane| {
            (0..g.blocks_per_plane).map(move |block| BlockAddr {
                channel,
                lun: lun_in_ch,
                plane,
                block,
            })
        })
        .filter(|&b| !skip(b))
        .filter_map(|b| {
            let info = array.block_info(b);
            if !info.bad && info.write_ptr > 0 && info.live_pages < ppb {
                Some((b, info.live_pages))
            } else {
                None
            }
        })
        .collect();
    if candidates.is_empty() {
        return None;
    }
    match policy {
        VictimPolicy::Greedy => candidates
            .into_iter()
            .min_by_key(|&(b, live)| (live, b))
            .map(|(b, _)| b),
        VictimPolicy::Random => {
            let i = rng.gen_range(candidates.len() as u64) as usize;
            Some(candidates[i].0)
        }
        VictimPolicy::CostBenefit => candidates
            .into_iter()
            .map(|(b, live)| {
                let u = live as f64 / ppb as f64;
                let age =
                    now.saturating_since(array.block_info(b).last_erase).as_nanos() as f64;
                let score = if u == 0.0 {
                    f64::INFINITY
                } else {
                    age * (1.0 - u) / (2.0 * u)
                };
                (b, score)
            })
            .max_by(|&(ba, sa), &(bb, sb)| {
                sa.partial_cmp(&sb)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| bb.cmp(&ba))
            })
            .map(|(b, _)| b),
    }
}

fn geometry() -> Geometry {
    Geometry {
        channels: 2,
        luns_per_channel: 1,
        planes_per_lun: 2,
        blocks_per_plane: 8,
        pages_per_block: 4,
        page_size: 4096,
    }
}

/// Drive `array` with `ops` random-but-valid program / invalidate / erase
/// steps; returns the final virtual time.
fn random_history(array: &mut FlashArray, steps: &[u64]) -> SimTime {
    let g = *array.geometry();
    let mut now = SimTime::ZERO;
    for &step in steps {
        // Advance past every resource so any command can issue.
        for ch in 0..g.channels {
            now = now.max(array.channel_free_at(ch));
            for l in 0..g.luns_per_channel {
                now = now.max(array.lun_free_at(ch, l));
            }
        }
        let choice = step % 3;
        let mut rng = SimRng::new(step ^ 0xA5A5);
        match choice {
            0 => {
                // Program the next page of some non-full, non-bad block.
                let open: Vec<BlockAddr> = g
                    .blocks()
                    .filter(|&b| {
                        let i = array.block_info(b);
                        !i.bad && i.write_ptr < g.pages_per_block
                    })
                    .collect();
                if let Some(&b) = pick(&open, &mut rng) {
                    let page = array.block_info(b).write_ptr;
                    array.issue(FlashCommand::Program(b.page(page)), now).unwrap();
                }
            }
            1 => {
                // Invalidate some valid page.
                let valid: Vec<PhysicalAddr> = g
                    .blocks()
                    .flat_map(|b| array.valid_pages_in(b))
                    .collect();
                if let Some(&p) = pick(&valid, &mut rng) {
                    array.invalidate(p);
                }
            }
            _ => {
                // Erase some dead, previously-programmed block.
                let dead: Vec<BlockAddr> = g
                    .blocks()
                    .filter(|&b| {
                        let i = array.block_info(b);
                        !i.bad && i.write_ptr > 0 && i.live_pages == 0
                    })
                    .collect();
                if let Some(&b) = pick(&dead, &mut rng) {
                    array.issue(FlashCommand::Erase(b), now).unwrap();
                }
            }
        }
    }
    for ch in 0..g.channels {
        now = now.max(array.channel_free_at(ch));
        for l in 0..g.luns_per_channel {
            now = now.max(array.lun_free_at(ch, l));
        }
    }
    now
}

fn pick<'a, T>(items: &'a [T], rng: &mut SimRng) -> Option<&'a T> {
    if items.is_empty() {
        None
    } else {
        Some(&items[rng.gen_range(items.len() as u64) as usize])
    }
}

const POLICIES: [VictimPolicy; 3] = [
    VictimPolicy::Greedy,
    VictimPolicy::Random,
    VictimPolicy::CostBenefit,
];

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn index_agrees_with_full_scan_oracle(
        steps in prop::collection::vec(0u64..u64::MAX, 1..160),
        seed in 0u64..u64::MAX,
    ) {
        let g = geometry();
        let mut array = FlashArray::new(g, TimingSpec::slc());
        let now = random_history(&mut array, &steps);
        for policy in POLICIES {
            for lun in 0..g.total_luns() {
                // No skips: the pure index-vs-scan comparison.
                let mut rng_a = SimRng::new(seed);
                let mut rng_b = SimRng::new(seed);
                let via_index =
                    pick_victim(&array, lun, policy, |_| false, &mut rng_a, now);
                let via_scan =
                    oracle_pick(&array, lun, policy, |_| false, &mut rng_b, now);
                prop_assert_eq!(
                    via_index, via_scan,
                    "policy {:?} lun {} diverged without skips", policy, lun
                );

                // With a skip set (as the controller applies for active /
                // in-flight blocks): exclude a pseudo-random third of blocks.
                let skip =
                    |b: BlockAddr| (g.block_index(b).wrapping_mul(seed | 1)).is_multiple_of(3);
                let mut rng_a = SimRng::new(seed ^ 0xF00D);
                let mut rng_b = SimRng::new(seed ^ 0xF00D);
                let via_index = pick_victim(&array, lun, policy, skip, &mut rng_a, now);
                let via_scan = oracle_pick(&array, lun, policy, skip, &mut rng_b, now);
                prop_assert_eq!(
                    via_index, via_scan,
                    "policy {:?} lun {} diverged with skips", policy, lun
                );
                // Both sides must consume the RNG identically (Random draws
                // once from the same candidate count) or victim sequences
                // would drift over a run even with equal single picks.
                prop_assert_eq!(rng_a.gen_range(1 << 30), rng_b.gen_range(1 << 30));
            }
        }
    }

    #[test]
    fn wear_out_removes_blocks_from_index(cycles in 1u64..12) {
        // A block erased to death must never be offered again.
        let g = geometry();
        let spec = TimingSpec { endurance: cycles as u32, ..TimingSpec::slc() };
        let mut array = FlashArray::new(g, spec);
        let b = BlockAddr { channel: 0, lun: 0, plane: 0, block: 0 };
        let mut now = SimTime::ZERO;
        for _ in 0..cycles {
            let out = array.issue(FlashCommand::Program(b.page(0)), now).unwrap();
            array.invalidate(b.page(0));
            let out2 = array.issue(FlashCommand::Erase(b), out.lun_free_at).unwrap();
            now = out2.lun_free_at;
        }
        prop_assert!(array.block_info(b).bad);
        prop_assert!(!array.is_reclaimable(b));
        let mut rng = SimRng::new(1);
        for policy in POLICIES {
            prop_assert_eq!(
                pick_victim(&array, 0, policy, |_| false, &mut rng, now),
                None
            );
        }
    }
}
