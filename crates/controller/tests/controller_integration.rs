//! End-to-end controller tests: submissions through the full mapping / GC /
//! wear-leveling / scheduling pipeline against the simulated flash array.

use eagletree_controller::{
    Completion, Controller, ControllerConfig, GcConfig, IoTags, MappingKind, RequestKind,
    SchedPolicy, SsdRequest, TemperatureMode, VictimPolicy, WlConfig, WriteAllocPolicy,
};
use eagletree_core::{SimRng, SimTime};
use eagletree_flash::{Geometry, TimingSpec};

/// A minimal OS stand-in: submits requests and drains the event agenda.
struct Driver {
    c: Controller,
    now: SimTime,
    next_id: u64,
    done: Vec<Completion>,
}

impl Driver {
    fn new(c: Controller) -> Self {
        Driver {
            c,
            now: SimTime::ZERO,
            next_id: 0,
            done: Vec::new(),
        }
    }

    fn submit(&mut self, kind: RequestKind, lpn: u64) -> u64 {
        self.submit_tagged(kind, lpn, IoTags::none())
    }

    fn submit_tagged(&mut self, kind: RequestKind, lpn: u64, tags: IoTags) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.c.submit(
            SsdRequest {
                id,
                kind,
                lpn,
                tags,
            },
            self.now,
        );
        id
    }

    /// Run the agenda dry, collecting completions.
    fn run(&mut self) {
        while let Some(t) = self.c.next_event_time() {
            self.now = t;
            let batch = self.c.advance(t);
            self.done.extend(batch);
        }
        let tail = self.c.advance(self.now);
        self.done.extend(tail);
    }

    /// Submit a batch in windows of `qd`, running the agenda between
    /// windows (approximates a bounded device queue).
    fn submit_windowed(&mut self, reqs: &[(RequestKind, u64)], qd: usize) {
        for chunk in reqs.chunks(qd) {
            for &(kind, lpn) in chunk {
                self.submit(kind, lpn);
            }
            self.run();
        }
    }
}

fn controller(cfg: ControllerConfig) -> Controller {
    Controller::new(Geometry::tiny(), TimingSpec::slc(), cfg).unwrap()
}

#[test]
fn write_then_read_round_trip() {
    let mut d = Driver::new(controller(ControllerConfig::default()));
    let w = d.submit(RequestKind::Write, 7);
    d.run();
    assert!(d.done.iter().any(|c| c.id == w));
    let write_done = d.done.iter().find(|c| c.id == w).unwrap().at;
    assert!(write_done > SimTime::ZERO);

    let r = d.submit(RequestKind::Read, 7);
    d.run();
    let read_done = d.done.iter().find(|c| c.id == r).unwrap().at;
    // Read latency ≈ cmd + tR + transfer; strictly after submission.
    assert!(read_done > write_done);
    d.c.check_invariants();
}

#[test]
fn read_of_unwritten_page_completes_instantly() {
    let mut d = Driver::new(controller(ControllerConfig::default()));
    let r = d.submit(RequestKind::Read, 3);
    d.run();
    let c = d.done.iter().find(|c| c.id == r).unwrap();
    assert_eq!(c.at, SimTime::ZERO, "zero-fill read should not touch flash");
    assert_eq!(d.c.array().counters().reads, 0);
}

#[test]
fn trim_invalidates_and_read_returns_zero_fill() {
    let mut d = Driver::new(controller(ControllerConfig::default()));
    d.submit(RequestKind::Write, 5);
    d.run();
    d.submit(RequestKind::Trim, 5);
    d.run();
    let reads_before = d.c.array().counters().reads;
    let r = d.submit(RequestKind::Read, 5);
    d.run();
    assert!(d.done.iter().any(|c| c.id == r));
    assert_eq!(d.c.array().counters().reads, reads_before);
    assert_eq!(d.c.stats().trims_completed, 1);
    d.c.check_invariants();
}

#[test]
fn sequential_fill_has_unit_write_amplification() {
    let mut d = Driver::new(controller(ControllerConfig::default()));
    let n = d.c.logical_pages() / 2;
    let reqs: Vec<_> = (0..n).map(|l| (RequestKind::Write, l)).collect();
    d.submit_windowed(&reqs, 16);
    assert_eq!(d.c.stats().app_writes_completed, n);
    // No GC yet: every program is an application write.
    assert!((d.c.write_amplification() - 1.0).abs() < 1e-9);
    assert_eq!(d.c.stats().gc_erases, 0);
    d.c.check_invariants();
}

#[test]
fn steady_state_overwrites_trigger_gc_and_stay_consistent() {
    let cfg = ControllerConfig {
        wl: WlConfig {
            static_enabled: false,
            ..WlConfig::default()
        },
        ..ControllerConfig::default()
    };
    let mut d = Driver::new(controller(cfg));
    let logical = d.c.logical_pages();
    // Precondition: fill the logical space.
    let fill: Vec<_> = (0..logical).map(|l| (RequestKind::Write, l)).collect();
    d.submit_windowed(&fill, 16);
    // Overwrite randomly to accumulate garbage.
    let mut rng = SimRng::new(99);
    let over: Vec<_> = (0..logical * 3)
        .map(|_| (RequestKind::Write, rng.gen_range(logical)))
        .collect();
    d.submit_windowed(&over, 16);
    assert!(d.c.stats().gc_erases > 0, "GC never ran under overwrite load");
    assert!(
        d.c.write_amplification() > 1.0,
        "GC must add write amplification"
    );
    assert!(d.c.stats().gc_moves + d.c.stats().gc_skipped > 0);
    assert_eq!(
        d.c.stats().app_writes_completed,
        logical + logical * 3,
        "every write must complete"
    );
    d.c.check_invariants();
}

#[test]
fn copyback_used_when_enabled_and_absent_when_disabled() {
    for use_copyback in [true, false] {
        let cfg = ControllerConfig {
            gc: GcConfig {
                use_copyback,
                ..GcConfig::default()
            },
            wl: WlConfig {
                static_enabled: false,
                ..WlConfig::default()
            },
            ..ControllerConfig::default()
        };
        let mut d = Driver::new(controller(cfg));
        let logical = d.c.logical_pages();
        let fill: Vec<_> = (0..logical).map(|l| (RequestKind::Write, l)).collect();
        d.submit_windowed(&fill, 16);
        let mut rng = SimRng::new(5);
        let over: Vec<_> = (0..logical * 2)
            .map(|_| (RequestKind::Write, rng.gen_range(logical)))
            .collect();
        d.submit_windowed(&over, 16);
        let copybacks = d.c.array().counters().copybacks;
        if use_copyback {
            assert!(copybacks > 0, "copyback enabled but never used");
        } else {
            assert_eq!(copybacks, 0, "copyback used despite being disabled");
        }
        d.c.check_invariants();
    }
}

#[test]
fn dftl_generates_mapping_traffic() {
    let cfg = ControllerConfig {
        mapping: MappingKind::Dftl { cmt_entries: 8 },
        wl: WlConfig {
            static_enabled: false,
            ..WlConfig::default()
        },
        ..ControllerConfig::default()
    };
    let mut d = Driver::new(controller(cfg));
    let logical = d.c.logical_pages();
    let fill: Vec<_> = (0..logical).map(|l| (RequestKind::Write, l)).collect();
    d.submit_windowed(&fill, 8);
    // Random reads over the whole space with a tiny CMT must miss.
    let mut rng = SimRng::new(7);
    let reads: Vec<_> = (0..200)
        .map(|_| (RequestKind::Read, rng.gen_range(logical)))
        .collect();
    d.submit_windowed(&reads, 8);
    let stats = d.c.dftl_stats().unwrap();
    assert!(stats.misses > 0, "tiny CMT should miss");
    assert!(d.c.stats().mapping_fetches > 0);
    assert!(
        d.c.stats().mapping_writebacks > 0,
        "dirty evictions must write back"
    );
    assert_eq!(d.c.stats().app_reads_completed, 200);
    d.c.check_invariants();
}

#[test]
fn dftl_and_page_map_agree_on_semantics() {
    // Same workload on both mappings: same completion *set* (timings
    // differ because DFTL adds translation IOs).
    let mk = |mapping| ControllerConfig {
        mapping,
        wl: WlConfig {
            static_enabled: false,
            ..WlConfig::default()
        },
        ..ControllerConfig::default()
    };
    let mut rng = SimRng::new(31);
    let logical_tmp = controller(mk(MappingKind::PageMap)).logical_pages();
    let workload: Vec<_> = (0..600)
        .map(|i| {
            if i % 3 == 0 {
                (RequestKind::Read, rng.gen_range(logical_tmp))
            } else {
                (RequestKind::Write, rng.gen_range(logical_tmp))
            }
        })
        .collect();
    let mut ids = Vec::new();
    for mapping in [MappingKind::PageMap, MappingKind::Dftl { cmt_entries: 32 }] {
        let mut d = Driver::new(controller(mk(mapping)));
        d.submit_windowed(&workload, 8);
        let mut completed: Vec<u64> = d.done.iter().map(|c| c.id).collect();
        completed.sort_unstable();
        ids.push(completed);
        d.c.check_invariants();
    }
    assert_eq!(ids[0], ids[1]);
}

#[test]
fn identical_seeds_give_identical_runs() {
    let run = || {
        let cfg = ControllerConfig::default();
        let mut d = Driver::new(controller(cfg));
        let logical = d.c.logical_pages();
        let mut rng = SimRng::new(11);
        let reqs: Vec<_> = (0..800)
            .map(|_| (RequestKind::Write, rng.gen_range(logical)))
            .collect();
        d.submit_windowed(&reqs, 12);
        d.done
            .iter()
            .map(|c| (c.id, c.at.as_nanos()))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn reads_first_policy_reduces_read_wait_under_mixed_load() {
    let wait_read_mean = |policy: SchedPolicy| {
        let cfg = ControllerConfig {
            sched: policy,
            wl: WlConfig {
                static_enabled: false,
                ..WlConfig::default()
            },
            ..ControllerConfig::default()
        };
        let mut d = Driver::new(controller(cfg));
        let logical = d.c.logical_pages();
        let fill: Vec<_> = (0..logical / 2).map(|l| (RequestKind::Write, l)).collect();
        d.submit_windowed(&fill, 16);
        // Burst of writes and reads together, big windows to force queuing.
        let mut rng = SimRng::new(3);
        let mixed: Vec<_> = (0..600)
            .map(|i| {
                if i % 2 == 0 {
                    (RequestKind::Write, rng.gen_range(logical / 2))
                } else {
                    (RequestKind::Read, rng.gen_range(logical / 2))
                }
            })
            .collect();
        d.submit_windowed(&mixed, 64);
        let idx = eagletree_controller::class_index(eagletree_controller::OpClass::AppRead);
        d.c.stats().wait_us[idx].mean()
    };
    let fifo = wait_read_mean(SchedPolicy::Fifo);
    let rf = wait_read_mean(SchedPolicy::reads_first());
    assert!(
        rf < fifo,
        "reads-first should cut read queue wait (fifo {fifo:.1}us vs reads-first {rf:.1}us)"
    );
}

#[test]
fn striping_policy_still_completes_everything() {
    let cfg = ControllerConfig {
        write_alloc: WriteAllocPolicy::Striping,
        ..ControllerConfig::default()
    };
    let mut d = Driver::new(controller(cfg));
    let logical = d.c.logical_pages();
    let reqs: Vec<_> = (0..logical).map(|l| (RequestKind::Write, l)).collect();
    d.submit_windowed(&reqs, 16);
    assert_eq!(d.c.stats().app_writes_completed, logical);
    d.c.check_invariants();
}

#[test]
fn victim_policies_all_reach_steady_state() {
    for victim in [
        VictimPolicy::Greedy,
        VictimPolicy::Random,
        VictimPolicy::CostBenefit,
    ] {
        let cfg = ControllerConfig {
            gc: GcConfig {
                victim,
                ..GcConfig::default()
            },
            wl: WlConfig {
                static_enabled: false,
                ..WlConfig::default()
            },
            ..ControllerConfig::default()
        };
        let mut d = Driver::new(controller(cfg));
        let logical = d.c.logical_pages();
        let fill: Vec<_> = (0..logical).map(|l| (RequestKind::Write, l)).collect();
        d.submit_windowed(&fill, 16);
        let mut rng = SimRng::new(17);
        let over: Vec<_> = (0..logical * 2)
            .map(|_| (RequestKind::Write, rng.gen_range(logical)))
            .collect();
        d.submit_windowed(&over, 16);
        assert!(d.c.stats().gc_erases > 0, "{victim:?} never collected");
        d.c.check_invariants();
    }
}

#[test]
fn static_wear_leveling_migrates_cold_data() {
    let cfg = ControllerConfig {
        wl: WlConfig {
            static_enabled: true,
            check_every_erases: 8,
            young_delta: 4,
            idle_factor: 0.1,
            dynamic_enabled: false,
        },
        temperature: TemperatureMode::Off,
        ..ControllerConfig::default()
    };
    let mut d = Driver::new(controller(cfg));
    let logical = d.c.logical_pages();
    // Fill everything (cold tail), then hammer a small hot range.
    let fill: Vec<_> = (0..logical).map(|l| (RequestKind::Write, l)).collect();
    d.submit_windowed(&fill, 16);
    let hot = logical / 8;
    let mut rng = SimRng::new(23);
    let over: Vec<_> = (0..logical * 4)
        .map(|_| (RequestKind::Write, rng.gen_range(hot)))
        .collect();
    d.submit_windowed(&over, 16);
    assert!(
        d.c.stats().wl_erases > 0,
        "static WL never fired under skewed wear"
    );
    assert!(d.c.stats().wl_moves > 0, "static WL moved no data");
    d.c.check_invariants();
}

#[test]
fn priority_tags_favor_tagged_ios() {
    let cfg = ControllerConfig {
        sched: SchedPolicy::TagPriority,
        ..ControllerConfig::default()
    };
    let mut d = Driver::new(controller(cfg));
    let logical = d.c.logical_pages();
    let fill: Vec<_> = (0..logical / 2).map(|l| (RequestKind::Write, l)).collect();
    d.submit_windowed(&fill, 16);
    // Enqueue a burst: many untagged reads, then one urgent read last.
    for l in 0..60 {
        d.submit(RequestKind::Read, l);
    }
    let urgent = d.submit_tagged(RequestKind::Read, 60, IoTags::none().with_priority(0));
    d.run();
    let urgent_at = d.done.iter().find(|c| c.id == urgent).unwrap().at;
    let finished_before_urgent = d
        .done
        .iter()
        .filter(|c| c.id != urgent && c.at < urgent_at && c.id >= urgent - 60)
        .count();
    assert!(
        finished_before_urgent < 30,
        "urgent IO queued behind {finished_before_urgent} untagged ones"
    );
}

#[test]
fn interleaving_off_slows_throughput() {
    let makespan = |interleaving: bool| {
        let cfg = ControllerConfig {
            interleaving,
            ..ControllerConfig::default()
        };
        let mut d = Driver::new(controller(cfg));
        let reqs: Vec<_> = (0..200u64).map(|l| (RequestKind::Write, l)).collect();
        d.submit_windowed(&reqs, 64);
        d.now
    };
    let on = makespan(true);
    let off = makespan(false);
    assert!(
        off > on,
        "serial channels should be slower: {off:?} !> {on:?}"
    );
}

#[test]
fn locality_groups_share_blocks() {
    let cfg = ControllerConfig {
        honor_locality: true,
        ..ControllerConfig::default()
    };
    let mut d = Driver::new(controller(cfg));
    // Two groups alternating; writes within one group should co-locate,
    // which we observe indirectly: it still completes and stays consistent.
    for i in 0..64u64 {
        d.submit_tagged(
            RequestKind::Write,
            i,
            IoTags::none().with_locality((i % 2) as u32),
        );
    }
    d.run();
    assert_eq!(d.c.stats().app_writes_completed, 64);
    d.c.check_invariants();
}

#[test]
fn overlapping_writes_to_same_lpn_are_safe() {
    let mut d = Driver::new(controller(ControllerConfig::default()));
    // Submit several concurrent writes to one lpn without draining.
    for _ in 0..8 {
        d.submit(RequestKind::Write, 1);
    }
    d.run();
    assert_eq!(d.c.stats().app_writes_completed, 8);
    d.c.check_invariants();
    // Exactly one physical page remains valid for the lpn.
    let r = d.submit(RequestKind::Read, 1);
    d.run();
    assert!(d.done.iter().any(|c| c.id == r));
}

#[test]
fn mlc_run_is_slower_than_slc() {
    let makespan = |timing: TimingSpec| {
        let mut d = Driver::new(
            Controller::new(Geometry::tiny(), timing, ControllerConfig::default()).unwrap(),
        );
        let reqs: Vec<_> = (0..100u64).map(|l| (RequestKind::Write, l)).collect();
        d.submit_windowed(&reqs, 16);
        d.now
    };
    assert!(makespan(TimingSpec::mlc()) > makespan(TimingSpec::slc()));
}
