//! Crash-recovery property tests: power-cut a random workload at an
//! arbitrary event boundary, remount, and check the recovery guarantees —
//! for every mapping scheme (page map, DFTL, hybrid log-block) and both
//! recovery modes (full OOB scan, checkpoint replay):
//!
//! 1. **No acknowledged write lost** — a logical page whose last
//!    acknowledged operation was a write is mapped after the remount, and
//!    its physical page is readable (valid, not torn) with a matching OOB
//!    record.
//! 2. **No double mapping** — no two logical pages share a physical page.
//! 3. **Consistency** — the rebuilt controller passes the same
//!    cross-structure `check_invariants` the live controller does, and
//!    keeps working: post-recovery IO completes and re-verifies.
//!
//! Trims are journaled into the periodic mapping checkpoint: a page
//! trimmed before the last *committed* checkpoint stays dead across a cut
//! under checkpoint recovery (`checkpoint_recovery_keeps_trimmed_pages_dead`
//! below pins this). Trims after the last committed checkpoint — and all
//! trims under full-scan recovery, which has no checkpoint to consult —
//! remain RAM-only and may be resurrected, exactly like on real FTLs with
//! lazily-journaled deallocations; the property suite therefore still
//! does not require *every* trimmed page to stay unmapped across a cut.

use std::collections::BTreeMap;

use eagletree_controller::{
    Completion, Controller, ControllerConfig, IoTags, MappingKind, MergePolicy, RecoveryMode,
    RequestKind, SsdRequest, WlConfig,
};
use eagletree_core::SimTime;
use eagletree_flash::{Geometry, OobTag, PageState, TimingSpec};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum Op {
    Write(u64),
    Trim(u64),
    Read(u64),
}

fn schemes() -> Vec<(&'static str, MappingKind)> {
    vec![
        ("page_map", MappingKind::PageMap),
        ("dftl", MappingKind::Dftl { cmt_entries: 24 }),
        (
            "hybrid",
            MappingKind::Hybrid {
                log_blocks: 3,
                merge: MergePolicy::Fifo,
            },
        ),
    ]
}

fn config(mapping: MappingKind, checkpoint_interval: u64) -> ControllerConfig {
    ControllerConfig {
        mapping,
        checkpoint_interval_programs: checkpoint_interval,
        wl: WlConfig {
            check_every_erases: 16,
            young_delta: 4,
            idle_factor: 0.5,
            ..WlConfig::default()
        },
        ..ControllerConfig::default()
    }
}

/// Per-lpn acknowledgment ledger: what the host may rely on at the cut.
#[derive(Default)]
struct Ledger {
    /// Completion instant of the last acknowledged write per lpn.
    write_ack: BTreeMap<u64, SimTime>,
    /// Submission (= completion) instant of the last trim per lpn.
    trim_ack: BTreeMap<u64, SimTime>,
}

impl Ledger {
    /// Logical pages whose last acknowledged operation was a write —
    /// recovery must map them. Ties (write ack and trim at the same
    /// instant) are ambiguous and not required either way.
    fn must_be_mapped(&self) -> Vec<u64> {
        self.write_ack
            .iter()
            .filter(|(lpn, &w)| self.trim_ack.get(lpn).is_none_or(|&t| w > t))
            .map(|(&lpn, _)| lpn)
            .collect()
    }
}

struct Driver {
    c: Controller,
    now: SimTime,
    next_id: u64,
    writes: BTreeMap<u64, u64>, // request id -> lpn
    ledger: Ledger,
}

impl Driver {
    fn new(c: Controller) -> Self {
        Driver {
            c,
            now: SimTime::ZERO,
            next_id: 0,
            writes: BTreeMap::new(),
            ledger: Ledger::default(),
        }
    }

    fn submit(&mut self, kind: RequestKind, lpn: u64) {
        let id = self.next_id;
        self.next_id += 1;
        if kind == RequestKind::Write {
            self.writes.insert(id, lpn);
        }
        if kind == RequestKind::Trim {
            // Trims acknowledge instantly at submission.
            self.ledger.trim_ack.insert(lpn, self.now);
        }
        self.c.submit(
            SsdRequest {
                id,
                kind,
                lpn,
                tags: IoTags::none(),
            },
            self.now,
        );
    }

    fn note(&mut self, batch: Vec<Completion>) {
        for comp in batch {
            if let Some(&lpn) = self.writes.get(&comp.id) {
                let slot = self.ledger.write_ack.entry(lpn).or_insert(comp.at);
                *slot = (*slot).max(comp.at);
            }
        }
    }

    /// Process up to `budget` event boundaries; returns the unused budget
    /// (zero means the cut point was reached mid-stream).
    fn step(&mut self, mut budget: u64) -> u64 {
        while budget > 0 {
            let Some(t) = self.c.next_event_time() else { break };
            budget -= 1;
            self.now = t;
            let batch = self.c.advance(t);
            self.note(batch);
        }
        budget
    }
}

/// Drive `ops`, cut power after `crash_step` event boundaries (or at
/// quiescence if the workload is shorter), and verify both recovery modes
/// from the same captured medium.
fn check_crash(
    name: &str,
    mapping: MappingKind,
    checkpoint_interval: u64,
    ops: &[Op],
    qd: usize,
    crash_step: u64,
) -> Result<(), TestCaseError> {
    let cfg = config(mapping, checkpoint_interval);
    let mut d = Driver::new(
        Controller::new(Geometry::tiny(), TimingSpec::slc(), cfg.clone()).unwrap(),
    );
    let logical = d.c.logical_pages();
    let mut budget = crash_step;
    'drive: for chunk in ops.chunks(qd) {
        for op in chunk {
            match *op {
                Op::Write(l) => d.submit(RequestKind::Write, l % logical),
                Op::Trim(l) => d.submit(RequestKind::Trim, l % logical),
                Op::Read(l) => d.submit(RequestKind::Read, l % logical),
            }
        }
        budget = d.step(budget);
        if budget == 0 {
            break 'drive;
        }
    }
    if budget > 0 {
        // Workload ended first: cut at quiescence (every write acked).
        d.step(u64::MAX);
    }
    let cut_at = d.now;
    let must_mapped = d.ledger.must_be_mapped();
    let image = d.c.power_cut(cut_at);

    for mode in [RecoveryMode::FullScan, RecoveryMode::Checkpoint] {
        let (c2, report) = Controller::remount(image.clone(), cfg.clone(), mode)
            .map_err(|e| TestCaseError::fail(format!("{name}: remount failed: {e}")))?;
        prop_assert_eq!(
            report.used_checkpoint,
            mode == RecoveryMode::Checkpoint && image.has_checkpoint(),
            "{}: unexpected recovery path",
            name
        );

        // 1. No acknowledged write lost, and every mapping is readable.
        let g = *c2.array().geometry();
        for &lpn in &must_mapped {
            let mapped = c2.peek_mapping(lpn);
            prop_assert!(
                mapped.is_some(),
                "{}/{:?}: acknowledged write of lpn {} lost (cut at {:?}, step {})",
                name,
                mode,
                lpn,
                cut_at,
                crash_step
            );
        }
        for lpn in 0..logical {
            let Some(ppn) = c2.peek_mapping(lpn) else { continue };
            let addr = g.page_at(ppn);
            prop_assert_eq!(
                c2.array().page_state(addr),
                PageState::Valid,
                "{}/{:?}: lpn {} maps to a non-valid page",
                name,
                mode,
                lpn
            );
            prop_assert!(
                !c2.array().is_torn(addr),
                "{}/{:?}: lpn {} maps to a torn page",
                name,
                mode,
                lpn
            );
            let oob = c2.array().oob(addr);
            prop_assert!(
                matches!(oob, Some(e) if e.tag == (OobTag::Data { lpn })),
                "{}/{:?}: lpn {} maps to a page whose OOB says {:?}",
                name,
                mode,
                lpn,
                oob
            );
        }

        // 2. No double-mapped physical page.
        let mut owners: BTreeMap<u64, u64> = BTreeMap::new();
        for lpn in 0..logical {
            if let Some(ppn) = c2.peek_mapping(lpn) {
                if let Some(prev) = owners.insert(ppn, lpn) {
                    return Err(TestCaseError::fail(format!(
                        "{name}/{mode:?}: lpns {prev} and {lpn} both map to ppn {ppn}"
                    )));
                }
            }
        }

        // 3. Cross-structure consistency, before and after further IO.
        c2.check_invariants();
        let mut d2 = Driver::new(c2);
        for (i, &lpn) in must_mapped.iter().take(16).enumerate() {
            d2.submit(RequestKind::Read, lpn);
            d2.submit(RequestKind::Write, (i as u64 * 37) % logical);
        }
        d2.submit(RequestKind::Write, 0);
        d2.step(u64::MAX);
        prop_assert!(
            d2.c.is_quiescent(),
            "{}/{:?}: post-recovery IO did not drain",
            name,
            mode
        );
        d2.c.check_invariants();
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Clustered overwrites (GC/merge pressure) cut at a random boundary.
    #[test]
    fn power_cut_preserves_acknowledged_writes(
        ops in prop::collection::vec(
            prop_oneof![
                8 => (0u64..96).prop_map(Op::Write),
                1 => (0u64..96).prop_map(Op::Trim),
                2 => (0u64..96).prop_map(Op::Read),
            ],
            300..700,
        ),
        qd in 1usize..24,
        crash_step in 1u64..1500,
    ) {
        for (name, mapping) in schemes() {
            // Checkpoints every 64 programs: several commit before the cut.
            check_crash(name, mapping, 64, &ops, qd, crash_step)?;
        }
    }

    /// Uniform traffic without checkpointing (pure full-scan recovery).
    #[test]
    fn power_cut_without_checkpoints_recovers_by_full_scan(
        ops in prop::collection::vec(
            prop_oneof![
                5 => (0u64..4096).prop_map(Op::Write),
                1 => (0u64..4096).prop_map(Op::Trim),
            ],
            200..500,
        ),
        qd in 1usize..32,
        crash_step in 1u64..1000,
    ) {
        for (name, mapping) in schemes() {
            check_crash(name, mapping, 0, &ops, qd, crash_step)?;
        }
    }
}

/// Journaled trims survive checkpoint replay: pages trimmed before the
/// last committed checkpoint stay dead across a power cut — specifically
/// when the blocks holding their stale copies get re-scanned because
/// neighbouring pages kept programming past the checkpoint watermark
/// (exactly the case an unjournaled trim resurrects). The scenario is
/// phase-aligned against the 64-program checkpoint interval using the
/// observable commit counter: victims are written late in an interval,
/// trimmed, the next checkpoint commits (journaling the trims), and a
/// few more programs land in the victims' still-active blocks before the
/// cut so those blocks' newest stamps exceed the watermark.
#[test]
fn checkpoint_recovery_keeps_trimmed_pages_dead() {
    for (name, mapping) in schemes() {
        let cfg = config(mapping, 64);
        let mut d = Driver::new(
            Controller::new(Geometry::tiny(), TimingSpec::slc(), cfg.clone()).unwrap(),
        );
        let logical = d.c.logical_pages();
        // Victims live in the upper half of the address space; filler
        // churn stays in the lower half so nothing rewrites a trimmed
        // page after its trim.
        let victims: Vec<u64> = (0..12).map(|i| logical / 2 + i * 3).collect();
        let mut filler = 0u64;
        let fill = |d: &mut Driver, filler: &mut u64, n: u64| {
            for _ in 0..n {
                d.submit(RequestKind::Write, *filler % (logical / 2));
                *filler += 1;
            }
            d.step(u64::MAX);
        };
        // Park right after a commit so the interval phase is known.
        let fill_until_commit =
            |d: &mut Driver, filler: &mut u64, fill: &dyn Fn(&mut Driver, &mut u64, u64)| {
                let base = d.c.stats().checkpoints_committed;
                for _ in 0..400 {
                    fill(d, filler, 1);
                    if d.c.stats().checkpoints_committed > base {
                        return;
                    }
                }
                panic!("no checkpoint committed within 400 programs");
            };
        fill(&mut d, &mut filler, logical / 2); // baseline fill
        fill_until_commit(&mut d, &mut filler, &fill);
        // Burn most of the next interval, then write the victims late in
        // it: their copies sit in the currently-active blocks.
        fill(&mut d, &mut filler, 40);
        for &v in &victims {
            d.submit(RequestKind::Write, v);
        }
        d.step(u64::MAX);
        for &v in &victims {
            d.submit(RequestKind::Trim, v);
        }
        d.step(u64::MAX);
        // The next commit journals the trims; its watermark covers the
        // victims' copies.
        fill_until_commit(&mut d, &mut filler, &fill);
        // A few more programs extend the victims' still-active blocks
        // past the watermark, making them re-scan candidates — but not
        // enough for another commit (the journaling one stays last).
        fill(&mut d, &mut filler, 20);
        for &v in &victims {
            assert!(d.c.peek_mapping(v).is_none(), "{name}: lpn {v} mapped pre-cut");
        }
        let image = d.c.power_cut(d.now);
        assert!(image.has_checkpoint(), "{name}: no checkpoint committed");
        let (c2, report) =
            Controller::remount(image, cfg, RecoveryMode::Checkpoint).unwrap();
        assert!(report.used_checkpoint, "{name}: fell back to full scan");
        for &v in &victims {
            assert!(
                c2.peek_mapping(v).is_none(),
                "{name}: trimmed lpn {v} resurrected by checkpoint recovery"
            );
        }
        c2.check_invariants();
    }
}

/// The battery-backed write buffer survives a power cut: buffered
/// (acknowledged, unflushed) writes are re-installed at remount and remain
/// readable.
#[test]
fn battery_backed_buffer_survives_power_cut() {
    let cfg = ControllerConfig {
        write_buffer_pages: 8,
        ..ControllerConfig::default()
    };
    let mut d = Driver::new(
        Controller::new(Geometry::tiny(), TimingSpec::slc(), cfg.clone()).unwrap(),
    );
    for lpn in 0..4 {
        d.submit(RequestKind::Write, lpn);
    }
    // Buffered writes acknowledge instantly; cut before anything flushes.
    let batch = d.c.advance(SimTime::ZERO);
    assert_eq!(batch.len(), 4);
    let image = d.c.power_cut(SimTime::ZERO);
    let (c2, _) = Controller::remount(image, cfg, RecoveryMode::FullScan).unwrap();
    for lpn in 0..4 {
        assert!(c2.is_buffered(lpn), "buffered write of lpn {lpn} lost");
    }
}

/// OOB records are scheme-independent: a device written under the page map
/// remounts under DFTL (and vice versa) with the same mapping.
#[test]
fn remount_across_mapping_schemes() {
    let mut d = Driver::new(
        Controller::new(
            Geometry::tiny(),
            TimingSpec::slc(),
            config(MappingKind::PageMap, 0),
        )
        .unwrap(),
    );
    let logical = d.c.logical_pages();
    for lpn in 0..64 {
        d.submit(RequestKind::Write, lpn % logical);
    }
    d.step(u64::MAX);
    let expected: Vec<Option<u64>> = (0..logical).map(|l| d.c.peek_mapping(l)).collect();
    let image = d.c.power_cut(d.now);
    let (c2, report) = Controller::remount(
        image,
        config(MappingKind::Dftl { cmt_entries: 24 }, 0),
        RecoveryMode::FullScan,
    )
    .unwrap();
    assert_eq!(report.data_entries, 64);
    for lpn in 0..logical {
        assert_eq!(c2.peek_mapping(lpn), expected[lpn as usize]);
    }
    c2.check_invariants();
}
