//! End-of-life behavior: blocks exhaust their erase endurance, get masked,
//! and the device keeps operating on the surviving pool.

use eagletree_controller::{
    Completion, Controller, ControllerConfig, IoTags, RequestKind, SsdRequest, WlConfig,
};
use eagletree_core::{SimRng, SimTime};
use eagletree_flash::{FlashArray, FlashCommand, Geometry, PhysicalAddr, TimingSpec};

#[test]
fn array_masks_block_at_endurance() {
    let mut spec = TimingSpec::slc();
    spec.endurance = 3;
    let mut a = FlashArray::new(Geometry::tiny(), spec);
    let addr = PhysicalAddr {
        channel: 0,
        lun: 0,
        plane: 0,
        block: 0,
        page: 0,
    };
    let mut now = SimTime::ZERO;
    for cycle in 0..3 {
        let out = a.issue(FlashCommand::Program(addr), now).unwrap();
        a.invalidate(addr);
        let out = a.issue(FlashCommand::Erase(addr.block_addr()), out.lun_free_at).unwrap();
        now = out.lun_free_at;
        let bad = a.block_info(addr.block_addr()).bad;
        assert_eq!(bad, cycle == 2, "bad flag wrong after erase {}", cycle + 1);
    }
    assert_eq!(a.bad_blocks(), 1);
    // Programs to a masked block are rejected.
    assert!(matches!(
        a.issue(FlashCommand::Program(addr), now),
        Err(eagletree_flash::FlashError::BadBlock(_))
    ));
}

#[test]
fn controller_survives_device_end_of_life() {
    // Tiny endurance so the overwrite load wears the whole device out
    // mid-run. The simulator must degrade gracefully: blocks retire one by
    // one, writes keep completing on the shrinking pool, and when the
    // erase budget is truly exhausted the device simply stops making
    // progress — without panics, lost bookkeeping, or invariant damage.
    let mut timing = TimingSpec::slc();
    timing.endurance = 5;
    let cfg = ControllerConfig {
        wl: WlConfig {
            static_enabled: false,
            ..WlConfig::default()
        },
        // Export little space so plenty of spare blocks absorb retirement.
        logical_capacity: 0.25,
        ..ControllerConfig::default()
    };
    let mut c = Controller::new(Geometry::tiny(), timing, cfg).unwrap();
    let logical = c.logical_pages();
    let mut now = SimTime::ZERO;
    let mut id = 0u64;
    let mut done: Vec<Completion> = Vec::new();
    let mut rng = SimRng::new(42);
    let drain = |c: &mut Controller, now: &mut SimTime, done: &mut Vec<Completion>| {
        while let Some(t) = c.next_event_time() {
            *now = t;
            done.extend(c.advance(t));
        }
        done.extend(c.advance(*now));
    };
    let total = logical * 24;
    for i in 0..total {
        c.submit(
            SsdRequest {
                id,
                kind: RequestKind::Write,
                lpn: rng.gen_range(logical),
                tags: IoTags::none(),
            },
            now,
        );
        id += 1;
        if i % 16 == 15 {
            drain(&mut c, &mut now, &mut done);
        }
    }
    drain(&mut c, &mut now, &mut done);
    assert!(
        c.stats().bad_blocks_retired > 0,
        "endurance 5 under 24x overwrite must wear out blocks (total erases {})",
        c.array().total_erases()
    );
    assert_eq!(c.array().bad_blocks(), c.stats().bad_blocks_retired);
    // The device survived well past its nominal budget before dying: at
    // least half the submitted writes completed.
    assert!(
        done.len() as u64 >= total / 2,
        "only {}/{} writes completed before end of life",
        done.len(),
        total
    );
    // Consistency holds even at end of life.
    c.check_invariants();
    // And every retired block consumed its full endurance.
    let spent: u64 = c.array().erase_counts().iter().map(|&e| e as u64).sum();
    assert!(spent >= c.array().bad_blocks() * 5);
}
