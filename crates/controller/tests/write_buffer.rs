//! Write-buffer integration: durability-on-arrival semantics, overwrite
//! absorption, buffered reads, flush correctness under races.

use eagletree_controller::{
    Completion, Controller, ControllerConfig, IoTags, RequestKind, SsdRequest, WlConfig,
};
use eagletree_core::{SimRng, SimTime};
use eagletree_flash::{Geometry, TimingSpec};

struct Driver {
    c: Controller,
    now: SimTime,
    next_id: u64,
    done: Vec<Completion>,
}

impl Driver {
    fn new(write_buffer_pages: u64) -> Self {
        let cfg = ControllerConfig {
            write_buffer_pages,
            wl: WlConfig {
                static_enabled: false,
                ..WlConfig::default()
            },
            ..ControllerConfig::default()
        };
        Driver {
            c: Controller::new(Geometry::tiny(), TimingSpec::slc(), cfg).unwrap(),
            now: SimTime::ZERO,
            next_id: 0,
            done: Vec::new(),
        }
    }

    fn submit(&mut self, kind: RequestKind, lpn: u64) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.c.submit(
            SsdRequest {
                id,
                kind,
                lpn,
                tags: IoTags::none(),
            },
            self.now,
        );
        id
    }

    fn run(&mut self) {
        while let Some(t) = self.c.next_event_time() {
            self.now = t;
            let batch = self.c.advance(t);
            self.done.extend(batch);
        }
        let tail = self.c.advance(self.now);
        self.done.extend(tail);
    }
}

#[test]
fn buffered_writes_complete_instantly() {
    let mut d = Driver::new(16);
    let w = d.submit(RequestKind::Write, 3);
    d.run();
    let c = d.done.iter().find(|c| c.id == w).unwrap();
    assert_eq!(c.at, SimTime::ZERO, "buffered write should not wait on flash");
    assert!(d.c.is_buffered(3));
    assert_eq!(d.c.array().counters().programs, 0);
}

#[test]
fn overwrites_are_absorbed_in_ram() {
    let mut d = Driver::new(32);
    for _ in 0..20 {
        d.submit(RequestKind::Write, 7);
    }
    d.run();
    assert_eq!(d.c.stats().app_writes_completed, 20);
    let b = d.c.write_buffer().unwrap();
    assert_eq!(b.absorbed, 19);
    assert_eq!(d.c.array().counters().programs, 0, "no flush needed yet");
    // Write amplification over app writes is far below 1: buffering pays.
    assert!(d.c.write_amplification() < 0.1);
}

#[test]
fn reads_of_buffered_pages_served_from_ram() {
    let mut d = Driver::new(16);
    d.submit(RequestKind::Write, 5);
    d.run();
    let reads_before = d.c.array().counters().reads;
    let r = d.submit(RequestKind::Read, 5);
    d.run();
    assert!(d.done.iter().any(|c| c.id == r));
    assert_eq!(d.c.array().counters().reads, reads_before);
    assert_eq!(d.c.write_buffer().unwrap().read_hits, 1);
}

#[test]
fn full_buffer_flushes_to_flash_and_publishes_mapping() {
    let mut d = Driver::new(8);
    for lpn in 0..8 {
        d.submit(RequestKind::Write, lpn);
    }
    d.run();
    // Capacity reached → background flush of capacity/4 oldest entries.
    assert!(d.c.array().counters().programs >= 2);
    assert!(d.c.peek_mapping(0).is_some(), "flushed page must be mapped");
    assert!(!d.c.is_buffered(0));
    assert!(d.c.is_buffered(7), "recent entries stay buffered");
    d.c.check_invariants();
}

#[test]
fn trim_drops_buffered_entry() {
    let mut d = Driver::new(16);
    d.submit(RequestKind::Write, 9);
    d.submit(RequestKind::Trim, 9);
    d.run();
    assert!(!d.c.is_buffered(9));
    assert_eq!(d.c.peek_mapping(9), None);
    // Read now zero-fills.
    let r = d.submit(RequestKind::Read, 9);
    d.run();
    assert!(d.done.iter().any(|c| c.id == r));
    d.c.check_invariants();
}

#[test]
fn sustained_buffered_overwrites_stay_consistent() {
    let mut d = Driver::new(64);
    let logical = d.c.logical_pages();
    let mut rng = SimRng::new(77);
    for i in 0..logical * 3 {
        d.submit(RequestKind::Write, rng.gen_range(logical));
        if i % 32 == 31 {
            d.run();
        }
    }
    d.run();
    assert_eq!(d.c.stats().app_writes_completed, logical * 3);
    d.c.check_invariants();
    // With uniform random writes over a space ≫ buffer, flushes dominate;
    // flash programs stay below app writes (some absorption) but are
    // substantial.
    let programs = d.c.array().counters().programs;
    assert!(programs > 0);
    assert!(
        programs < logical * 3,
        "buffer must absorb at least some overwrites"
    );
}

#[test]
fn skewed_writes_absorb_most_traffic() {
    // Hot/cold 90/10: most writes hit 16 hot pages that fit in the buffer.
    let mut d = Driver::new(64);
    let logical = d.c.logical_pages();
    let mut rng = SimRng::new(5);
    for i in 0..4000u64 {
        let lpn = if rng.gen_bool(0.9) {
            rng.gen_range(16)
        } else {
            16 + rng.gen_range(logical - 16)
        };
        d.submit(RequestKind::Write, lpn);
        if i % 32 == 31 {
            d.run();
        }
    }
    d.run();
    let wa = d.c.write_amplification();
    assert!(
        wa < 0.6,
        "buffer should absorb the hot set: WA {wa:.3} too high"
    );
    d.c.check_invariants();
}

#[test]
fn buffer_with_dftl_flushes_through_mapping() {
    let cfg = ControllerConfig {
        write_buffer_pages: 8,
        mapping: eagletree_controller::MappingKind::Dftl { cmt_entries: 16 },
        wl: WlConfig {
            static_enabled: false,
            ..WlConfig::default()
        },
        ..ControllerConfig::default()
    };
    let mut d = Driver {
        c: Controller::new(Geometry::tiny(), TimingSpec::slc(), cfg).unwrap(),
        now: SimTime::ZERO,
        next_id: 0,
        done: Vec::new(),
    };
    let logical = d.c.logical_pages();
    let mut rng = SimRng::new(3);
    for i in 0..1000u64 {
        d.submit(RequestKind::Write, rng.gen_range(logical));
        if i % 16 == 15 {
            d.run();
        }
    }
    d.run();
    assert_eq!(d.c.stats().app_writes_completed, 1000);
    d.c.check_invariants();
}

#[test]
fn battery_ram_budget_is_enforced() {
    let cfg = ControllerConfig {
        write_buffer_pages: 1 << 20, // 4 GiB of 4 KiB pages
        battery_ram_bytes: 1 << 20,  // 1 MiB budget
        ..ControllerConfig::default()
    };
    assert!(Controller::new(Geometry::tiny(), TimingSpec::slc(), cfg).is_err());
}
