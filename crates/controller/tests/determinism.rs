//! Determinism regression: a fixed-seed mixed workload must produce
//! byte-identical completions, counters and trace output across runs.
//! Event-ordering bugs — easy to introduce with multi-step merge machinery
//! or with the slab/ready-queue dispatch structures — fail loudly here
//! instead of as flaky experiment numbers.
//!
//! Coverage is the cross product that exercises every ordering decision:
//! all three mapping schemes and all five `SchedPolicy` variants (the
//! workload carries priority tags so `TagPriority` actually discriminates).

use eagletree_controller::{
    Completion, Controller, ControllerConfig, IoTags, MappingKind, MergePolicy, RequestKind,
    SchedPolicy, SsdRequest, WlConfig,
};
use eagletree_core::{ObsConfig, QueueKind, SimRng, SimTime};
use eagletree_flash::{Geometry, TimingSpec};

struct Driver {
    c: Controller,
    now: SimTime,
    next_id: u64,
    done: Vec<Completion>,
}

impl Driver {
    fn new(c: Controller) -> Self {
        Driver {
            c,
            now: SimTime::ZERO,
            next_id: 0,
            done: Vec::new(),
        }
    }

    fn submit(&mut self, kind: RequestKind, lpn: u64, tags: IoTags) {
        let id = self.next_id;
        self.next_id += 1;
        self.c.submit(
            SsdRequest {
                id,
                kind,
                lpn,
                tags,
            },
            self.now,
        );
    }

    fn run(&mut self) {
        while let Some(t) = self.c.next_event_time() {
            self.now = t;
            let batch = self.c.advance(t);
            self.done.extend(batch);
        }
        let tail = self.c.advance(self.now);
        self.done.extend(tail);
    }
}

/// Run a fixed-seed mixed write/trim/read workload (every fifth request
/// priority-tagged) and render everything observable into one string:
/// completion stream, controller counters, per-class issue counts, merge
/// counters, array counters and the visual trace.
fn run_fingerprint(mapping: MappingKind, sched: SchedPolicy) -> String {
    run_fingerprint_on(mapping, sched, QueueKind::default())
}

fn run_fingerprint_on(mapping: MappingKind, sched: SchedPolicy, queue: QueueKind) -> String {
    run_fingerprint_obs(mapping, sched, queue, ObsConfig::default())
}

fn run_fingerprint_obs(
    mapping: MappingKind,
    sched: SchedPolicy,
    queue: QueueKind,
    obs: ObsConfig,
) -> String {
    let cfg = ControllerConfig {
        mapping,
        sched,
        queue,
        obs,
        wl: WlConfig {
            check_every_erases: 16,
            young_delta: 4,
            idle_factor: 0.5,
            ..WlConfig::default()
        },
        trace_events: 512,
        ..ControllerConfig::default()
    };
    let mut d = Driver::new(Controller::new(Geometry::tiny(), TimingSpec::slc(), cfg).unwrap());
    let logical = d.c.logical_pages();
    let mut rng = SimRng::new(0xD17E_2B11);
    let ops: Vec<(RequestKind, u64, IoTags)> = (0..2000)
        .map(|i| {
            let lpn = rng.gen_range(logical);
            let tags = if i % 5 == 0 {
                IoTags::none().with_priority((i % 3) as u8)
            } else {
                IoTags::none()
            };
            match i % 10 {
                0..=5 => (RequestKind::Write, lpn, tags),
                6 => (RequestKind::Trim, lpn, tags),
                _ => (RequestKind::Read, lpn, tags),
            }
        })
        .collect();
    // Burst size trades run time against queue contention; 96 keeps every
    // scheduling policy's decisions observable (deep enough queues that
    // rankings disagree) while the whole suite stays fast.
    for chunk in ops.chunks(96) {
        for &(kind, lpn, tags) in chunk {
            d.submit(kind, lpn, tags);
        }
        d.run();
    }
    d.run();

    let mut out = String::new();
    for c in &d.done {
        out.push_str(&format!("{}@{}\n", c.id, c.at.as_nanos()));
    }
    out.push_str(&format!("{:?}\n", d.c.stats()));
    out.push_str(&format!("{:?}\n", d.c.merge_counters()));
    out.push_str(&format!("{:?}\n", d.c.array().counters()));
    if let Some(trace) = d.c.trace() {
        out.push_str(&trace.render_listing());
    }
    out
}

fn all_policies() -> Vec<(&'static str, SchedPolicy)> {
    vec![
        ("fifo", SchedPolicy::Fifo),
        ("class_priority", SchedPolicy::reads_first()),
        ("edf", SchedPolicy::edf_default()),
        ("fair", SchedPolicy::fair_equal()),
        ("tag_priority", SchedPolicy::TagPriority),
    ]
}

#[test]
fn hybrid_runs_are_byte_identical() {
    let mapping = MappingKind::Hybrid {
        log_blocks: 3,
        merge: MergePolicy::Fifo,
    };
    let a = run_fingerprint(mapping, SchedPolicy::Fifo);
    let b = run_fingerprint(mapping, SchedPolicy::Fifo);
    assert!(a == b, "hybrid run fingerprints diverged");
    assert!(a.contains("merge"), "fingerprint should include counters");
}

#[test]
fn all_schemes_run_deterministically() {
    for mapping in [
        MappingKind::PageMap,
        MappingKind::Dftl { cmt_entries: 24 },
        MappingKind::Hybrid {
            log_blocks: 4,
            merge: MergePolicy::MinValid,
        },
    ] {
        let a = run_fingerprint(mapping, SchedPolicy::Fifo);
        let b = run_fingerprint(mapping, SchedPolicy::Fifo);
        assert!(a == b, "{mapping:?} fingerprints diverged");
    }
}

#[test]
fn all_sched_policies_run_deterministically() {
    // Every policy, against the mapping with the most ordering hazards
    // (hybrid: merges, fillers, erases compete with app IO) and the page
    // map (GC + WL). A silent reorder in the ready-queue dispatch shows
    // up as a fingerprint mismatch between repeated runs.
    for mapping in [
        MappingKind::PageMap,
        MappingKind::Hybrid {
            log_blocks: 3,
            merge: MergePolicy::Fifo,
        },
    ] {
        for (name, policy) in all_policies() {
            let a = run_fingerprint(mapping, policy.clone());
            let b = run_fingerprint(mapping, policy.clone());
            assert!(a == b, "{mapping:?}/{name} fingerprints diverged");
        }
    }
}

#[test]
fn heap_and_calendar_agendas_are_byte_identical() {
    // The calendar backend and the per-LUN lane split are pure event-
    // engine restructurings: for every mapping scheme and every
    // scheduling policy, a heap-backed agenda and a calendar-backed one
    // must produce the same completion stream, counters and trace,
    // byte for byte.
    for mapping in [
        MappingKind::PageMap,
        MappingKind::Dftl { cmt_entries: 24 },
        MappingKind::Hybrid {
            log_blocks: 3,
            merge: MergePolicy::Fifo,
        },
    ] {
        for (name, policy) in all_policies() {
            let heap = run_fingerprint_on(mapping, policy.clone(), QueueKind::Heap);
            let cal = run_fingerprint_on(mapping, policy, QueueKind::Calendar);
            assert!(
                heap == cal,
                "{mapping:?}/{name}: calendar agenda diverged from heap oracle"
            );
        }
    }
}

#[test]
fn observability_never_perturbs_the_schedule() {
    // The span collector is a pure recorder: it schedules no events,
    // consults no RNG and steers no control flow, so the fixed-seed
    // fingerprint (completions, counters, trace) of an instrumented run
    // must be byte-identical to the uninstrumented one — across every
    // mapping scheme and both event-queue backends.
    let on = ObsConfig {
        span_capacity: 1 << 16,
        timeline_interval_us: 100,
    };
    for mapping in [
        MappingKind::PageMap,
        MappingKind::Dftl { cmt_entries: 24 },
        MappingKind::Hybrid {
            log_blocks: 3,
            merge: MergePolicy::Fifo,
        },
    ] {
        for queue in [QueueKind::Heap, QueueKind::Calendar] {
            let off =
                run_fingerprint_obs(mapping, SchedPolicy::Fifo, queue, ObsConfig::default());
            let with =
                run_fingerprint_obs(mapping, SchedPolicy::Fifo, queue, on);
            assert!(
                off == with,
                "{mapping:?}/{queue:?}: enabling observability changed the simulation"
            );
        }
    }
}

#[test]
fn sched_policies_actually_differ() {
    // Sanity for the test itself: if every policy produced the same
    // fingerprint the cross-product above would be vacuous (e.g. tags
    // stripped, or ready-queues collapsing policy distinctions).
    let prints: Vec<String> = all_policies()
        .into_iter()
        .map(|(_, p)| run_fingerprint(MappingKind::PageMap, p))
        .collect();
    let distinct: std::collections::BTreeSet<&String> = prints.iter().collect();
    // On this mix reads are the minority class, so reads-first,
    // EDF-with-default-deadlines and Fair legitimately converge on the
    // same schedule; FIFO and TagPriority must still disagree with them
    // and each other.
    assert!(
        distinct.len() >= 3,
        "expected scheduling policies to produce distinct schedules, got {} distinct of {}",
        distinct.len(),
        prints.len()
    );
}
