//! Determinism regression: a fixed-seed mixed workload must produce
//! byte-identical completions, counters and trace output across runs.
//! Event-ordering bugs — easy to introduce with multi-step merge machinery
//! — fail loudly here instead of as flaky experiment numbers.

use eagletree_controller::{
    Completion, Controller, ControllerConfig, IoTags, MappingKind, MergePolicy, RequestKind,
    SsdRequest, WlConfig,
};
use eagletree_core::{SimRng, SimTime};
use eagletree_flash::{Geometry, TimingSpec};

struct Driver {
    c: Controller,
    now: SimTime,
    next_id: u64,
    done: Vec<Completion>,
}

impl Driver {
    fn new(c: Controller) -> Self {
        Driver {
            c,
            now: SimTime::ZERO,
            next_id: 0,
            done: Vec::new(),
        }
    }

    fn submit(&mut self, kind: RequestKind, lpn: u64) {
        let id = self.next_id;
        self.next_id += 1;
        self.c.submit(
            SsdRequest {
                id,
                kind,
                lpn,
                tags: IoTags::none(),
            },
            self.now,
        );
    }

    fn run(&mut self) {
        while let Some(t) = self.c.next_event_time() {
            self.now = t;
            let batch = self.c.advance(t);
            self.done.extend(batch);
        }
        let tail = self.c.advance(self.now);
        self.done.extend(tail);
    }
}

/// Run a fixed-seed mixed write/trim/read workload and render everything
/// observable into one string: completion stream, controller counters,
/// per-class issue counts, merge counters, array counters and the visual
/// trace.
fn run_fingerprint(mapping: MappingKind) -> String {
    let cfg = ControllerConfig {
        mapping,
        wl: WlConfig {
            check_every_erases: 16,
            young_delta: 4,
            idle_factor: 0.5,
            ..WlConfig::default()
        },
        trace_events: 512,
        ..ControllerConfig::default()
    };
    let mut d = Driver::new(Controller::new(Geometry::tiny(), TimingSpec::slc(), cfg).unwrap());
    let logical = d.c.logical_pages();
    let mut rng = SimRng::new(0xD17E_2B11);
    let ops: Vec<(RequestKind, u64)> = (0..2000)
        .map(|i| {
            let lpn = rng.gen_range(logical);
            match i % 10 {
                0..=5 => (RequestKind::Write, lpn),
                6 => (RequestKind::Trim, lpn),
                _ => (RequestKind::Read, lpn),
            }
        })
        .collect();
    for chunk in ops.chunks(24) {
        for &(kind, lpn) in chunk {
            d.submit(kind, lpn);
        }
        d.run();
    }
    d.run();

    let mut out = String::new();
    for c in &d.done {
        out.push_str(&format!("{}@{}\n", c.id, c.at.as_nanos()));
    }
    out.push_str(&format!("{:?}\n", d.c.stats()));
    out.push_str(&format!("{:?}\n", d.c.merge_counters()));
    out.push_str(&format!("{:?}\n", d.c.array().counters()));
    if let Some(trace) = d.c.trace() {
        out.push_str(&trace.render_listing());
    }
    out
}

#[test]
fn hybrid_runs_are_byte_identical() {
    let mapping = MappingKind::Hybrid {
        log_blocks: 3,
        merge: MergePolicy::Fifo,
    };
    let a = run_fingerprint(mapping);
    let b = run_fingerprint(mapping);
    assert!(a == b, "hybrid run fingerprints diverged");
    assert!(a.contains("merge"), "fingerprint should include counters");
}

#[test]
fn all_schemes_run_deterministically() {
    for mapping in [
        MappingKind::PageMap,
        MappingKind::Dftl { cmt_entries: 24 },
        MappingKind::Hybrid {
            log_blocks: 4,
            merge: MergePolicy::MinValid,
        },
    ] {
        let a = run_fingerprint(mapping);
        let b = run_fingerprint(mapping);
        assert!(a == b, "{mapping:?} fingerprints diverged");
    }
}
